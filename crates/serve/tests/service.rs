//! End-to-end tests of the campaign service over a real socket.
//!
//! The centrepiece is the resume invariant: a server killed mid-run
//! (simulated by a state directory holding a prefix of the record
//! stream plus a torn tail) and restarted must finish the campaign with
//! a canonical record stream and metrics **bit-identical** to an
//! uninterrupted run's.

use fl_inject::{
    run_spec, sort_records_jsonl, CampaignSpec, EngineControl, NullSink, SpecOutcome, TargetClass,
    VecSink,
};
use fl_serve::{campaign_id, client, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(300);

fn fresh_state_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fl-serve-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str) -> (Server, String, PathBuf) {
    let state_dir = fresh_state_dir(tag);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: state_dir.clone(),
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    (server, addr, state_dir)
}

/// A small observed campaign spec used throughout.
fn tiny_spec(seed: u64, injections: u32) -> CampaignSpec {
    let mut spec = CampaignSpec::new(fl_apps::AppKind::Wavetoy);
    spec.tiny = true;
    spec.classes = vec![TargetClass::RegularReg, TargetClass::Message];
    spec.campaign.injections = injections;
    spec.campaign.seed = seed;
    spec.campaign.threads = 2;
    spec.campaign.obs_capacity = 128;
    spec
}

/// Run the spec in-process and return (canonical records, metrics).
fn reference(spec: &CampaignSpec) -> (String, String) {
    let sink = VecSink::new(spec.app);
    let outcome = run_spec(spec, &sink, &EngineControl::new(), None).expect("reference completes");
    let SpecOutcome::Campaign(result) = outcome else {
        panic!("expected a campaign outcome");
    };
    let metrics = result
        .metrics
        .as_ref()
        .expect("observed campaign has metrics")
        .to_jsonl(spec.app);
    (sort_records_jsonl(&sink.into_lines().join("\n")), metrics)
}

#[test]
fn submit_runs_sharded_and_streams_canonical_records() {
    let (server, addr, _dir) = start("submit");
    let (code, body) = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((code, body.as_str()), (200, "{\"ok\":true}"));

    let spec = tiny_spec(0x51, 5);
    let id = client::submit(&addr, &spec.to_json()).unwrap();
    assert_eq!(id, campaign_id(&spec.to_json()));

    let final_status = client::wait_done(&addr, &id, WAIT).unwrap();
    assert!(final_status.contains("\"done\":10"), "{final_status}");

    let (want_records, want_metrics) = reference(&spec);
    assert_eq!(client::records(&addr, &id).unwrap(), want_records);
    let (code, metrics) =
        client::request(&addr, "GET", &format!("/campaigns/{id}/metrics"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(metrics, want_metrics);

    // Resubmitting the identical spec is idempotent: same id, done.
    let again = client::submit(&addr, &spec.to_json()).unwrap();
    assert_eq!(again, id);
    assert_eq!(
        client::status_field(&client::status(&addr, &id).unwrap()),
        "done"
    );

    // The watch stream of a finished campaign yields a terminal line.
    let mut lines = Vec::new();
    client::watch(&addr, &id, |l| lines.push(l.to_string())).unwrap();
    assert!(!lines.is_empty());
    assert!(lines.last().unwrap().contains("\"status\":\"done\""));

    server.shutdown();
}

#[test]
fn killed_server_resumes_bit_identically_on_restart() {
    let spec = tiny_spec(0x5EED, 6);
    let canonical_spec = spec.to_json();
    let id = campaign_id(&canonical_spec);
    let (want_records, want_metrics) = reference(&spec);
    let all_lines: Vec<&str> = want_records.lines().collect();

    // Simulate a server killed mid-campaign: its state dir holds the
    // spec, a prefix of the streamed records, and a torn tail line cut
    // off by the kill.
    let adopted = 7usize;
    assert!(adopted < all_lines.len());
    let state_dir = fresh_state_dir("resume");
    let camp_dir = state_dir.join(&id);
    std::fs::create_dir_all(&camp_dir).unwrap();
    std::fs::write(camp_dir.join("spec.json"), format!("{canonical_spec}\n")).unwrap();
    let mut partial = all_lines[..adopted].join("\n");
    partial.push_str("\n{\"app\":\"wavetoy\",\"class\":\"regu");
    std::fs::write(camp_dir.join("records.jsonl"), partial).unwrap();

    // A fresh server on that state dir must auto-resume and finish.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir,
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let final_status = client::wait_done(&addr, &id, WAIT).unwrap();
    assert!(
        final_status.contains(&format!("\"resumed\":{adopted}")),
        "adopted trials must be counted, not re-run: {final_status}"
    );

    // Bit-identical to the uninterrupted run: records and metrics.
    assert_eq!(client::records(&addr, &id).unwrap(), want_records);
    let (_, metrics) =
        client::request(&addr, "GET", &format!("/campaigns/{id}/metrics"), None).unwrap();
    assert_eq!(metrics, want_metrics);
    server.shutdown();
}

#[test]
fn pause_stop_and_resubmit_preserve_the_stream() {
    let (server, addr, state_dir) = start("ctl");
    let spec = tiny_spec(0xC7A1, 24);
    let (want_records, _) = reference(&spec);

    let id = client::submit(&addr, &spec.to_json()).unwrap();
    // Pause, let in-flight trials drain, and check the counter froze.
    client::control(&addr, &id, "pause").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let frozen = client::status(&addr, &id).unwrap();
    if client::status_field(&frozen) == "paused" {
        std::thread::sleep(Duration::from_millis(200));
        let later = client::status(&addr, &id).unwrap();
        assert_eq!(frozen, later, "paused campaigns must not advance");
    }
    client::control(&addr, &id, "resume").unwrap();

    // Stop, then resubmit the same spec: the relaunch resumes from the
    // streamed records and the final stream is still canonical.
    client::control(&addr, &id, "stop").unwrap();
    client::wait_terminal(&addr, &id, WAIT).unwrap();
    client::submit(&addr, &spec.to_json()).unwrap();
    client::wait_done(&addr, &id, WAIT).unwrap();
    assert_eq!(client::records(&addr, &id).unwrap(), want_records);

    // Shut down and restart on the same state dir: the finished
    // campaign is listed as done and still serves its records.
    server.shutdown();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir,
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    assert_eq!(
        client::status_field(&client::status(&addr, &id).unwrap()),
        "done"
    );
    assert_eq!(client::records(&addr, &id).unwrap(), want_records);
    server.shutdown();
}

#[test]
fn guard_and_ft_specs_run_to_completion() {
    let (server, addr, _dir) = start("modes");
    let mut spec = tiny_spec(0x6A, 3);
    spec.classes = vec![TargetClass::Message];
    spec.mode = fl_inject::SpecMode::Guard(fl_inject::GuardPolicy {
        checkpoint_rounds: 8,
        ..fl_inject::GuardPolicy::default()
    });
    let gid = client::submit(&addr, &spec.to_json()).unwrap();

    let mut ft = tiny_spec(0x6B, 2);
    ft.mode = fl_inject::SpecMode::Ft(fl_inject::FtPolicy::default());
    let fid = client::submit(&addr, &ft.to_json()).unwrap();

    let mut chaos = tiny_spec(0x6C, 1);
    chaos.mode = fl_inject::SpecMode::Chaos(fl_inject::ChaosPolicy::default());
    let cid = client::submit(&addr, &chaos.to_json()).unwrap();

    client::wait_done(&addr, &gid, WAIT).unwrap();
    client::wait_done(&addr, &fid, WAIT).unwrap();
    client::wait_done(&addr, &cid, WAIT).unwrap();
    let grecords = client::records(&addr, &gid).unwrap();
    assert!(grecords.lines().count() >= 3, "coverage records present");
    let frecords = client::records(&addr, &fid).unwrap();
    assert!(
        frecords.lines().count() >= 4,
        "kill + replica records present"
    );
    let crecords = client::records(&addr, &cid).unwrap();
    assert_eq!(
        crecords.lines().count(),
        chaos.record_classes().len(),
        "one streamed record per model x defense cell"
    );

    // Bad input is rejected, not crashed on.
    let (code, _) =
        client::request(&addr, "POST", "/campaigns", Some("{\"app\":\"nope\"}")).unwrap();
    assert_eq!(code, 400);
    let (code, _) = client::request(&addr, "GET", "/campaigns/cdeadbeef", None).unwrap();
    assert_eq!(code, 404);
    server.shutdown();
}

#[test]
fn null_sink_runs_match_served_runs() {
    // Sanity for the reference helper itself: NullSink and VecSink see
    // the same campaign.
    let spec = tiny_spec(0x51, 5);
    let a = run_spec(&spec, &NullSink, &EngineControl::new(), None).unwrap();
    let b = run_spec(&spec, &NullSink, &EngineControl::new(), None).unwrap();
    let (SpecOutcome::Campaign(a), SpecOutcome::Campaign(b)) = (a, b) else {
        panic!("expected campaign outcomes");
    };
    assert_eq!(a.insns_total, b.insns_total);
    assert_eq!(a.metrics, b.metrics);
}
