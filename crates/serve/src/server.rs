//! The campaign daemon: socket loop, campaign registry, durable state.
//!
//! One campaign = one directory under the state dir, keyed by the
//! FNV-1a hash of the spec's canonical JSON:
//!
//! ```text
//! <state-dir>/<id>/spec.json      the canonical spec, one line
//! <state-dir>/<id>/records.jsonl  per-trial records, appended + flushed
//! <state-dir>/<id>/metrics.jsonl  per-class metrics (campaign mode, ring > 0)
//! <state-dir>/<id>/done.json      commit marker: final progress counters
//! ```
//!
//! `records.jsonl` is both the streamed output and the resume state: a
//! line is flushed the moment its trial completes, so a `kill -9` loses
//! at most one torn tail line, which the resume parser skips and the
//! engine re-runs. On startup the server scans the state dir and
//! relaunches every campaign that has a spec but no `done.json` —
//! restarting a killed server finishes its campaigns bit-identically.
//!
//! Endpoints (JSON in, JSON or JSONL out):
//!
//! | method | path                        | effect                         |
//! |--------|-----------------------------|--------------------------------|
//! | GET    | `/healthz`                  | liveness probe                 |
//! | POST   | `/campaigns`                | submit a spec (idempotent)     |
//! | GET    | `/campaigns`                | list campaigns                 |
//! | GET    | `/campaigns/<id>`           | status + progress counters     |
//! | GET    | `/campaigns/<id>/records`   | canonical slot-sorted JSONL    |
//! | GET    | `/campaigns/<id>/metrics`   | per-class metrics JSONL        |
//! | GET    | `/campaigns/<id>/watch`     | status stream until terminal   |
//! | POST   | `/campaigns/<id>/pause`     | park the worker pool           |
//! | POST   | `/campaigns/<id>/resume`    | unpark it                      |
//! | POST   | `/campaigns/<id>/stop`      | drain workers, keep state      |
//! | POST   | `/shutdown`                 | stop campaigns, exit the loop  |

use crate::http::{read_request, respond, start_stream, Request};
use fl_apps::AppKind;
use fl_inject::json::{parse, Json};
use fl_inject::{
    chaos_jsonl, coverage_jsonl, ft_jsonl, perturb_jsonl, record_line, run_spec,
    sort_records_jsonl, CampaignSpec, CompletedSlots, EngineControl, EngineProgress, EngineSink,
    SpecMode, SpecOutcome, TrialOutput,
};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The campaign id for a spec: FNV-1a 64 of its canonical JSON. Equal
/// specs hash to equal ids, which is what makes submit idempotent and
/// restart-resume find its state directory again.
pub fn campaign_id(canonical_spec_json: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical_spec_json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("c{h:016x}")
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    Paused,
    /// Stop requested; workers are draining.
    Stopping,
    /// Drained before completion — resumable by resubmit or restart.
    Stopped,
    Done,
    Failed,
}

impl Status {
    fn name(self) -> &'static str {
        match self {
            Status::Running => "running",
            Status::Paused => "paused",
            Status::Stopping => "stopping",
            Status::Stopped => "stopped",
            Status::Done => "done",
            Status::Failed => "failed",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, Status::Stopped | Status::Done | Status::Failed)
    }
}

struct CampState {
    status: Status,
    progress: EngineProgress,
}

struct Campaign {
    id: String,
    spec: CampaignSpec,
    dir: PathBuf,
    control: EngineControl,
    state: Mutex<CampState>,
}

impl Campaign {
    fn new(id: String, spec: CampaignSpec, dir: PathBuf) -> Campaign {
        let progress = EngineProgress {
            total: planned_total(&spec),
            ..EngineProgress::default()
        };
        Campaign {
            id,
            spec,
            dir,
            control: EngineControl::new(),
            state: Mutex::new(CampState {
                status: Status::Running,
                progress,
            }),
        }
    }

    fn set_status(&self, s: Status) {
        self.state.lock().unwrap().status = s;
    }

    fn status_json(&self) -> String {
        let st = self.state.lock().unwrap();
        self.status_json_locked(&st)
    }

    fn status_json_locked(&self, st: &CampState) -> String {
        format!(
            "{{\"id\":\"{}\",\"app\":\"{}\",\"mode\":\"{}\",\"status\":\"{}\",\"total\":{},\"done\":{},\"resumed\":{},\"wall_nanos\":{}}}",
            self.id,
            self.spec.app.name(),
            self.spec.mode.name(),
            st.status.name(),
            st.progress.total,
            st.progress.done,
            st.progress.resumed,
            st.progress.wall_nanos,
        )
    }
}

/// Trials in the spec's slot space (known before the engine starts).
fn planned_total(spec: &CampaignSpec) -> u64 {
    match spec.mode {
        // Ft campaigns run `injections` kill trials + `injections`
        // replica trials.
        SpecMode::Ft(_) => 2 * spec.campaign.injections as u64,
        // Chaos and perturb campaigns run their fixed grids.
        SpecMode::Chaos(_) | SpecMode::Perturb(_) => {
            spec.record_classes().len() as u64 * spec.campaign.injections as u64
        }
        _ => spec.classes.len() as u64 * spec.campaign.injections as u64,
    }
}

/// The engine sink that makes campaigns durable: every record line is
/// appended and flushed the moment its trial completes, and progress
/// events land in the registry entry the status endpoints read.
struct FileSink {
    app: AppKind,
    file: Mutex<fs::File>,
    camp: Arc<Campaign>,
}

impl EngineSink for FileSink {
    fn trial(&self, t: &TrialOutput) {
        let mut f = self.file.lock().unwrap();
        let _ = writeln!(f, "{}", record_line(self.app, t));
        let _ = f.flush();
    }

    fn progress(&self, p: EngineProgress) {
        let mut st = self.camp.state.lock().unwrap();
        // Completion-order events can arrive slightly out of order
        // across workers; keep the counter monotonic.
        if p.done >= st.progress.done {
            st.progress = p;
        }
    }
}

/// How to run the service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Campaign state root (created if missing).
    pub state_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: PathBuf::from(".faultlab-serve"),
        }
    }
}

struct Inner {
    addr: Mutex<Option<SocketAddr>>,
    state_dir: PathBuf,
    campaigns: Mutex<BTreeMap<String, Arc<Campaign>>>,
    runs: Mutex<Vec<JoinHandle<()>>>,
    shutdown: AtomicBool,
}

/// A running campaign service. Dropping the handle does *not* stop the
/// daemon; call [`Server::shutdown`] (tests) or let [`Server::join`]
/// block until a `POST /shutdown` arrives (the CLI verb).
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, auto-resume unfinished campaigns in the state dir, and
    /// start accepting connections.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        fs::create_dir_all(&cfg.state_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            addr: Mutex::new(Some(addr)),
            state_dir: cfg.state_dir,
            campaigns: Mutex::new(BTreeMap::new()),
            runs: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        load_state_dir(&inner);
        let inner2 = inner.clone();
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if inner2.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let inner3 = inner2.clone();
                std::thread::spawn(move || handle(&inner3, stream));
            }
        });
        Ok(Server {
            addr,
            inner,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the accept loop exits (a `POST /shutdown` arrived),
    /// then drain campaign threads.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        drain_runs(&self.inner);
    }

    /// Stop every campaign, close the socket loop, and wait for all
    /// run threads to drain their in-flight trials.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.inner);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        drain_runs(&self.inner);
    }
}

fn drain_runs(inner: &Inner) {
    let handles: Vec<_> = inner.runs.lock().unwrap().drain(..).collect();
    for h in handles {
        let _ = h.join();
    }
}

/// Flag the accept loop down, stop all live campaigns, and poke the
/// listener awake with a throwaway connection.
fn trigger_shutdown(inner: &Inner) {
    inner.shutdown.store(true, Ordering::SeqCst);
    for camp in inner.campaigns.lock().unwrap().values() {
        let st = camp.state.lock().unwrap().status;
        if !st.terminal() {
            camp.control.stop();
        }
    }
    if let Some(addr) = *inner.addr.lock().unwrap() {
        let _ = TcpStream::connect(addr);
    }
}

/// Register every campaign directory found under the state dir;
/// relaunch the unfinished ones (the auto-resume path).
fn load_state_dir(inner: &Arc<Inner>) {
    let Ok(entries) = fs::read_dir(&inner.state_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        let Ok(text) = fs::read_to_string(dir.join("spec.json")) else {
            continue;
        };
        let Ok(spec) = CampaignSpec::from_json(text.trim()) else {
            continue;
        };
        let Some(id) = dir.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let camp = Arc::new(Campaign::new(id.clone(), spec, dir.clone()));
        if dir.join("done.json").is_file() {
            let mut st = camp.state.lock().unwrap();
            st.status = Status::Done;
            st.progress = read_done_marker(&dir).unwrap_or(EngineProgress {
                total: st.progress.total,
                done: st.progress.total,
                ..EngineProgress::default()
            });
            drop(st);
            inner.campaigns.lock().unwrap().insert(id, camp);
        } else {
            inner.campaigns.lock().unwrap().insert(id, camp.clone());
            launch(inner, camp);
        }
    }
}

fn read_done_marker(dir: &std::path::Path) -> Option<EngineProgress> {
    let text = fs::read_to_string(dir.join("done.json")).ok()?;
    let v = parse(text.trim()).ok()?;
    Some(EngineProgress {
        total: v.get("total").and_then(Json::as_u64)?,
        done: v.get("done").and_then(Json::as_u64)?,
        resumed: v.get("resumed").and_then(Json::as_u64).unwrap_or(0),
        wall_nanos: v.get("wall_nanos").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// Spawn the campaign's run thread and track its handle.
fn launch(inner: &Arc<Inner>, camp: Arc<Campaign>) {
    let h = std::thread::spawn(move || run_campaign(&camp));
    inner.runs.lock().unwrap().push(h);
}

/// One campaign's whole life on a dedicated thread: load resume state,
/// run the engine with the durable sink, commit the outcome.
fn run_campaign(camp: &Arc<Campaign>) {
    let records = camp.dir.join("records.jsonl");
    let mut resume = None;
    let slot_classes = camp.spec.record_classes();
    if matches!(
        camp.spec.mode,
        SpecMode::Campaign | SpecMode::Chaos(_) | SpecMode::Perturb(_)
    ) {
        if let Ok(text) = fs::read_to_string(&records) {
            // Sanitize before appending: a kill mid-write leaves a torn
            // tail with no trailing newline, and appending fresh lines
            // onto it would corrupt the first new record. Rewrite the
            // file to exactly the lines the engine will adopt.
            let kept = adoptable_lines(&text, &camp.spec);
            if kept != text && fs::write(&records, &kept).is_err() {
                camp.set_status(Status::Failed);
                return;
            }
            let (slots, _torn) =
                CompletedSlots::from_jsonl(&kept, &slot_classes, camp.spec.record_injections());
            if !slots.is_empty() {
                resume = Some(slots);
            }
        }
    } else {
        // Guard/ft campaigns have no per-trial resume stream; their
        // records are written whole at completion. Re-run from scratch.
        let _ = fs::remove_file(&records);
    }

    let file = match fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&records)
    {
        Ok(f) => f,
        Err(_) => {
            camp.set_status(Status::Failed);
            return;
        }
    };
    let sink = FileSink {
        app: camp.spec.app,
        file: Mutex::new(file),
        camp: camp.clone(),
    };

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_spec(&camp.spec, &sink, &camp.control, resume)
    }));
    match outcome {
        Err(_) => camp.set_status(Status::Failed),
        Ok(None) => camp.set_status(Status::Stopped),
        Ok(Some(outcome)) => {
            match outcome {
                SpecOutcome::Campaign(r) => {
                    if let Some(m) = &r.metrics {
                        let _ =
                            fs::write(camp.dir.join("metrics.jsonl"), m.to_jsonl(camp.spec.app));
                    }
                }
                SpecOutcome::Coverage(c) => {
                    let _ = fs::write(&records, coverage_jsonl(&c));
                }
                SpecOutcome::Ft(f) => {
                    let _ = fs::write(&records, ft_jsonl(&f));
                }
                SpecOutcome::Chaos(r) => {
                    // The streamed per-trial records stay in place (they
                    // are the resume state); the cell-level coverage
                    // matrix lands next to them.
                    let _ = fs::write(camp.dir.join("matrix.jsonl"), chaos_jsonl(&r));
                }
                SpecOutcome::Perturb(r) => {
                    // Same layout as chaos: per-trial records stay, the
                    // detector-comparison matrix and its degradation
                    // metrics land next to them.
                    let _ = fs::write(camp.dir.join("matrix.jsonl"), perturb_jsonl(&r));
                    let _ = fs::write(
                        camp.dir.join("metrics.jsonl"),
                        r.metrics().to_jsonl(camp.spec.app),
                    );
                }
            }
            // The done marker is the commit point: it is written last,
            // so a kill before this line leaves a resumable campaign.
            let p = camp.state.lock().unwrap().progress;
            let _ = fs::write(
                camp.dir.join("done.json"),
                format!(
                    "{{\"total\":{},\"done\":{},\"resumed\":{},\"wall_nanos\":{}}}\n",
                    p.total, p.done, p.resumed, p.wall_nanos
                ),
            );
            camp.set_status(Status::Done);
        }
    }
}

/// The lines of a streamed record file the engine will adopt on
/// resume, each newline-terminated — the same filter
/// [`CompletedSlots::from_jsonl`] applies.
fn adoptable_lines(text: &str, spec: &CampaignSpec) -> String {
    let classes = spec.record_classes();
    let injections = spec.record_injections();
    let mut kept = String::new();
    for line in text.lines() {
        if let Ok(t) = fl_inject::parse_record_line(line) {
            if t.ci < classes.len() && t.k < injections && classes[t.ci] == t.record.class {
                kept.push_str(line);
                kept.push('\n');
            }
        }
    }
    kept
}

fn handle(inner: &Arc<Inner>, mut stream: TcpStream) {
    let Ok(req) = read_request(&stream) else {
        return;
    };
    match route(inner, &req, &mut stream) {
        Ok(Some((status, content_type, body))) => {
            let _ = respond(&mut stream, status, content_type, &body);
        }
        Ok(None) => {} // streamed
        Err((status, msg)) => {
            let _ = respond(&mut stream, status, "text/plain", &msg);
        }
    }
}

type Reply = Option<(u16, &'static str, String)>;
type RouteError = (u16, String);

const JSON: &str = "application/json";
const JSONL: &str = "application/jsonl";

fn route(inner: &Arc<Inner>, req: &Request, stream: &mut TcpStream) -> Result<Reply, RouteError> {
    let path = req.path.split('?').next().unwrap_or("");
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => Ok(Some((200, JSON, "{\"ok\":true}".into()))),
        ("POST", ["shutdown"]) => {
            trigger_shutdown(inner);
            Ok(Some((200, JSON, "{\"shutting_down\":true}".into())))
        }
        ("POST", ["campaigns"]) => submit(inner, &req.body).map(Some),
        ("GET", ["campaigns"]) => {
            let reg = inner.campaigns.lock().unwrap();
            let items: Vec<String> = reg.values().map(|c| c.status_json()).collect();
            Ok(Some((200, JSON, format!("[{}]", items.join(",")))))
        }
        ("GET", ["campaigns", id]) => Ok(Some((200, JSON, get(inner, id)?.status_json()))),
        ("GET", ["campaigns", id, "records"]) => {
            let camp = get(inner, id)?;
            let text = fs::read_to_string(camp.dir.join("records.jsonl"))
                .map_err(|_| (404, format!("campaign {id} has no records yet")))?;
            let body = match camp.spec.mode {
                SpecMode::Campaign | SpecMode::Chaos(_) | SpecMode::Perturb(_) => {
                    sort_records_jsonl(&text)
                }
                _ => text,
            };
            Ok(Some((200, JSONL, body)))
        }
        ("GET", ["campaigns", id, "metrics"]) => {
            let camp = get(inner, id)?;
            let text = fs::read_to_string(camp.dir.join("metrics.jsonl"))
                .map_err(|_| (404, format!("campaign {id} has no metrics")))?;
            Ok(Some((200, JSONL, text)))
        }
        ("GET", ["campaigns", id, "watch"]) => {
            let camp = get(inner, id)?;
            watch_stream(inner, &camp, stream);
            Ok(None)
        }
        ("POST", ["campaigns", id, action @ ("pause" | "resume" | "stop")]) => {
            let camp = get(inner, id)?;
            let mut st = camp.state.lock().unwrap();
            match (*action, st.status) {
                ("pause", Status::Running) => {
                    camp.control.pause();
                    st.status = Status::Paused;
                }
                ("resume", Status::Paused) => {
                    camp.control.resume();
                    st.status = Status::Running;
                }
                ("stop", Status::Running | Status::Paused) => {
                    camp.control.stop();
                    st.status = Status::Stopping;
                }
                _ => {} // no-op on any other state
            }
            drop(st);
            Ok(Some((200, JSON, camp.status_json())))
        }
        _ => Err((404, format!("no route for {} {}", req.method, req.path))),
    }
}

fn get(inner: &Inner, id: &str) -> Result<Arc<Campaign>, RouteError> {
    inner
        .campaigns
        .lock()
        .unwrap()
        .get(id)
        .cloned()
        .ok_or_else(|| (404, format!("no campaign {id}")))
}

/// Submit a spec. Idempotent on the canonical spec: a running or done
/// campaign just reports its status; a stopped one is relaunched and
/// resumes from its records.
fn submit(inner: &Arc<Inner>, body: &str) -> Result<(u16, &'static str, String), RouteError> {
    let spec = CampaignSpec::from_json(body).map_err(|e| (400, e))?;
    let canonical = spec.to_json();
    let id = campaign_id(&canonical);
    let mut reg = inner.campaigns.lock().unwrap();
    if let Some(camp) = reg.get(&id) {
        let camp = camp.clone();
        let st = camp.state.lock().unwrap().status;
        if matches!(st, Status::Stopped | Status::Failed) {
            camp.control.resume();
            camp.set_status(Status::Running);
            launch(inner, camp.clone());
        }
        return Ok((200, JSON, camp.status_json()));
    }
    let dir = inner.state_dir.join(&id);
    fs::create_dir_all(&dir).map_err(|e| (500, format!("cannot create {}: {e}", dir.display())))?;
    fs::write(dir.join("spec.json"), format!("{canonical}\n"))
        .map_err(|e| (500, format!("cannot persist spec: {e}")))?;
    let camp = Arc::new(Campaign::new(id.clone(), spec, dir));
    reg.insert(id, camp.clone());
    drop(reg);
    launch(inner, camp.clone());
    Ok((200, JSON, camp.status_json()))
}

/// Stream status lines until the campaign reaches a terminal state (or
/// the client hangs up, or the server shuts down).
fn watch_stream(inner: &Inner, camp: &Campaign, stream: &mut TcpStream) {
    if start_stream(stream, JSONL).is_err() {
        return;
    }
    loop {
        let (line, terminal) = {
            let st = camp.state.lock().unwrap();
            (camp.status_json_locked(&st), st.status.terminal())
        };
        if writeln!(stream, "{line}").is_err() || stream.flush().is_err() {
            return;
        }
        if terminal || inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_ids_are_stable_and_spec_keyed() {
        let a = CampaignSpec::new(AppKind::Wavetoy).to_json();
        let mut other = CampaignSpec::new(AppKind::Wavetoy);
        other.campaign.seed = 7;
        assert_eq!(campaign_id(&a), campaign_id(&a));
        assert_ne!(campaign_id(&a), campaign_id(&other.to_json()));
        assert!(campaign_id(&a).starts_with('c'));
        assert_eq!(campaign_id(&a).len(), 17);
    }

    #[test]
    fn planned_totals_cover_every_mode() {
        let mut spec = CampaignSpec::new(AppKind::Wavetoy);
        spec.campaign.injections = 10;
        assert_eq!(planned_total(&spec), 80); // 8 classes x 10
        spec.mode = SpecMode::Ft(fl_inject::FtPolicy::default());
        assert_eq!(planned_total(&spec), 20); // kills + replicas
        spec.mode = SpecMode::Perturb(fl_inject::PerturbPolicy::default());
        assert_eq!(planned_total(&spec), 150); // 5 models x 3 detections x 10
    }
}
