//! Just enough HTTP/1.1 for a local control socket.
//!
//! The campaign service speaks to clients on the same machine; it needs
//! request lines, headers, `Content-Length` bodies, fixed-length
//! responses and one close-delimited streaming response (`watch`).
//! Nothing else — no chunked encoding, no keep-alive, no TLS — so the
//! whole dialect fits in this file and the workspace stays free of
//! network dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server will buffer (a campaign spec is a
/// few hundred bytes; a megabyte is already absurd).
const MAX_BODY: usize = 1 << 20;

/// One parsed request: method, path, decoded body.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased HTTP method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, e.g. `/campaigns/c0123/records`.
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// Read and parse one request from `stream`.
pub fn read_request(stream: &TcpStream) -> std::io::Result<Request> {
    let mut r = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    r.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            break;
        }
        let h = h.trim();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length.min(MAX_BODY)];
    r.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    }
}

/// Write a complete fixed-length response and flush it.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Start a close-delimited streaming response: headers only; the caller
/// writes body lines and signals the end by closing the connection.
pub fn start_stream(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Split a raw response into `(status, body)`. Tolerates both
/// fixed-length and close-delimited bodies, since the caller has always
/// read to EOF.
pub fn parse_response(raw: &str) -> Result<(u16, String), String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("truncated HTTP response")?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/campaigns");
            assert_eq!(req.body, r#"{"app":"wavetoy"}"#);
            let mut stream = stream;
            respond(&mut stream, 200, "application/json", r#"{"ok":true}"#).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = r#"{"app":"wavetoy"}"#;
        write!(
            stream,
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, body) = parse_response(&raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.join().unwrap();
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 banana OK\r\n\r\nx").is_err());
    }

    #[test]
    fn bodies_follow_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // No body, no Content-Length.
            write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut raw = String::new();
            stream.read_to_string(&mut raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let req = read_request(&stream).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
        let mut stream = stream;
        respond(&mut stream, 404, "text/plain", "nope").unwrap();
        drop(stream); // EOF ends the client's close-delimited read
        client.join().unwrap();
    }
}
