//! Blocking client helpers for the campaign service.
//!
//! The CLI verbs (`faultlab submit`, `status`, `watch`, …) and the CI
//! smoke test are thin wrappers over these: one TCP connection per
//! request, `Connection: close`, read to EOF.

use crate::http::parse_response;
use fl_inject::json::{parse, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Issue one request and return `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let b = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{b}",
        b.len(),
    )
    .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    parse_response(&raw)
}

fn expect_ok(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
    let (status, body) = request(addr, method, path, body)?;
    if status != 200 {
        return Err(format!("{method} {path} failed ({status}): {body}"));
    }
    Ok(body)
}

/// Submit a campaign spec; returns the campaign id.
pub fn submit(addr: &str, spec_json: &str) -> Result<String, String> {
    let body = expect_ok(addr, "POST", "/campaigns", Some(spec_json))?;
    parse(&body)?
        .get("id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("submit response has no id: {body}"))
}

/// Fetch a campaign's status JSON.
pub fn status(addr: &str, id: &str) -> Result<String, String> {
    expect_ok(addr, "GET", &format!("/campaigns/{id}"), None)
}

/// Fetch the canonical slot-sorted record stream.
pub fn records(addr: &str, id: &str) -> Result<String, String> {
    expect_ok(addr, "GET", &format!("/campaigns/{id}/records"), None)
}

/// Pause, resume or stop a campaign; returns the fresh status JSON.
pub fn control(addr: &str, id: &str, action: &str) -> Result<String, String> {
    expect_ok(addr, "POST", &format!("/campaigns/{id}/{action}"), None)
}

/// The `status` field of a status JSON body ("?" if unparsable).
pub fn status_field(body: &str) -> String {
    parse(body)
        .ok()
        .and_then(|v| v.get("status").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| "?".into())
}

/// Poll until the campaign reaches *any* terminal state (done, stopped
/// or failed); returns its final status JSON.
pub fn wait_terminal(addr: &str, id: &str, timeout: Duration) -> Result<String, String> {
    let start = Instant::now();
    loop {
        let body = status(addr, id)?;
        let st = status_field(&body);
        if matches!(st.as_str(), "done" | "stopped" | "failed") {
            return Ok(body);
        }
        if start.elapsed() > timeout {
            return Err(format!("timed out waiting for campaign {id} (still {st})"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Poll until the campaign completes; errors if it stopped or failed.
pub fn wait_done(addr: &str, id: &str, timeout: Duration) -> Result<String, String> {
    let body = wait_terminal(addr, id, timeout)?;
    match status_field(&body).as_str() {
        "done" => Ok(body),
        other => Err(format!("campaign {id} ended {other}: {body}")),
    }
}

/// Follow the watch stream, handing each status line to `on_line`,
/// until the server closes it (terminal state).
pub fn watch(addr: &str, id: &str, mut on_line: impl FnMut(&str)) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    {
        let mut w = &stream;
        write!(
            w,
            "GET /campaigns/{id}/watch HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n",
        )
        .map_err(|e| format!("send to {addr}: {e}"))?;
    }
    let mut r = BufReader::new(stream);
    let mut line = String::new();
    r.read_line(&mut line).map_err(|e| e.to_string())?;
    if !line.starts_with("HTTP/1.1 200") {
        return Err(format!("watch failed: {}", line.trim()));
    }
    loop {
        line.clear();
        if r.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("watch stream ended inside headers".into());
        }
        if line.trim().is_empty() {
            break;
        }
    }
    loop {
        line.clear();
        if r.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Ok(());
        }
        let l = line.trim();
        if !l.is_empty() {
            on_line(l);
        }
    }
}
