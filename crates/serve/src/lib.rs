//! # fl-serve — the resumable, sharded campaign service
//!
//! `faultlab serve` turns the campaign engine into a long-lived local
//! daemon: clients submit a [`CampaignSpec`](fl_inject::CampaignSpec)
//! as JSON over a TCP socket (a deliberately minimal HTTP/1.1 dialect,
//! no external dependencies), the server shards the trials across the
//! engine's work-stealing worker pool, and per-trial records stream
//! incrementally to an append-only JSONL file that doubles as the
//! campaign's durable state.
//!
//! The resume invariant is the whole point: every trial is
//! deterministic in `(spec, ci, k)`, records are flushed line-by-line,
//! and torn tails are tolerated by the parser — so a server killed at
//! *any* instant and restarted on the same state directory finishes the
//! campaign with a canonical record stream and metrics that are
//! **bit-identical** to an uninterrupted run's. The tests enforce this.
//!
//! * [`server`] — the daemon: socket loop, campaign registry, state
//!   directory, pause/resume/stop, auto-resume on startup.
//! * [`http`] — the hand-rolled HTTP/1.1 reader/writer it speaks.
//! * [`client`] — blocking helpers the CLI verbs (`submit`, `status`,
//!   `watch`, …) and CI smoke tests are built from.

pub mod client;
pub mod http;
pub mod server;

pub use client::{
    control, records, request, status, status_field, submit, wait_done, wait_terminal, watch,
};
pub use server::{campaign_id, ServeConfig, Server};
