//! Semantic analysis: name resolution, type checking, frame layout.
//!
//! Produces a typed program ([`TProgram`]) in which every variable
//! reference is resolved to a *place* (a global symbol or an EBP-relative
//! frame slot) and every expression carries its type, with implicit
//! int↔float conversions made explicit as [`TExprKind::Cast`] nodes.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Semantic errors.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SemaError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError { msg: msg.into() })
}

/// Where a resolved variable lives.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// A global, addressed by symbol name (the linker assigns addresses).
    Global(String),
    /// An EBP-relative slot (negative: locals; positive: parameters).
    Frame(i32),
}

/// A resolved variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSlot {
    /// Element type.
    pub ty: Ty,
    /// Array length if the variable is an array.
    pub len: Option<u32>,
    /// Location.
    pub place: Place,
}

/// Builtin functions, each with a bespoke lowering in codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    PrintStr,
    PrintInt,
    PrintFlt,
    FwriteStr,
    FwriteFlt,
    FwriteBin,
    AbortMsg,
    Assert,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
    FAbs,
    IsNan,
    CastInt,
    CastFloat,
    Addr,
    LoadI,
    LoadF,
    StoreI,
    StoreF,
    Malloc,
    Free,
    MpiInit,
    MpiRank,
    MpiSize,
    MpiSend,
    MpiRecv,
    MpiBarrier,
    MpiBcast,
    MpiReduce,
    MpiAllreduce,
    MpiFinalize,
    MpiAbort,
    MpiErrhandlerSet,
    MpixFailureAck,
    MpixFailureGetAcked,
    MpixAgree,
    MpixShrink,
    CkptSave,
    CkptRestore,
}

impl Builtin {
    /// Parse a builtin name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "print_str" => PrintStr,
            "print_int" => PrintInt,
            "print_flt" => PrintFlt,
            "fwrite_str" => FwriteStr,
            "fwrite_flt" => FwriteFlt,
            "fwrite_bin" => FwriteBin,
            "abort_msg" => AbortMsg,
            "assert" => Assert,
            "sqrt" => Sqrt,
            "sin" => Sin,
            "cos" => Cos,
            "exp" => Exp,
            "ln" => Ln,
            "fabs" => FAbs,
            "isnan" => IsNan,
            "int" => CastInt,
            "float" => CastFloat,
            "addr" => Addr,
            "loadi" => LoadI,
            "loadf" => LoadF,
            "storei" => StoreI,
            "storef" => StoreF,
            "malloc" => Malloc,
            "free" => Free,
            "mpi_init" => MpiInit,
            "mpi_rank" => MpiRank,
            "mpi_size" => MpiSize,
            "mpi_send" => MpiSend,
            "mpi_recv" => MpiRecv,
            "mpi_barrier" => MpiBarrier,
            "mpi_bcast" => MpiBcast,
            "mpi_reduce" => MpiReduce,
            "mpi_allreduce" => MpiAllreduce,
            "mpi_finalize" => MpiFinalize,
            "mpi_abort" => MpiAbort,
            "mpi_errhandler_set" => MpiErrhandlerSet,
            "mpix_comm_failure_ack" => MpixFailureAck,
            "mpix_comm_failure_get_acked" => MpixFailureGetAcked,
            "mpix_comm_agree" => MpixAgree,
            "mpix_comm_shrink" => MpixShrink,
            "fl_ckpt_save" => CkptSave,
            "fl_ckpt_restore" => CkptRestore,
            _ => return None,
        })
    }

    /// (parameter types, return type). `Str` params are encoded as `None`.
    fn signature(self) -> (Vec<Option<Ty>>, Ty) {
        use Builtin::*;
        use Ty::*;
        match self {
            PrintStr | FwriteStr | AbortMsg => (vec![None], Void),
            PrintInt => (vec![Some(Int)], Void),
            PrintFlt | FwriteFlt => (vec![Some(Float), Some(Int)], Void),
            FwriteBin => (vec![Some(Float)], Void),
            Assert => (vec![Some(Int), None], Void),
            Sqrt | Sin | Cos | Exp | Ln | FAbs => (vec![Some(Float)], Float),
            IsNan => (vec![Some(Float)], Int),
            CastInt => (vec![Some(Float)], Int),
            CastFloat => (vec![Some(Int)], Float),
            Addr => (vec![], Int), // checked specially
            LoadI => (vec![Some(Int)], Int),
            LoadF => (vec![Some(Int)], Float),
            StoreI => (vec![Some(Int), Some(Int)], Void),
            StoreF => (vec![Some(Int), Some(Float)], Void),
            Malloc => (vec![Some(Int)], Int),
            Free => (vec![Some(Int)], Void),
            MpiInit | MpiBarrier | MpiFinalize | MpiAbort => (vec![], Void),
            MpiRank | MpiSize => (vec![], Int),
            MpiSend => (vec![Some(Int), Some(Int), Some(Int), Some(Int)], Void),
            MpiRecv => (vec![Some(Int), Some(Int), Some(Int), Some(Int)], Int),
            MpiBcast => (vec![Some(Int), Some(Int), Some(Int)], Void),
            MpiReduce => (vec![Some(Int), Some(Int), Some(Int), Some(Int)], Void),
            MpiAllreduce => (vec![Some(Int), Some(Int), Some(Int)], Void),
            MpiErrhandlerSet => (vec![Some(Int)], Void),
            MpixFailureAck | MpixFailureGetAcked | MpixShrink => (vec![], Int),
            MpixAgree => (vec![Some(Int)], Int),
            CkptSave | CkptRestore => (vec![Some(Int), Some(Int)], Int),
        }
    }

    /// True for the MPI builtins, which compile to *library calls* into
    /// the wrapper functions at 0x40000000 rather than inline code.
    pub fn is_mpi(self) -> bool {
        use Builtin::*;
        matches!(
            self,
            MpiInit
                | MpiRank
                | MpiSize
                | MpiSend
                | MpiRecv
                | MpiBarrier
                | MpiBcast
                | MpiReduce
                | MpiAllreduce
                | MpiFinalize
                | MpiAbort
                | MpiErrhandlerSet
                | MpixFailureAck
                | MpixFailureGetAcked
                | MpixAgree
                | MpixShrink
                | CkptSave
                | CkptRestore
        )
    }
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct TExpr {
    /// Result type.
    pub ty: Ty,
    /// Node.
    pub kind: TExprKind,
}

/// Typed expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TExprKind {
    ConstInt(i32),
    ConstFloat(f64),
    /// String literal (builtin argument only; the linker pools it).
    Str(String),
    /// Scalar variable read.
    Read(VarSlot),
    /// Array element read.
    ReadIndex(VarSlot, Box<TExpr>),
    /// Address of a variable or element.
    AddrOf(VarSlot, Option<Box<TExpr>>),
    Bin(BinOp, Box<TExpr>, Box<TExpr>),
    Un(UnOp, Box<TExpr>),
    /// int→float or float→int conversion.
    Cast(Box<TExpr>),
    /// User function call.
    CallFn {
        name: String,
        args: Vec<TExpr>,
    },
    /// Builtin invocation.
    CallBuiltin {
        b: Builtin,
        args: Vec<TExpr>,
    },
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum TStmt {
    Assign {
        slot: VarSlot,
        value: TExpr,
    },
    AssignIndex {
        slot: VarSlot,
        index: TExpr,
        value: TExpr,
    },
    Expr(TExpr),
    If {
        cond: TExpr,
        then: Vec<TStmt>,
        els: Vec<TStmt>,
    },
    While {
        cond: TExpr,
        body: Vec<TStmt>,
    },
    Return(Option<TExpr>),
}

/// A typed function with its frame layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TFunction {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Frame bytes to reserve below EBP for locals.
    pub frame_size: u32,
    /// Bytes of arguments the caller pushes.
    pub arg_bytes: u32,
    /// Body.
    pub body: Vec<TStmt>,
}

/// Global initialiser values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitVal {
    Int(i32),
    Float(f64),
    /// Array filled deterministically from a seed (the FL analogue of an
    /// initialised Fortran/C table; lives in the data section).
    Seeded(u64),
}

/// A typed global.
#[derive(Debug, Clone, PartialEq)]
pub struct TGlobal {
    /// Symbol name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Array length for arrays.
    pub len: Option<u32>,
    /// Initial value; `None` places the global in BSS.
    pub init: Option<InitVal>,
}

impl TGlobal {
    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.ty.size() * self.len.unwrap_or(1)
    }
}

/// The analyzed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TProgram {
    /// Globals in declaration order.
    pub globals: Vec<TGlobal>,
    /// Functions in declaration order.
    pub functions: Vec<TFunction>,
}

struct FnSig {
    params: Vec<Ty>,
    ret: Ty,
}

struct Analyzer<'a> {
    globals: HashMap<String, (Ty, Option<u32>)>,
    fns: HashMap<String, FnSig>,
    /// Current function's variables.
    vars: HashMap<String, VarSlot>,
    ret: Ty,
    fname: &'a str,
}

impl<'a> Analyzer<'a> {
    fn lookup(&self, name: &str) -> Result<VarSlot, SemaError> {
        if let Some(v) = self.vars.get(name) {
            return Ok(v.clone());
        }
        if let Some(&(ty, len)) = self.globals.get(name) {
            return Ok(VarSlot {
                ty,
                len,
                place: Place::Global(name.to_string()),
            });
        }
        err(format!("{}: unknown variable `{name}`", self.fname))
    }

    fn coerce(&self, e: TExpr, want: Ty) -> Result<TExpr, SemaError> {
        if e.ty == want {
            return Ok(e);
        }
        match (e.ty, want) {
            (Ty::Int, Ty::Float) | (Ty::Float, Ty::Int) => Ok(TExpr {
                ty: want,
                kind: TExprKind::Cast(Box::new(e)),
            }),
            (have, want) => err(format!(
                "{}: type mismatch: have {have:?}, want {want:?}",
                self.fname
            )),
        }
    }

    fn expr(&self, e: &Expr) -> Result<TExpr, SemaError> {
        match e {
            Expr::Int(v) => {
                let v32 = i32::try_from(*v).map_err(|_| SemaError {
                    msg: format!("int literal {v} out of range"),
                })?;
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::ConstInt(v32),
                })
            }
            Expr::Float(v) => Ok(TExpr {
                ty: Ty::Float,
                kind: TExprKind::ConstFloat(*v),
            }),
            Expr::Str(s) => Ok(TExpr {
                ty: Ty::Void,
                kind: TExprKind::Str(s.clone()),
            }),
            Expr::Var(name) => {
                let slot = self.lookup(name)?;
                if slot.len.is_some() {
                    return err(format!(
                        "{}: array `{name}` used as a scalar (index it or take addr())",
                        self.fname
                    ));
                }
                Ok(TExpr {
                    ty: slot.ty,
                    kind: TExprKind::Read(slot),
                })
            }
            Expr::Index(name, idx) => {
                let slot = self.lookup(name)?;
                if slot.len.is_none() {
                    return err(format!("{}: `{name}` is not an array", self.fname));
                }
                let ti = self.coerce(self.expr(idx)?, Ty::Int)?;
                Ok(TExpr {
                    ty: slot.ty,
                    kind: TExprKind::ReadIndex(slot, Box::new(ti)),
                })
            }
            Expr::Un(op, inner) => {
                let ti = self.expr(inner)?;
                match op {
                    UnOp::Neg => {
                        if ti.ty == Ty::Void {
                            return err(format!("{}: negating a void value", self.fname));
                        }
                        Ok(TExpr {
                            ty: ti.ty,
                            kind: TExprKind::Un(UnOp::Neg, Box::new(ti)),
                        })
                    }
                    UnOp::Not => {
                        let ti = self.coerce(ti, Ty::Int)?;
                        Ok(TExpr {
                            ty: Ty::Int,
                            kind: TExprKind::Un(UnOp::Not, Box::new(ti)),
                        })
                    }
                }
            }
            Expr::Bin(op, l, r) => {
                let tl = self.expr(l)?;
                let tr = self.expr(r)?;
                if op.is_logical() {
                    let tl = self.coerce(tl, Ty::Int)?;
                    let tr = self.coerce(tr, Ty::Int)?;
                    return Ok(TExpr {
                        ty: Ty::Int,
                        kind: TExprKind::Bin(*op, Box::new(tl), Box::new(tr)),
                    });
                }
                // Numeric: promote to float if either side is float.
                let common = if tl.ty == Ty::Float || tr.ty == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                if *op == BinOp::Mod && common == Ty::Float {
                    return err(format!("{}: `%` requires integer operands", self.fname));
                }
                let tl = self.coerce(tl, common)?;
                let tr = self.coerce(tr, common)?;
                let ty = if op.is_cmp() { Ty::Int } else { common };
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Bin(*op, Box::new(tl), Box::new(tr)),
                })
            }
            Expr::Call(name, args) => self.call(name, args),
        }
    }

    fn call(&self, name: &str, args: &[Expr]) -> Result<TExpr, SemaError> {
        if let Some(b) = Builtin::from_name(name) {
            // addr(x) / addr(x[i]) need the unresolved lvalue.
            if b == Builtin::Addr {
                if args.len() != 1 {
                    return err(format!("{}: addr() takes exactly one argument", self.fname));
                }
                return match &args[0] {
                    Expr::Var(n) => {
                        let slot = self.lookup(n)?;
                        Ok(TExpr {
                            ty: Ty::Int,
                            kind: TExprKind::AddrOf(slot, None),
                        })
                    }
                    Expr::Index(n, idx) => {
                        let slot = self.lookup(n)?;
                        if slot.len.is_none() {
                            return err(format!("{}: `{n}` is not an array", self.fname));
                        }
                        let ti = self.coerce(self.expr(idx)?, Ty::Int)?;
                        Ok(TExpr {
                            ty: Ty::Int,
                            kind: TExprKind::AddrOf(slot, Some(Box::new(ti))),
                        })
                    }
                    _ => err(format!(
                        "{}: addr() needs a variable or element",
                        self.fname
                    )),
                };
            }
            let (params, ret) = b.signature();
            if args.len() != params.len() {
                return err(format!(
                    "{}: builtin `{name}` expects {} args, got {}",
                    self.fname,
                    params.len(),
                    args.len()
                ));
            }
            let mut targs = Vec::new();
            for (a, p) in args.iter().zip(&params) {
                let ta = self.expr(a)?;
                match p {
                    None => {
                        if !matches!(ta.kind, TExprKind::Str(_)) {
                            return err(format!(
                                "{}: builtin `{name}` expects a string literal here",
                                self.fname
                            ));
                        }
                        targs.push(ta);
                    }
                    Some(want) => targs.push(self.coerce(ta, *want)?),
                }
            }
            return Ok(TExpr {
                ty: ret,
                kind: TExprKind::CallBuiltin { b, args: targs },
            });
        }
        let sig = self.fns.get(name).ok_or_else(|| SemaError {
            msg: format!("{}: unknown function `{name}`", self.fname),
        })?;
        if args.len() != sig.params.len() {
            return err(format!(
                "{}: `{name}` expects {} args, got {}",
                self.fname,
                sig.params.len(),
                args.len()
            ));
        }
        let mut targs = Vec::new();
        for (a, &p) in args.iter().zip(&sig.params) {
            let ta = self.expr(a)?;
            targs.push(self.coerce(ta, p)?);
        }
        Ok(TExpr {
            ty: sig.ret,
            kind: TExprKind::CallFn {
                name: name.to_string(),
                args: targs,
            },
        })
    }

    fn stmts(&self, body: &[Stmt]) -> Result<Vec<TStmt>, SemaError> {
        let mut out = Vec::new();
        for s in body {
            match s {
                Stmt::Var { .. } => {} // hoisted in layout pass
                Stmt::Assign { name, value } => {
                    let slot = self.lookup(name)?;
                    if slot.len.is_some() {
                        return err(format!(
                            "{}: cannot assign whole array `{name}`",
                            self.fname
                        ));
                    }
                    let v = self.coerce(self.expr(value)?, slot.ty)?;
                    out.push(TStmt::Assign { slot, value: v });
                }
                Stmt::AssignIndex { name, index, value } => {
                    let slot = self.lookup(name)?;
                    if slot.len.is_none() {
                        return err(format!("{}: `{name}` is not an array", self.fname));
                    }
                    let ti = self.coerce(self.expr(index)?, Ty::Int)?;
                    let v = self.coerce(self.expr(value)?, slot.ty)?;
                    out.push(TStmt::AssignIndex {
                        slot,
                        index: ti,
                        value: v,
                    });
                }
                Stmt::Expr(e) => {
                    out.push(TStmt::Expr(self.expr(e)?));
                }
                Stmt::If { cond, then, els } => {
                    let c = self.coerce(self.expr(cond)?, Ty::Int)?;
                    out.push(TStmt::If {
                        cond: c,
                        then: self.stmts(then)?,
                        els: self.stmts(els)?,
                    });
                }
                Stmt::While { cond, body } => {
                    let c = self.coerce(self.expr(cond)?, Ty::Int)?;
                    out.push(TStmt::While {
                        cond: c,
                        body: self.stmts(body)?,
                    });
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    // Desugar: init; while (cond) { body; step; }
                    let mut init_t = self.stmts(std::slice::from_ref(init))?;
                    let c = self.coerce(self.expr(cond)?, Ty::Int)?;
                    let mut b = self.stmts(body)?;
                    b.extend(self.stmts(std::slice::from_ref(step))?);
                    out.append(&mut init_t);
                    out.push(TStmt::While { cond: c, body: b });
                }
                Stmt::Return(v) => {
                    let tv = match (v, self.ret) {
                        (None, Ty::Void) => None,
                        (None, other) => {
                            return err(format!(
                                "{}: return without value in {other:?} function",
                                self.fname
                            ))
                        }
                        (Some(_), Ty::Void) => {
                            return err(format!(
                                "{}: return with value in void function",
                                self.fname
                            ))
                        }
                        (Some(e), want) => Some(self.coerce(self.expr(e)?, want)?),
                    };
                    out.push(TStmt::Return(tv));
                }
            }
        }
        Ok(out)
    }
}

/// Recursively collect `var` declarations (FL hoists them to the frame).
fn collect_vars(body: &[Stmt], out: &mut Vec<(String, Ty, Option<u32>)>) {
    for s in body {
        match s {
            Stmt::Var { name, ty, len } => out.push((name.clone(), *ty, *len)),
            Stmt::If { then, els, .. } => {
                collect_vars(then, out);
                collect_vars(els, out);
            }
            Stmt::While { body, .. } => collect_vars(body, out),
            Stmt::For {
                init, step, body, ..
            } => {
                collect_vars(std::slice::from_ref(init), out);
                collect_vars(std::slice::from_ref(step), out);
                collect_vars(body, out);
            }
            _ => {}
        }
    }
}

/// Analyze a parsed program.
pub fn analyze(p: &Program) -> Result<TProgram, SemaError> {
    // Globals.
    let mut globals = Vec::new();
    let mut gmap = HashMap::new();
    for g in p.globals() {
        if gmap.insert(g.name.clone(), (g.ty, g.len)).is_some() {
            return err(format!("duplicate global `{}`", g.name));
        }
        let init = match &g.init {
            None => None,
            Some(Expr::Call(name, args)) if name == "seeded" => {
                if g.len.is_none() {
                    return err(format!("global `{}`: seeded() is for arrays", g.name));
                }
                match args.as_slice() {
                    [Expr::Int(s)] if *s >= 0 => Some(InitVal::Seeded(*s as u64)),
                    _ => return err(format!("global `{}`: seeded(<int>) required", g.name)),
                }
            }
            Some(Expr::Int(v)) => {
                let v32 = i32::try_from(*v).map_err(|_| SemaError {
                    msg: format!("initialiser {v} out of range"),
                })?;
                match g.ty {
                    Ty::Int => Some(InitVal::Int(v32)),
                    Ty::Float => Some(InitVal::Float(v32 as f64)),
                    Ty::Void => unreachable!(),
                }
            }
            Some(Expr::Float(v)) => match g.ty {
                Ty::Float => Some(InitVal::Float(*v)),
                _ => return err(format!("global `{}`: float initialiser for int", g.name)),
            },
            Some(_) => {
                return err(format!(
                    "global `{}`: initialiser must be a literal",
                    g.name
                ))
            }
        };
        globals.push(TGlobal {
            name: g.name.clone(),
            ty: g.ty,
            len: g.len,
            init,
        });
    }

    // Function signatures.
    let mut fns = HashMap::new();
    for f in p.functions() {
        if Builtin::from_name(&f.name).is_some() {
            return err(format!("function `{}` shadows a builtin", f.name));
        }
        let sig = FnSig {
            params: f.params.iter().map(|(_, t)| *t).collect(),
            ret: f.ret,
        };
        if fns.insert(f.name.clone(), sig).is_some() {
            return err(format!("duplicate function `{}`", f.name));
        }
    }

    // Bodies.
    let mut functions = Vec::new();
    for f in p.functions() {
        let mut vars: HashMap<String, VarSlot> = HashMap::new();
        // Parameters: pushed right-to-left, so the first parameter is at
        // EBP+8.
        let mut off = 8i32;
        for (name, ty) in &f.params {
            if vars
                .insert(
                    name.clone(),
                    VarSlot {
                        ty: *ty,
                        len: None,
                        place: Place::Frame(off),
                    },
                )
                .is_some()
            {
                return err(format!("{}: duplicate parameter `{name}`", f.name));
            }
            off += ty.size() as i32;
        }
        let arg_bytes = (off - 8) as u32;
        // Locals: hoisted, 8-byte aligned frame.
        let mut decls = Vec::new();
        collect_vars(&f.body, &mut decls);
        let mut frame = 0u32;
        for (name, ty, len) in decls {
            let size = ty.size() * len.unwrap_or(1);
            frame = (frame + size + (ty.size() - 1)) & !(ty.size() - 1);
            let slot = VarSlot {
                ty,
                len,
                place: Place::Frame(-(frame as i32)),
            };
            if vars.contains_key(&name) {
                return err(format!("{}: duplicate variable `{name}`", f.name));
            }
            vars.insert(name, slot);
        }
        // Real compilers pad and align frames generously (gcc -O0 keeps
        // 16-byte alignment plus spill headroom); the resulting dead
        // bytes are exactly why the paper's stack-fault rate stays at
        // 9-13 % even though every walked frame is live.
        let frame_size = ((frame + 15) & !15) + 32;
        if frame_size >= 2040 {
            // 12-bit displacement limit of Ld/St minus headroom; large
            // buffers belong in globals or on the heap.
            return err(format!(
                "{}: frame of {frame_size} bytes exceeds the 2 KB frame limit",
                f.name
            ));
        }
        let a = Analyzer {
            globals: gmap.clone(),
            fns,
            vars,
            ret: f.ret,
            fname: &f.name,
        };
        let body = a.stmts(&f.body)?;
        fns = a.fns; // move back
        functions.push(TFunction {
            name: f.name.clone(),
            ret: f.ret,
            frame_size,
            arg_bytes,
            body,
        });
    }
    Ok(TProgram { globals, functions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<TProgram, SemaError> {
        analyze(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn globals_data_vs_bss() {
        let p = analyze_src("global int a = 3; global float b; global float c[8];").unwrap();
        assert_eq!(p.globals[0].init, Some(InitVal::Int(3)));
        assert_eq!(p.globals[1].init, None);
        assert_eq!(p.globals[2].size(), 64);
    }

    #[test]
    fn int_literal_promotes_in_float_global() {
        let p = analyze_src("global float x = 2;").unwrap();
        assert_eq!(p.globals[0].init, Some(InitVal::Float(2.0)));
    }

    #[test]
    fn frame_layout_and_params() {
        let p = analyze_src(
            "fn f(int a, float b) -> int { var int x; var float y; var float buf[4]; return a; }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert_eq!(f.arg_bytes, 12);
        // x:4, y:8 (aligned), buf:32 -> frame >= 44, 8-aligned.
        assert!(f.frame_size >= 44);
        assert_eq!(f.frame_size % 8, 0);
    }

    #[test]
    fn implicit_promotion_in_binops() {
        let p = analyze_src("fn f() -> float { var int i; i = 3; return i * 2.5; }").unwrap();
        let TStmt::Return(Some(e)) = &p.functions[0].body.last().unwrap() else {
            panic!()
        };
        assert_eq!(e.ty, Ty::Float);
        let TExprKind::Bin(BinOp::Mul, l, _) = &e.kind else {
            panic!()
        };
        assert!(matches!(l.kind, TExprKind::Cast(_)));
    }

    #[test]
    fn comparisons_yield_int() {
        let p = analyze_src("fn f() -> int { return 1.5 < 2.5; }").unwrap();
        let TStmt::Return(Some(e)) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(e.ty, Ty::Int);
    }

    #[test]
    fn for_desugars_to_while() {
        let p = analyze_src("fn f() { var int i; for (i = 0; i < 3; i = i + 1) { } }").unwrap();
        assert!(matches!(p.functions[0].body[1], TStmt::While { .. }));
    }

    #[test]
    fn errors() {
        assert!(analyze_src("fn f() { x = 1; }").is_err()); // unknown var
        assert!(analyze_src("fn f() { f(1); }").is_err()); // arity
        assert!(analyze_src("fn f() -> int { return; }").is_err());
        assert!(analyze_src("fn f() { return 1; }").is_err());
        assert!(analyze_src("global int a; global int a;").is_err());
        assert!(analyze_src("fn f() {} fn f() {}").is_err());
        assert!(analyze_src("fn sqrt(float x) -> float { return x; }").is_err()); // shadows builtin
        assert!(analyze_src("fn f() { var float a[4]; a = 1.0; }").is_err()); // whole-array assign
        assert!(analyze_src("fn f() { var int i; i = 1.0 % 2.0; }").is_err()); // float mod
        assert!(analyze_src("fn f() { var float big[300]; }").is_err()); // frame limit
    }

    #[test]
    fn builtins_check_string_args() {
        assert!(analyze_src(r#"fn f() { print_str("ok"); }"#).is_ok());
        assert!(analyze_src("fn f() { var int x; x = 1; print_str(x); }").is_err());
        assert!(analyze_src(r#"fn f() { assert(1 < 2, "msg"); }"#).is_ok());
    }

    #[test]
    fn addr_of_global_and_element() {
        let p = analyze_src("global float u[16]; fn f() -> int { return addr(u[3]); }").unwrap();
        let TStmt::Return(Some(e)) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, TExprKind::AddrOf(_, Some(_))));
        assert!(analyze_src("fn f() -> int { return addr(1 + 2); }").is_err());
    }

    #[test]
    fn mpi_builtins_typed() {
        let src = "global float buf[8];
                   fn f() { mpi_init(); mpi_send(addr(buf), 64, 1, 7); mpi_finalize(); }";
        assert!(analyze_src(src).is_ok());
    }

    #[test]
    fn array_as_scalar_rejected() {
        assert!(analyze_src("global int a[4]; fn f() -> int { return a; }").is_err());
        assert!(analyze_src("global int a; fn f() -> int { return a[0]; }").is_err());
    }
}
