//! Code generation: typed AST → per-function assembly with symbolic
//! operands (the linker resolves labels and global symbols).
//!
//! The evaluation strategy is deliberately x86-like and register-poor,
//! because that is what drives the paper's register-sensitivity results:
//!
//! * integer expressions evaluate into **EAX**, spilling the left operand
//!   of a binary through **the machine stack** and reloading into **ECX**;
//!   **EDX** carries addresses for indexed stores. ESP/EBP are live in
//!   every instruction. The handful of general registers therefore hold
//!   live data almost all the time (§6.1.1: 38–63 % manifestation).
//! * float expressions evaluate on the **x87 register stack**, so the
//!   number of live FPU registers equals the expression depth — small in
//!   practice ("the generated x87 FPU instructions generally use only
//!   four of the registers in the stack", §6.1.1). Expressions deeper
//!   than 6 are rejected rather than spilled.

use crate::ast::{BinOp, Ty, UnOp};
use crate::sema::{Builtin, Place, TExpr, TExprKind, TFunction, TGlobal, TProgram, TStmt, VarSlot};
use fl_isa::insn::{AluOp, FpuBinOp, FpuUnOp};
use fl_isa::{Cond, Gpr, Insn, Syscall};

/// One assembly item; symbolic operands are resolved by the linker.
#[derive(Debug, Clone, PartialEq)]
pub enum AItem {
    /// A fully resolved instruction.
    I(Insn),
    /// Definition of a local label.
    Label(u32),
    /// Jump to a local label.
    Jmp(Cond, u32),
    /// Call a function symbol (user function or MPI wrapper).
    CallSym(String),
    /// `rd <- address of symbol + disp`.
    MovSym(Gpr, String, i32),
    /// `rd <- mem32[symbol + disp]`.
    LdSym(Gpr, String, i32),
    /// `mem32[symbol + disp] <- rs`.
    StSym(Gpr, String, i32),
    /// Push f64 at `symbol + disp` onto the FPU stack.
    FldSym(String, i32),
    /// Pop st0 into f64 at `symbol + disp`.
    FstpSym(String, i32),
}

impl AItem {
    /// Encoded size in 32-bit words (fixed per item kind, which lets the
    /// linker lay out code in one pass).
    pub fn words(&self) -> u32 {
        match self {
            AItem::I(i) => i.encoded_words() as u32,
            AItem::Label(_) => 0,
            // J / Call / MovI / LdG / StG / FldG / FstpG all carry an
            // immediate word.
            _ => 2,
        }
    }
}

/// A function's generated code.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmFn {
    /// Symbol name.
    pub name: String,
    /// Assembly items in order.
    pub items: Vec<AItem>,
}

/// A compiled module awaiting linking.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Global variables (layout decided by the linker).
    pub globals: Vec<TGlobal>,
    /// Functions; `main` must be present to link an executable.
    pub functions: Vec<AsmFn>,
    /// Pooled string literals (symbol `$str<i>`).
    pub strings: Vec<String>,
    /// Pooled f64 constants (symbol `$fc<i>`).
    pub fconsts: Vec<u64>,
    /// Initial heap mapping size for the image.
    pub heap_reserve: u32,
}

impl Module {
    fn str_sym(&mut self, s: &str) -> (String, u32) {
        let idx = match self.strings.iter().position(|x| x == s) {
            Some(i) => i,
            None => {
                self.strings.push(s.to_string());
                self.strings.len() - 1
            }
        };
        (format!("$str{idx}"), s.len() as u32)
    }

    fn fconst_sym(&mut self, v: f64) -> String {
        let bits = v.to_bits();
        let idx = match self.fconsts.iter().position(|&x| x == bits) {
            Some(i) => i,
            None => {
                self.fconsts.push(bits);
                self.fconsts.len() - 1
            }
        };
        format!("$fc{idx}")
    }
}

struct Gen<'m> {
    module: &'m mut Module,
    items: Vec<AItem>,
    next_label: u32,
    fname: String,
}

type GResult<T = ()> = Result<T, String>;

impl<'m> Gen<'m> {
    fn label(&mut self) -> u32 {
        self.next_label += 1;
        self.next_label
    }

    fn emit(&mut self, i: Insn) {
        self.items.push(AItem::I(i));
    }

    fn place_label(&mut self, l: u32) {
        self.items.push(AItem::Label(l));
    }

    /// Maximum x87 stack depth an expression needs.
    fn fpu_depth(e: &TExpr) -> u32 {
        let kind_depth = match &e.kind {
            TExprKind::Bin(_, l, r) => Self::fpu_depth(l).max(1 + Self::fpu_depth(r)),
            TExprKind::Un(_, x) | TExprKind::Cast(x) => Self::fpu_depth(x),
            TExprKind::ReadIndex(_, idx) => Self::fpu_depth(idx).max(1),
            TExprKind::CallFn { args, .. } | TExprKind::CallBuiltin { args, .. } => {
                // Arguments are flushed to the machine stack before the
                // call, so only one argument's depth is live at a time;
                // IsNan needs one extra slot for the duplicate.
                args.iter().map(Self::fpu_depth).max().unwrap_or(0).max(1)
                    + u32::from(matches!(
                        &e.kind,
                        TExprKind::CallBuiltin {
                            b: Builtin::IsNan,
                            ..
                        }
                    ))
            }
            _ => u32::from(e.ty == Ty::Float),
        };
        kind_depth.max(u32::from(e.ty == Ty::Float))
    }

    /// Evaluate an expression: int results land in EAX, float results on
    /// st0.
    fn eval(&mut self, e: &TExpr) -> GResult {
        if e.ty == Ty::Float && Self::fpu_depth(e) > 6 {
            return Err(format!(
                "{}: float expression too deep for the x87 stack (max 6)",
                self.fname
            ));
        }
        self.eval_inner(e)
    }

    fn eval_inner(&mut self, e: &TExpr) -> GResult {
        match &e.kind {
            TExprKind::ConstInt(v) => {
                self.emit(Insn::MovI {
                    rd: Gpr::Eax,
                    imm: *v as u32,
                });
            }
            TExprKind::ConstFloat(v) => {
                if *v == 0.0 && v.is_sign_positive() {
                    self.emit(Insn::Fldz);
                } else if *v == 1.0 {
                    self.emit(Insn::Fld1);
                } else {
                    let sym = self.module.fconst_sym(*v);
                    self.items.push(AItem::FldSym(sym, 0));
                }
            }
            TExprKind::Str(_) => return Err(format!("{}: stray string literal", self.fname)),
            TExprKind::Read(slot) => match (&slot.place, slot.ty) {
                (Place::Frame(off), Ty::Int) => self.emit(Insn::Ld {
                    rd: Gpr::Eax,
                    base: Gpr::Ebp,
                    off: *off,
                }),
                (Place::Frame(off), Ty::Float) => self.emit(Insn::Fld {
                    base: Gpr::Ebp,
                    off: *off,
                }),
                (Place::Global(name), Ty::Int) => {
                    self.items.push(AItem::LdSym(Gpr::Eax, name.clone(), 0))
                }
                (Place::Global(name), Ty::Float) => self.items.push(AItem::FldSym(name.clone(), 0)),
                _ => return Err(format!("{}: void variable read", self.fname)),
            },
            TExprKind::ReadIndex(slot, idx) => {
                self.element_addr(slot, idx)?; // address in EDX
                match slot.ty {
                    Ty::Int => self.emit(Insn::Ld {
                        rd: Gpr::Eax,
                        base: Gpr::Edx,
                        off: 0,
                    }),
                    Ty::Float => self.emit(Insn::Fld {
                        base: Gpr::Edx,
                        off: 0,
                    }),
                    Ty::Void => return Err(format!("{}: void element", self.fname)),
                }
            }
            TExprKind::AddrOf(slot, idx) => match idx {
                None => self.addr_of_base(slot),
                Some(i) => {
                    self.element_addr(slot, i)?;
                    self.emit(Insn::Mov {
                        rd: Gpr::Eax,
                        rs: Gpr::Edx,
                    });
                }
            },
            TExprKind::Un(UnOp::Neg, x) => {
                self.eval_inner(x)?;
                match x.ty {
                    Ty::Int => {
                        self.emit(Insn::MovI {
                            rd: Gpr::Ecx,
                            imm: 0,
                        });
                        self.emit(Insn::Alu {
                            op: AluOp::Sub,
                            rd: Gpr::Eax,
                            ra: Gpr::Ecx,
                            rb: Gpr::Eax,
                        });
                    }
                    Ty::Float => self.emit(Insn::Funop { op: FpuUnOp::Chs }),
                    Ty::Void => return Err(format!("{}: negating void", self.fname)),
                }
            }
            TExprKind::Un(UnOp::Not, x) => {
                self.eval_inner(x)?;
                // eax = (eax == 0)
                self.emit(Insn::CmpI {
                    ra: Gpr::Eax,
                    imm: 0,
                });
                self.bool_from_cond(Cond::Eq);
            }
            TExprKind::Cast(x) => {
                self.eval_inner(x)?;
                match (x.ty, e.ty) {
                    (Ty::Int, Ty::Float) => self.emit(Insn::FildR { rs: Gpr::Eax }),
                    (Ty::Float, Ty::Int) => self.emit(Insn::FistpR { rd: Gpr::Eax }),
                    other => return Err(format!("{}: bad cast {other:?}", self.fname)),
                }
            }
            TExprKind::Bin(op, l, r) => self.bin(*op, l, r)?,
            TExprKind::CallFn { name, args } => {
                let bytes = self.push_args(args)?;
                self.items.push(AItem::CallSym(name.clone()));
                self.drop_args(bytes);
            }
            TExprKind::CallBuiltin { b, args } => self.builtin(*b, args)?,
        }
        Ok(())
    }

    /// Leave `&slot` in EAX (scalars / array base).
    fn addr_of_base(&mut self, slot: &VarSlot) {
        match &slot.place {
            Place::Frame(off) => {
                self.emit(Insn::Mov {
                    rd: Gpr::Eax,
                    rs: Gpr::Ebp,
                });
                self.emit(Insn::AddI {
                    rd: Gpr::Eax,
                    ra: Gpr::Eax,
                    imm: *off as u32,
                });
            }
            Place::Global(name) => self.items.push(AItem::MovSym(Gpr::Eax, name.clone(), 0)),
        }
    }

    /// Compute the address of `slot[idx]` into EDX (clobbers EAX/ECX).
    fn element_addr(&mut self, slot: &VarSlot, idx: &TExpr) -> GResult {
        self.eval_inner(idx)?;
        let esz = slot.ty.size();
        self.emit(Insn::MulI {
            rd: Gpr::Eax,
            ra: Gpr::Eax,
            imm: esz,
        });
        match &slot.place {
            Place::Frame(off) => {
                self.emit(Insn::Mov {
                    rd: Gpr::Edx,
                    rs: Gpr::Ebp,
                });
                self.emit(Insn::AddI {
                    rd: Gpr::Edx,
                    ra: Gpr::Edx,
                    imm: *off as u32,
                });
                self.emit(Insn::Alu {
                    op: AluOp::Add,
                    rd: Gpr::Edx,
                    ra: Gpr::Edx,
                    rb: Gpr::Eax,
                });
            }
            Place::Global(name) => {
                self.items.push(AItem::MovSym(Gpr::Edx, name.clone(), 0));
                self.emit(Insn::Alu {
                    op: AluOp::Add,
                    rd: Gpr::Edx,
                    ra: Gpr::Edx,
                    rb: Gpr::Eax,
                });
            }
        }
        Ok(())
    }

    /// Materialise EAX = 1 if `cond` holds else 0 (flags already set).
    fn bool_from_cond(&mut self, cond: Cond) {
        let lt = self.label();
        let le = self.label();
        self.items.push(AItem::Jmp(cond, lt));
        self.emit(Insn::MovI {
            rd: Gpr::Eax,
            imm: 0,
        });
        self.items.push(AItem::Jmp(Cond::Always, le));
        self.place_label(lt);
        self.emit(Insn::MovI {
            rd: Gpr::Eax,
            imm: 1,
        });
        self.place_label(le);
    }

    fn bin(&mut self, op: BinOp, l: &TExpr, r: &TExpr) -> GResult {
        if op.is_logical() {
            let lfalse = self.label();
            let ltrue = self.label();
            let lend = self.label();
            self.eval_inner(l)?;
            self.emit(Insn::CmpI {
                ra: Gpr::Eax,
                imm: 0,
            });
            match op {
                BinOp::And => self.items.push(AItem::Jmp(Cond::Eq, lfalse)),
                BinOp::Or => self.items.push(AItem::Jmp(Cond::Ne, ltrue)),
                _ => unreachable!(),
            }
            self.eval_inner(r)?;
            self.emit(Insn::CmpI {
                ra: Gpr::Eax,
                imm: 0,
            });
            self.items.push(AItem::Jmp(Cond::Eq, lfalse));
            self.place_label(ltrue);
            self.emit(Insn::MovI {
                rd: Gpr::Eax,
                imm: 1,
            });
            self.items.push(AItem::Jmp(Cond::Always, lend));
            self.place_label(lfalse);
            self.emit(Insn::MovI {
                rd: Gpr::Eax,
                imm: 0,
            });
            self.place_label(lend);
            return Ok(());
        }
        let operand_ty = l.ty;
        match operand_ty {
            Ty::Int => {
                self.eval_inner(l)?;
                self.emit(Insn::Push { rs: Gpr::Eax });
                self.eval_inner(r)?;
                self.emit(Insn::Pop { rd: Gpr::Ecx });
                if op.is_cmp() {
                    self.emit(Insn::Cmp {
                        ra: Gpr::Ecx,
                        rb: Gpr::Eax,
                    });
                    let cond = match op {
                        BinOp::Eq => Cond::Eq,
                        BinOp::Ne => Cond::Ne,
                        BinOp::Lt => Cond::Lt,
                        BinOp::Le => Cond::Le,
                        BinOp::Gt => Cond::Gt,
                        BinOp::Ge => Cond::Ge,
                        _ => unreachable!(),
                    };
                    self.bool_from_cond(cond);
                } else {
                    let alu = match op {
                        BinOp::Add => AluOp::Add,
                        BinOp::Sub => AluOp::Sub,
                        BinOp::Mul => AluOp::Mul,
                        BinOp::Div => AluOp::Div,
                        BinOp::Mod => AluOp::Mod,
                        _ => unreachable!(),
                    };
                    self.emit(Insn::Alu {
                        op: alu,
                        rd: Gpr::Eax,
                        ra: Gpr::Ecx,
                        rb: Gpr::Eax,
                    });
                }
            }
            Ty::Float => {
                self.eval_inner(l)?; // st0 = l
                self.eval_inner(r)?; // st0 = r, st1 = l
                if op.is_cmp() {
                    // FCOMIP compares st0 (r) with st1 (l): CF = r < l.
                    self.emit(Insn::Fcomip);
                    self.emit(Insn::Fpop); // discard l
                    let cond = match op {
                        BinOp::Eq => Cond::Eq,
                        BinOp::Ne => Cond::Ne,
                        BinOp::Lt => Cond::A,  // l < r  <=>  r > l
                        BinOp::Le => Cond::Ae, // l <= r <=> !(r < l)
                        BinOp::Gt => Cond::B,  // l > r  <=>  r < l
                        BinOp::Ge => Cond::Be,
                        _ => unreachable!(),
                    };
                    self.bool_from_cond(cond);
                } else {
                    let f = match op {
                        BinOp::Add => FpuBinOp::Add,
                        BinOp::Sub => FpuBinOp::Sub, // st1 - st0 = l - r
                        BinOp::Mul => FpuBinOp::Mul,
                        BinOp::Div => FpuBinOp::Div, // st1 / st0 = l / r
                        _ => unreachable!(),
                    };
                    self.emit(Insn::Fbinp { op: f });
                }
            }
            Ty::Void => return Err(format!("{}: void operand", self.fname)),
        }
        Ok(())
    }

    /// Push call arguments right-to-left; returns bytes pushed.
    fn push_args(&mut self, args: &[TExpr]) -> GResult<u32> {
        let mut bytes = 0;
        for a in args.iter().rev() {
            match a.ty {
                Ty::Int => {
                    self.eval_inner(a)?;
                    self.emit(Insn::Push { rs: Gpr::Eax });
                    bytes += 4;
                }
                Ty::Float => {
                    self.eval_inner(a)?;
                    self.emit(Insn::AddI {
                        rd: Gpr::Esp,
                        ra: Gpr::Esp,
                        imm: (-8i32) as u32,
                    });
                    self.emit(Insn::Fstp {
                        base: Gpr::Esp,
                        off: 0,
                    });
                    bytes += 8;
                }
                Ty::Void => return Err(format!("{}: void argument", self.fname)),
            }
        }
        Ok(bytes)
    }

    fn drop_args(&mut self, bytes: u32) {
        if bytes > 0 {
            self.emit(Insn::AddI {
                rd: Gpr::Esp,
                ra: Gpr::Esp,
                imm: bytes,
            });
        }
    }

    fn sys(&mut self, s: Syscall) {
        self.emit(Insn::Sys { num: s as u16 });
    }

    fn builtin(&mut self, b: Builtin, args: &[TExpr]) -> GResult {
        use Builtin::*;
        if b.is_mpi() {
            // MPI builtins call the wrapper library at 0x40000000 so the
            // call shows up as a real cross-library frame.
            let sym = match b {
                MpiInit => "MPI_Init",
                MpiRank => "MPI_Comm_rank",
                MpiSize => "MPI_Comm_size",
                MpiSend => "MPI_Send",
                MpiRecv => "MPI_Recv",
                MpiBarrier => "MPI_Barrier",
                MpiBcast => "MPI_Bcast",
                MpiReduce => "MPI_Reduce",
                MpiAllreduce => "MPI_Allreduce",
                MpiFinalize => "MPI_Finalize",
                MpiAbort => "MPI_Abort",
                MpiErrhandlerSet => "MPI_Errhandler_set",
                MpixFailureAck => "MPIX_Comm_failure_ack",
                MpixFailureGetAcked => "MPIX_Comm_failure_get_acked",
                MpixAgree => "MPIX_Comm_agree",
                MpixShrink => "MPIX_Comm_shrink",
                CkptSave => "FL_ckpt_save",
                CkptRestore => "FL_ckpt_restore",
                _ => unreachable!(),
            };
            let bytes = self.push_args(args)?;
            self.items.push(AItem::CallSym(sym.to_string()));
            self.drop_args(bytes);
            return Ok(());
        }
        match b {
            PrintStr | FwriteStr | AbortMsg => {
                let TExprKind::Str(s) = &args[0].kind else {
                    return Err(format!("{}: expected string literal", self.fname));
                };
                let (sym, len) = self.module.str_sym(s);
                self.items.push(AItem::MovSym(Gpr::Eax, sym, 0));
                self.emit(Insn::MovI {
                    rd: Gpr::Ecx,
                    imm: len,
                });
                self.sys(match b {
                    PrintStr => Syscall::PrintStr,
                    FwriteStr => Syscall::FileWrite,
                    _ => Syscall::AbortMsg,
                });
            }
            PrintInt => {
                self.eval_inner(&args[0])?;
                self.sys(Syscall::PrintInt);
            }
            PrintFlt | FwriteFlt => {
                // digits first (int, into ECX via stack), then the value.
                self.eval_inner(&args[1])?;
                self.emit(Insn::Push { rs: Gpr::Eax });
                self.eval_inner(&args[0])?;
                self.emit(Insn::Pop { rd: Gpr::Ecx });
                self.sys(if b == PrintFlt {
                    Syscall::PrintFlt
                } else {
                    Syscall::FileWriteFlt
                });
            }
            FwriteBin => {
                self.eval_inner(&args[0])?;
                self.sys(Syscall::FileWriteBin);
            }
            Assert => {
                let TExprKind::Str(s) = &args[1].kind else {
                    return Err(format!("{}: assert needs a string literal", self.fname));
                };
                let (sym, len) = self.module.str_sym(s);
                self.eval_inner(&args[0])?;
                self.emit(Insn::CmpI {
                    ra: Gpr::Eax,
                    imm: 0,
                });
                let lok = self.label();
                self.items.push(AItem::Jmp(Cond::Ne, lok));
                self.items.push(AItem::MovSym(Gpr::Eax, sym, 0));
                self.emit(Insn::MovI {
                    rd: Gpr::Ecx,
                    imm: len,
                });
                self.sys(Syscall::AbortMsg);
                self.place_label(lok);
            }
            Sqrt | Sin | Cos | Exp | Ln | FAbs => {
                self.eval_inner(&args[0])?;
                let op = match b {
                    Sqrt => FpuUnOp::Sqrt,
                    Sin => FpuUnOp::Sin,
                    Cos => FpuUnOp::Cos,
                    Exp => FpuUnOp::Exp,
                    Ln => FpuUnOp::Ln,
                    _ => FpuUnOp::Abs,
                };
                self.emit(Insn::Funop { op });
            }
            IsNan => {
                // x != x: duplicate st0, compare with itself.
                self.eval_inner(&args[0])?;
                self.emit(Insn::FldSt { i: 0 });
                self.emit(Insn::Fcomip); // pops copy; unordered sets ZF+CF
                self.emit(Insn::Fpop); // discard original
                self.bool_from_cond(Cond::B); // CF only set when unordered
            }
            CastInt => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::FistpR { rd: Gpr::Eax });
            }
            CastFloat => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::FildR { rs: Gpr::Eax });
            }
            LoadI => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::Ld {
                    rd: Gpr::Eax,
                    base: Gpr::Eax,
                    off: 0,
                });
            }
            LoadF => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::Fld {
                    base: Gpr::Eax,
                    off: 0,
                });
            }
            StoreI => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::Push { rs: Gpr::Eax });
                self.eval_inner(&args[1])?;
                self.emit(Insn::Pop { rd: Gpr::Edx });
                self.emit(Insn::St {
                    rb: Gpr::Eax,
                    base: Gpr::Edx,
                    off: 0,
                });
            }
            StoreF => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::Push { rs: Gpr::Eax });
                self.eval_inner(&args[1])?;
                self.emit(Insn::Pop { rd: Gpr::Edx });
                self.emit(Insn::Fstp {
                    base: Gpr::Edx,
                    off: 0,
                });
            }
            Malloc => {
                self.eval_inner(&args[0])?;
                self.emit(Insn::Mov {
                    rd: Gpr::Ecx,
                    rs: Gpr::Eax,
                });
                self.sys(Syscall::Malloc);
            }
            Free => {
                self.eval_inner(&args[0])?;
                self.sys(Syscall::Free);
            }
            Addr => unreachable!("addr() is resolved to AddrOf in sema"),
            _ => unreachable!("MPI handled above"),
        }
        Ok(())
    }

    /// Discard an unused expression result (for expression statements).
    fn discard(&mut self, ty: Ty) {
        if ty == Ty::Float {
            self.emit(Insn::Fpop);
        }
    }

    fn stmt(&mut self, s: &TStmt, epilogue: u32) -> GResult {
        match s {
            TStmt::Assign { slot, value } => {
                self.eval(value)?;
                match (&slot.place, slot.ty) {
                    (Place::Frame(off), Ty::Int) => self.emit(Insn::St {
                        rb: Gpr::Eax,
                        base: Gpr::Ebp,
                        off: *off,
                    }),
                    (Place::Frame(off), Ty::Float) => self.emit(Insn::Fstp {
                        base: Gpr::Ebp,
                        off: *off,
                    }),
                    (Place::Global(n), Ty::Int) => {
                        self.items.push(AItem::StSym(Gpr::Eax, n.clone(), 0))
                    }
                    (Place::Global(n), Ty::Float) => self.items.push(AItem::FstpSym(n.clone(), 0)),
                    _ => return Err(format!("{}: void assignment", self.fname)),
                }
            }
            TStmt::AssignIndex { slot, index, value } => {
                // Address first (EDX), saved across the value evaluation.
                self.element_addr(slot, index)?;
                self.emit(Insn::Push { rs: Gpr::Edx });
                self.eval(value)?;
                self.emit(Insn::Pop { rd: Gpr::Edx });
                match slot.ty {
                    Ty::Int => self.emit(Insn::St {
                        rb: Gpr::Eax,
                        base: Gpr::Edx,
                        off: 0,
                    }),
                    Ty::Float => self.emit(Insn::Fstp {
                        base: Gpr::Edx,
                        off: 0,
                    }),
                    Ty::Void => return Err(format!("{}: void element", self.fname)),
                }
            }
            TStmt::Expr(e) => {
                self.eval(e)?;
                self.discard(e.ty);
            }
            TStmt::If { cond, then, els } => {
                let lelse = self.label();
                let lend = self.label();
                self.eval(cond)?;
                self.emit(Insn::CmpI {
                    ra: Gpr::Eax,
                    imm: 0,
                });
                self.items.push(AItem::Jmp(Cond::Eq, lelse));
                for s in then {
                    self.stmt(s, epilogue)?;
                }
                self.items.push(AItem::Jmp(Cond::Always, lend));
                self.place_label(lelse);
                for s in els {
                    self.stmt(s, epilogue)?;
                }
                self.place_label(lend);
            }
            TStmt::While { cond, body } => {
                let ltop = self.label();
                let lend = self.label();
                self.place_label(ltop);
                self.eval(cond)?;
                self.emit(Insn::CmpI {
                    ra: Gpr::Eax,
                    imm: 0,
                });
                self.items.push(AItem::Jmp(Cond::Eq, lend));
                for s in body {
                    self.stmt(s, epilogue)?;
                }
                self.items.push(AItem::Jmp(Cond::Always, ltop));
                self.place_label(lend);
            }
            TStmt::Return(v) => {
                if let Some(e) = v {
                    self.eval(e)?;
                }
                self.items.push(AItem::Jmp(Cond::Always, epilogue));
            }
        }
        Ok(())
    }
}

/// Compilation options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Instrument every function with **control-flow signature checking**
    /// — the software-signature technique of Oh/Shirvani/McCluskey that
    /// §8.2 of the paper cites as a defence against text-region faults.
    ///
    /// Each function's prologue deposits a per-function signature
    /// constant in a dedicated frame slot; the epilogue verifies it and
    /// aborts ("control flow signature mismatch", an App-Detected
    /// outcome) when execution arrived without passing the prologue —
    /// e.g. after an EIP upset or a corrupted return address landed
    /// mid-function.
    pub control_flow_checks: bool,
}

/// Per-function signature constant for control-flow checking: a
/// deterministic non-trivial hash of the name.
fn cfc_signature(name: &str) -> u32 {
    let mut h = 0x811C_9DC5u32; // FNV-1a
    for b in name.bytes() {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h | 1 // never zero
}

/// Generate assembly for a whole program.
pub fn emit(p: &TProgram) -> Result<Module, String> {
    emit_with(p, &CompileOptions::default())
}

/// Generate assembly with explicit options.
pub fn emit_with(p: &TProgram, opts: &CompileOptions) -> Result<Module, String> {
    let mut module = Module {
        globals: p.globals.clone(),
        heap_reserve: 64 * 1024,
        ..Default::default()
    };
    let mut functions = Vec::new();
    for f in &p.functions {
        functions.push(emit_fn(&mut module, f, opts)?);
    }
    module.functions = functions;
    Ok(module)
}

fn emit_fn(module: &mut Module, f: &TFunction, opts: &CompileOptions) -> Result<AsmFn, String> {
    let mut g = Gen {
        module,
        items: Vec::new(),
        next_label: 0,
        fname: f.name.clone(),
    };
    let epilogue = g.label();
    // The CFC slot sits below the locals in an enlarged frame.
    let frame = if opts.control_flow_checks {
        f.frame_size + 8
    } else {
        f.frame_size
    };
    let cfc_off = -((f.frame_size + 8) as i32);
    g.emit(Insn::Enter { frame });
    if opts.control_flow_checks {
        let sig = cfc_signature(&f.name);
        g.emit(Insn::MovI {
            rd: Gpr::Eax,
            imm: sig,
        });
        g.emit(Insn::St {
            rb: Gpr::Eax,
            base: Gpr::Ebp,
            off: cfc_off,
        });
    }
    for s in &f.body {
        g.stmt(s, epilogue)?;
    }
    // Fall-through default return value.
    match f.ret {
        Ty::Int => g.emit(Insn::MovI {
            rd: Gpr::Eax,
            imm: 0,
        }),
        Ty::Float => g.emit(Insn::Fldz),
        Ty::Void => {}
    }
    g.place_label(epilogue);
    if opts.control_flow_checks {
        let sig = cfc_signature(&f.name);
        let lok = g.label();
        // Verify the signature without clobbering the return value in
        // EAX/st0: ECX is dead at the epilogue.
        g.emit(Insn::Ld {
            rd: Gpr::Ecx,
            base: Gpr::Ebp,
            off: cfc_off,
        });
        g.emit(Insn::CmpI {
            ra: Gpr::Ecx,
            imm: sig,
        });
        g.items.push(AItem::Jmp(Cond::Eq, lok));
        let (sym, len) = g.module.str_sym("control flow signature mismatch");
        g.items.push(AItem::MovSym(Gpr::Eax, sym, 0));
        g.emit(Insn::MovI {
            rd: Gpr::Ecx,
            imm: len,
        });
        g.emit(Insn::Sys {
            num: fl_isa::Syscall::AbortMsg as u16,
        });
        g.place_label(lok);
    }
    g.emit(Insn::Leave);
    g.emit(Insn::Ret);
    Ok(AsmFn {
        name: f.name.clone(),
        items: g.items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn gen(src: &str) -> Module {
        emit(&analyze(&parse(&lex(src).unwrap()).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn simple_function_has_frame() {
        let m = gen("fn main() { var int x; x = 1; }");
        let f = &m.functions[0];
        assert!(matches!(f.items[0], AItem::I(Insn::Enter { .. })));
        assert!(f.items.iter().any(|i| matches!(i, AItem::I(Insn::Leave))));
        assert!(matches!(f.items.last(), Some(AItem::I(Insn::Ret))));
    }

    #[test]
    fn string_and_fconst_pooling() {
        let m = gen(
            r#"fn main() { print_str("a"); print_str("a"); print_str("b");
                var float x; x = 3.5; x = 3.5; x = 0.0; x = 1.0; }"#,
        );
        assert_eq!(m.strings, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.fconsts, vec![3.5f64.to_bits()]); // 0.0/1.0 use fldz/fld1
    }

    #[test]
    fn float_depth_limit_enforced() {
        // A deliberately deep right-leaning float expression.
        let mut e = String::from("1.5");
        for _ in 0..8 {
            e = format!("2.5 * ({e} + 3.5)");
        }
        let src = format!("fn main() {{ var float x; x = {e}; }}");
        let toks = lex(&src).unwrap();
        let prog = analyze(&parse(&toks).unwrap()).unwrap();
        assert!(emit(&prog).is_err());
    }

    #[test]
    fn mpi_builtin_becomes_library_call() {
        let m = gen("fn main() { mpi_init(); mpi_barrier(); mpi_finalize(); }");
        let calls: Vec<_> = m.functions[0]
            .items
            .iter()
            .filter_map(|i| match i {
                AItem::CallSym(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, ["MPI_Init", "MPI_Barrier", "MPI_Finalize"]);
    }

    #[test]
    fn item_sizes_are_static() {
        let m = gen("global float u[4]; fn main() { u[1] = u[0] * 2.5; }");
        for item in &m.functions[0].items {
            match item {
                AItem::Label(_) => assert_eq!(item.words(), 0),
                AItem::I(i) => assert_eq!(item.words(), i.encoded_words() as u32),
                _ => assert_eq!(item.words(), 2),
            }
        }
    }

    #[test]
    fn unused_float_call_result_is_popped() {
        let m = gen("fn f() -> float { return 1.0; } fn main() { f(); }");
        let main = m.functions.iter().find(|f| f.name == "main").unwrap();
        assert!(main.items.iter().any(|i| matches!(i, AItem::I(Insn::Fpop))));
    }
}
