//! Recursive-descent parser for FL.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use std::fmt;

/// Syntax errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind) -> PResult<()> {
        if self.eat(k) {
            Ok(())
        } else {
            self.err(format!("expected {k:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn ty(&mut self) -> PResult<Ty> {
        match self.bump() {
            TokenKind::KwInt => Ok(Ty::Int),
            TokenKind::KwFloat => Ok(Ty::Float),
            other => self.err(format!("expected type, found {other:?}")),
        }
    }

    // --- items ----------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwGlobal => items.push(Item::Global(self.global()?)),
                TokenKind::KwFn => items.push(Item::Fn(self.function()?)),
                other => return self.err(format!("expected item, found {other:?}")),
            }
        }
        Ok(Program { items })
    }

    fn global(&mut self) -> PResult<Global> {
        self.expect(&TokenKind::KwGlobal)?;
        let ty = self.ty()?;
        let name = self.ident()?;
        let len = if self.eat(&TokenKind::LBracket) {
            let n = match self.bump() {
                TokenKind::Int(v) if v > 0 => v as u32,
                other => return self.err(format!("expected array length, found {other:?}")),
            };
            self.expect(&TokenKind::RBracket)?;
            Some(n)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Assign) {
            let e = self.expr()?;
            // Arrays accept only `seeded(<int>)` — the FL equivalent of a
            // Fortran DATA statement / C initialised table; the linker
            // fills the data-section bytes deterministically.
            if len.is_some()
                && !matches!(&e, Expr::Call(n, args) if n == "seeded" && args.len() == 1)
            {
                return self.err("array globals only accept a `seeded(<int>)` initialiser");
            }
            Some(e)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Global {
            name,
            ty,
            len,
            init,
        })
    }

    fn function(&mut self) -> PResult<FnDecl> {
        self.expect(&TokenKind::KwFn)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.ty()?;
                let pname = self.ident()?;
                params.push((pname, ty));
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        let ret = if self.eat(&TokenKind::Arrow) {
            self.ty()?
        } else {
            Ty::Void
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
        })
    }

    // --- statements -------------------------------------------------------

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err("unterminated block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek().clone() {
            TokenKind::KwVar => {
                self.bump();
                let ty = self.ty()?;
                let name = self.ident()?;
                let len = if self.eat(&TokenKind::LBracket) {
                    let n = match self.bump() {
                        TokenKind::Int(v) if v > 0 => v as u32,
                        other => {
                            return self.err(format!("expected array length, found {other:?}"))
                        }
                    };
                    self.expect(&TokenKind::RBracket)?;
                    Some(n)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Var { name, ty, len })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then = self.block()?;
                let els = if self.eat(&TokenKind::KwElse) {
                    if matches!(self.peek(), TokenKind::KwIf) {
                        vec![self.stmt()?] // else-if chain
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = Box::new(self.simple_stmt()?);
                self.expect(&TokenKind::Semi)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                let step = Box::new(self.simple_stmt()?);
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(value))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment or expression statement (no trailing semicolon).
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        // Lookahead: Ident '=' / Ident '[' expr ']' '=' are assignments.
        if let TokenKind::Ident(name) = self.peek().clone() {
            let save = self.pos;
            self.bump();
            if self.eat(&TokenKind::Assign) {
                let value = self.expr()?;
                return Ok(Stmt::Assign { name, value });
            }
            if self.eat(&TokenKind::LBracket) {
                let index = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                if self.eat(&TokenKind::Assign) {
                    let value = self.expr()?;
                    return Ok(Stmt::AssignIndex { name, index, value });
                }
            }
            self.pos = save;
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    // --- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let r = self.and_expr()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut e = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let r = self.cmp_expr()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.add_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                // Fold literal negation so "-5" is a literal.
                Ok(match e {
                    Expr::Int(v) => Expr::Int(-v),
                    Expr::Float(v) => Expr::Float(-v),
                    other => Expr::Un(UnOp::Neg, Box::new(other)),
                })
            }
            TokenKind::Not => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Not, Box::new(e)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> PResult<Expr> {
        // `int(...)` and `float(...)` are cast calls even though `int` and
        // `float` are keywords.
        if matches!(self.peek(), TokenKind::KwInt | TokenKind::KwFloat) {
            let name = if matches!(self.peek(), TokenKind::KwInt) {
                "int"
            } else {
                "float"
            };
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Call(name.to_string(), vec![e]));
        }
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat(&TokenKind::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                msg: format!("expected expression, found {other:?}"),
                line,
            }),
        }
    }
}

/// Parse a token stream into a program.
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn globals() {
        let p = parse_src("global int n = 100; global float u[64]; global float c = 0.5;");
        let g: Vec<_> = p.globals().collect();
        assert_eq!(g.len(), 3);
        assert_eq!(g[0].init, Some(Expr::Int(100)));
        assert_eq!(g[1].len, Some(64));
        assert_eq!(g[2].ty, Ty::Float);
    }

    #[test]
    fn function_with_params_and_return() {
        let p = parse_src("fn f(int a, float b) -> float { return b; }");
        let f = p.functions().next().unwrap();
        assert_eq!(
            f.params,
            vec![("a".into(), Ty::Int), ("b".into(), Ty::Float)]
        );
        assert_eq!(f.ret, Ty::Float);
        assert_eq!(f.body, vec![Stmt::Return(Some(Expr::Var("b".into())))]);
    }

    #[test]
    fn precedence() {
        let p = parse_src("fn m() { x = 1 + 2 * 3; }");
        let Stmt::Assign { value, .. } = &p.functions().next().unwrap().body[0] else {
            panic!()
        };
        // 1 + (2*3)
        assert_eq!(
            *value,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Int(2)),
                    Box::new(Expr::Int(3))
                ))
            )
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let p = parse_src("fn m() { if (a < b && c != 0) { x = 1; } else { x = 2; } }");
        let Stmt::If { cond, then, els } = &p.functions().next().unwrap().body[0] else {
            panic!()
        };
        assert!(matches!(cond, Expr::Bin(BinOp::And, _, _)));
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
    }

    #[test]
    fn else_if_chain() {
        let p = parse_src("fn m() { if (a) { } else if (b) { x = 1; } else { x = 2; } }");
        let Stmt::If { els, .. } = &p.functions().next().unwrap().body[0] else {
            panic!()
        };
        assert!(matches!(&els[0], Stmt::If { .. }));
    }

    #[test]
    fn for_loop() {
        let p = parse_src("fn m() { for (i = 0; i < 10; i = i + 1) { s = s + i; } }");
        let Stmt::For {
            init,
            cond,
            step,
            body,
        } = &p.functions().next().unwrap().body[0]
        else {
            panic!()
        };
        assert!(matches!(**init, Stmt::Assign { .. }));
        assert!(matches!(cond, Expr::Bin(BinOp::Lt, _, _)));
        assert!(matches!(**step, Stmt::Assign { .. }));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn array_read_write_and_calls() {
        let p = parse_src("fn m() { u[i+1] = f(u[i], 2.0); g(); }");
        let body = &p.functions().next().unwrap().body;
        assert!(matches!(&body[0], Stmt::AssignIndex { .. }));
        assert!(matches!(&body[1], Stmt::Expr(Expr::Call(_, _))));
    }

    #[test]
    fn unary_folding() {
        let p = parse_src("fn m() { x = -5; y = -2.5; z = -(a); }");
        let body = &p.functions().next().unwrap().body;
        assert!(matches!(
            &body[0],
            Stmt::Assign {
                value: Expr::Int(-5),
                ..
            }
        ));
        assert!(matches!(&body[1], Stmt::Assign { value: Expr::Float(v), .. } if *v == -2.5));
        assert!(matches!(
            &body[2],
            Stmt::Assign {
                value: Expr::Un(UnOp::Neg, _),
                ..
            }
        ));
    }

    #[test]
    fn local_arrays() {
        let p = parse_src("fn m() { var float buf[8]; var int i; }");
        let body = &p.functions().next().unwrap().body;
        assert_eq!(
            body[0],
            Stmt::Var {
                name: "buf".into(),
                ty: Ty::Float,
                len: Some(8)
            }
        );
        assert_eq!(
            body[1],
            Stmt::Var {
                name: "i".into(),
                ty: Ty::Int,
                len: None
            }
        );
    }

    #[test]
    fn errors_carry_lines() {
        let toks = lex("fn m() {\n  x = ;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn array_global_with_init_rejected() {
        let toks = lex("global int a[4] = 3;").unwrap();
        assert!(parse(&toks).is_err());
    }
}
