//! Lexer for FL source.

use std::fmt;

/// A token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals & identifiers
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // keywords
    KwGlobal,
    KwFn,
    KwVar,
    KwInt,
    KwFloat,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Arrow,
    Assign,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    /// End of input sentinel.
    Eof,
}

/// Lexical errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<TokenKind> {
    Some(match s {
        "global" => TokenKind::KwGlobal,
        "fn" => TokenKind::KwFn,
        "var" => TokenKind::KwVar,
        "int" => TokenKind::KwInt,
        "float" => TokenKind::KwFloat,
        "if" => TokenKind::KwIf,
        "else" => TokenKind::KwElse,
        "while" => TokenKind::KwWhile,
        "for" => TokenKind::KwFor,
        "return" => TokenKind::KwReturn,
        _ => return None,
    })
}

/// Tokenise FL source. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    let err = |msg: String, line: u32| LexError { msg, line };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(format!("bad float literal {text}"), line))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| err(format!("bad int literal {text}"), line))?,
                    )
                };
                out.push(Token { kind, line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                let kind = keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
                out.push(Token { kind, line });
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string".into(), line));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let esc = *b
                                .get(i)
                                .ok_or_else(|| err("unterminated escape".into(), line))?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(err(
                                        format!("unknown escape \\{}", other as char),
                                        line,
                                    ))
                                }
                            });
                            i += 1;
                        }
                        b'\n' => return Err(err("newline in string".into(), line)),
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            _ => {
                let two = if i + 1 < b.len() {
                    &b[i..i + 2]
                } else {
                    &b[i..i + 1]
                };
                let (kind, adv) = match two {
                    b"==" => (TokenKind::EqEq, 2),
                    b"!=" => (TokenKind::NotEq, 2),
                    b"<=" => (TokenKind::Le, 2),
                    b">=" => (TokenKind::Ge, 2),
                    b"&&" => (TokenKind::AndAnd, 2),
                    b"||" => (TokenKind::OrOr, 2),
                    b"->" => (TokenKind::Arrow, 2),
                    _ => match c {
                        b'(' => (TokenKind::LParen, 1),
                        b')' => (TokenKind::RParen, 1),
                        b'{' => (TokenKind::LBrace, 1),
                        b'}' => (TokenKind::RBrace, 1),
                        b'[' => (TokenKind::LBracket, 1),
                        b']' => (TokenKind::RBracket, 1),
                        b',' => (TokenKind::Comma, 1),
                        b';' => (TokenKind::Semi, 1),
                        b'=' => (TokenKind::Assign, 1),
                        b'+' => (TokenKind::Plus, 1),
                        b'-' => (TokenKind::Minus, 1),
                        b'*' => (TokenKind::Star, 1),
                        b'/' => (TokenKind::Slash, 1),
                        b'%' => (TokenKind::Percent, 1),
                        b'<' => (TokenKind::Lt, 1),
                        b'>' => (TokenKind::Gt, 1),
                        b'!' => (TokenKind::Not, 1),
                        other => {
                            return Err(err(
                                format!("unexpected character {:?}", other as char),
                                line,
                            ))
                        }
                    },
                };
                out.push(Token { kind, line });
                i += adv;
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5e-2"),
            vec![Int(42), Float(3.5), Float(1000.0), Float(0.025), Eof]
        );
    }

    #[test]
    fn identifiers_and_keywords() {
        assert_eq!(
            kinds("fn foo int x_1"),
            vec![KwFn, Ident("foo".into()), KwInt, Ident("x_1".into()), Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a==b != <= >= && || -> = < > ! %"),
            vec![
                Ident("a".into()),
                EqEq,
                Ident("b".into()),
                NotEq,
                Le,
                Ge,
                AndAnd,
                OrOr,
                Arrow,
                Assign,
                Lt,
                Gt,
                Not,
                Percent,
                Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""hi\n" "a\"b""#),
            vec![Str("hi\n".into()), Str("a\"b".into()), Eof]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].kind, Ident("b".into()));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        let e = lex("a\nb\n@").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn negative_handled_as_unary_minus() {
        // '-5' lexes as Minus, Int(5); the parser folds it.
        assert_eq!(kinds("-5"), vec![Minus, Int(5), Eof]);
    }
}
