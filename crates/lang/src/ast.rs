//! Abstract syntax tree for FL.

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit signed integer.
    Int,
    /// 64-bit float (80-bit in FPU registers).
    Float,
    /// No value (function return only).
    Void,
}

impl Ty {
    /// Size in bytes when stored in memory.
    pub fn size(self) -> u32 {
        match self {
            Ty::Int => 4,
            Ty::Float => 8,
            Ty::Void => 0,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators (result is int 0/1).
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (int).
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (only valid as a builtin argument).
    Str(String),
    /// Variable reference.
    Var(String),
    /// Array element.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration: `var int x;` or `var float a[16];`.
    Var {
        name: String,
        ty: Ty,
        len: Option<u32>,
    },
    /// Scalar assignment.
    Assign { name: String, value: Expr },
    /// Array element assignment.
    AssignIndex {
        name: String,
        index: Expr,
        value: Expr,
    },
    /// Expression evaluated for effect (a call).
    Expr(Expr),
    /// Conditional.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// While loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// For loop: `for (init; cond; step) { body }` where init/step are
    /// assignments.
    For {
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Vec<Stmt>,
    },
    /// Return (value required unless the function is void).
    Return(Option<Expr>),
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Array length; `None` for scalars.
    pub len: Option<u32>,
    /// Scalar initialiser (data section); uninitialised goes to BSS.
    pub init: Option<Expr>,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A global variable.
    Global(Global),
    /// A function.
    Fn(FnDecl),
}

/// A parsed compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in declaration order.
    pub items: Vec<Item>,
}

impl Program {
    /// Iterate over functions.
    pub fn functions(&self) -> impl Iterator<Item = &FnDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Fn(f) => Some(f),
            _ => None,
        })
    }

    /// Iterate over globals.
    pub fn globals(&self) -> impl Iterator<Item = &Global> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::Int.size(), 4);
        assert_eq!(Ty::Float.size(), 8);
        assert_eq!(Ty::Void.size(), 0);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_cmp());
        assert!(!BinOp::Add.is_cmp());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }

    #[test]
    fn program_accessors() {
        let p = Program {
            items: vec![
                Item::Global(Global {
                    name: "g".into(),
                    ty: Ty::Int,
                    len: None,
                    init: None,
                }),
                Item::Fn(FnDecl {
                    name: "main".into(),
                    params: vec![],
                    ret: Ty::Void,
                    body: vec![],
                }),
            ],
        };
        assert_eq!(p.globals().count(), 1);
        assert_eq!(p.functions().next().unwrap().name, "main");
    }
}
