//! Linking: section layout, relocation, MPI wrapper-library synthesis,
//! and symbol-table production.
//!
//! The linker turns a [`Module`] into a [`ProgramImage`]:
//!
//! * application text at `0x08048000`: a `_start` shim, then every
//!   function in declaration order;
//! * application data: initialised globals, pooled string literals and
//!   float constants;
//! * BSS: uninitialised globals;
//! * library text at `0x40000000`: the `MPI_*`/`MPIX_*`/checkpoint
//!   wrapper functions.
//!   Each wrapper builds a real stack frame, loads its arguments from the
//!   stack into registers, bumps a call counter in library data, and
//!   issues the corresponding `SYS` trap — the structural analogue of
//!   MPICH's API layer sitting above the ADI (Figure 2 of the paper);
//! * library data: the wrappers' call-counter table and an internal
//!   buffer, tagged `library: true` in the symbol table so the fault
//!   dictionary excludes them (§3.2).

use crate::ast::Ty;
use crate::codegen::{AItem, Module};
use crate::sema::InitVal;
use fl_isa::{encode, Gpr, Insn, Syscall};
use fl_machine::{align_up, ProgramImage, Region, Symbol, LIB_BASE, PAGE_SIZE, TEXT_BASE};
use std::collections::HashMap;
use std::fmt;

/// Link-time errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// A referenced symbol has no definition.
    Undefined(String),
    /// The module has no `main`.
    NoMain,
    /// A section outgrew its address budget.
    TooLarge(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Undefined(s) => write!(f, "undefined symbol `{s}`"),
            LinkError::NoMain => f.write_str("no `main` function"),
            LinkError::TooLarge(s) => write!(f, "section too large: {s}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// The MPI wrapper functions, with their syscall, the number of
/// integer arguments they forward, and whether they return a value.
/// The `MPIX_*` entries are the ULFM fault-tolerance extensions and the
/// `FL_ckpt_*` pair the app-level checkpoint builtins (fl-ulfm).
const WRAPPERS: &[(&str, Syscall, u8, bool)] = &[
    ("MPI_Init", Syscall::MpiInit, 0, false),
    ("MPI_Comm_rank", Syscall::MpiCommRank, 0, true),
    ("MPI_Comm_size", Syscall::MpiCommSize, 0, true),
    ("MPI_Send", Syscall::MpiSend, 4, false),
    ("MPI_Recv", Syscall::MpiRecv, 4, true),
    ("MPI_Barrier", Syscall::MpiBarrier, 0, false),
    ("MPI_Bcast", Syscall::MpiBcast, 3, false),
    ("MPI_Reduce", Syscall::MpiReduce, 4, false),
    ("MPI_Allreduce", Syscall::MpiAllreduce, 3, false),
    ("MPI_Finalize", Syscall::MpiFinalize, 0, false),
    ("MPI_Abort", Syscall::MpiAbort, 0, false),
    ("MPI_Errhandler_set", Syscall::MpiErrhandlerSet, 1, true),
    ("MPIX_Comm_failure_ack", Syscall::MpixFailureAck, 0, true),
    (
        "MPIX_Comm_failure_get_acked",
        Syscall::MpixFailureGetAcked,
        0,
        true,
    ),
    ("MPIX_Comm_agree", Syscall::MpixAgree, 1, true),
    ("MPIX_Comm_shrink", Syscall::MpixShrink, 0, true),
    ("FL_ckpt_save", Syscall::CkptSave, 2, true),
    ("FL_ckpt_restore", Syscall::CkptRestore, 2, true),
];

/// Argument registers for wrapper marshalling, in stack order.
const ARG_REGS: [Gpr; 4] = [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx];

/// Build one wrapper's instructions. `counter_addr` is the wrapper's slot
/// in the library-data call-counter table.
fn wrapper_insns(sys: Syscall, nargs: u8, counter_addr: u32) -> Vec<Insn> {
    let mut v = vec![Insn::Enter { frame: 0 }];
    // Argument sanity marshalling: load from the caller's stack. A stack
    // fault that corrupted an argument is faithfully forwarded — the MPI
    // layer's argument checks are what turn it into "MPI Detected".
    for i in 0..nargs {
        v.push(Insn::Ld {
            rd: ARG_REGS[i as usize],
            base: Gpr::Ebp,
            off: 8 + 4 * i as i32,
        });
    }
    // Bump the per-wrapper call counter in library data (keeps library
    // data genuinely live, as MPICH's internals are).
    v.push(Insn::LdG {
        rd: Gpr::Esi,
        addr: counter_addr,
    });
    v.push(Insn::AddI {
        rd: Gpr::Esi,
        ra: Gpr::Esi,
        imm: 1,
    });
    v.push(Insn::StG {
        rs: Gpr::Esi,
        addr: counter_addr,
    });
    v.push(Insn::Sys { num: sys as u16 });
    v.push(Insn::Leave);
    v.push(Insn::Ret);
    v
}

/// Link a module into a program image.
pub fn link(module: &Module) -> Result<ProgramImage, LinkError> {
    if !module.functions.iter().any(|f| f.name == "main") {
        return Err(LinkError::NoMain);
    }

    // ---- data / BSS layout ------------------------------------------------
    let mut symtab: Vec<Symbol> = Vec::new();
    let mut sym_addr: HashMap<String, u32> = HashMap::new();

    // Measure text first: _start (4 words) + functions.
    let start_words = 4u32; // call main (2) + movi eax,0 (2)... see below
    let mut fn_base: HashMap<String, u32> = HashMap::new();
    let mut cursor = TEXT_BASE + start_words * 4 + 4; // + sys exit word
    for f in &module.functions {
        fn_base.insert(f.name.clone(), cursor);
        let words: u32 = f.items.iter().map(|i| i.words()).sum();
        cursor += words * 4;
    }
    let text_end = cursor;
    if text_end >= 0x0900_0000 {
        return Err(LinkError::TooLarge(format!("text ends at {text_end:#x}")));
    }
    let text_len = text_end - TEXT_BASE;
    let data_base = align_up(TEXT_BASE + text_len, PAGE_SIZE);

    // Data: initialised globals, then strings, then float constants.
    let mut data: Vec<u8> = Vec::new();
    let place_data = |name: &str,
                      bytes: &[u8],
                      align: u32,
                      data: &mut Vec<u8>,
                      symtab: &mut Vec<Symbol>,
                      sym_addr: &mut HashMap<String, u32>| {
        while !(data.len() as u32).is_multiple_of(align) {
            data.push(0);
        }
        let addr = data_base + data.len() as u32;
        data.extend_from_slice(bytes);
        sym_addr.insert(name.to_string(), addr);
        symtab.push(Symbol {
            name: name.to_string(),
            addr,
            size: bytes.len() as u32,
            region: Region::Data,
            library: false,
        });
    };

    let mut bss_entries: Vec<(String, u32, u32)> = Vec::new(); // name, align, size
    for g in &module.globals {
        match (&g.init, g.len) {
            (Some(InitVal::Seeded(seed)), Some(len)) => {
                // Deterministic table contents (Fortran DATA analogue):
                // a 64-bit LCG drives either f64 values in [0, 1) or
                // small ints, matching the element type.
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state
                };
                let mut bytes = Vec::with_capacity((g.size()) as usize);
                for _ in 0..len {
                    match g.ty {
                        Ty::Float => {
                            let v = (next() >> 11) as f64 / (1u64 << 53) as f64;
                            bytes.extend_from_slice(&v.to_le_bytes());
                        }
                        _ => {
                            let v = (next() >> 40) as u32;
                            bytes.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                let align = if g.ty == Ty::Float { 8 } else { 4 };
                place_data(
                    &g.name,
                    &bytes,
                    align,
                    &mut data,
                    &mut symtab,
                    &mut sym_addr,
                );
            }
            (Some(InitVal::Int(v)), None) => place_data(
                &g.name,
                &v.to_le_bytes(),
                4,
                &mut data,
                &mut symtab,
                &mut sym_addr,
            ),
            (Some(InitVal::Float(v)), None) => place_data(
                &g.name,
                &v.to_le_bytes(),
                8,
                &mut data,
                &mut symtab,
                &mut sym_addr,
            ),
            _ => {
                let align = if g.ty == Ty::Float { 8 } else { 4 };
                bss_entries.push((g.name.clone(), align, g.size()));
            }
        }
    }
    for (i, s) in module.strings.iter().enumerate() {
        place_data(
            &format!("$str{i}"),
            s.as_bytes(),
            1,
            &mut data,
            &mut symtab,
            &mut sym_addr,
        );
    }
    for (i, bits) in module.fconsts.iter().enumerate() {
        place_data(
            &format!("$fc{i}"),
            &bits.to_le_bytes(),
            8,
            &mut data,
            &mut symtab,
            &mut sym_addr,
        );
    }

    // BSS.
    let bss_base = align_up(data_base + data.len() as u32, PAGE_SIZE);
    let mut bss_size = 0u32;
    for (name, align, size) in &bss_entries {
        bss_size = align_up(bss_size, *align);
        let addr = bss_base + bss_size;
        sym_addr.insert(name.clone(), addr);
        symtab.push(Symbol {
            name: name.clone(),
            addr,
            size: *size,
            region: Region::Bss,
            library: false,
        });
        bss_size += size;
    }

    // ---- library ----------------------------------------------------------
    // Library data first (wrappers reference counter addresses).
    // Layout: one u32 counter per wrapper, then a 2 KiB internal buffer.
    let mut lib_text: Vec<u8> = Vec::new();
    let mut lib_fn_addr: HashMap<String, u32> = HashMap::new();
    // Measure wrapper sizes to find lib text length.
    let mut lcur = LIB_BASE;
    for (name, sys, nargs, _) in WRAPPERS {
        lib_fn_addr.insert(name.to_string(), lcur);
        let insns = wrapper_insns(*sys, *nargs, 0);
        let words: u32 = insns.iter().map(|i| i.encoded_words() as u32).sum();
        lcur += words * 4;
    }
    let lib_text_len = lcur - LIB_BASE;
    let lib_data_base = align_up(LIB_BASE + lib_text_len, PAGE_SIZE);
    let mut lib_data = vec![0u8; WRAPPERS.len() * 4 + 2048];
    // Internal "request pool" pattern so library data is not all zero.
    for (i, b) in lib_data.iter_mut().enumerate().skip(WRAPPERS.len() * 4) {
        *b = (i % 251) as u8;
    }
    for (i, (name, sys, nargs, _)) in WRAPPERS.iter().enumerate() {
        let addr = lib_fn_addr[*name];
        let counter = lib_data_base + 4 * i as u32;
        let insns = wrapper_insns(*sys, *nargs, counter);
        let mut bytes = Vec::new();
        for insn in &insns {
            bytes.extend(encode(insn).to_bytes());
        }
        debug_assert_eq!(LIB_BASE + lib_text.len() as u32, addr);
        symtab.push(Symbol {
            name: name.to_string(),
            addr,
            size: bytes.len() as u32,
            region: Region::LibText,
            library: true,
        });
        symtab.push(Symbol {
            name: format!("mpich_calls_{name}"),
            addr: counter,
            size: 4,
            region: Region::LibData,
            library: true,
        });
        lib_text.extend(bytes);
    }
    symtab.push(Symbol {
        name: "mpich_request_pool".to_string(),
        addr: lib_data_base + WRAPPERS.len() as u32 * 4,
        size: 2048,
        region: Region::LibData,
        library: true,
    });

    // ---- text emission ------------------------------------------------------
    let resolve = |name: &str| -> Result<u32, LinkError> {
        fn_base
            .get(name)
            .or_else(|| lib_fn_addr.get(name))
            .copied()
            .ok_or_else(|| LinkError::Undefined(name.to_string()))
    };
    let resolve_data = |name: &str| -> Result<u32, LinkError> {
        sym_addr
            .get(name)
            .copied()
            .ok_or_else(|| LinkError::Undefined(name.to_string()))
    };

    let mut text: Vec<u8> = Vec::new();
    // _start: call main; mov eax, 0; sys exit
    let main_addr = resolve("main")?;
    for insn in [
        Insn::Call { target: main_addr },
        Insn::MovI {
            rd: Gpr::Eax,
            imm: 0,
        },
        Insn::Sys {
            num: Syscall::Exit as u16,
        },
    ] {
        text.extend(encode(&insn).to_bytes());
    }
    symtab.push(Symbol {
        name: "_start".to_string(),
        addr: TEXT_BASE,
        size: text.len() as u32,
        region: Region::Text,
        library: false,
    });

    for f in &module.functions {
        let base = fn_base[&f.name];
        debug_assert_eq!(TEXT_BASE + text.len() as u32, base);
        // Label addresses within the function.
        let mut labels: HashMap<u32, u32> = HashMap::new();
        let mut pc = base;
        for item in &f.items {
            if let AItem::Label(l) = item {
                labels.insert(*l, pc);
            }
            pc += item.words() * 4;
        }
        let fn_size = pc - base;
        for item in &f.items {
            let insn = match item {
                AItem::Label(_) => continue,
                AItem::I(i) => *i,
                AItem::Jmp(cond, l) => Insn::J {
                    cond: *cond,
                    target: *labels
                        .get(l)
                        .unwrap_or_else(|| panic!("{}: unplaced label {l}", f.name)),
                },
                AItem::CallSym(s) => Insn::Call {
                    target: resolve(s)?,
                },
                AItem::MovSym(rd, s, d) => Insn::MovI {
                    rd: *rd,
                    imm: resolve_data(s)?.wrapping_add(*d as u32),
                },
                AItem::LdSym(rd, s, d) => Insn::LdG {
                    rd: *rd,
                    addr: resolve_data(s)?.wrapping_add(*d as u32),
                },
                AItem::StSym(rs, s, d) => Insn::StG {
                    rs: *rs,
                    addr: resolve_data(s)?.wrapping_add(*d as u32),
                },
                AItem::FldSym(s, d) => Insn::FldG {
                    addr: resolve_data(s)?.wrapping_add(*d as u32),
                },
                AItem::FstpSym(s, d) => Insn::FstpG {
                    addr: resolve_data(s)?.wrapping_add(*d as u32),
                },
            };
            text.extend(encode(&insn).to_bytes());
        }
        symtab.push(Symbol {
            name: f.name.clone(),
            addr: base,
            size: fn_size,
            region: Region::Text,
            library: false,
        });
    }
    debug_assert_eq!(text.len() as u32, text_len);

    Ok(ProgramImage {
        text,
        data,
        bss_size: bss_size.max(4),
        lib_text,
        lib_data,
        entry: TEXT_BASE,
        symbols: symtab,
        heap_reserve: module.heap_reserve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use fl_machine::{Exit, Machine, MachineConfig};

    fn run(src: &str) -> (Machine, Exit) {
        let img = compile(src).expect("compiles");
        let mut m = Machine::load(&img, MachineConfig::default());
        let e = m.run(10_000_000);
        (m, e)
    }

    #[test]
    fn hello_world() {
        let (m, e) = run(r#"fn main() { print_str("hello, world\n"); }"#);
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "hello, world\n");
    }

    #[test]
    fn arithmetic_loops_and_calls() {
        let (m, e) = run("fn square(int x) -> int { return x * x; }
             fn main() {
                 var int i;
                 var int total;
                 total = 0;
                 for (i = 1; i <= 10; i = i + 1) { total = total + square(i); }
                 print_int(total);
             }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "385");
    }

    #[test]
    fn float_math() {
        let (m, e) = run("fn main() {
                 var float x;
                 x = sqrt(16.0) + 2.0 * 3.0;     // 10
                 x = x / 4.0;                     // 2.5
                 print_flt(x, 2);
             }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "2.50");
    }

    #[test]
    fn globals_data_and_bss() {
        let (m, e) = run("global int counter = 5;
             global float accum;
             global float tbl[4];
             fn main() {
                 var int i;
                 counter = counter + 1;
                 for (i = 0; i < 4; i = i + 1) { tbl[i] = float(i) * 1.5; }
                 accum = tbl[0] + tbl[1] + tbl[2] + tbl[3];
                 print_int(counter); print_str(\" \"); print_flt(accum, 1);
             }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "6 9.0");
    }

    #[test]
    fn recursion() {
        let (m, e) = run("fn fib(int n) -> int {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }
             fn main() { print_int(fib(15)); }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "610");
    }

    #[test]
    fn heap_via_malloc() {
        let (m, e) = run("fn main() {
                 var int p;
                 var int i;
                 p = malloc(80);
                 for (i = 0; i < 10; i = i + 1) { storef(p + i * 8, float(i) * 2.0); }
                 print_flt(loadf(p + 72), 1);
                 free(p);
             }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "18.0");
    }

    #[test]
    fn assertions_abort() {
        let (_, e) = run(r#"fn main() { assert(1 < 0, "impossible"); }"#);
        assert_eq!(e, Exit::Abort("impossible".into()));
        let (_, e) = run(r#"fn main() { assert(1 > 0, "fine"); print_str("ok"); }"#);
        assert_eq!(e, Exit::Halted(0));
    }

    #[test]
    fn isnan_detects_nan() {
        let (m, e) = run("fn main() {
                 var float x;
                 x = sqrt(0.0 - 1.0);       // NaN
                 print_int(isnan(x));
                 print_int(isnan(2.5));
             }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "10");
    }

    #[test]
    fn logic_and_comparisons() {
        let (m, e) = run("fn main() {
                 print_int(1 && 1); print_int(1 && 0); print_int(0 || 3);
                 print_int(!5); print_int(!0);
                 print_int(2 < 3); print_int(3 < 2);
                 print_int(2.5 >= 2.5); print_int(1.5 > 2.5);
             }");
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "101011010");
    }

    #[test]
    fn symbols_cover_sections() {
        let img = compile(
            "global int g = 1; global float b[8];
             fn helper() { } fn main() { helper(); }",
        )
        .unwrap();
        let find = |n: &str| img.symbols.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("g").region, Region::Data);
        assert_eq!(find("b").region, Region::Bss);
        assert_eq!(find("main").region, Region::Text);
        assert_eq!(find("MPI_Send").region, Region::LibText);
        assert!(find("MPI_Send").library);
        assert!(find("mpich_request_pool").library);
        assert!(!find("main").library);
    }

    #[test]
    fn mpi_wrapper_traps_with_marshalled_args() {
        let img = compile(
            "global float buf[8];
             fn main() { mpi_send(addr(buf), 64, 3, 42); }",
        )
        .unwrap();
        let mut m = Machine::load(&img, MachineConfig::default());
        let e = m.run(1_000_000);
        assert_eq!(e, Exit::Mpi(Syscall::MpiSend));
        // Arguments marshalled into EAX/ECX/EDX/EBX by the wrapper.
        let buf_sym = img.symbols.iter().find(|s| s.name == "buf").unwrap();
        assert_eq!(m.cpu.get(Gpr::Eax), buf_sym.addr);
        assert_eq!(m.cpu.get(Gpr::Ecx), 64);
        assert_eq!(m.cpu.get(Gpr::Edx), 3);
        assert_eq!(m.cpu.get(Gpr::Ebx), 42);
        // EIP parked inside the library wrapper.
        let (lo, hi) = m.lib_text_range();
        assert!((lo..hi).contains(&m.cpu.eip));
    }

    #[test]
    fn wrapper_call_counters_increment() {
        let img = compile("fn main() { mpi_init(); }").unwrap();
        let counter = img
            .symbols
            .iter()
            .find(|s| s.name == "mpich_calls_MPI_Init")
            .unwrap()
            .addr;
        let mut m = Machine::load(&img, MachineConfig::default());
        assert_eq!(m.run(1_000_000), Exit::Mpi(Syscall::MpiInit));
        assert_eq!(m.mem.peek_u32(counter), 1);
    }

    #[test]
    fn undefined_function_reported() {
        let toks = crate::lexer::lex("fn main() { }").unwrap();
        let prog = crate::sema::analyze(&crate::parser::parse(&toks).unwrap()).unwrap();
        let mut module = crate::codegen::emit(&prog).unwrap();
        module.functions[0]
            .items
            .push(AItem::CallSym("nope".into()));
        assert!(matches!(link(&module), Err(LinkError::Undefined(n)) if n == "nope"));
    }

    #[test]
    fn no_main_reported() {
        let toks = crate::lexer::lex("fn helper() { }").unwrap();
        let prog = crate::sema::analyze(&crate::parser::parse(&toks).unwrap()).unwrap();
        let module = crate::codegen::emit(&prog).unwrap();
        assert!(matches!(link(&module), Err(LinkError::NoMain)));
    }
}

#[cfg(test)]
mod seeded_tests {
    use crate::compile;
    use fl_machine::{Exit, Machine, MachineConfig, Region};

    #[test]
    fn seeded_arrays_live_in_data_with_deterministic_content() {
        let src = "global float tbl[64] = seeded(7);
                   global int itbl[16] = seeded(3);
                   fn main() { print_flt(tbl[0] + tbl[63], 6); }";
        let img1 = compile(src).unwrap();
        let img2 = compile(src).unwrap();
        assert_eq!(img1.data, img2.data, "seeded fill must be deterministic");
        let sym = img1.symbols.iter().find(|s| s.name == "tbl").unwrap();
        assert_eq!(sym.region, Region::Data);
        assert_eq!(sym.size, 512);
        let isym = img1.symbols.iter().find(|s| s.name == "itbl").unwrap();
        assert_eq!(isym.region, Region::Data);
        assert_eq!(isym.size, 64);
        let mut m = Machine::load(&img1, MachineConfig::default());
        assert_eq!(m.run(100_000), Exit::Halted(0));
        let printed: f64 = m.console_text().parse().unwrap();
        assert!(
            printed > 0.0 && printed < 2.0,
            "values must be in [0,1): {printed}"
        );
    }

    #[test]
    fn seeded_on_scalar_rejected() {
        assert!(compile("global float x = seeded(1); fn main() { }").is_err());
    }

    #[test]
    fn arbitrary_array_initialiser_rejected() {
        assert!(compile("global float a[4] = 1.0; fn main() { }").is_err());
    }
}
