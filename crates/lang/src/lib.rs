//! # fl-lang — the FL compiler
//!
//! FL is a small C-like language (ints, 64-bit floats, one-dimensional
//! arrays, functions, globals) compiled to FaultLab machine code. It
//! stands in for the C/Fortran + gcc toolchain of the paper's application
//! suite: the three test applications are written in FL, compiled, and
//! linked against the MPI wrapper library so that
//!
//! * text-section faults strike real instruction encodings,
//! * data/BSS faults strike real global variables with symbol-table
//!   entries (the raw material of the paper's fault dictionary, §3.2),
//! * stack faults strike real `ENTER`/`LEAVE` frames with return
//!   addresses, and
//! * the MPI library occupies its own text/data region (0x40000000) that
//!   the injector excludes, exactly as the paper excluded MPICH.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] (type checking and frame
//! layout) → [`codegen`] (per-function assembly with symbolic operands) →
//! [`link()`](link()) (layout, relocation, MPI wrapper synthesis, `ProgramImage`).
//!
//! The deliberate codegen choices that matter for fault sensitivity are
//! documented in [`codegen`]: expression evaluation keeps at most a
//! handful of x87 stack slots live (§6.1.1 observed ~4) and leans heavily
//! on EAX/ECX/EDX plus the always-live ESP/EBP — which is why integer
//! register faults manifest so much more often than FP register faults.

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod link;
pub mod parser;
pub mod sema;

pub use ast::{BinOp, Expr, FnDecl, Global, Item, Program, Stmt, Ty, UnOp};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use link::{link, LinkError};
pub use parser::{parse, ParseError};
pub use sema::{analyze, SemaError};

use fl_machine::ProgramImage;

pub use codegen::CompileOptions;

/// Compile FL source to a loadable program image.
pub fn compile(source: &str) -> Result<ProgramImage, CompileError> {
    compile_with(source, &CompileOptions::default())
}

/// Compile with explicit options (e.g. control-flow signature checking).
pub fn compile_with(source: &str, opts: &CompileOptions) -> Result<ProgramImage, CompileError> {
    let tokens = lex(source)?;
    let program = parse(&tokens)?;
    let typed = analyze(&program)?;
    let module = codegen::emit_with(&typed, opts).map_err(CompileError::Codegen)?;
    Ok(link(&module)?)
}

/// Any error from the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Type or name resolution error.
    Sema(SemaError),
    /// Code generation error (e.g. unsupported construct).
    Codegen(String),
    /// Link error (e.g. undefined symbol).
    Link(LinkError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "semantic error: {e}"),
            CompileError::Codegen(e) => write!(f, "codegen error: {e}"),
            CompileError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LexError> for CompileError {
    fn from(e: LexError) -> Self {
        CompileError::Lex(e)
    }
}
impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}
impl From<SemaError> for CompileError {
    fn from(e: SemaError) -> Self {
        CompileError::Sema(e)
    }
}
impl From<LinkError> for CompileError {
    fn from(e: LinkError) -> Self {
        CompileError::Link(e)
    }
}
