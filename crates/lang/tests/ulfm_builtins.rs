//! Golden codegen tests for the fl-ulfm builtins (PR 7).
//!
//! Each builtin must lower to a call into a synthesized library wrapper
//! that issues exactly one `Sys` instruction with the ULFM syscall
//! number assigned in `fl_isa::Syscall`. These tests pin that contract
//! per builtin, so a renumbering or a lowering regression is a visible
//! test failure rather than a silent ABI break.

use fl_isa::{decode_at, Insn, Syscall};
use fl_lang::compile;
use fl_machine::{ProgramImage, Symbol, LIB_BASE, TEXT_BASE};

/// The six app-visible fault-tolerance builtins: FL-source call,
/// wrapper symbol the linker synthesizes, and the syscall it issues.
const BUILTINS: &[(&str, &str, Syscall)] = &[
    (
        "r = mpix_comm_failure_ack();",
        "MPIX_Comm_failure_ack",
        Syscall::MpixFailureAck,
    ),
    (
        "r = mpix_comm_failure_get_acked();",
        "MPIX_Comm_failure_get_acked",
        Syscall::MpixFailureGetAcked,
    ),
    (
        "r = mpix_comm_agree(1);",
        "MPIX_Comm_agree",
        Syscall::MpixAgree,
    ),
    (
        "r = mpix_comm_shrink();",
        "MPIX_Comm_shrink",
        Syscall::MpixShrink,
    ),
    (
        "r = fl_ckpt_save(addr(buf), 16);",
        "FL_ckpt_save",
        Syscall::CkptSave,
    ),
    (
        "r = fl_ckpt_restore(addr(buf), 16);",
        "FL_ckpt_restore",
        Syscall::CkptRestore,
    ),
];

fn program_using(call: &str) -> String {
    format!(
        "global float buf[4];
         fn main() {{
             var int r;
             mpi_init();
             {call}
             mpi_finalize();
         }}"
    )
}

fn wrapper_symbol<'a>(img: &'a ProgramImage, name: &str) -> &'a Symbol {
    img.symbols
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("wrapper symbol {name} missing from image"))
}

fn decode_all(bytes: &[u8]) -> Vec<Insn> {
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut insns = Vec::new();
    let mut idx = 0;
    while idx < words.len() {
        match decode_at(&words, idx) {
            Ok((i, len)) => {
                insns.push(i);
                idx += len;
            }
            Err(_) => idx += 1,
        }
    }
    insns
}

#[test]
fn every_ulfm_builtin_lowers_to_a_call_into_its_syscall_wrapper() {
    for (call, symbol, sys) in BUILTINS {
        let img = compile(&program_using(call)).expect(call);
        let wrapper = wrapper_symbol(&img, symbol);
        assert!(wrapper.library, "{symbol} must be a library symbol");

        // The wrapper body issues exactly the assigned syscall.
        let lo = (wrapper.addr - LIB_BASE) as usize;
        let hi = lo + wrapper.size as usize;
        let body = decode_all(&img.lib_text[lo..hi]);
        let syscalls: Vec<u16> = body
            .iter()
            .filter_map(|i| match i {
                Insn::Sys { num } => Some(*num),
                _ => None,
            })
            .collect();
        assert_eq!(
            syscalls,
            vec![*sys as u16],
            "{symbol}: wrapper must issue exactly one Sys {{ {} }}",
            *sys as u16
        );

        // The application text calls the wrapper at its linked address.
        let app = decode_all(&img.text);
        assert!(
            app.iter()
                .any(|i| matches!(i, Insn::Call { target } if *target == wrapper.addr)),
            "{symbol}: no Call to {:#x} in app text",
            wrapper.addr
        );
    }
}

#[test]
fn builtin_wrappers_live_in_a_fixed_library_image() {
    // The wrapper set is part of the library ABI: it is synthesized for
    // every program, caller or not, so adding the ulfm builtins cannot
    // perturb the library layout of a program that never uses them.
    // (That fixed layout is what makes ft-off runs of old programs
    // bit-identical across this PR — see crates/mpi/tests/prop_ulfm.rs.)
    let plain =
        compile("fn main() { mpi_init(); print_int(mpi_rank()); mpi_finalize(); }").unwrap();
    let user = compile(&program_using("r = mpix_comm_shrink();")).unwrap();
    assert_eq!(plain.lib_text, user.lib_text, "library text must be fixed");
    assert_eq!(plain.lib_data, user.lib_data, "library data must be fixed");
    for (_, symbol, _) in BUILTINS {
        let s = wrapper_symbol(&plain, symbol);
        assert!(s.library, "{symbol} must live in the library region");
    }
}

#[test]
fn ulfm_wrappers_return_through_eax_like_every_mpi_wrapper() {
    // Sanity-check the call protocol end to end for one representative:
    // agree's flag argument travels through the stack frame and the
    // result lands in EAX, so `r = mpix_comm_agree(f)` observes it.
    let img = compile(&program_using("r = mpix_comm_agree(1);")).unwrap();
    let wrapper = wrapper_symbol(&img, "MPIX_Comm_agree");
    let lo = (wrapper.addr - LIB_BASE) as usize;
    let body = decode_all(&img.lib_text[lo..lo + wrapper.size as usize]);
    assert!(
        matches!(body.first(), Some(Insn::Enter { .. })),
        "wrapper opens a frame: {body:?}"
    );
    assert!(
        body.iter()
            .any(|i| matches!(i, Insn::Ld { .. } | Insn::LdG { .. })),
        "agree wrapper loads its flag argument: {body:?}"
    );
    // The entry point is inside the text section, so a decoded Call
    // target outside [TEXT_BASE, lib) is a relocation bug.
    for i in decode_all(&img.text) {
        if let Insn::Call { target } = i {
            assert!(
                target >= TEXT_BASE,
                "call target {target:#x} below text base"
            );
        }
    }
}
