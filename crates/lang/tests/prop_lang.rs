//! Property tests for the compiler pipeline: totality of lexing/parsing
//! on arbitrary input, and compile-and-run correctness of generated
//! integer arithmetic against a Rust reference evaluator.

use fl_lang::{compile, lex, parse};
use fl_machine::{Exit, Machine, MachineConfig};
use proptest::prelude::*;

/// A small expression AST mirrored in both FL source and Rust semantics.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn to_fl(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.to_fl(), b.to_fl()),
            E::Sub(a, b) => format!("({} - {})", a.to_fl(), b.to_fl()),
            E::Mul(a, b) => format!("({} * {})", a.to_fl(), b.to_fl()),
        }
    }

    /// Wrapping i32 semantics, as the machine implements.
    fn eval(&self) -> i32 {
        match self {
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(s in "\\PC*") {
        let _ = lex(&s);
    }

    /// The parser never panics on arbitrary token streams from valid
    /// lexes of printable garbage.
    #[test]
    fn parser_total(s in "[a-z0-9 (){};=+*<>!,._\\-\"\\[\\]]*") {
        if let Ok(toks) = lex(&s) {
            let _ = parse(&toks);
        }
    }

    /// Compiled integer arithmetic matches wrapping Rust semantics.
    #[test]
    fn integer_arithmetic_matches_reference(e in arb_expr()) {
        let src = format!("fn main() {{ print_int({}); }}", e.to_fl());
        let img = compile(&src).unwrap();
        let mut m = Machine::load(&img, MachineConfig { budget: 1_000_000, ..Default::default() });
        let exit = m.run(u64::MAX);
        prop_assert_eq!(exit, Exit::Halted(0));
        prop_assert_eq!(m.console_text(), e.eval().to_string());
    }

    /// Compiled float arithmetic (additions/multiplications on literal
    /// trees) matches Rust f64 semantics at printed precision.
    #[test]
    fn float_sums_match_reference(vals in proptest::collection::vec(-100.0f64..100.0, 1..8)) {
        let expr = vals.iter().map(|v| format!("({v:.6})")).collect::<Vec<_>>().join(" + ");
        let src = format!("fn main() {{ print_flt({expr}, 6); }}");
        let img = compile(&src).unwrap();
        let mut m = Machine::load(&img, MachineConfig { budget: 1_000_000, ..Default::default() });
        prop_assert_eq!(m.run(u64::MAX), Exit::Halted(0));
        let want: f64 = vals.iter().map(|v| format!("{v:.6}").parse::<f64>().unwrap()).sum();
        prop_assert_eq!(m.console_text(), format!("{want:.6}"));
    }

    /// Loops compute the same sums as Rust.
    #[test]
    fn loop_sums_match_reference(n in 0i32..200, step in 1i32..5) {
        let src = format!(
            "fn main() {{
                 var int i;
                 var int acc;
                 acc = 0;
                 for (i = 0; i < {n}; i = i + {step}) {{ acc = acc + i; }}
                 print_int(acc);
             }}"
        );
        let img = compile(&src).unwrap();
        let mut m = Machine::load(&img, MachineConfig { budget: 10_000_000, ..Default::default() });
        prop_assert_eq!(m.run(u64::MAX), Exit::Halted(0));
        let mut want = 0i32;
        let mut i = 0;
        while i < n {
            want += i;
            i += step;
        }
        prop_assert_eq!(m.console_text(), want.to_string());
    }
}
