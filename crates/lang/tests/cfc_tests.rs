//! Tests for control-flow signature checking (§8.2's software-signature
//! defence, compiled in via [`fl_lang::CompileOptions`]).

use fl_lang::{compile, compile_with, CompileOptions};
use fl_machine::{Exit, Machine, MachineConfig};

const PROGRAM: &str = "
fn helper(int x) -> int {
    var int acc;
    var int i;
    acc = 0;
    for (i = 0; i < x; i = i + 1) { acc = acc + i; }
    return acc;
}
fn main() { print_int(helper(10)); }
";

fn cfc() -> CompileOptions {
    CompileOptions {
        control_flow_checks: true,
    }
}

#[test]
fn instrumented_program_behaves_identically() {
    let plain = compile(PROGRAM).unwrap();
    let checked = compile_with(PROGRAM, &cfc()).unwrap();
    let mut a = Machine::load(&plain, MachineConfig::default());
    let mut b = Machine::load(&checked, MachineConfig::default());
    assert_eq!(a.run(1_000_000), Exit::Halted(0));
    assert_eq!(b.run(1_000_000), Exit::Halted(0));
    assert_eq!(a.console_text(), b.console_text());
}

#[test]
fn instrumentation_has_modest_overhead() {
    let plain = compile(PROGRAM).unwrap();
    let checked = compile_with(PROGRAM, &cfc()).unwrap();
    let mut a = Machine::load(&plain, MachineConfig::default());
    let mut b = Machine::load(&checked, MachineConfig::default());
    a.run(1_000_000);
    b.run(1_000_000);
    let (ia, ib) = (a.counters.insns, b.counters.insns);
    assert!(ib > ia, "instrumentation must add instructions");
    let overhead = (ib - ia) as f64 / ia as f64;
    assert!(overhead < 0.40, "overhead too high: {ia} -> {ib}");
}

#[test]
fn wild_jump_into_function_body_is_detected() {
    // Jump straight into helper's body (skipping Enter + signature
    // store): the frame slot holds garbage, the epilogue check fires.
    let checked = compile_with(PROGRAM, &cfc()).unwrap();
    let helper = checked.symbols.iter().find(|s| s.name == "helper").unwrap();
    let mut m = Machine::load(
        &checked,
        MachineConfig {
            budget: 1_000_000,
            ..Default::default()
        },
    );
    // Let main set up its own frame first.
    for _ in 0..4 {
        assert!(m.step().is_none());
    }
    // Land past the prologue (Enter=2w, MovI=2w, St=1w -> +20 bytes).
    m.cpu.eip = helper.addr + 20;
    match m.run(1_000_000) {
        Exit::Abort(msg) => assert!(msg.contains("control flow"), "{msg}"),
        // Depending on the landing state a SIGSEGV can pre-empt the
        // check; re-land exactly at the first post-prologue instruction
        // should not though.
        other => panic!("expected control-flow abort, got {other:?}"),
    }
}

#[test]
fn uninstrumented_program_misses_the_same_fault() {
    let plain = compile(PROGRAM).unwrap();
    let helper = plain.symbols.iter().find(|s| s.name == "helper").unwrap();
    let mut m = Machine::load(
        &plain,
        MachineConfig {
            budget: 1_000_000,
            ..Default::default()
        },
    );
    for _ in 0..4 {
        assert!(m.step().is_none());
    }
    m.cpu.eip = helper.addr + 4; // past Enter only
    let exit = m.run(1_000_000);
    assert!(
        !matches!(exit, Exit::Abort(_)),
        "plain build has no check to fire: {exit:?}"
    );
}

#[test]
fn signatures_are_per_function() {
    // Two functions' prologues must deposit different signatures, or a
    // cross-function jump would validate.
    let src = "fn a() -> int { return 1; }
               fn b() -> int { return 2; }
               fn main() { print_int(a() + b()); }";
    let img = compile_with(src, &cfc()).unwrap();
    // Extract the MovI immediates right after each Enter.
    let words: Vec<u32> = img
        .text
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut sigs = Vec::new();
    let mut idx = 0;
    while idx < words.len() {
        match fl_isa::decode_at(&words, idx) {
            Ok((fl_isa::Insn::Enter { .. }, len)) => {
                if let Ok((fl_isa::Insn::MovI { imm, .. }, _)) =
                    fl_isa::decode_at(&words, idx + len)
                {
                    sigs.push(imm);
                }
                idx += len;
            }
            Ok((_, len)) => idx += len,
            Err(_) => idx += 1,
        }
    }
    sigs.sort_unstable();
    let before = sigs.len();
    sigs.dedup();
    assert_eq!(sigs.len(), before, "duplicate signatures");
    assert!(
        sigs.len() >= 3,
        "expected at least three instrumented functions"
    );
}
