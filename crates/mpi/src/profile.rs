//! Channel-level traffic accounting.
//!
//! The paper modified MPICH to "measure and classify the incoming traffic
//! at the Channel and ADI levels" (§4.2): per process, how many control
//! messages (header only) and data messages (header + user payload)
//! arrive, and what fraction of the byte volume is headers vs user data.
//! Table 1's "Message (MB)" rows and the header/user distribution come
//! from this measurement, and §6.2's analysis of Cactus ("94 percent of
//! its incoming MPI traffic is user data") depends on it.

use crate::message::{Header, MsgKind, HEADER_SIZE};

/// Per-rank incoming traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficProfile {
    /// Control (header-only) messages received.
    pub control_msgs: u64,
    /// Data messages received.
    pub data_msgs: u64,
    /// Total header bytes received.
    pub header_bytes: u64,
    /// Total user-payload bytes received.
    pub payload_bytes: u64,
}

impl TrafficProfile {
    /// Record one parsed incoming message.
    pub fn record(&mut self, h: &Header) {
        self.header_bytes += HEADER_SIZE as u64;
        match h.kind {
            MsgKind::Control => self.control_msgs += 1,
            MsgKind::Data => {
                self.data_msgs += 1;
                self.payload_bytes += h.payload_len as u64;
            }
        }
    }

    /// Total bytes received at the channel level.
    pub fn total_bytes(&self) -> u64 {
        self.header_bytes + self.payload_bytes
    }

    /// Fraction of the byte volume that is headers (Table 1's "Header"
    /// distribution column), in percent.
    pub fn header_percent(&self) -> f64 {
        if self.total_bytes() == 0 {
            return 0.0;
        }
        100.0 * self.header_bytes as f64 / self.total_bytes() as f64
    }

    /// Fraction of the byte volume that is user data, in percent.
    pub fn user_percent(&self) -> f64 {
        if self.total_bytes() == 0 {
            return 0.0;
        }
        100.0 - self.header_percent()
    }

    /// Merge another profile (for cluster-wide aggregates).
    pub fn merge(&mut self, other: &TrafficProfile) {
        self.control_msgs += other.control_msgs;
        self.data_msgs += other.data_msgs;
        self.header_bytes += other.header_bytes;
        self.payload_bytes += other.payload_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CtlOp, WireMsg};

    #[test]
    fn record_classifies() {
        let mut p = TrafficProfile::default();
        p.record(
            &WireMsg::control(CtlOp::Barrier, 0, 1, 0, 0)
                .header()
                .unwrap(),
        );
        p.record(&WireMsg::data(0, 1, 0, 1, &[0u8; 52]).header().unwrap());
        assert_eq!(p.control_msgs, 1);
        assert_eq!(p.data_msgs, 1);
        assert_eq!(p.header_bytes, 96);
        assert_eq!(p.payload_bytes, 52);
        assert_eq!(p.total_bytes(), 148);
    }

    #[test]
    fn percentages() {
        let mut p = TrafficProfile::default();
        assert_eq!(p.header_percent(), 0.0);
        p.header_bytes = 6;
        p.payload_bytes = 94;
        assert!((p.header_percent() - 6.0).abs() < 1e-12);
        assert!((p.user_percent() - 94.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let mut a = TrafficProfile {
            control_msgs: 1,
            data_msgs: 2,
            header_bytes: 144,
            payload_bytes: 100,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.control_msgs, 2);
        assert_eq!(a.payload_bytes, 200);
    }
}
