//! Wire-format messages.
//!
//! MPICH's ch_p4 channel moves two kinds of messages, both carrying a
//! 32–64 byte header (§4.2 of the paper): *control* messages that are all
//! header, and *data* messages with a payload of user bytes. We use a
//! fixed 48-byte header. Headers are parsed from raw bytes at the
//! receiving ADI, so a bit flip injected at the channel level (§3.3) can
//! corrupt any field and produce the paper's observed failure modes:
//! a broken magic/length kills the library ("about a 40 percent
//! probability of corrupting the Cactus execution" came mostly from
//! headers), a broken tag or source strands the message (hang), and a
//! broken payload flows silently into user data.

/// Header magic ("MPIH" little-endian).
pub const HEADER_MAGIC: u32 = 0x4849_504D;
/// Wire header size in bytes.
pub const HEADER_SIZE: usize = 48;
/// Largest payload the ADI accepts; a corrupted length field beyond this
/// is detected as a malformed message.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Byte offset of the CRC32 word inside the header (formerly padding).
pub const CRC_OFFSET: usize = 24;
/// Bytes of the header covered by the CRC (the live fields before the
/// CRC word itself; the payload is also covered).
pub const CRC_COVERED_HEADER: usize = 24;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB8_8320) over `parts`
/// concatenated. Hand-rolled — the lab has no external crates — with a
/// compile-time table so per-message cost is one lookup per byte.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Header-only control traffic.
    Control = 1,
    /// Header + user payload.
    Data = 2,
}

/// Control operations (carried in the `ctl_op` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlOp {
    /// Not a control message.
    None = 0,
    /// Barrier round token.
    Barrier = 1,
    /// Rendezvous request-to-send.
    Rts = 2,
    /// Rendezvous clear-to-send.
    Cts = 3,
}

impl CtlOp {
    fn from_u8(v: u8) -> Option<CtlOp> {
        Some(match v {
            0 => CtlOp::None,
            1 => CtlOp::Barrier,
            2 => CtlOp::Rts,
            3 => CtlOp::Cts,
            _ => return None,
        })
    }
}

/// A parsed message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Control or data.
    pub kind: MsgKind,
    /// Control operation for control messages.
    pub ctl_op: CtlOp,
    /// Sending rank.
    pub src: u16,
    /// Destination rank.
    pub dst: u16,
    /// MPI tag (or barrier round for barrier tokens).
    pub tag: u32,
    /// Per-sender sequence number.
    pub seq: u32,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

/// Why a raw message failed to parse — an "MPICH internal error" that
/// aborts the application (classified as a Crash, §5.1/§6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`HEADER_SIZE`] bytes.
    Truncated,
    /// Magic word mismatch.
    BadMagic(u32),
    /// Unknown kind byte.
    BadKind(u8),
    /// Unknown control op.
    BadCtlOp(u8),
    /// Length field exceeds [`MAX_PAYLOAD`] or disagrees with the bytes
    /// on the wire.
    BadLength { declared: u32, actual: u32 },
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::Truncated => f.write_str("truncated message"),
            HeaderError::BadMagic(m) => write!(f, "bad header magic {m:#010x}"),
            HeaderError::BadKind(k) => write!(f, "bad message kind {k}"),
            HeaderError::BadCtlOp(o) => write!(f, "bad control op {o}"),
            HeaderError::BadLength { declared, actual } => {
                write!(f, "bad length: header says {declared}, wire has {actual}")
            }
        }
    }
}

impl Header {
    /// Serialise to the 48-byte wire format.
    pub fn to_bytes(&self) -> [u8; HEADER_SIZE] {
        let mut b = [0u8; HEADER_SIZE];
        b[0..4].copy_from_slice(&HEADER_MAGIC.to_le_bytes());
        b[4] = self.kind as u8;
        b[5] = self.ctl_op as u8;
        b[6..8].copy_from_slice(&self.src.to_le_bytes());
        b[8..10].copy_from_slice(&self.dst.to_le_bytes());
        b[12..16].copy_from_slice(&self.tag.to_le_bytes());
        b[16..20].copy_from_slice(&self.seq.to_le_bytes());
        b[20..24].copy_from_slice(&self.payload_len.to_le_bytes());
        // Bytes 24..48: reserved/envelope padding (as real headers carry
        // context ids, request pointers, etc.). A deterministic pattern so
        // flips there are representative but inert. `WireMsg` constructors
        // overwrite 24..28 with the message CRC; parse never reads any of
        // this region, so guard-off behaviour is unchanged.
        for (i, slot) in b[24..].iter_mut().enumerate() {
            *slot = (0xA0 + i as u8) ^ (self.seq as u8);
        }
        b
    }

    /// Parse and validate a header from raw wire bytes.
    pub fn parse(raw: &[u8]) -> Result<Header, HeaderError> {
        if raw.len() < HEADER_SIZE {
            return Err(HeaderError::Truncated);
        }
        let word = |o: usize| u32::from_le_bytes(raw[o..o + 4].try_into().unwrap());
        let magic = word(0);
        if magic != HEADER_MAGIC {
            return Err(HeaderError::BadMagic(magic));
        }
        let kind = match raw[4] {
            1 => MsgKind::Control,
            2 => MsgKind::Data,
            k => return Err(HeaderError::BadKind(k)),
        };
        let ctl_op = CtlOp::from_u8(raw[5]).ok_or(HeaderError::BadCtlOp(raw[5]))?;
        let src = u16::from_le_bytes(raw[6..8].try_into().unwrap());
        let dst = u16::from_le_bytes(raw[8..10].try_into().unwrap());
        let tag = word(12);
        let seq = word(16);
        let payload_len = word(20);
        let actual = (raw.len() - HEADER_SIZE) as u32;
        if payload_len > MAX_PAYLOAD || payload_len != actual {
            return Err(HeaderError::BadLength {
                declared: payload_len,
                actual,
            });
        }
        if kind == MsgKind::Control && payload_len != 0 {
            return Err(HeaderError::BadLength {
                declared: payload_len,
                actual,
            });
        }
        Ok(Header {
            kind,
            ctl_op,
            src,
            dst,
            tag,
            seq,
            payload_len,
        })
    }
}

/// A message on the wire: raw bytes (header + payload), exactly what the
/// channel-level fault injector can flip bits in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMsg {
    /// Raw bytes: 48-byte header followed by the payload.
    pub raw: Vec<u8>,
}

impl WireMsg {
    /// Build a data message.
    pub fn data(src: u16, dst: u16, tag: u32, seq: u32, payload: &[u8]) -> WireMsg {
        WireMsg::data_with(src, dst, tag, seq, payload.len() as u32, |b| {
            b.copy_from_slice(payload)
        })
    }

    /// Build a data message of `len` payload bytes, letting `fill` write
    /// the payload region in place: the wire image is allocated once at
    /// its final size, filled, then sealed — so senders can peek guest
    /// memory straight into the packet with no intermediate buffer.
    pub fn data_with(
        src: u16,
        dst: u16,
        tag: u32,
        seq: u32,
        len: u32,
        fill: impl FnOnce(&mut [u8]),
    ) -> WireMsg {
        let h = Header {
            kind: MsgKind::Data,
            ctl_op: CtlOp::None,
            src,
            dst,
            tag,
            seq,
            payload_len: len,
        };
        let mut raw = vec![0u8; HEADER_SIZE + len as usize];
        raw[..HEADER_SIZE].copy_from_slice(&h.to_bytes());
        fill(&mut raw[HEADER_SIZE..]);
        let mut m = WireMsg { raw };
        m.seal();
        m
    }

    /// Build a control message.
    pub fn control(op: CtlOp, src: u16, dst: u16, tag: u32, seq: u32) -> WireMsg {
        let h = Header {
            kind: MsgKind::Control,
            ctl_op: op,
            src,
            dst,
            tag,
            seq,
            payload_len: 0,
        };
        let mut m = WireMsg {
            raw: h.to_bytes().to_vec(),
        };
        m.seal();
        m
    }

    /// Stamp the CRC word (bytes 24..28) with the CRC over the live
    /// header fields and the payload. The remaining padding (28..48) is
    /// deliberately *not* covered: flips there were inert pre-guard and
    /// must stay inert under the guard too.
    fn seal(&mut self) {
        let crc = self.computed_crc();
        self.raw[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
    }

    /// The CRC carried on the wire (bytes 24..28).
    pub fn stored_crc(&self) -> u32 {
        if self.raw.len() < CRC_OFFSET + 4 {
            return 0;
        }
        u32::from_le_bytes(self.raw[CRC_OFFSET..CRC_OFFSET + 4].try_into().unwrap())
    }

    /// The CRC this wire image *should* carry: header fields 0..24 plus
    /// the payload.
    pub fn computed_crc(&self) -> u32 {
        let hdr = &self.raw[..CRC_COVERED_HEADER.min(self.raw.len())];
        let payload = &self.raw[HEADER_SIZE.min(self.raw.len())..];
        crc32(&[hdr, payload])
    }

    /// Receiver-side integrity check (the fl-guard channel detector).
    pub fn crc_ok(&self) -> bool {
        self.raw.len() >= HEADER_SIZE && self.stored_crc() == self.computed_crc()
    }

    /// Total bytes on the wire.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the message is empty (never true for well-formed messages).
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Parse the header.
    pub fn header(&self) -> Result<Header, HeaderError> {
        Header::parse(&self.raw)
    }

    /// The payload bytes (after the header).
    pub fn payload(&self) -> &[u8] {
        &self.raw[HEADER_SIZE.min(self.raw.len())..]
    }

    /// Flip one bit, `offset` bytes into the wire image — the §3.3 fault
    /// model applied to this message.
    pub fn flip_bit(&mut self, offset: usize, bit: u8) {
        if let Some(b) = self.raw.get_mut(offset) {
            *b ^= 1 << (bit & 7);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let m = WireMsg::data(3, 7, 99, 12, &[1, 2, 3, 4]);
        let h = m.header().unwrap();
        assert_eq!(h.kind, MsgKind::Data);
        assert_eq!((h.src, h.dst, h.tag, h.seq), (3, 7, 99, 12));
        assert_eq!(h.payload_len, 4);
        assert_eq!(m.payload(), &[1, 2, 3, 4]);
        assert_eq!(m.len(), HEADER_SIZE + 4);
    }

    #[test]
    fn control_roundtrip() {
        let m = WireMsg::control(CtlOp::Barrier, 0, 1, 2, 5);
        let h = m.header().unwrap();
        assert_eq!(h.kind, MsgKind::Control);
        assert_eq!(h.ctl_op, CtlOp::Barrier);
        assert_eq!(h.payload_len, 0);
        assert_eq!(m.len(), HEADER_SIZE);
    }

    #[test]
    fn corrupted_magic_detected() {
        let mut m = WireMsg::data(0, 1, 0, 0, &[9]);
        m.flip_bit(1, 3);
        assert!(matches!(m.header(), Err(HeaderError::BadMagic(_))));
    }

    #[test]
    fn corrupted_kind_detected() {
        let mut m = WireMsg::data(0, 1, 0, 0, &[9]);
        m.flip_bit(4, 2); // kind 2 -> 6
        assert!(matches!(m.header(), Err(HeaderError::BadKind(6))));
    }

    #[test]
    fn corrupted_length_detected() {
        let mut m = WireMsg::data(0, 1, 0, 0, &[9, 9, 9]);
        m.flip_bit(20, 7); // payload_len 3 -> 131
        assert!(matches!(m.header(), Err(HeaderError::BadLength { .. })));
    }

    #[test]
    fn corrupted_tag_parses_but_mismatches() {
        // Tag corruption is NOT detectable at parse time — the message
        // simply never matches, the paper's hang mode.
        let mut m = WireMsg::data(0, 1, 5, 0, &[9]);
        m.flip_bit(12, 4);
        let h = m.header().unwrap();
        assert_eq!(h.tag, 5 ^ 16);
    }

    #[test]
    fn payload_corruption_is_silent() {
        let mut m = WireMsg::data(0, 1, 5, 0, &2.0f64.to_le_bytes());
        m.flip_bit(HEADER_SIZE + 6, 4);
        assert!(m.header().is_ok());
        let v = f64::from_le_bytes(m.payload().try_into().unwrap());
        assert_ne!(v, 2.0);
    }

    #[test]
    fn padding_flips_are_inert() {
        let mut m = WireMsg::data(2, 3, 4, 5, &[8, 8]);
        m.flip_bit(30, 1);
        let h = m.header().unwrap();
        assert_eq!((h.src, h.dst, h.tag, h.seq, h.payload_len), (2, 3, 4, 5, 2));
    }

    #[test]
    fn truncated_detected() {
        assert!(matches!(
            Header::parse(&[0u8; 10]),
            Err(HeaderError::Truncated)
        ));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn fresh_messages_carry_valid_crc() {
        assert!(WireMsg::data(3, 7, 99, 12, &[1, 2, 3, 4]).crc_ok());
        assert!(WireMsg::control(CtlOp::Cts, 0, 1, 2, 5).crc_ok());
    }

    #[test]
    fn crc_catches_covered_flips() {
        // Every bit of the live header fields and the payload is covered.
        let base = WireMsg::data(2, 3, 4, 5, &[8, 8]);
        for offset in (0..CRC_COVERED_HEADER).chain(HEADER_SIZE..base.len()) {
            for bit in 0..8 {
                let mut m = base.clone();
                m.flip_bit(offset, bit);
                assert!(!m.crc_ok(), "flip at {offset}.{bit} escaped the CRC");
            }
        }
        // A flip in the CRC word itself is also caught.
        let mut m = base.clone();
        m.flip_bit(CRC_OFFSET + 1, 0);
        assert!(!m.crc_ok());
    }

    #[test]
    fn crc_ignores_residual_padding() {
        // Padding flips were inert pre-guard; the CRC must not convert
        // them into detections, or guard-on coverage would be inflated.
        let mut m = WireMsg::data(2, 3, 4, 5, &[8, 8]);
        m.flip_bit(30, 1);
        assert!(m.crc_ok());
        assert!(m.header().is_ok());
    }
}
