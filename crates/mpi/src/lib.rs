//! # fl-mpi — a simulated MPI-1.1 message layer
//!
//! The substrate substitution for MPICH (see DESIGN.md). The layering
//! follows Figure 2 of the paper:
//!
//! ```text
//!   User App          FL application code (crates/apps)
//!   ------- API       MPI_* wrapper functions at 0x40000000 (fl-lang link)
//!   ------- ADI       match/queue/collectives semantics   (world.rs)
//!   ------- Channel   raw byte transport + traffic accounting; the
//!                     message fault injector flips bits HERE (§3.3)
//! ```
//!
//! Point-to-point sends are eager below a threshold and RTS/CTS
//! rendezvous above it; barriers are dissemination rounds of header-only
//! control messages; broadcast/reduce/allreduce are flat root-based
//! exchanges. Headers are parsed from raw bytes on arrival, so injected
//! bit flips corrupt real fields with the paper's three outcomes:
//! malformed packets abort the job, mismatched envelopes hang it, and
//! payload corruption silently reaches user buffers.

pub mod message;
pub mod profile;
pub mod world;

pub use message::{
    crc32, CtlOp, Header, HeaderError, MsgKind, WireMsg, CRC_COVERED_HEADER, CRC_OFFSET,
    HEADER_SIZE, MAX_PAYLOAD,
};
pub use profile::TrafficProfile;
pub use world::{
    ChannelGuard, FailureDetector, Health, HogRank, MessageFault, MessageFaultHit, MpiWorld,
    NetFault, NetFaultKind, NodeKill, Partition, PendingInjection, QuantumTax, RankKill,
    WorldConfig, WorldExit, WorldSnapshot, ANY_SOURCE, MAX_USER_TAG, MPIX_ERR_PROC_FAILED,
};
