//! The MPI world: N simulated processes, a cooperative scheduler, and the
//! ADI-level semantics of MPI-1.1 point-to-point and collective calls.
//!
//! Semantics reproduced from the paper:
//!
//! * **Error handlers (§6.2).** MPICH (and LAM/LA-MPI) raise the
//!   user-registered error handler *only* when argument checks fail —
//!   e.g. a non-existent destination rank, which is exactly what a stack
//!   fault that corrupts an argument produces. Abnormal termination of a
//!   peer aborts the whole application without invoking the handler.
//! * **Crash containment (§5.1).** A signal in any rank aborts the whole
//!   job (MPICH handles SIGSEGV/SIGBUS and terminates); so do malformed
//!   wire messages ("MPICH internal error").
//! * **Hangs.** A corrupted tag or source strands a receive forever; the
//!   scheduler detects global quiescence (deadlock) immediately, and a
//!   spinning rank runs out of its instruction budget — the deterministic
//!   version of the paper's wait-one-minute rule.
//! * **Eager vs rendezvous.** Payloads up to the eager threshold travel as
//!   one data message; larger ones handshake RTS/CTS in control messages,
//!   which is where much of a control-dominated application's header
//!   traffic comes from.
//! * **Nondeterminism (§4.2.2).** With `nondet` scheduling the per-round
//!   rank order is shuffled, so arrival order — and thus ANY_SOURCE
//!   matching order — varies across runs, reproducing NAMD's
//!   nondeterministic execution.

use crate::message::{CtlOp, Header, MsgKind, WireMsg, MAX_PAYLOAD};
use crate::profile::TrafficProfile;
use fl_isa::{Gpr, Syscall};
use fl_machine::{
    ExecStats, Exit, Machine, MachineConfig, MachineSnapshot, ProgramImage, SharedCode,
};
use fl_obs::EventKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Maximum user tag value (larger tags are reserved for collectives).
pub const MAX_USER_TAG: u32 = 0xFFFF;
/// ANY_SOURCE wildcard as passed by applications (-1).
pub const ANY_SOURCE: i32 = -1;
/// Tag base for collective operations.
const COLL_TAG_BASE: u32 = 0x4000_0000;
/// Tag base for barrier tokens.
const BARRIER_TAG_BASE: u32 = 0x4100_0000;
/// Largest application checkpoint fl_ckpt_save accepts (16 MiB).
const MAX_CKPT_BYTES: u32 = 16 << 20;

/// The error class an MPI call returns (in EAX) after a peer's process
/// failure, when the world runs in app-visible ULFM mode. FL programs
/// test it as `ret + 1 == 0`, the wrapping equivalent of `ret == -1`.
pub const MPIX_ERR_PROC_FAILED: u32 = 0xFFFF_FFFF;

/// Channel-level integrity guard (fl-guard's wire detector). Default-off:
/// with `enabled == false` the world's behaviour — and every event it
/// emits — is bit-identical to the pre-guard scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelGuard {
    /// Verify the per-message CRC at the receiving ADI and NACK failures
    /// back to the sender's retransmit queue.
    pub enabled: bool,
    /// Redeliveries allowed per sequence number before the guard declares
    /// the channel unrecoverable ([`WorldExit::GuardDetected`]).
    pub max_retransmits: u8,
}

impl Default for ChannelGuard {
    fn default() -> Self {
        ChannelGuard {
            enabled: false,
            max_retransmits: 3,
        }
    }
}

/// Heartbeat failure detector (fl-ft's process-failure layer).
/// Default-off: with `enabled == false` the scheduler takes no new code
/// paths and the world's behaviour — and every event it emits — is
/// bit-identical to the pre-ft scheduler.
///
/// Liveness is piggybacked on normal traffic: a rank is "heard" whenever
/// it retires a quantum or one of its messages is ingested anywhere.
/// Quiet ranks are probed explicitly every `probe_rounds`; an alive rank
/// answers even while blocked, so only a dead or wedged process can stay
/// silent long enough to cross `suspect_rounds` and raise
/// [`WorldExit::RankFailed`] — instead of stranding its peers in a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureDetector {
    /// Run the detector (and suppress the instant-deadlock verdict while
    /// a failed rank quiesces its peers, so suspicion can mature).
    pub enabled: bool,
    /// Rounds of silence before an explicit liveness probe (re-sent
    /// every `probe_rounds` while the silence lasts).
    pub probe_rounds: u64,
    /// Rounds of silence before the rank is declared failed.
    pub suspect_rounds: u64,
    /// Accrual mode (fl-perturb): instead of the fixed `suspect_rounds`
    /// deadline, suspicion matures at `max(8 * suspect_rounds, 256, 4 *
    /// max_gap)` where `max_gap` is the longest silence the rank has
    /// ever recovered from (the 256-round floor clears the credit
    /// scheduler's 200-round worst-case starvation gap for any
    /// cadence). A rank that is merely *slow* — starved by a
    /// scheduling tax but still progressing — keeps teaching the
    /// detector its worst-case gap and is never declared failed, while
    /// a dead or wedged process stays silent past any learned gap and
    /// is still caught. Default off: threshold arithmetic is
    /// bit-identical to the fixed detector.
    pub accrual: bool,
}

impl Default for FailureDetector {
    fn default() -> Self {
        FailureDetector {
            enabled: false,
            probe_rounds: 8,
            suspect_rounds: 32,
            accrual: false,
        }
    }
}

/// Process-level liveness of a rank (fl-ft's rank-kill fault model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Executing and responsive.
    Alive,
    /// Resident but silent: never scheduled, answers no probes, sends
    /// nothing (the "wedged" kill variant).
    Wedged,
    /// Gone: never scheduled; messages addressed to it are dropped at
    /// the channel.
    Dead,
}

/// A process-level fault: kill (or wedge) `rank` once its retired
/// basic-block count reaches `at_blocks`.
///
/// `Copy`, so unlike a [`PendingInjection`] it rides inside
/// [`WorldSnapshot`]s. A recovery path that restores a pre-fire
/// checkpoint must clear it with [`MpiWorld::take_rank_kill`] or the
/// kill re-fires identically on re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// Victim rank.
    pub rank: u16,
    /// Retired-block clock at which the process dies (checked at
    /// scheduling-round granularity, like an external `kill -9`).
    pub at_blocks: u64,
    /// True: the process stays resident but stops executing and
    /// responding. False: it is gone outright.
    pub wedge: bool,
}

/// What a [`NetFault`] does to the struck in-flight message (fl-chaos'
/// lossy-network models). Every kind targets exactly one message — the
/// one whose wire bytes cover the drawn cumulative receive offset — so
/// the draw space is identical to [`MessageFault`]'s and trials stay
/// schedulable against the same per-rank traffic volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The message vanishes at the channel (a lossy link).
    Drop,
    /// The message is delivered, then delivered again one round later
    /// (a duplicating link; no receiver-side dedup exists below the
    /// guard, exactly like raw datagrams).
    Duplicate,
    /// Delivery is deferred by `delay_rounds` scheduler rounds, letting
    /// later traffic overtake it (bounded-delay reordering).
    Reorder {
        /// Rounds the message waits before delivery.
        delay_rounds: u64,
    },
    /// One wire byte is XOR-inverted in flight: a payload byte when the
    /// message has one (which the CRC covers — the guard's provable
    /// catch), else the CRC field itself of a header-only message.
    Corrupt,
}

/// A channel-level network fault (fl-chaos): apply `kind` to the message
/// whose bytes cover cumulative received-volume offset `at_recv_byte` on
/// `rank`. One-shot, `Copy` (rides inside [`WorldSnapshot`]s), and
/// drawn/armed exactly like a [`MessageFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFault {
    /// Receiving rank.
    pub rank: u16,
    /// Offset into the rank's cumulative incoming byte stream.
    pub at_recv_byte: u64,
    /// What happens to the struck message.
    pub kind: NetFaultKind,
}

/// A rank-set network partition (fl-chaos): once `trigger_rank`'s
/// retired-block clock reaches `at_blocks`, every channel between the
/// `mask` group and its complement is severed for `rounds` scheduler
/// rounds — all cross-partition traffic (including guard redeliveries)
/// silently vanishes. `Copy`; carried by [`WorldSnapshot`]s, so a
/// recovery path restoring a pre-trigger checkpoint replays it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Bitmask of ranks on one side of the cut (bit r = rank r).
    pub mask: u32,
    /// Rank whose retired-block clock schedules the cut.
    pub trigger_rank: u16,
    /// Retired-block clock value at which the cut begins.
    pub at_blocks: u64,
    /// Scheduler rounds the cut lasts.
    pub rounds: u64,
}

/// A node-level fault (FINJ's node model, via fl-chaos): once
/// `trigger_rank`'s retired-block clock reaches `at_blocks`, every
/// not-yet-exited rank in `mask` dies (or wedges) at once — the
/// machine-check / PSU-failure shape where co-located ranks share fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeKill {
    /// Bitmask of ranks sharing the failing node (bit r = rank r).
    pub mask: u32,
    /// Rank whose retired-block clock schedules the failure.
    pub trigger_rank: u16,
    /// Retired-block clock value at which the node fails.
    pub at_blocks: u64,
    /// True: processes stay resident but silent. False: gone outright.
    pub wedge: bool,
}

/// A performance-interference fault (fl-perturb): once `rank`'s
/// retired-block clock reaches `at_blocks`, a multiplicative tax of
/// `tax_permille`/1000 is levied on that rank's scheduling quantum for
/// `rounds` scheduler rounds. The scheduler accounts the tax as
/// *starvation credit*: the taxed rank accrues `1000 - tax_permille`
/// credit per round and runs a full quantum only when a whole quantum's
/// worth (1000) has accrued — so a 900‰ tax schedules the rank once
/// every 10 rounds, exactly the cadence an external CPU hog co-scheduled
/// on its core would impose. Entirely on the deterministic round/block
/// clocks; `Copy`, rides [`WorldSnapshot`]s like the other chaos faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantumTax {
    /// Taxed rank.
    pub rank: u16,
    /// Retired-block clock value at which the tax begins.
    pub at_blocks: u64,
    /// Scheduler rounds the tax lasts.
    pub rounds: u64,
    /// Share of each round's quantum taken, in permille (capped 999).
    pub tax_permille: u32,
}

/// A node-level interference fault (fl-perturb): once `trigger_rank`'s
/// retired-block clock reaches `at_blocks`, a co-scheduled hog steals
/// `share_permille`/1000 of *every* round's quantum from every rank in
/// `mask` for `rounds` rounds. Unlike [`QuantumTax`]'s starvation
/// cadence, every victim still runs every round — just slower — so the
/// group degrades uniformly without ever going silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HogRank {
    /// Bitmask of ranks sharing the hogged node (bit r = rank r).
    pub mask: u32,
    /// Rank whose retired-block clock schedules the hog's arrival.
    pub trigger_rank: u16,
    /// Retired-block clock value at which the hog lands.
    pub at_blocks: u64,
    /// Scheduler rounds the hog stays.
    pub rounds: u64,
    /// Share of each victim's quantum the hog steals, in permille
    /// (capped 999).
    pub share_permille: u32,
}

/// Pristine wire images a sender keeps for retransmission (per rank).
const SENT_HISTORY_CAP: usize = 16;

/// A NACKed message waiting out its backoff before redelivery.
#[derive(Debug, Clone, PartialEq)]
struct Redelivery {
    due_round: u64,
    src: u16,
    dst: u16,
    msg: WireMsg,
}

/// World configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldConfig {
    /// Number of ranks.
    pub nranks: u16,
    /// Instructions per scheduling slice.
    pub quantum: u64,
    /// RNG seed (scheduling shuffle in nondet mode).
    pub seed: u64,
    /// Shuffle rank scheduling order each round (NAMD-style arrival
    /// nondeterminism).
    pub nondet: bool,
    /// Per-rank machine configuration (budget = hang bound).
    pub machine: MachineConfig,
    /// Payloads larger than this use the RTS/CTS rendezvous protocol.
    pub eager_threshold: u32,
    /// Channel-level CRC verification + retransmit (default off).
    pub guard: ChannelGuard,
    /// Heartbeat process-failure detection (default off).
    pub ft: FailureDetector,
    /// Fold every outbound wire message into a per-rank rolling CRC32
    /// digest (replica voting's comparison key; default off).
    pub track_digests: bool,
    /// App-visible ULFM-style fault tolerance (fl-ulfm). When on, a
    /// matured failure suspicion does **not** end the world with
    /// [`WorldExit::RankFailed`]; instead it becomes failure knowledge
    /// the application can observe: blocked operations involving the
    /// failed process complete with [`MPIX_ERR_PROC_FAILED`], and the
    /// `MPIX_Comm_*` fault-tolerance calls (ack / get_acked / agree /
    /// shrink) operate over the survivor set. Default off — the
    /// scheduler takes no new code paths and stays bit-identical.
    pub ulfm: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            nranks: 4,
            quantum: 10_000,
            seed: 0x5EED,
            nondet: false,
            machine: MachineConfig::default(),
            eager_threshold: 1024,
            guard: ChannelGuard::default(),
            ft: FailureDetector::default(),
            track_digests: false,
            ulfm: false,
        }
    }
}

/// Why a blocked rank is blocked.
#[derive(Debug, Clone, PartialEq)]
enum Blocked {
    Recv {
        buf: u32,
        cap: u32,
        src: i32,
        tag: u32,
    },
    SendRts {
        dst: u16,
        tag: u32,
        payload: Vec<u8>,
        seq: u32,
    },
    Barrier {
        round: u32,
        seq: u32,
    },
    ReduceRoot {
        acc: Vec<f64>,
        remaining: u32,
        recvbuf: u32,
        tag: u32,
    },
    /// Blocked in MPIX_Comm_agree carrying the caller's contribution;
    /// completes once every surviving participant has arrived.
    Agree {
        flag: u32,
    },
    /// Blocked in MPIX_Comm_shrink; completes when the survivor set is
    /// stable and fully assembled, yielding the caller's new rank.
    Shrink,
}

/// Scheduler-visible rank state.
#[derive(Debug, Clone, PartialEq)]
enum Status {
    Ready,
    Blocked(Blocked),
    Finalized,
    Exited,
}

struct Rank {
    machine: Machine,
    status: Status,
    errhandler: bool,
    /// Arrived, parsed, unmatched messages.
    arrived: VecDeque<(Header, WireMsg)>,
    /// Cumulative bytes ingested at the channel level.
    received_bytes: u64,
    /// Per-sender sequence counter.
    send_seq: u32,
    /// Collective sequence counter (MPI requires identical collective
    /// order on every rank).
    coll_seq: u32,
    profile: TrafficProfile,
    /// Sender-side retransmit queue: pristine wire images of recent sends,
    /// keyed by sequence number. Populated only when the guard is on.
    sent_history: VecDeque<(u32, WireMsg)>,
    /// Process-level liveness (always `Alive` unless a rank kill fired).
    health: Health,
    /// Last scheduler round this rank showed life (executed, or had a
    /// message ingested, or answered a probe). Detector bookkeeping;
    /// frozen at 0 when the detector is off.
    last_heard: u64,
    /// Longest silence (in rounds) this rank has ever recovered from —
    /// the accrual detector's learned progress-rate floor. Frozen at 0
    /// when the detector is off.
    max_gap: u64,
    /// Rolling CRC32 over every outbound wire message (replica voting's
    /// comparison key). Frozen at 0 unless `cfg.track_digests`.
    out_digest: u32,
    /// Application-level in-memory checkpoint (fl_ckpt_save's buffer
    /// copy). Survives a shrink, which is the whole point.
    ckpt: Option<Vec<u8>>,
    /// Failure knowledge this rank has acknowledged
    /// (MPIX_Comm_failure_ack), as a bitmask of dead ranks.
    acked: u32,
}

/// A fault to apply to a rank's machine state at a given local
/// instruction count — the injector-daemon wakeup of §3.1.
pub struct PendingInjection {
    /// Target rank.
    pub rank: u16,
    /// Rank-local instruction count at which to fire (first).
    pub at_insns: u64,
    /// The corruption to apply (built by `fl-inject` at fire time so heap
    /// scans and stack walks see the live state). `FnMut` so persistent
    /// faults can re-assert.
    pub action: Box<dyn FnMut(&mut Machine) + Send>,
    /// `None` fires once (a transient upset). `Some(p)` re-fires every
    /// `p` instructions — the stuck-at / long-duration fault model of
    /// the §8.1 hardware studies.
    pub period: Option<u64>,
}

impl PendingInjection {
    /// A one-shot (transient) injection.
    pub fn once(
        rank: u16,
        at_insns: u64,
        action: impl FnMut(&mut Machine) + Send + 'static,
    ) -> PendingInjection {
        PendingInjection {
            rank,
            at_insns,
            action: Box::new(action),
            period: None,
        }
    }

    /// A persistent injection re-asserted every `period` instructions.
    pub fn persistent(
        rank: u16,
        at_insns: u64,
        period: u64,
        action: impl FnMut(&mut Machine) + Send + 'static,
    ) -> PendingInjection {
        PendingInjection {
            rank,
            at_insns,
            action: Box::new(action),
            period: Some(period.max(1)),
        }
    }
}

/// A channel-level message fault (§3.3): flip `bit` of the byte at
/// cumulative received-volume offset `at_recv_byte` on `rank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFault {
    /// Receiving rank.
    pub rank: u16,
    /// Offset into the rank's cumulative incoming byte stream.
    pub at_recv_byte: u64,
    /// Bit index 0–7.
    pub bit: u8,
}

/// Where an armed [`MessageFault`] actually landed — recorded when the
/// flip is applied, for the §6.2 header-vs-payload analysis ("perturbing
/// the headers has about a 40 percent probability of corrupting the
/// Cactus execution").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFaultHit {
    /// Byte offset within the struck message.
    pub offset_in_msg: usize,
    /// True if the byte was in the 48-byte header.
    pub in_header: bool,
    /// Total wire length of the struck message.
    pub msg_len: usize,
}

/// Final disposition of a world run — raw material for the §5.1
/// manifestation classification done in `fl-inject`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldExit {
    /// Every rank reached MPI_Finalize and exited 0.
    Clean,
    /// Abnormal termination: signal, heap corruption, malformed wire
    /// message, nonzero exit, exit before finalize, or MPI_Abort.
    Crashed { rank: u16, reason: String },
    /// An application internal check aborted (abort_msg / assert).
    AppAborted { rank: u16, msg: String },
    /// The user-registered MPI error handler fired (argument check).
    MpiDetected { rank: u16, what: String },
    /// Deadlock or instruction budget exhaustion.
    Hung { reason: String },
    /// The channel guard detected an unrecoverable fault (CRC retransmit
    /// budget exhausted, or the pristine image was no longer available).
    GuardDetected { rank: u16, what: String },
    /// The heartbeat failure detector declared `rank` dead or wedged
    /// after its suspicion threshold of silent rounds — the typed
    /// notification fl-ft recovery paths act on instead of a hang.
    RankFailed { rank: u16, round: u64 },
}

/// The simulated cluster.
pub struct MpiWorld {
    ranks: Vec<Rank>,
    cfg: WorldConfig,
    rng: StdRng,
    injection: Option<PendingInjection>,
    message_fault: Option<MessageFault>,
    message_fault_hit: Option<MessageFaultHit>,
    rank_kill: Option<RankKill>,
    /// fl-chaos: armed burst kills (correlated MTBF arrivals). Fire
    /// independently, exactly like `rank_kill`. Empty unless armed.
    rank_kills: Vec<RankKill>,
    /// fl-chaos: armed network fault (drop/dup/reorder/corrupt).
    net_fault: Option<NetFault>,
    /// Network-fault strikes applied so far (0 or 1; an accessor for
    /// miss detection, like `message_fault_hit`).
    net_faults_fired: u32,
    /// fl-chaos: armed (not yet triggered) partition.
    partition: Option<Partition>,
    /// Round before which the active partition's cut holds (0 = none).
    partition_until: u64,
    /// Active partition's rank bitmask (valid while the cut holds).
    partition_mask: u32,
    /// Cross-partition messages silently dropped by the active cut.
    partition_drops: u64,
    /// fl-chaos: armed node-level kill.
    node_kill: Option<NodeKill>,
    /// fl-perturb: armed (not yet triggered) quantum tax.
    quantum_tax: Option<QuantumTax>,
    /// Round before which the active tax holds (0 = none).
    tax_until: u64,
    /// Active tax's victim rank (valid while the tax holds).
    tax_rank: u16,
    /// Active tax's per-round levy in permille.
    tax_permille_active: u32,
    /// Starvation credit the taxed rank has accrued (runs at 1000).
    tax_credit: u64,
    /// fl-perturb: armed (not yet triggered) hog.
    hog: Option<HogRank>,
    /// Round before which the active hog holds (0 = none).
    hog_until: u64,
    /// Active hog's victim bitmask.
    hog_mask: u32,
    /// Active hog's stolen share in permille.
    hog_share: u32,
    /// Ranks starved by the active tax *this round* (recomputed every
    /// round before detection, so the detector knows a silent rank was
    /// denied its quantum rather than dead).
    starved: u32,
    /// Set once a fatal event is recorded.
    fatal: Option<WorldExit>,
    /// Scheduler rounds completed (drives retransmit backoff timing).
    round: u64,
    /// NACKed messages waiting out their backoff (guard-on only).
    pending_redelivery: VecDeque<Redelivery>,
    /// Redelivery attempts per (sender, sequence number).
    retx_attempts: HashMap<(u16, u32), u8>,
    /// ULFM mode: bitmask of ranks whose failure suspicion has matured
    /// since the last shrink — the world's app-visible failure
    /// knowledge. Frozen at 0 unless `cfg.ulfm`.
    known_failed: u32,
    /// ULFM mode: MPIX_Comm_shrink rebuilds performed.
    shrinks: u32,
    /// ULFM mode: consecutive rounds with no runnable rank (bounds the
    /// replacement for the instant-deadlock verdict).
    idle_rounds: u64,
}

impl MpiWorld {
    /// Create a world of `cfg.nranks` processes all running `image`.
    /// Pre-decodes the image once and shares the store across all ranks.
    pub fn new(image: &ProgramImage, cfg: WorldConfig) -> MpiWorld {
        MpiWorld::new_with_code(image, cfg, None)
    }

    /// Like [`MpiWorld::new`], but attach an existing campaign-wide
    /// [`SharedCode`] store (which must have been built from `image`)
    /// so decoded blocks and promoted superblocks carry over between
    /// worlds instead of being rebuilt per world.
    pub fn new_with_code(
        image: &ProgramImage,
        cfg: WorldConfig,
        code: Option<&SharedCode>,
    ) -> MpiWorld {
        assert!(cfg.nranks >= 1);
        if cfg.ulfm {
            assert!(
                cfg.nranks <= 32,
                "ulfm mode carries failure knowledge as a 32-bit rank mask"
            );
        }
        // One store for every rank: build here rather than per-machine
        // (ranks run identical text).
        let owned;
        let code = match code {
            Some(c) => Some(c),
            None if cfg.machine.fastpath && !cfg.machine.trace => {
                owned = SharedCode::build(image);
                Some(&owned)
            }
            None => None,
        };
        let ranks = (0..cfg.nranks)
            .map(|_| Rank {
                machine: Machine::load_shared(image, cfg.machine, code),
                status: Status::Ready,
                errhandler: false,
                arrived: VecDeque::new(),
                received_bytes: 0,
                send_seq: 0,
                coll_seq: 0,
                profile: TrafficProfile::default(),
                sent_history: VecDeque::new(),
                health: Health::Alive,
                last_heard: 0,
                max_gap: 0,
                out_digest: 0,
                ckpt: None,
                acked: 0,
            })
            .collect();
        MpiWorld {
            ranks,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            injection: None,
            message_fault: None,
            message_fault_hit: None,
            rank_kill: None,
            rank_kills: Vec::new(),
            net_fault: None,
            net_faults_fired: 0,
            partition: None,
            partition_until: 0,
            partition_mask: 0,
            partition_drops: 0,
            node_kill: None,
            quantum_tax: None,
            tax_until: 0,
            tax_rank: 0,
            tax_permille_active: 0,
            tax_credit: 0,
            hog: None,
            hog_until: 0,
            hog_mask: 0,
            hog_share: 0,
            starved: 0,
            fatal: None,
            round: 0,
            pending_redelivery: VecDeque::new(),
            retx_attempts: HashMap::new(),
            known_failed: 0,
            shrinks: 0,
            idle_rounds: 0,
        }
    }

    /// Arm a register/memory injection.
    pub fn set_injection(&mut self, inj: PendingInjection) {
        assert!((inj.rank as usize) < self.ranks.len());
        self.injection = Some(inj);
    }

    /// Arm a message-payload fault.
    pub fn set_message_fault(&mut self, f: MessageFault) {
        assert!((f.rank as usize) < self.ranks.len());
        self.message_fault = Some(f);
    }

    /// Arm a process-level rank kill.
    pub fn set_rank_kill(&mut self, k: RankKill) {
        assert!((k.rank as usize) < self.ranks.len());
        self.rank_kill = Some(k);
    }

    /// The armed (not yet fired) rank kill, if any.
    pub fn rank_kill(&self) -> Option<RankKill> {
        self.rank_kill
    }

    /// Disarm and return the armed rank kill, if any. Recovery paths
    /// restoring a pre-fire checkpoint call this so the kill does not
    /// re-fire on re-execution (a snapshot carries the `Copy` fault —
    /// see [`MpiWorld::snapshot`]).
    ///
    /// Also disarms every other armed *process-level* chaos fault (burst
    /// kills, the node kill): all of them are `Copy`, all ride
    /// snapshots, and a recovery path that means to survive one process
    /// fault means to survive them all.
    pub fn take_rank_kill(&mut self) -> Option<RankKill> {
        self.rank_kills.clear();
        self.node_kill = None;
        self.rank_kill.take()
    }

    /// Arm an additional, independent rank kill (fl-chaos burst model).
    /// Unlike [`MpiWorld::set_rank_kill`] this accumulates: each armed
    /// kill fires on its own victim's block clock.
    pub fn add_rank_kill(&mut self, k: RankKill) {
        assert!((k.rank as usize) < self.ranks.len());
        self.rank_kills.push(k);
    }

    /// Arm a network fault (drop/duplicate/reorder/corrupt in flight).
    pub fn set_net_fault(&mut self, f: NetFault) {
        assert!((f.rank as usize) < self.ranks.len());
        self.net_fault = Some(f);
    }

    /// Network-fault strikes applied so far (0 = armed fault missed or
    /// still pending). Where it landed is in
    /// [`MpiWorld::message_fault_hit`], shared with the bit-flip model.
    pub fn net_faults_fired(&self) -> u32 {
        self.net_faults_fired
    }

    /// Arm a rank-set partition. Masks address ranks as bits, so worlds
    /// larger than 32 ranks cannot be partitioned.
    pub fn set_partition(&mut self, p: Partition) {
        assert!(
            self.ranks.len() <= 32,
            "partitions carry rank sets as 32-bit masks"
        );
        assert!((p.trigger_rank as usize) < self.ranks.len());
        self.partition = Some(p);
    }

    /// Cross-partition messages the active (or expired) cut silently
    /// dropped — 0 means an armed partition never triggered or cut no
    /// traffic.
    pub fn partition_drops(&self) -> u64 {
        self.partition_drops
    }

    /// Arm a node-level kill (whole rank group dies at once).
    pub fn set_node_kill(&mut self, k: NodeKill) {
        assert!(
            self.ranks.len() <= 32,
            "node kills carry rank sets as 32-bit masks"
        );
        assert!((k.trigger_rank as usize) < self.ranks.len());
        self.node_kill = Some(k);
    }

    /// Arm a scheduling-quantum tax (fl-perturb interference model).
    pub fn set_quantum_tax(&mut self, t: QuantumTax) {
        assert!(
            self.ranks.len() <= 32,
            "perturb faults carry starvation state as 32-bit rank masks"
        );
        assert!((t.rank as usize) < self.ranks.len());
        self.quantum_tax = Some(t);
    }

    /// Arm a node-group quantum hog (fl-perturb interference model).
    pub fn set_hog(&mut self, h: HogRank) {
        assert!(
            self.ranks.len() <= 32,
            "hogs carry rank sets as 32-bit masks"
        );
        assert!((h.trigger_rank as usize) < self.ranks.len());
        self.hog = Some(h);
    }

    /// Ranks the active quantum tax starved this round, as a bitmask
    /// (0 = everyone who wanted a quantum got one).
    pub fn starved_mask(&self) -> u32 {
        self.starved
    }

    /// A rank's process-level liveness.
    pub fn health(&self, rank: u16) -> Health {
        self.ranks[rank as usize].health
    }

    /// A rank's rolling outbound-message digest (0 unless
    /// `cfg.track_digests` — replica voting's comparison key).
    pub fn out_digest(&self, rank: u16) -> u32 {
        self.ranks[rank as usize].out_digest
    }

    /// Where the armed message fault landed, if it has fired.
    pub fn message_fault_hit(&self) -> Option<MessageFaultHit> {
        self.message_fault_hit
    }

    /// Direct access to a rank's machine (profiling, output collection).
    pub fn machine(&self, rank: u16) -> &Machine {
        &self.ranks[rank as usize].machine
    }

    /// Mutable access (used by the injector for immediate faults).
    pub fn machine_mut(&mut self, rank: u16) -> &mut Machine {
        &mut self.ranks[rank as usize].machine
    }

    /// Decoded-code cache effectiveness counters summed over all ranks
    /// (telemetry — campaign throughput reporting, never records).
    pub fn exec_stats(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for r in &self.ranks {
            total.add(&r.machine.exec_stats);
        }
        total
    }

    /// A rank's channel-level traffic profile.
    pub fn profile(&self, rank: u16) -> &TrafficProfile {
        &self.ranks[rank as usize].profile
    }

    /// Total bytes received by a rank so far (the paper's per-process
    /// message volume, used to draw the injection offset).
    pub fn received_bytes(&self, rank: u16) -> u64 {
        self.ranks[rank as usize].received_bytes
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> u16 {
        self.ranks.len() as u16
    }

    /// ULFM mode: bitmask of ranks whose failure the world currently
    /// knows about (matured suspicions since the last shrink). Always 0
    /// when `cfg.ulfm` is off.
    pub fn ulfm_failed_mask(&self) -> u32 {
        self.known_failed
    }

    /// ULFM mode: number of app-driven MPIX_Comm_shrink rebuilds this
    /// world has performed (0 unless the application recovered itself).
    pub fn app_shrinks(&self) -> u32 {
        self.shrinks
    }

    /// Copy out every rank's retained event stream (index = rank).
    pub fn event_streams(&self) -> Vec<Vec<fl_obs::Event>> {
        self.ranks.iter().map(|r| r.machine.obs.to_vec()).collect()
    }

    /// Whether a register/memory injection is currently armed.
    pub fn injection_armed(&self) -> bool {
        self.injection.is_some()
    }

    /// Disarm and return the armed injection, if any. The guarded runner
    /// uses this to carry a not-yet-fired injection across a rollback
    /// (snapshots cannot capture the boxed action — see
    /// [`MpiWorld::snapshot`]).
    pub fn take_injection(&mut self) -> Option<PendingInjection> {
        self.injection.take()
    }

    /// Scheduler rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total redelivery attempts the channel guard has charged (0 when
    /// the guard is off or no CRC failure was ever detected).
    pub fn retransmits(&self) -> u32 {
        self.retx_attempts.values().map(|&a| a as u32).sum()
    }

    /// Whether `rank` has exited (reached MPI_Finalize and returned 0).
    pub fn rank_exited(&self, rank: u16) -> bool {
        matches!(self.ranks[rank as usize].status, Status::Exited)
    }

    /// Capture a complete deterministic checkpoint of the world.
    ///
    /// Everything that influences future execution is captured: every
    /// rank's machine (registers, FPU, copy-on-write memory pages, heap),
    /// scheduler status, unmatched in-flight messages, channel byte
    /// counters, sequence counters and traffic profile, plus the world's
    /// scheduling RNG and any armed *message* fault.
    ///
    /// The one exception is an armed [`PendingInjection`]: its action is a
    /// boxed `FnMut` closure and cannot be cloned. Snapshot the golden
    /// world *before* arming an injection and re-arm after
    /// [`WorldSnapshot::restore`] — which is the order the campaign fast
    /// path uses. A snapshot taken while an injection is armed simply does
    /// not carry it.
    ///
    /// An armed [`RankKill`] *is* carried (it is `Copy`): restoring a
    /// pre-fire checkpoint re-arms the kill, and a recovery path that
    /// means to survive it must clear it with
    /// [`MpiWorld::take_rank_kill`] after the restore.
    pub fn snapshot(&self) -> WorldSnapshot {
        WorldSnapshot {
            ranks: self
                .ranks
                .iter()
                .map(|r| RankSnapshot {
                    machine: r.machine.snapshot(),
                    status: r.status.clone(),
                    errhandler: r.errhandler,
                    arrived: r.arrived.clone(),
                    received_bytes: r.received_bytes,
                    send_seq: r.send_seq,
                    coll_seq: r.coll_seq,
                    profile: r.profile,
                    sent_history: r.sent_history.clone(),
                    health: r.health,
                    last_heard: r.last_heard,
                    max_gap: r.max_gap,
                    out_digest: r.out_digest,
                    ckpt: r.ckpt.clone(),
                    acked: r.acked,
                })
                .collect(),
            cfg: self.cfg,
            rng: self.rng.clone(),
            message_fault: self.message_fault,
            message_fault_hit: self.message_fault_hit,
            rank_kill: self.rank_kill,
            rank_kills: self.rank_kills.clone(),
            net_fault: self.net_fault,
            net_faults_fired: self.net_faults_fired,
            partition: self.partition,
            partition_until: self.partition_until,
            partition_mask: self.partition_mask,
            partition_drops: self.partition_drops,
            node_kill: self.node_kill,
            quantum_tax: self.quantum_tax,
            tax_until: self.tax_until,
            tax_rank: self.tax_rank,
            tax_permille_active: self.tax_permille_active,
            tax_credit: self.tax_credit,
            hog: self.hog,
            hog_until: self.hog_until,
            hog_mask: self.hog_mask,
            hog_share: self.hog_share,
            starved: self.starved,
            fatal: self.fatal.clone(),
            round: self.round,
            pending_redelivery: self.pending_redelivery.clone(),
            retx_attempts: self.retx_attempts.clone(),
            known_failed: self.known_failed,
            shrinks: self.shrinks,
            idle_rounds: self.idle_rounds,
        }
    }

    fn fatal(&mut self, e: WorldExit) {
        if self.fatal.is_none() {
            self.fatal = Some(e);
        }
    }

    /// Detector bookkeeping: `rank` showed life this round. Records the
    /// silence it just ended into the rank's learned `max_gap` (the
    /// accrual detector's progress-rate floor) before stamping
    /// `last_heard`.
    fn heard(&mut self, i: usize) {
        let round = self.round;
        let r = &mut self.ranks[i];
        let gap = round - r.last_heard;
        if gap > r.max_gap {
            r.max_gap = gap;
        }
        r.last_heard = round;
    }

    // --- observability -----------------------------------------------------

    /// Record an event on `rank`'s log, clocked by that rank's retired
    /// block count. One branch when recording is disabled.
    fn obs_record(&mut self, rank: usize, kind: EventKind) {
        let m = &mut self.ranks[rank].machine;
        m.obs.record(m.counters.blocks, kind);
    }

    /// Out-of-band marker: a world checkpoint was captured. Recorded on
    /// every rank. Intended for the recovery paths; the campaign fork
    /// fast path must NOT call this (forked and cold trials could no
    /// longer emit bit-identical streams).
    pub fn note_snapshot_captured(&mut self, round: u64) {
        for i in 0..self.ranks.len() {
            self.obs_record(i, EventKind::SnapshotCaptured { round });
        }
    }

    /// Out-of-band marker: this world was restored from a checkpoint
    /// taken at scheduler round `round`. See
    /// [`MpiWorld::note_snapshot_captured`] for the determinism caveat.
    pub fn note_snapshot_restored(&mut self, round: u64) {
        for i in 0..self.ranks.len() {
            self.obs_record(i, EventKind::SnapshotRestored { round });
        }
    }

    /// Out-of-band marker: the progress watchdog declared `rank` stalled
    /// after `window` consecutive no-progress windows. Guard paths only.
    pub fn note_watchdog_trip(&mut self, rank: u16, window: u32) {
        self.obs_record(rank as usize, EventKind::WatchdogTrip { window });
    }

    /// Out-of-band marker: the guard rolled this world back to the
    /// checkpoint taken at `round` and is re-executing (`restart` is
    /// 1-based). Recorded on every rank. Guard paths only.
    pub fn note_guard_restart(&mut self, restart: u32, round: u64) {
        for i in 0..self.ranks.len() {
            self.obs_record(i, EventKind::GuardRestart { restart, round });
        }
    }

    /// Out-of-band marker: this world was rebuilt over the survivors of
    /// `failed` (ULFM-style shrink). Recorded on every rank of the
    /// survivor world. fl-ft recovery paths only.
    pub fn note_world_shrunk(&mut self, failed: u16, survivors: u16) {
        for i in 0..self.ranks.len() {
            self.obs_record(i, EventKind::WorldShrunk { failed, survivors });
        }
    }

    /// Out-of-band marker: `rank` was respawned from its buddy
    /// checkpoint taken at scheduler round `round`. Recorded on every
    /// rank. fl-ft recovery paths only.
    pub fn note_rank_respawned(&mut self, rank: u16, round: u64) {
        for i in 0..self.ranks.len() {
            self.obs_record(i, EventKind::RankRespawned { rank, round });
        }
    }

    /// Out-of-band marker: replica voting excluded replica `excluded`,
    /// leaving `live` replicas. Recorded on every rank of this (surviving)
    /// replica. fl-ft recovery paths only.
    pub fn note_replica_vote(&mut self, excluded: u16, live: u16) {
        for i in 0..self.ranks.len() {
            self.obs_record(i, EventKind::ReplicaVote { excluded, live });
        }
    }

    // --- channel ---------------------------------------------------------

    /// Ingest a message at `dst`'s channel level: apply any armed fault
    /// whose offset falls inside this message, account traffic, verify
    /// integrity when the guard is on, parse. `src` is the true sending
    /// rank (scheduler knowledge, not trusted wire bytes — a flip can
    /// corrupt the header's src field).
    fn ingest(&mut self, src: u16, dst: u16, mut msg: WireMsg) {
        if self.round < self.partition_until
            && (self.partition_mask >> (src as u32) ^ self.partition_mask >> (dst as u32)) & 1 == 1
        {
            // An active partition severs the channel before anything else
            // sees the bytes: no traffic accounting, and — crucially — no
            // piggybacked heartbeat, so a cut also silences liveness
            // evidence exactly like a real switch failure.
            self.partition_drops += 1;
            return;
        }
        if self.cfg.ft.enabled {
            // Piggybacked heartbeat: traffic from a rank proves it alive.
            self.heard(src as usize);
        }
        if !matches!(self.ranks[dst as usize].health, Health::Alive) {
            // A dead process's channel is gone; a wedged one services
            // nothing. Either way the bytes vanish, exactly like a send
            // to a crashed peer on a real cluster.
            return;
        }
        // The true sequence number, read from the pristine image before
        // any fault lands (the wire copy of it may get corrupted).
        let wire_seq = u32::from_le_bytes(msg.raw[16..20].try_into().unwrap());
        if self.cfg.guard.enabled {
            let hist = &mut self.ranks[src as usize].sent_history;
            if hist.len() == SENT_HISTORY_CAP {
                hist.pop_front();
            }
            hist.push_back((wire_seq, msg.clone()));
        }
        let r = &mut self.ranks[dst as usize];
        let start = r.received_bytes;
        let len = msg.len() as u64;
        r.received_bytes += len;
        if let Some(f) = self.message_fault {
            if f.rank == dst && f.at_recv_byte >= start && f.at_recv_byte < start + len {
                let off = (f.at_recv_byte - start) as usize;
                msg.flip_bit(off, f.bit);
                let in_header = off < crate::message::HEADER_SIZE;
                self.message_fault_hit = Some(MessageFaultHit {
                    offset_in_msg: off,
                    in_header,
                    msg_len: msg.len(),
                });
                self.message_fault = None;
                self.obs_record(
                    dst as usize,
                    EventKind::MessageFaultHit {
                        offset: off as u32,
                        in_header,
                    },
                );
            }
        }
        if let Some(f) = self.net_fault {
            if f.rank == dst && f.at_recv_byte >= start && f.at_recv_byte < start + len {
                self.net_fault = None;
                self.net_faults_fired += 1;
                let off = (f.at_recv_byte - start) as usize;
                let in_header = off < crate::message::HEADER_SIZE;
                self.message_fault_hit = Some(MessageFaultHit {
                    offset_in_msg: off,
                    in_header,
                    msg_len: msg.len(),
                });
                self.obs_record(
                    dst as usize,
                    EventKind::MessageFaultHit {
                        offset: off as u32,
                        in_header,
                    },
                );
                match f.kind {
                    NetFaultKind::Drop => return,
                    NetFaultKind::Duplicate => {
                        // Deliver now, and again next round: the copy
                        // re-enters the channel like any redelivery.
                        self.pending_redelivery.push_back(Redelivery {
                            due_round: self.round + 1,
                            src,
                            dst,
                            msg: msg.clone(),
                        });
                    }
                    NetFaultKind::Reorder { delay_rounds } => {
                        // Defer delivery so later traffic overtakes it.
                        self.pending_redelivery.push_back(Redelivery {
                            due_round: self.round + delay_rounds.max(1),
                            src,
                            dst,
                            msg,
                        });
                        return;
                    }
                    NetFaultKind::Corrupt => {
                        // Invert a CRC-covered payload byte when there is
                        // one; a header-only message gets its CRC field
                        // inverted instead (harmless unguarded, caught
                        // guarded — either way the flip is in the wire).
                        let at = if msg.len() > crate::message::HEADER_SIZE {
                            crate::message::HEADER_SIZE
                                + off % (msg.len() - crate::message::HEADER_SIZE)
                        } else {
                            crate::message::CRC_OFFSET
                        };
                        msg.raw[at] ^= 0xFF;
                    }
                }
            }
        }
        if self.cfg.guard.enabled && !msg.crc_ok() {
            return self.nack(src, dst, wire_seq);
        }
        match msg.header() {
            Ok(h) => {
                self.obs_record(
                    dst as usize,
                    EventKind::MsgDeliver {
                        from: h.src,
                        tag: h.tag,
                        bytes: h.payload_len,
                    },
                );
                let r = &mut self.ranks[dst as usize];
                r.profile.record(&h);
                r.arrived.push_back((h, msg));
            }
            Err(e) => {
                // Malformed packet: MPICH internal error, fatal to the job.
                self.fatal(WorldExit::Crashed {
                    rank: dst,
                    reason: format!("MPICH internal error: {e}"),
                });
            }
        }
    }

    /// Receiver-side NACK for a CRC-rejected message: out-of-band to the
    /// simulator (a real channel would send a control frame), it charges
    /// one retransmit attempt against `(src, seq)` and schedules the
    /// pristine image from `src`'s retransmit queue for redelivery after
    /// an exponential backoff. Budget exhaustion — or a pristine image
    /// already evicted from the queue — is an unrecoverable channel
    /// fault, surfaced as [`WorldExit::GuardDetected`].
    fn nack(&mut self, src: u16, dst: u16, seq: u32) {
        self.obs_record(dst as usize, EventKind::CrcReject { from: src, seq });
        let used = self.retx_attempts.get(&(src, seq)).copied().unwrap_or(0);
        if used >= self.cfg.guard.max_retransmits {
            return self.fatal(WorldExit::GuardDetected {
                rank: dst,
                what: format!(
                    "CRC retransmit budget exhausted for seq {seq} from rank {src} \
                     after {used} redeliveries"
                ),
            });
        }
        let attempt = used + 1;
        self.retx_attempts.insert((src, seq), attempt);
        let pristine = self.ranks[src as usize]
            .sent_history
            .iter()
            .rev()
            .find(|(s, _)| *s == seq)
            .map(|(_, m)| m.clone());
        let Some(msg) = pristine else {
            return self.fatal(WorldExit::GuardDetected {
                rank: dst,
                what: format!("retransmit queue miss for seq {seq} from rank {src}"),
            });
        };
        self.obs_record(
            src as usize,
            EventKind::Retransmit {
                to: dst,
                seq,
                attempt,
            },
        );
        self.pending_redelivery.push_back(Redelivery {
            due_round: self.round + (1 << attempt.min(16)),
            src,
            dst,
            msg,
        });
    }

    /// Deliver NACKed messages whose backoff has elapsed.
    fn drain_redeliveries(&mut self) {
        let mut due = Vec::new();
        self.pending_redelivery.retain(|r| {
            if r.due_round <= self.round {
                due.push(r.clone());
                false
            } else {
                true
            }
        });
        for r in due {
            if self.fatal.is_some() {
                return;
            }
            self.ingest(r.src, r.dst, r.msg);
        }
    }

    /// Fold an outbound wire image into `rank`'s rolling digest: the
    /// CRC32 of the previous digest chained with the full message bytes.
    /// Replicas of a deterministic rank fold identical sequences, so a
    /// digest mismatch pinpoints the first divergent send.
    fn fold_digest(&mut self, rank: u16, msg: &WireMsg) {
        let r = &mut self.ranks[rank as usize];
        let chain = r.out_digest.to_le_bytes();
        r.out_digest = crate::message::crc32(&[&chain, &msg.raw[..]]);
    }

    /// Guard for destinations computed from *parsed wire headers*: a
    /// corrupted src field can name a rank that does not exist. Real
    /// MPICH fails trying to reach the nonexistent peer and aborts the
    /// job — model that rather than indexing out of range.
    fn check_wire_dst(&mut self, from: u16, dst: u16) -> bool {
        if (dst as usize) < self.ranks.len() {
            return true;
        }
        self.fatal(WorldExit::Crashed {
            rank: from,
            reason: format!("MPICH internal error: no route to rank {dst}"),
        });
        false
    }

    fn send_data(&mut self, src: u16, dst: u16, tag: u32, payload: &[u8]) {
        if !self.check_wire_dst(src, dst) {
            return;
        }
        let seq = self.ranks[src as usize].send_seq;
        self.ranks[src as usize].send_seq += 1;
        self.obs_record(
            src as usize,
            EventKind::MsgSend {
                to: dst,
                tag,
                bytes: payload.len() as u32,
            },
        );
        let m = WireMsg::data(src, dst, tag, seq, payload);
        if self.cfg.track_digests {
            self.fold_digest(src, &m);
        }
        self.ingest(src, dst, m);
    }

    /// Send `len` bytes straight out of `src`'s guest memory at `buf`:
    /// the wire image is allocated once and the payload peeked directly
    /// into it, with no intermediate copy (the allocation-free eager
    /// path; [`MpiWorld::send_data`] remains for host-side payloads).
    fn send_data_from_mem(&mut self, src: u16, dst: u16, tag: u32, buf: u32, len: u32) {
        if !self.check_wire_dst(src, dst) {
            return;
        }
        let seq = self.ranks[src as usize].send_seq;
        self.ranks[src as usize].send_seq += 1;
        self.obs_record(
            src as usize,
            EventKind::MsgSend {
                to: dst,
                tag,
                bytes: len,
            },
        );
        let mem = &self.ranks[src as usize].machine.mem;
        let m = WireMsg::data_with(src, dst, tag, seq, len, |b| mem.peek(buf, b));
        if self.cfg.track_digests {
            self.fold_digest(src, &m);
        }
        self.ingest(src, dst, m);
    }

    fn send_control(&mut self, op: CtlOp, src: u16, dst: u16, tag: u32) {
        if !self.check_wire_dst(src, dst) {
            return;
        }
        let seq = self.ranks[src as usize].send_seq;
        self.ranks[src as usize].send_seq += 1;
        self.obs_record(
            src as usize,
            EventKind::MsgSend {
                to: dst,
                tag,
                bytes: 0,
            },
        );
        let m = WireMsg::control(op, src, dst, tag, seq);
        if self.cfg.track_digests {
            self.fold_digest(src, &m);
        }
        self.ingest(src, dst, m);
    }

    // --- MPI error path ---------------------------------------------------

    /// An MPI-level error on `rank` (bad argument, truncation). Raises the
    /// registered handler (→ MpiDetected) or aborts (→ Crash), per §6.2.
    fn mpi_error(&mut self, rank: u16, what: String) {
        let handled = self.ranks[rank as usize].errhandler;
        self.obs_record(rank as usize, EventKind::MpiError { handled });
        if handled {
            self.fatal(WorldExit::MpiDetected { rank, what });
        } else {
            self.fatal(WorldExit::Crashed {
                rank,
                reason: format!("MPI error: {what}"),
            });
        }
    }

    fn valid_rank(&self, r: i32) -> bool {
        r >= 0 && (r as usize) < self.ranks.len()
    }

    /// Validate a buffer range is mapped and writable/readable.
    fn valid_buffer(&mut self, rank: u16, buf: u32, len: u32, write: bool) -> bool {
        if len == 0 {
            return true;
        }
        let m = &self.ranks[rank as usize].machine;
        let Some(mapping) = m.mem.map().lookup(buf) else {
            return false;
        };
        if write && !mapping.perms.write || !write && !mapping.perms.read {
            return false;
        }
        match buf.checked_add(len) {
            Some(end) => end <= mapping.end,
            None => false,
        }
    }

    // --- syscall servicing -------------------------------------------------

    /// Service the MPI syscall `rank` trapped on. Arguments are in the
    /// registers, marshalled there by the library wrappers.
    fn service(&mut self, rank: u16, call: Syscall) {
        let (eax, ecx, edx, ebx) = {
            let c = &self.ranks[rank as usize].machine.cpu;
            (
                c.get(Gpr::Eax),
                c.get(Gpr::Ecx),
                c.get(Gpr::Edx),
                c.get(Gpr::Ebx),
            )
        };
        match call {
            Syscall::MpiInit => {
                // MPICH allocates internal unexpected-message buffers at
                // init; they land in the shared heap tagged MPI, which is
                // exactly what the §3.2 chunk-identifier scheme exists to
                // exclude from injection.
                let m = &mut self.ranks[rank as usize].machine;
                for sz in [1024u32, 512, 2048] {
                    let _ = m.heap.alloc(&mut m.mem, sz, fl_machine::AllocTag::Mpi);
                }
                self.complete(rank, None)
            }
            Syscall::MpiCommRank => self.complete(rank, Some(rank as u32)),
            Syscall::MpiCommSize => self.complete(rank, Some(self.ranks.len() as u32)),
            Syscall::MpiErrhandlerSet => {
                self.ranks[rank as usize].errhandler = eax != 0;
                self.complete(rank, Some(0));
            }
            Syscall::MpiFinalize => {
                self.ranks[rank as usize].status = Status::Finalized;
                self.ranks[rank as usize].machine.mpi_complete(None);
            }
            Syscall::MpiAbort => {
                self.fatal(WorldExit::Crashed {
                    rank,
                    reason: "MPI_Abort called".into(),
                });
            }
            Syscall::MpiSend => {
                let (buf, len, dst, tag) = (eax, ecx, edx as i32, ebx);
                if !self.valid_rank(dst) {
                    return self.mpi_error(rank, format!("MPI_Send: invalid rank {dst}"));
                }
                if tag > MAX_USER_TAG {
                    return self.mpi_error(rank, format!("MPI_Send: invalid tag {tag}"));
                }
                if len > MAX_PAYLOAD || !self.valid_buffer(rank, buf, len, false) {
                    return self
                        .mpi_error(rank, format!("MPI_Send: invalid buffer {buf:#x}+{len}"));
                }
                if self.cfg.ulfm && self.known_failed != 0 {
                    // ULFM: a known failure revokes the communicator
                    // until the application shrinks it — every
                    // point-to-point call errors, so ranks with no dead
                    // neighbour still converge on the recovery path
                    // instead of stranding in pairwise traffic with a
                    // peer that already left for MPIX_Comm_agree.
                    return self.complete(rank, Some(MPIX_ERR_PROC_FAILED));
                }
                if len <= self.cfg.eager_threshold {
                    // Eager: peek the payload straight into the wire image.
                    self.send_data_from_mem(rank, dst as u16, tag, buf, len);
                    self.complete(rank, None);
                } else {
                    // Rendezvous: RTS now, data after CTS. MPI_Send's
                    // buffer-reuse semantics require capturing the
                    // payload at send time, so this path keeps an owned
                    // copy in the blocked state.
                    let mut payload = vec![0u8; len as usize];
                    self.ranks[rank as usize]
                        .machine
                        .mem
                        .peek(buf, &mut payload);
                    let seq = self.ranks[rank as usize].send_seq;
                    self.send_control(CtlOp::Rts, rank, dst as u16, tag);
                    self.ranks[rank as usize].status = Status::Blocked(Blocked::SendRts {
                        dst: dst as u16,
                        tag,
                        payload,
                        seq,
                    });
                }
            }
            Syscall::MpiRecv => {
                let (buf, cap, src, tag) = (eax, ecx, edx as i32, ebx);
                if src != ANY_SOURCE && !self.valid_rank(src) {
                    return self.mpi_error(rank, format!("MPI_Recv: invalid rank {src}"));
                }
                if tag > MAX_USER_TAG {
                    return self.mpi_error(rank, format!("MPI_Recv: invalid tag {tag}"));
                }
                if cap > MAX_PAYLOAD || !self.valid_buffer(rank, buf, cap, true) {
                    return self
                        .mpi_error(rank, format!("MPI_Recv: invalid buffer {buf:#x}+{cap}"));
                }
                if self.cfg.ulfm && self.known_failed != 0 {
                    // ULFM: revoked until shrink (see MPI_Send above);
                    // the buffer is left untouched.
                    return self.complete(rank, Some(MPIX_ERR_PROC_FAILED));
                }
                self.ranks[rank as usize].status =
                    Status::Blocked(Blocked::Recv { buf, cap, src, tag });
            }
            Syscall::MpiBarrier => {
                if self.cfg.ulfm && self.known_failed != 0 {
                    // ULFM: collectives over a communicator with a known
                    // failure raise the process-failure class at every
                    // caller, without consuming a collective slot — the
                    // application must agree + shrink before any
                    // collective can succeed again.
                    return self.complete(rank, Some(MPIX_ERR_PROC_FAILED));
                }
                let seq = self.ranks[rank as usize].coll_seq;
                self.ranks[rank as usize].coll_seq += 1;
                if self.ranks.len() == 1 {
                    return self.complete(rank, None);
                }
                self.barrier_send(rank, 0, seq);
                self.ranks[rank as usize].status =
                    Status::Blocked(Blocked::Barrier { round: 0, seq });
            }
            Syscall::MpiBcast => {
                if self.cfg.ulfm && self.known_failed != 0 {
                    return self.complete(rank, Some(MPIX_ERR_PROC_FAILED));
                }
                let (buf, len, root) = (eax, ecx, edx as i32);
                if !self.valid_rank(root) {
                    return self.mpi_error(rank, format!("MPI_Bcast: invalid root {root}"));
                }
                let seq = self.ranks[rank as usize].coll_seq;
                self.ranks[rank as usize].coll_seq += 1;
                let ctag = COLL_TAG_BASE + seq;
                let is_root = rank as i32 == root;
                if len > MAX_PAYLOAD || !self.valid_buffer(rank, buf, len, !is_root) {
                    return self
                        .mpi_error(rank, format!("MPI_Bcast: invalid buffer {buf:#x}+{len}"));
                }
                if is_root {
                    for d in 0..self.ranks.len() as u16 {
                        if d != rank {
                            self.send_data_from_mem(rank, d, ctag, buf, len);
                        }
                    }
                    self.complete(rank, None);
                } else {
                    self.ranks[rank as usize].status = Status::Blocked(Blocked::Recv {
                        buf,
                        cap: len,
                        src: root,
                        tag: ctag,
                    });
                }
            }
            Syscall::MpiReduce | Syscall::MpiAllreduce => {
                // Reduce(sum of f64): EAX=sendbuf, ECX=count, EDX=root (or
                // recvbuf for allreduce), EBX=recvbuf (or unused).
                let allreduce = call == Syscall::MpiAllreduce;
                if self.cfg.ulfm && self.known_failed != 0 {
                    return self.complete(rank, Some(MPIX_ERR_PROC_FAILED));
                }
                let (sendbuf, count) = (eax, ecx);
                let (root, recvbuf) = if allreduce {
                    (0i32, edx)
                } else {
                    (edx as i32, ebx)
                };
                if !self.valid_rank(root) {
                    return self.mpi_error(rank, format!("MPI_Reduce: invalid root {root}"));
                }
                let bytes = count.saturating_mul(8);
                if count > MAX_PAYLOAD / 8 || !self.valid_buffer(rank, sendbuf, bytes, false) {
                    return self
                        .mpi_error(rank, format!("MPI_Reduce: invalid sendbuf {sendbuf:#x}"));
                }
                let is_root = rank as i32 == root;
                if is_root && !self.valid_buffer(rank, recvbuf, bytes, true) {
                    return self
                        .mpi_error(rank, format!("MPI_Reduce: invalid recvbuf {recvbuf:#x}"));
                }
                if allreduce && !is_root && !self.valid_buffer(rank, recvbuf, bytes, true) {
                    return self
                        .mpi_error(rank, format!("MPI_Allreduce: invalid recvbuf {recvbuf:#x}"));
                }
                let seq = self.ranks[rank as usize].coll_seq;
                // Allreduce consumes two collective slots (reduce+bcast).
                self.ranks[rank as usize].coll_seq += if allreduce { 2 } else { 1 };
                let ctag = COLL_TAG_BASE + seq;
                if is_root {
                    let mem = &self.ranks[rank as usize].machine.mem;
                    let acc: Vec<f64> = (0..count)
                        .map(|i| {
                            let mut b = [0u8; 8];
                            mem.peek(sendbuf + i * 8, &mut b);
                            f64::from_le_bytes(b)
                        })
                        .collect();
                    if self.ranks.len() == 1 {
                        self.finish_reduce(rank, &acc, recvbuf, allreduce, ctag);
                    } else {
                        self.ranks[rank as usize].status = Status::Blocked(Blocked::ReduceRoot {
                            acc,
                            remaining: self.ranks.len() as u32 - 1,
                            recvbuf,
                            tag: ctag,
                        });
                    }
                } else {
                    self.send_data_from_mem(rank, root as u16, ctag, sendbuf, bytes);
                    if allreduce {
                        // Wait for the broadcast of the result.
                        self.ranks[rank as usize].status = Status::Blocked(Blocked::Recv {
                            buf: recvbuf,
                            cap: bytes,
                            src: root,
                            tag: ctag + 1,
                        });
                    } else {
                        self.complete(rank, None);
                    }
                }
            }
            // --- ULFM extensions (fl-ulfm) ------------------------------
            Syscall::MpixFailureAck => {
                // Acknowledge everything the world currently knows;
                // returns how many failures were newly acknowledged.
                let newly = self.known_failed & !self.ranks[rank as usize].acked;
                self.ranks[rank as usize].acked = self.known_failed;
                self.complete(rank, Some(newly.count_ones()));
            }
            Syscall::MpixFailureGetAcked => {
                let acked = self.ranks[rank as usize].acked;
                self.complete(rank, Some(acked));
            }
            Syscall::MpixAgree => {
                self.ranks[rank as usize].status = Status::Blocked(Blocked::Agree { flag: eax });
                self.try_complete_agree();
            }
            Syscall::MpixShrink => {
                self.ranks[rank as usize].status = Status::Blocked(Blocked::Shrink);
                self.try_shrink();
            }
            Syscall::CkptSave => {
                let (buf, len) = (eax, ecx);
                if len > MAX_CKPT_BYTES || !self.valid_buffer(rank, buf, len, false) {
                    return self
                        .mpi_error(rank, format!("fl_ckpt_save: invalid buffer {buf:#x}+{len}"));
                }
                let mut data = vec![0u8; len as usize];
                self.ranks[rank as usize].machine.mem.peek(buf, &mut data);
                self.ranks[rank as usize].ckpt = Some(data);
                self.obs_record(
                    rank as usize,
                    EventKind::SnapshotCaptured { round: self.round },
                );
                self.complete(rank, Some(len));
            }
            Syscall::CkptRestore => {
                let (buf, cap) = (eax, ecx);
                if cap > MAX_CKPT_BYTES || !self.valid_buffer(rank, buf, cap, true) {
                    return self.mpi_error(
                        rank,
                        format!("fl_ckpt_restore: invalid buffer {buf:#x}+{cap}"),
                    );
                }
                // The checkpoint is copied back, not consumed: a second
                // failure can roll back to the same control point.
                let data = match &self.ranks[rank as usize].ckpt {
                    None => Vec::new(),
                    Some(d) => d[..d.len().min(cap as usize)].to_vec(),
                };
                if !data.is_empty() {
                    self.ranks[rank as usize].machine.mem.poke(buf, &data);
                    self.obs_record(
                        rank as usize,
                        EventKind::SnapshotRestored { round: self.round },
                    );
                }
                self.complete(rank, Some(data.len() as u32));
            }
            other => {
                // A non-MPI syscall should never trap here.
                self.fatal(WorldExit::Crashed {
                    rank,
                    reason: format!("unexpected trap {other:?}"),
                });
            }
        }
    }

    /// Root finished accumulating a reduce: deposit and, for allreduce,
    /// broadcast the result.
    fn finish_reduce(&mut self, rank: u16, acc: &[f64], recvbuf: u32, allreduce: bool, ctag: u32) {
        // Deposit element-wise (no flattened scratch buffer); for
        // allreduce, broadcast straight out of the freshly-written
        // recvbuf.
        let mem = &mut self.ranks[rank as usize].machine.mem;
        for (i, v) in acc.iter().enumerate() {
            mem.poke(recvbuf + 8 * i as u32, &v.to_le_bytes());
        }
        if allreduce {
            let len = (acc.len() * 8) as u32;
            for d in 0..self.ranks.len() as u16 {
                if d != rank {
                    self.send_data_from_mem(rank, d, ctag + 1, recvbuf, len);
                }
            }
        }
        self.complete(rank, None);
    }

    fn complete(&mut self, rank: u16, ret: Option<u32>) {
        let r = &mut self.ranks[rank as usize];
        r.machine.mpi_complete(ret);
        r.status = Status::Ready;
    }

    // --- barrier (dissemination) -------------------------------------------

    fn barrier_rounds(&self) -> u32 {
        let n = self.ranks.len() as u32;
        32 - (n - 1).leading_zeros() // ceil(log2(n)) for n >= 2
    }

    fn barrier_send(&mut self, rank: u16, round: u32, seq: u32) {
        let n = self.ranks.len() as u32;
        let peer = ((rank as u32) + (1 << round)) % n;
        let tag = BARRIER_TAG_BASE + (seq << 6) + round;
        self.send_control(CtlOp::Barrier, rank, peer as u16, tag);
    }

    // --- matching / progress -------------------------------------------------

    /// Try to unblock `rank`; returns true if its status changed.
    fn try_unblock(&mut self, rank: usize) -> bool {
        if !matches!(self.ranks[rank].health, Health::Alive) {
            return false;
        }
        let blocked = match &self.ranks[rank].status {
            Status::Blocked(b) => b.clone(),
            _ => return false,
        };
        match blocked {
            Blocked::Recv { buf, cap, src, tag } => {
                let pos = self.ranks[rank].arrived.iter().position(|(h, _)| {
                    h.tag == tag
                        && (src == ANY_SOURCE || h.src as i32 == src)
                        && (h.kind == MsgKind::Data
                            || (h.kind == MsgKind::Control && h.ctl_op == CtlOp::Rts))
                });
                let Some(pos) = pos else { return false };
                let (h, msg) = self.ranks[rank].arrived.remove(pos).unwrap();
                match h.kind {
                    MsgKind::Control => {
                        // An RTS: grant a CTS and keep waiting for data.
                        self.send_control(CtlOp::Cts, rank as u16, h.src, h.tag);
                        false
                    }
                    MsgKind::Data => {
                        if h.payload_len > cap {
                            self.mpi_error(
                                rank as u16,
                                format!("MPI_Recv: message truncated ({} > {cap})", h.payload_len),
                            );
                            return true;
                        }
                        self.obs_record(
                            rank,
                            EventKind::MsgRecvMatch {
                                from: h.src,
                                tag: h.tag,
                                bytes: h.payload_len,
                            },
                        );
                        // `msg` is owned here: deposit its payload
                        // directly, no intermediate copy.
                        self.ranks[rank].machine.mem.poke(buf, msg.payload());
                        self.complete(rank as u16, Some(h.payload_len));
                        true
                    }
                }
            }
            Blocked::SendRts {
                dst,
                tag,
                payload,
                seq: _,
            } => {
                let pos = self.ranks[rank].arrived.iter().position(|(h, _)| {
                    h.kind == MsgKind::Control
                        && h.ctl_op == CtlOp::Cts
                        && h.src == dst
                        && h.tag == tag
                });
                let Some(pos) = pos else { return false };
                self.ranks[rank].arrived.remove(pos);
                self.send_data(rank as u16, dst, tag, &payload);
                self.complete(rank as u16, None);
                true
            }
            Blocked::Barrier { round, seq } => {
                let n = self.ranks.len() as u32;
                let expect_from = ((rank as u32) + n - (1 << round) % n) % n;
                let tag = BARRIER_TAG_BASE + (seq << 6) + round;
                let pos = self.ranks[rank].arrived.iter().position(|(h, _)| {
                    h.kind == MsgKind::Control
                        && h.ctl_op == CtlOp::Barrier
                        && h.tag == tag
                        && h.src as u32 == expect_from
                });
                let Some(pos) = pos else { return false };
                self.ranks[rank].arrived.remove(pos);
                let next = round + 1;
                if next >= self.barrier_rounds() {
                    self.complete(rank as u16, None);
                } else {
                    self.barrier_send(rank as u16, next, seq);
                    self.ranks[rank].status =
                        Status::Blocked(Blocked::Barrier { round: next, seq });
                }
                true
            }
            Blocked::ReduceRoot {
                mut acc,
                mut remaining,
                recvbuf,
                tag,
            } => {
                let mut changed = false;
                loop {
                    let pos = self.ranks[rank]
                        .arrived
                        .iter()
                        .position(|(h, _)| h.kind == MsgKind::Data && h.tag == tag);
                    let Some(pos) = pos else { break };
                    let (_, msg) = self.ranks[rank].arrived.remove(pos).unwrap();
                    for (i, c) in msg.payload().chunks_exact(8).enumerate() {
                        if let Some(slot) = acc.get_mut(i) {
                            *slot += f64::from_le_bytes(c.try_into().unwrap());
                        }
                    }
                    remaining -= 1;
                    changed = true;
                    if remaining == 0 {
                        self.finish_reduce_root(rank as u16, &acc, recvbuf, tag);
                        return true;
                    }
                }
                if changed {
                    self.ranks[rank].status = Status::Blocked(Blocked::ReduceRoot {
                        acc,
                        remaining,
                        recvbuf,
                        tag,
                    });
                }
                changed
            }
            // The fault-aware collectives never unblock on message
            // traffic — their completion is a world-level decision made
            // by `ulfm_progress` once the survivor set has assembled.
            Blocked::Agree { .. } | Blocked::Shrink => false,
        }
    }

    /// Root completion for reduce/allreduce: the allreduce flag is
    /// recovered from whether any peer awaits `tag + 1`.
    fn finish_reduce_root(&mut self, rank: u16, acc: &[f64], recvbuf: u32, tag: u32) {
        // Allreduce peers block on Recv(tag+1); a plain reduce has none.
        let allreduce = self.ranks.iter().any(
            |r| matches!(&r.status, Status::Blocked(Blocked::Recv { tag: t, .. }) if *t == tag + 1),
        );
        self.finish_reduce(rank, acc, recvbuf, allreduce, tag);
    }

    /// Run matching to fixpoint.
    fn progress(&mut self) {
        loop {
            let mut any = false;
            for i in 0..self.ranks.len() {
                if self.fatal.is_some() {
                    return;
                }
                any |= self.try_unblock(i);
            }
            if !any {
                return;
            }
        }
    }

    // --- process failure: kill + heartbeat detector -----------------------

    /// Fire the armed rank kill once the victim's retired-block clock
    /// reaches the fault's trigger (checked at round granularity, like
    /// an external `kill -9` landing between quanta).
    fn apply_rank_kill(&mut self) {
        let Some(k) = self.rank_kill else { return };
        let i = k.rank as usize;
        if matches!(self.ranks[i].status, Status::Exited) {
            // The rank finished before the kill point: the fault missed.
            self.rank_kill = None;
            return;
        }
        if self.ranks[i].machine.counters.blocks >= k.at_blocks {
            self.rank_kill = None;
            self.obs_record(i, EventKind::RankKilled { wedge: k.wedge });
            self.ranks[i].health = if k.wedge {
                Health::Wedged
            } else {
                Health::Dead
            };
        }
    }

    /// Fire every armed burst kill whose victim's block clock has been
    /// reached (fl-chaos correlated model: each arrival is an
    /// independent [`RankKill`] drawn from one MTBF process).
    fn apply_burst_kills(&mut self) {
        let kills = std::mem::take(&mut self.rank_kills);
        let mut armed = Vec::new();
        for k in kills {
            let i = k.rank as usize;
            if matches!(self.ranks[i].status, Status::Exited)
                || !matches!(self.ranks[i].health, Health::Alive)
            {
                continue; // finished first (missed) or already dead
            }
            if self.ranks[i].machine.counters.blocks >= k.at_blocks {
                self.obs_record(i, EventKind::RankKilled { wedge: k.wedge });
                self.ranks[i].health = if k.wedge {
                    Health::Wedged
                } else {
                    Health::Dead
                };
            } else {
                armed.push(k);
            }
        }
        self.rank_kills = armed;
    }

    /// Fire the armed node kill once the trigger rank's block clock is
    /// reached: every live, unfinished rank in the mask dies at once.
    fn apply_node_kill(&mut self) {
        let Some(k) = self.node_kill else { return };
        let t = k.trigger_rank as usize;
        if matches!(self.ranks[t].status, Status::Exited) {
            // The trigger rank finished before the failure point: missed.
            self.node_kill = None;
            return;
        }
        if self.ranks[t].machine.counters.blocks < k.at_blocks {
            return;
        }
        self.node_kill = None;
        for i in 0..self.ranks.len() {
            if k.mask >> (i as u32) & 1 == 0
                || matches!(self.ranks[i].status, Status::Exited)
                || !matches!(self.ranks[i].health, Health::Alive)
            {
                continue;
            }
            self.obs_record(i, EventKind::RankKilled { wedge: k.wedge });
            self.ranks[i].health = if k.wedge {
                Health::Wedged
            } else {
                Health::Dead
            };
        }
    }

    /// Activate the armed quantum tax once the victim's block clock is
    /// reached; the tax holds for the drawn window of rounds.
    fn apply_quantum_tax(&mut self) {
        let Some(t) = self.quantum_tax else { return };
        let i = t.rank as usize;
        if matches!(self.ranks[i].status, Status::Exited) {
            // The rank finished before the tax point: the fault missed.
            self.quantum_tax = None;
            return;
        }
        if self.ranks[i].machine.counters.blocks >= t.at_blocks {
            self.quantum_tax = None;
            self.tax_until = self.round + t.rounds.max(1);
            self.tax_rank = t.rank;
            self.tax_permille_active = t.tax_permille.min(999);
            self.tax_credit = 0;
        }
    }

    /// Activate the armed hog once the trigger rank's block clock is
    /// reached; the hog squats for the drawn window of rounds.
    fn apply_hog(&mut self) {
        let Some(h) = self.hog else { return };
        let t = h.trigger_rank as usize;
        if matches!(self.ranks[t].status, Status::Exited) {
            // The trigger rank finished before the hog landed: missed.
            self.hog = None;
            return;
        }
        if self.ranks[t].machine.counters.blocks >= h.at_blocks {
            self.hog = None;
            self.hog_until = self.round + h.rounds.max(1);
            self.hog_mask = h.mask;
            self.hog_share = h.share_permille.min(999);
        }
    }

    /// Per-round starvation accounting for the active quantum tax. The
    /// taxed rank accrues `1000 - tax` credit each round and runs only
    /// on rounds where a full quantum's worth has accrued; every other
    /// round it is *starved* — denied its slice exactly as if an
    /// external hog held the core. Recomputed before failure detection
    /// so the detector can tell "starved" from "silent".
    fn account_starvation(&mut self) {
        self.starved = 0;
        if self.round >= self.tax_until {
            return;
        }
        let i = self.tax_rank as usize;
        if matches!(self.ranks[i].status, Status::Exited)
            || !matches!(self.ranks[i].health, Health::Alive)
        {
            return;
        }
        self.tax_credit += 1000 - self.tax_permille_active as u64;
        if self.tax_credit >= 1000 {
            self.tax_credit -= 1000;
        } else {
            self.starved |= 1 << (self.tax_rank as u32);
            self.ranks[i].machine.exec_stats.quanta_starved += 1;
        }
    }

    /// Activate the armed partition once the trigger rank's block clock
    /// is reached; the cut holds for the drawn window of rounds.
    fn apply_partition(&mut self) {
        let Some(p) = self.partition else { return };
        let t = p.trigger_rank as usize;
        if matches!(self.ranks[t].status, Status::Exited) {
            // The trigger rank finished before the cut point: missed.
            self.partition = None;
            return;
        }
        if self.ranks[t].machine.counters.blocks >= p.at_blocks {
            self.partition = None;
            self.partition_mask = p.mask;
            self.partition_until = self.round + p.rounds.max(1);
        }
    }

    /// One detector pass: probe quiet ranks, declare a rank failed after
    /// the suspicion threshold. Probes and suspicions are charged to the
    /// rank's ring buddy `(r + 1) % n` — the same partner that stores its
    /// buddy checkpoint in the fl-ft recovery model.
    fn detect_failures(&mut self) -> Option<WorldExit> {
        let probe = self.cfg.ft.probe_rounds.max(1);
        let suspect = self.cfg.ft.suspect_rounds.max(1);
        for i in 0..self.ranks.len() {
            if matches!(self.ranks[i].status, Status::Exited) {
                continue; // departed cleanly, not a failure
            }
            let quiet = self.round - self.ranks[i].last_heard;
            let buddy = (i + 1) % self.ranks.len();
            if self.cfg.ulfm && self.known_failed >> (i as u32) & 1 == 1 {
                continue; // already app-visible knowledge; stop probing
            }
            // Fixed mode: silence matures at the static deadline.
            // Accrual mode: the deadline is calibrated from the rank's
            // observed progress rate — at least 8x the static deadline
            // and never below 256 rounds (the credit scheduler bounds a
            // starved rank's silence at 1000/(1000-tax) <= 200 rounds
            // for the 995‰ severity cap, so no first-ever starvation
            // gap can trip it whatever cadence the user picked),
            // extended to 4x the longest silence the rank has ever
            // recovered from. A taxed rank keeps ending its gaps and
            // keeps the threshold above them; only a dead or wedged
            // process stays silent past every learned gap.
            let deadline = if self.cfg.ft.accrual {
                (suspect * 8)
                    .max(256)
                    .max(self.ranks[i].max_gap.saturating_mul(4))
            } else {
                suspect
            };
            if quiet >= deadline {
                let rank = i as u16;
                self.obs_record(
                    buddy,
                    EventKind::RankSuspected {
                        rank,
                        unheard: quiet,
                    },
                );
                if self.cfg.ulfm {
                    // App-visible mode: a matured suspicion becomes
                    // failure knowledge the application acts on, not a
                    // world-terminating verdict.
                    self.known_failed |= 1 << (i as u32);
                    continue;
                }
                return Some(WorldExit::RankFailed {
                    rank,
                    round: self.round,
                });
            }
            if quiet >= probe {
                if quiet.is_multiple_of(probe) {
                    self.obs_record(
                        buddy,
                        EventKind::HeartbeatProbe {
                            to: i as u16,
                            quiet,
                        },
                    );
                }
                if matches!(self.ranks[i].health, Health::Alive)
                    && self.starved >> (i as u32) & 1 == 0
                {
                    // An alive, scheduled rank answers the (re-sent)
                    // probe even while blocked — only a dead, wedged or
                    // starved process stays silent. (Without a tax,
                    // silence resets exactly at the probe cadence, so
                    // answering on every quiet round past the probe is
                    // bit-identical to answering on the cadence.)
                    self.heard(i);
                }
            }
        }
        None
    }

    // --- ULFM (fl-ulfm): app-visible fault tolerance -----------------------

    /// One ULFM pass per scheduler round: surface failure knowledge to
    /// blocked MPI operations as [`MPIX_ERR_PROC_FAILED`] completions,
    /// then try to conclude the fault-aware collectives whose surviving
    /// participant set has fully assembled.
    fn ulfm_progress(&mut self) {
        if self.known_failed != 0 {
            self.ulfm_fail_blocked_ops();
        }
        self.try_complete_agree();
        self.try_shrink();
    }

    /// Error-complete every blocked MPI operation once a failure is
    /// known: one missing participant strands every in-progress
    /// collective (ULFM's "collectives raise MPI_ERR_PROC_FAILED at
    /// every member"), and the world treats a known failure as revoking
    /// point-to-point traffic too, so every rank — dead neighbour or
    /// not — gets an error it can turn into the recovery path instead
    /// of a hang. Only the fault-aware collectives themselves (agree,
    /// shrink) keep blocking.
    fn ulfm_fail_blocked_ops(&mut self) {
        for i in 0..self.ranks.len() {
            if !matches!(self.ranks[i].health, Health::Alive) {
                continue;
            }
            let Status::Blocked(b) = &self.ranks[i].status else {
                continue;
            };
            let doomed = !matches!(b, Blocked::Agree { .. } | Blocked::Shrink);
            if doomed {
                self.complete(i as u16, Some(MPIX_ERR_PROC_FAILED));
            }
        }
    }

    /// Conclude MPIX_Comm_agree once every surviving participant has
    /// arrived. Participants are the ranks not yet known failed and not
    /// cleanly exited; a dead-but-undetected process therefore holds the
    /// agreement until its suspicion matures — agreement is only reached
    /// over *stable* failure knowledge. The result is the OR of every
    /// contributed flag, with bit 0 forced when any failure is known.
    fn try_complete_agree(&mut self) {
        let mut result = if self.known_failed != 0 { 1u32 } else { 0 };
        let mut arrived = Vec::new();
        for i in 0..self.ranks.len() {
            if self.known_failed >> (i as u32) & 1 == 1 {
                continue;
            }
            if matches!(self.ranks[i].status, Status::Exited) {
                continue;
            }
            match &self.ranks[i].status {
                Status::Blocked(Blocked::Agree { flag }) => {
                    result |= *flag;
                    arrived.push(i as u16);
                }
                _ => return,
            }
        }
        if arrived.is_empty() {
            return;
        }
        for r in arrived {
            self.complete(r, Some(result));
        }
    }

    /// Conclude MPIX_Comm_shrink once (a) every not-known-failed,
    /// not-exited rank is blocked in it and (b) failure knowledge is
    /// complete — every dead or wedged process has been detected — so
    /// the survivor set is stable before the world is rebuilt over it.
    fn try_shrink(&mut self) {
        let mut any_blocked = false;
        for i in 0..self.ranks.len() {
            let known = self.known_failed >> (i as u32) & 1 == 1;
            if !matches!(self.ranks[i].health, Health::Alive) && !known {
                return; // a failure the detector has not matured yet
            }
            if known || matches!(self.ranks[i].status, Status::Exited) {
                continue;
            }
            if !matches!(self.ranks[i].status, Status::Blocked(Blocked::Shrink)) {
                return;
            }
            any_blocked = true;
        }
        if any_blocked {
            self.compact_world();
        }
    }

    /// Rebuild the world over the survivors: failed processes are
    /// dropped, survivors keep their relative order and are renumbered
    /// contiguously, and — exactly like MPIX_Comm_shrink handing back a
    /// brand-new communicator — all stale traffic and sequence state of
    /// the old world is discarded. Application checkpoints
    /// (`fl_ckpt_save`) survive; that is the point of them.
    fn compact_world(&mut self) {
        let dead: Vec<u16> = (0..self.ranks.len() as u16)
            .filter(|&i| !matches!(self.ranks[i as usize].health, Health::Alive))
            .collect();
        let survivors = std::mem::take(&mut self.ranks)
            .into_iter()
            .filter(|r| matches!(r.health, Health::Alive))
            .collect::<Vec<_>>();
        self.ranks = survivors;
        let new_n = self.ranks.len() as u16;
        // Armed chaos faults were drawn against the old numbering:
        // follow surviving targets through the renumbering; a fault
        // aimed at a dropped rank (or triggered by one) dies with it.
        let remap = |r: u16| -> Option<u16> {
            if dead.contains(&r) {
                return None;
            }
            Some(r - dead.iter().filter(|&&d| d < r).count() as u16)
        };
        let remap_mask = |mask: u32| -> u32 {
            let mut m = 0;
            for old in 0..32u16 {
                if mask >> old & 1 == 1 {
                    if let Some(new) = remap(old) {
                        m |= 1 << new;
                    }
                }
            }
            m
        };
        self.rank_kill = self.rank_kill.and_then(|mut k| {
            k.rank = remap(k.rank)?;
            Some(k)
        });
        self.rank_kills = std::mem::take(&mut self.rank_kills)
            .into_iter()
            .filter_map(|mut k| {
                k.rank = remap(k.rank)?;
                Some(k)
            })
            .collect();
        self.node_kill = self.node_kill.and_then(|mut nk| {
            nk.mask = remap_mask(nk.mask);
            nk.trigger_rank = remap(nk.trigger_rank)?;
            (nk.mask != 0).then_some(nk)
        });
        self.partition = self.partition.and_then(|mut p| {
            p.mask = remap_mask(p.mask);
            p.trigger_rank = remap(p.trigger_rank)?;
            Some(p)
        });
        self.partition_mask = remap_mask(self.partition_mask);
        self.net_fault = self.net_fault.and_then(|mut f| {
            f.rank = remap(f.rank)?;
            Some(f)
        });
        self.quantum_tax = self.quantum_tax.and_then(|mut t| {
            t.rank = remap(t.rank)?;
            Some(t)
        });
        if self.round < self.tax_until {
            match remap(self.tax_rank) {
                Some(nr) => self.tax_rank = nr,
                None => {
                    // The taxed rank died with the old world.
                    self.tax_until = 0;
                    self.tax_credit = 0;
                }
            }
        }
        self.hog = self.hog.and_then(|mut h| {
            h.mask = remap_mask(h.mask);
            h.trigger_rank = remap(h.trigger_rank)?;
            (h.mask != 0).then_some(h)
        });
        self.hog_mask = remap_mask(self.hog_mask);
        self.starved = remap_mask(self.starved);
        self.shrinks += 1;
        self.known_failed = 0;
        self.idle_rounds = 0;
        self.pending_redelivery.clear();
        self.retx_attempts.clear();
        let round = self.round;
        for r in &mut self.ranks {
            r.arrived.clear();
            r.sent_history.clear();
            r.send_seq = 0;
            r.coll_seq = 0;
            r.acked = 0;
            r.last_heard = round;
        }
        for f in dead {
            self.note_world_shrunk(f, new_n);
        }
        for i in 0..self.ranks.len() {
            if matches!(self.ranks[i].status, Status::Blocked(Blocked::Shrink)) {
                self.complete(i as u16, Some(i as u32));
            }
        }
    }

    // --- the scheduler ----------------------------------------------------

    /// Run the world to completion and classify the outcome.
    pub fn run(&mut self) -> WorldExit {
        loop {
            if let Some(e) = self.run_round() {
                return e;
            }
        }
    }

    /// Run one scheduler round (each runnable rank gets one quantum).
    /// Returns the outcome when the world finishes; `None` to continue.
    /// Exposed so external monitors — e.g. the §7 progress-metric
    /// watchdog — can sample counters between rounds.
    pub fn run_round(&mut self) -> Option<WorldExit> {
        self.round += 1;
        if let Some(f) = self.fatal.take() {
            return Some(f);
        }
        if self.rank_kill.is_some() {
            self.apply_rank_kill();
        }
        if !self.rank_kills.is_empty() {
            self.apply_burst_kills();
        }
        if self.node_kill.is_some() {
            self.apply_node_kill();
        }
        if self.partition.is_some() {
            self.apply_partition();
        }
        if self.quantum_tax.is_some() {
            self.apply_quantum_tax();
        }
        if self.hog.is_some() {
            self.apply_hog();
        }
        // Starvation state must be current *before* detection runs, so
        // the detector knows a silent rank was denied its quantum this
        // round rather than dead.
        self.account_starvation();
        if self.cfg.ft.enabled {
            if let Some(e) = self.detect_failures() {
                return Some(e);
            }
        }
        if self.cfg.ulfm {
            self.ulfm_progress();
            if let Some(f) = self.fatal.take() {
                return Some(f);
            }
        }
        if !self.pending_redelivery.is_empty() {
            self.drain_redeliveries();
            if let Some(f) = self.fatal.take() {
                return Some(f);
            }
        }
        self.progress();
        if let Some(f) = self.fatal.take() {
            return Some(f);
        }
        if self
            .ranks
            .iter()
            .all(|r| matches!(r.status, Status::Exited))
        {
            return Some(WorldExit::Clean);
        }
        let mut order: Vec<usize> = (0..self.ranks.len())
            .filter(|&i| {
                matches!(self.ranks[i].status, Status::Ready | Status::Finalized)
                    && matches!(self.ranks[i].health, Health::Alive)
                    && self.starved >> (i as u32) & 1 == 0
            })
            .collect();
        // Finalized ranks still need to run to their exit.
        if order.is_empty() {
            // A starved rank is interference, not deadlock: its credit
            // keeps accruing and it runs again within the tax cadence.
            if self.starved != 0 {
                return None;
            }
            // A redelivery still waiting out its backoff is traffic: let
            // rounds elapse until it becomes due, this is not a deadlock.
            if !self.pending_redelivery.is_empty() {
                return None;
            }
            // App-visible mode replaces the instant deadlock verdict with
            // a bounded idle window: the application may be legitimately
            // waiting for suspicion to mature, or for the survivor set of
            // an agree/shrink to assemble. A world that stays wedged past
            // the bound really is hung.
            if self.cfg.ulfm {
                self.idle_rounds += 1;
                let bound = self.cfg.ft.suspect_rounds.max(1) * 4 + 64;
                if self.idle_rounds > bound {
                    return Some(WorldExit::Hung {
                        reason: format!(
                            "ulfm: no runnable rank for {} rounds \
                             (failure knowledge {:#x})",
                            self.idle_rounds, self.known_failed
                        ),
                    });
                }
                return None;
            }
            // A dead or wedged rank quiesces its peers; with the failure
            // detector on, rounds keep elapsing until suspicion matures
            // into `RankFailed` instead of an instant deadlock verdict.
            if self.cfg.ft.enabled
                && self
                    .ranks
                    .iter()
                    .any(|r| !matches!(r.health, Health::Alive))
            {
                return None;
            }
            // Everyone blocked or exited, and progress() found nothing:
            // deadlock.
            let blocked: Vec<u16> = (0..self.ranks.len() as u16)
                .filter(|&i| matches!(self.ranks[i as usize].status, Status::Blocked(_)))
                .collect();
            let clocks: Vec<u64> = self
                .ranks
                .iter()
                .map(|r| r.machine.counters.blocks)
                .collect();
            return Some(WorldExit::Hung {
                reason: format!(
                    "deadlock: ranks {blocked:?} blocked with no traffic \
                     (block clocks {clocks:?})"
                ),
            });
        }
        self.idle_rounds = 0;
        if self.cfg.nondet {
            order.shuffle(&mut self.rng);
        }
        for i in order {
            if self.fatal.is_some() {
                break;
            }
            if !matches!(self.ranks[i].status, Status::Ready | Status::Finalized) {
                continue;
            }
            self.step_rank(i);
            self.progress();
        }
        None
    }

    fn step_rank(&mut self, i: usize) {
        let mut quantum = self.cfg.quantum;
        // An active hog steals its share of every victim's quantum.
        if self.round < self.hog_until && self.hog_mask >> (i as u32) & 1 == 1 {
            quantum = (quantum * (1000 - self.hog_share as u64) / 1000).max(1);
        }
        // Clip the quantum to a pending injection point on this rank.
        let mut fire = false;
        if let Some(inj) = &self.injection {
            if inj.rank as usize == i {
                let done = self.ranks[i].machine.counters.insns;
                if done >= inj.at_insns {
                    fire = true;
                } else {
                    quantum = quantum.min(inj.at_insns - done);
                }
            }
        }
        if fire {
            let mut inj = self.injection.take().unwrap();
            (inj.action)(&mut self.ranks[i].machine);
            self.obs_record(
                i,
                EventKind::FaultFired {
                    at_insns: self.ranks[i].machine.counters.insns,
                },
            );
            if let Some(p) = inj.period {
                // Persistent fault: re-arm for the next assertion and
                // keep the quantum clipped to it.
                inj.at_insns = self.ranks[i].machine.counters.insns + p;
                quantum = quantum.min(p);
                self.injection = Some(inj);
            }
        }
        {
            // fl-perturb effective-quantum telemetry: what the scheduler
            // actually handed out after hog scaling and injection clips.
            let st = &mut self.ranks[i].machine.exec_stats;
            st.quanta_granted += 1;
            st.quantum_insns_granted += quantum;
        }
        let exit = self.ranks[i].machine.run(quantum);
        if self.cfg.ft.enabled {
            // Executing a quantum is life (piggybacked heartbeat).
            self.heard(i);
        }
        let rank = i as u16;
        match exit {
            Exit::Quantum => {}
            Exit::Mpi(call) => {
                if matches!(self.ranks[i].status, Status::Finalized) && call != Syscall::MpiAbort {
                    self.fatal(WorldExit::Crashed {
                        rank,
                        reason: format!("{call:?} after MPI_Finalize"),
                    });
                } else {
                    self.service(rank, call);
                }
            }
            Exit::Halted(code) => {
                let finalized = matches!(self.ranks[i].status, Status::Finalized);
                if !finalized {
                    self.fatal(WorldExit::Crashed {
                        rank,
                        reason: "process exited before MPI_Finalize".into(),
                    });
                } else if code != 0 {
                    self.fatal(WorldExit::Crashed {
                        rank,
                        reason: format!("nonzero exit status {code}"),
                    });
                } else {
                    self.ranks[i].status = Status::Exited;
                }
            }
            Exit::Signal(sig) => {
                self.fatal(WorldExit::Crashed {
                    rank,
                    reason: sig.to_string(),
                });
            }
            Exit::HeapCorruption(e) => {
                self.fatal(WorldExit::Crashed {
                    rank,
                    reason: format!("glibc abort: {e:?}"),
                });
            }
            Exit::Abort(msg) => {
                self.fatal(WorldExit::AppAborted { rank, msg });
            }
            Exit::Budget => {
                let blocks = self.ranks[i].machine.counters.blocks;
                self.fatal(WorldExit::Hung {
                    reason: format!(
                        "rank {rank} exhausted its instruction budget \
                         (block clock {blocks})"
                    ),
                });
            }
        }
    }
}

// --- checkpointing -------------------------------------------------------

/// Deep checkpoint of one rank: the machine plus all scheduler-visible
/// bookkeeping.
#[derive(Clone, PartialEq)]
struct RankSnapshot {
    machine: MachineSnapshot,
    status: Status,
    errhandler: bool,
    arrived: VecDeque<(Header, WireMsg)>,
    received_bytes: u64,
    send_seq: u32,
    coll_seq: u32,
    profile: TrafficProfile,
    sent_history: VecDeque<(u32, WireMsg)>,
    health: Health,
    last_heard: u64,
    max_gap: u64,
    out_digest: u32,
    ckpt: Option<Vec<u8>>,
    acked: u32,
}

/// A complete deterministic checkpoint of an [`MpiWorld`], produced by
/// [`MpiWorld::snapshot`]. Cloning one is cheap: machine memory is shared
/// copy-on-write at page granularity, so N clones (and the worlds restored
/// from them) share every page that none of them has written.
///
/// Restoring yields a world whose subsequent execution is bit-identical
/// to the captured one (armed `PendingInjection`s excepted — see
/// [`MpiWorld::snapshot`]).
#[derive(Clone, PartialEq)]
pub struct WorldSnapshot {
    ranks: Vec<RankSnapshot>,
    cfg: WorldConfig,
    rng: StdRng,
    message_fault: Option<MessageFault>,
    message_fault_hit: Option<MessageFaultHit>,
    rank_kill: Option<RankKill>,
    rank_kills: Vec<RankKill>,
    net_fault: Option<NetFault>,
    net_faults_fired: u32,
    partition: Option<Partition>,
    partition_until: u64,
    partition_mask: u32,
    partition_drops: u64,
    node_kill: Option<NodeKill>,
    quantum_tax: Option<QuantumTax>,
    tax_until: u64,
    tax_rank: u16,
    tax_permille_active: u32,
    tax_credit: u64,
    hog: Option<HogRank>,
    hog_until: u64,
    hog_mask: u32,
    hog_share: u32,
    starved: u32,
    fatal: Option<WorldExit>,
    round: u64,
    pending_redelivery: VecDeque<Redelivery>,
    retx_attempts: HashMap<(u16, u32), u8>,
    known_failed: u32,
    shrinks: u32,
    idle_rounds: u64,
}

impl WorldSnapshot {
    /// Rebuild a runnable world from the checkpoint.
    pub fn restore(&self) -> MpiWorld {
        MpiWorld {
            ranks: self
                .ranks
                .iter()
                .map(|r| Rank {
                    machine: r.machine.to_machine(),
                    status: r.status.clone(),
                    errhandler: r.errhandler,
                    arrived: r.arrived.clone(),
                    received_bytes: r.received_bytes,
                    send_seq: r.send_seq,
                    coll_seq: r.coll_seq,
                    profile: r.profile,
                    sent_history: r.sent_history.clone(),
                    health: r.health,
                    last_heard: r.last_heard,
                    max_gap: r.max_gap,
                    out_digest: r.out_digest,
                    ckpt: r.ckpt.clone(),
                    acked: r.acked,
                })
                .collect(),
            cfg: self.cfg,
            rng: self.rng.clone(),
            injection: None,
            message_fault: self.message_fault,
            message_fault_hit: self.message_fault_hit,
            rank_kill: self.rank_kill,
            rank_kills: self.rank_kills.clone(),
            net_fault: self.net_fault,
            net_faults_fired: self.net_faults_fired,
            partition: self.partition,
            partition_until: self.partition_until,
            partition_mask: self.partition_mask,
            partition_drops: self.partition_drops,
            node_kill: self.node_kill,
            quantum_tax: self.quantum_tax,
            tax_until: self.tax_until,
            tax_rank: self.tax_rank,
            tax_permille_active: self.tax_permille_active,
            tax_credit: self.tax_credit,
            hog: self.hog,
            hog_until: self.hog_until,
            hog_mask: self.hog_mask,
            hog_share: self.hog_share,
            starved: self.starved,
            fatal: self.fatal.clone(),
            round: self.round,
            pending_redelivery: self.pending_redelivery.clone(),
            retx_attempts: self.retx_attempts.clone(),
            known_failed: self.known_failed,
            shrinks: self.shrinks,
            idle_rounds: self.idle_rounds,
        }
    }

    /// Number of ranks captured.
    pub fn nranks(&self) -> u16 {
        self.ranks.len() as u16
    }

    /// Scheduler round at capture time.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// A rank's captured machine state.
    pub fn machine(&self, rank: u16) -> &MachineSnapshot {
        &self.ranks[rank as usize].machine
    }

    /// Rank-local instructions retired at capture time — the epoch
    /// eligibility key for register/memory trials.
    pub fn rank_insns(&self, rank: u16) -> u64 {
        self.ranks[rank as usize].machine.counters.insns
    }

    /// Cumulative channel bytes received at capture time — the epoch
    /// eligibility key for message trials.
    pub fn rank_received_bytes(&self, rank: u16) -> u64 {
        self.ranks[rank as usize].received_bytes
    }
}
