//! Property-based tests of the wire format under single-bit corruption —
//! the fl-guard detection contract at the message layer.
//!
//! The channel fault model (§3.3) flips exactly one bit somewhere in a
//! wire image. For every such flip the receiving side must end in one of
//! two defensible states: the CRC check rejects the message, or the
//! header parses into a well-formed (if wrong) envelope / a clean parse
//! error. Nothing may panic, and no flip in CRC-covered bytes may reach
//! the ADI undetected.

use fl_mpi::{CtlOp, WireMsg, CRC_COVERED_HEADER, CRC_OFFSET, HEADER_SIZE};
use proptest::prelude::*;

fn arb_msg() -> impl Strategy<Value = WireMsg> {
    let data = (
        any::<u16>(),
        any::<u16>(),
        0u32..0x4000_0000,
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..96),
    )
        .prop_map(|(src, dst, tag, seq, payload)| WireMsg::data(src, dst, tag, seq, &payload));
    let ctl = (
        prop_oneof![
            Just(CtlOp::None),
            Just(CtlOp::Barrier),
            Just(CtlOp::Rts),
            Just(CtlOp::Cts)
        ],
        any::<u16>(),
        any::<u16>(),
        0u32..0x4000_0000,
        any::<u32>(),
    )
        .prop_map(|(op, src, dst, tag, seq)| WireMsg::control(op, src, dst, tag, seq));
    prop_oneof![data, ctl]
}

proptest! {
    /// Any single bit flip anywhere in a serialized message is either
    /// caught by the CRC or yields a well-formed parse result — never a
    /// panic, and never an undetected flip of a CRC-covered byte.
    #[test]
    fn single_bit_flip_is_caught_or_parses_cleanly(
        msg in arb_msg(),
        offset_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let offset = (offset_pick % msg.len() as u64) as usize;
        let mut m = msg.clone();
        m.flip_bit(offset, bit);

        // Parsing must never panic; either verdict is acceptable.
        let parsed = m.header();
        let caught = !m.crc_ok();

        let covered = offset < CRC_OFFSET + 4
            || (HEADER_SIZE <= offset && offset < m.len());
        if covered {
            // Live header fields, the CRC word itself, and the payload
            // are all under the checksum: the flip MUST be detected.
            prop_assert!(caught, "covered flip at {offset}.{bit} escaped the CRC");
        } else {
            // Residual padding (28..48): inert pre-guard, must stay
            // inert — same parse, same CRC verdict as the pristine image.
            prop_assert!(!caught, "padding flip at {offset}.{bit} tripped the CRC");
            prop_assert_eq!(parsed, msg.header());
        }
    }

    /// A parse that succeeds after a flip reports internally consistent
    /// fields (the declared payload length matches the wire bytes), and
    /// a parse that fails returns a structured error — both are
    /// "well-formed" outcomes the ADI can act on deterministically.
    #[test]
    fn flipped_headers_never_parse_inconsistently(
        msg in arb_msg(),
        offset_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let offset = (offset_pick % (HEADER_SIZE as u64)) as usize;
        let mut m = msg.clone();
        m.flip_bit(offset, bit);
        if let Ok(h) = m.header() {
            prop_assert_eq!(h.payload_len as usize, m.payload().len());
            prop_assert!(h.payload_len <= fl_mpi::MAX_PAYLOAD);
        }
    }

    /// Double flips in covered bytes: CRC32 detects all 2-bit errors
    /// within any realistic message length (Hamming distance ≥ 4 below
    /// ~91k bits), so two distinct covered flips must also be caught.
    #[test]
    fn double_covered_flips_are_caught(
        msg in arb_msg(),
        pick_a in any::<u64>(),
        pick_b in any::<u64>(),
        bit_a in 0u8..8,
        bit_b in 0u8..8,
    ) {
        let covered_len = CRC_COVERED_HEADER as u64 + (msg.len() - HEADER_SIZE) as u64;
        let a = (pick_a % covered_len) as usize;
        let b = (pick_b % covered_len) as usize;
        let to_offset = |x: usize| if x < CRC_COVERED_HEADER { x } else { x - CRC_COVERED_HEADER + HEADER_SIZE };
        let mut m = msg.clone();
        m.flip_bit(to_offset(a), bit_a);
        m.flip_bit(to_offset(b), bit_b);
        if (a, bit_a) != (b, bit_b) {
            prop_assert!(!m.crc_ok(), "double flip {a}.{bit_a}/{b}.{bit_b} escaped");
        } else {
            // Same bit twice: the image is pristine again.
            prop_assert!(m.crc_ok());
        }
    }
}
