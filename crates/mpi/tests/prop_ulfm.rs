//! Property tests for the fl-ulfm API (PR 7), in two families:
//!
//! * **Ft-off bit-identity** — a program that merely *compiles* the new
//!   builtins behind a never-taken branch behaves bit-identically, in an
//!   ft-off world, to the same program with a stub recovery function —
//!   i.e. to the exact program a pre-ulfm build would have produced.
//!   Exit, per-rank console output, retired instruction counts and the
//!   recorded event streams must all match: the new API must cost
//!   nothing until a run actually reaches it.
//! * **Agree/shrink semantics at arbitrary kill clocks** — a
//!   shrink-recovering program is subjected to a rank kill at an
//!   arbitrary retired-block clock, on both executor paths (fastpath on
//!   and off). Both paths must agree exactly, and whatever the clock,
//!   the world ends in a defensible state: recovered-and-shrunk, or
//!   honestly hung when the failure lands where the app can no longer
//!   observe it. A kill must never be misread as an application crash.

use fl_lang::compile;
use fl_machine::MachineConfig;
use fl_mpi::{FailureDetector, MpiWorld, RankKill, WorldConfig, WorldExit};
use proptest::prelude::*;

const OBS_CAPACITY: u32 = 256;

/// A ring-shift program whose main guards a call to `recover()` behind
/// a condition no rank satisfies. `recovery_body` is either the full
/// ulfm repertoire or an inert stub; main is identical either way.
fn ring_program(iters: u32, recovery_body: &str) -> String {
    format!(
        "global float buf[16];
         fn recover() -> int {{
             {recovery_body}
         }}
         fn main() {{
             var int me;
             var int n;
             var int i;
             var int r;
             var int right;
             var int left;
             mpi_init();
             me = mpi_rank();
             n = mpi_size();
             right = me + 1;
             if (right == n) {{ right = 0; }}
             left = me - 1;
             if (left < 0) {{ left = n - 1; }}
             for (i = 0; i < {iters}; i = i + 1) {{
                 buf[0] = buf[0] + 1.0;
                 mpi_send(addr(buf), 32, right, i);
                 mpi_recv(addr(buf), 32, left, i);
                 if (me == 0 - 1) {{ r = recover(); }}
             }}
             print_flt(buf[0], 1);
             mpi_finalize();
         }}"
    )
}

const ULFM_RECOVERY: &str = "var int r;
             r = mpix_comm_failure_ack();
             r = mpix_comm_failure_get_acked();
             r = mpix_comm_agree(r);
             r = mpix_comm_shrink();
             r = fl_ckpt_save(addr(buf), 16);
             r = fl_ckpt_restore(addr(buf), 16);
             return r;";

const STUB_RECOVERY: &str = "return 0;";

/// Run `src` in a plain ft-off world (no ulfm, no detector) and return
/// everything observable about the run.
#[allow(clippy::type_complexity)]
fn observe_ft_off(
    src: &str,
    nranks: u16,
) -> (WorldExit, Vec<String>, Vec<u64>, Vec<Vec<fl_obs::Event>>) {
    let img = compile(src).expect("compiles");
    let mut w = MpiWorld::new(
        &img,
        WorldConfig {
            nranks,
            machine: MachineConfig {
                budget: 50_000_000,
                obs_capacity: OBS_CAPACITY,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let exit = w.run();
    let console = (0..nranks)
        .map(|r| w.machine(r).console_text().to_string())
        .collect();
    let insns = (0..nranks).map(|r| w.machine(r).counters.insns).collect();
    (exit, console, insns, w.event_streams())
}

/// A 3-rank program in which every rank repeatedly agrees and, on a
/// poisoned agreement, acks the failure and shrinks — the canonical
/// ulfm recovery loop.
const SHRINK_LOOP: &str = "fn main() {
         var int r;
         var int i;
         mpi_init();
         for (i = 0; i < 6; i = i + 1) {
             r = mpix_comm_agree(0);
             if (r != 0) {
                 r = mpix_comm_failure_ack();
                 r = mpix_comm_shrink();
             }
         }
         mpi_finalize();
     }";

struct KillRun {
    exit: WorldExit,
    fired: bool,
    nranks: u16,
    shrinks: u32,
    failed_mask: u32,
}

fn run_shrink_loop(kill: RankKill, fastpath: bool) -> KillRun {
    let img = compile(SHRINK_LOOP).expect("compiles");
    let mut w = MpiWorld::new(
        &img,
        WorldConfig {
            nranks: 3,
            ulfm: true,
            ft: FailureDetector {
                enabled: true,
                ..Default::default()
            },
            machine: MachineConfig {
                budget: 50_000_000,
                fastpath,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    w.set_rank_kill(kill);
    let exit = w.run();
    KillRun {
        exit,
        fired: w.rank_kill().is_none(),
        nranks: w.nranks(),
        shrinks: w.app_shrinks(),
        failed_mask: w.ulfm_failed_mask(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An ft-off world running the ulfm-capable binary is bit-identical
    /// to one running the stub binary (= the pre-ulfm program): same
    /// exit, console bytes, retired instruction counts and event
    /// streams, across ring sizes and iteration counts.
    #[test]
    fn ft_off_worlds_ignore_compiled_but_unreached_builtins(
        nranks in 2u16..5,
        iters in 1u32..8,
    ) {
        let with = observe_ft_off(&ring_program(iters, ULFM_RECOVERY), nranks);
        let without = observe_ft_off(&ring_program(iters, STUB_RECOVERY), nranks);
        prop_assert_eq!(&with.0, &without.0, "exit diverged");
        prop_assert_eq!(&with.1, &without.1, "console output diverged");
        prop_assert_eq!(&with.2, &without.2, "retired insns diverged");
        prop_assert_eq!(&with.3, &without.3, "event streams diverged");
        prop_assert_eq!(with.0, WorldExit::Clean);
    }

    /// Agree/shrink semantics hold at every kill clock, and the two
    /// executor paths are indistinguishable.
    #[test]
    fn shrink_recovery_is_sound_at_arbitrary_kill_clocks(
        victim in 0u16..3,
        at_blocks in prop_oneof![1u64..400, Just(100_000u64)],
        wedge in any::<bool>(),
    ) {
        let kill = RankKill { rank: victim, at_blocks, wedge };
        let fast = run_shrink_loop(kill, true);
        let slow = run_shrink_loop(kill, false);

        // Both executor paths tell the same story.
        prop_assert_eq!(&fast.exit, &slow.exit, "exec paths diverged on exit");
        prop_assert_eq!(fast.fired, slow.fired);
        prop_assert_eq!(fast.nranks, slow.nranks);
        prop_assert_eq!(fast.shrinks, slow.shrinks);
        prop_assert_eq!(fast.failed_mask, slow.failed_mask);

        // A process kill is never an application crash or abort.
        prop_assert!(
            matches!(fast.exit, WorldExit::Clean | WorldExit::Hung { .. }),
            "kill at block {} misclassified: {:?}", at_blocks, fast.exit
        );

        if !fast.fired {
            // The clock landed beyond the run: nothing may change.
            prop_assert_eq!(&fast.exit, &WorldExit::Clean);
            prop_assert_eq!(fast.nranks, 3);
            prop_assert_eq!(fast.shrinks, 0);
        } else if fast.exit == WorldExit::Clean {
            // Two defensible clean endings: the app observed the failure
            // and shrank around the victim (consuming the failure
            // knowledge), or the kill landed only once the victim had
            // already exited, leaving nothing to recover.
            if fast.shrinks > 0 {
                prop_assert_eq!(fast.nranks, 2);
                prop_assert_eq!(fast.failed_mask, 0, "shrink must clear the mask");
            } else {
                prop_assert_eq!(fast.nranks, 3, "unshrunk world lost a rank");
            }
        }
        // Hung is legitimate only for a fired kill the app could no
        // longer observe (e.g. after its last agreement); fired=false
        // hangs are caught by the branch above.
    }
}
