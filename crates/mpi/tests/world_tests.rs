//! End-to-end tests of the MPI world running compiled FL programs.

use fl_lang::compile;
use fl_machine::MachineConfig;
use fl_mpi::{FailureDetector, MessageFault, MpiWorld, RankKill, WorldConfig, WorldExit};

fn world(src: &str, nranks: u16) -> MpiWorld {
    let img = compile(src).expect("compiles");
    MpiWorld::new(
        &img,
        WorldConfig {
            nranks,
            machine: MachineConfig {
                budget: 50_000_000,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn single_rank_init_finalize() {
    let mut w = world(
        r#"fn main() { mpi_init(); print_str("alone\n"); mpi_finalize(); }"#,
        1,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "alone\n");
}

#[test]
fn rank_and_size() {
    let mut w = world(
        "fn main() {
             mpi_init();
             print_int(mpi_rank()); print_str(\"/\"); print_int(mpi_size());
             mpi_finalize();
         }",
        3,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "0/3");
    assert_eq!(w.machine(2).console_text(), "2/3");
}

#[test]
fn eager_ping_pong() {
    let mut w = world(
        "global float buf[4];
         fn main() {
             var int me;
             mpi_init();
             me = mpi_rank();
             if (me == 0) {
                 buf[0] = 12.5;
                 mpi_send(addr(buf), 32, 1, 7);
                 mpi_recv(addr(buf), 32, 1, 8);
                 print_flt(buf[0], 1);
             } else {
                 mpi_recv(addr(buf), 32, 0, 7);
                 buf[0] = buf[0] * 2.0;
                 mpi_send(addr(buf), 32, 0, 8);
             }
             mpi_finalize();
         }",
        2,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "25.0");
}

#[test]
fn rendezvous_large_message() {
    // 4096-byte payload exceeds the 1024-byte eager threshold.
    let mut w = world(
        "global float big[512];
         fn main() {
             var int me;
             var int i;
             mpi_init();
             me = mpi_rank();
             if (me == 0) {
                 for (i = 0; i < 512; i = i + 1) { big[i] = float(i); }
                 mpi_send(addr(big), 4096, 1, 3);
             } else {
                 mpi_recv(addr(big), 4096, 0, 3);
                 print_flt(big[511], 1);
             }
             mpi_finalize();
         }",
        2,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(1).console_text(), "511.0");
    // Rendezvous generated control traffic: rank 0 received a CTS,
    // rank 1 received an RTS.
    assert!(w.profile(0).control_msgs >= 1);
    assert!(w.profile(1).control_msgs >= 1);
    assert_eq!(w.profile(1).data_msgs, 1);
}

#[test]
fn any_source_receive() {
    let mut w = world(
        "global float v[1];
         fn main() {
             var int me;
             var int i;
             var float total;
             mpi_init();
             me = mpi_rank();
             if (me == 0) {
                 total = 0.0;
                 for (i = 1; i < 4; i = i + 1) {
                     mpi_recv(addr(v), 8, -1, 5);
                     total = total + v[0];
                 }
                 print_flt(total, 1);
             } else {
                 v[0] = float(me);
                 mpi_send(addr(v), 8, 0, 5);
             }
             mpi_finalize();
         }",
        4,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "6.0");
}

#[test]
fn barrier_synchronises() {
    for n in [2u16, 3, 4, 8] {
        let mut w = world(
            "fn main() { mpi_init(); mpi_barrier(); mpi_barrier(); mpi_finalize(); }",
            n,
        );
        assert_eq!(w.run(), WorldExit::Clean, "n={n}");
        // Barrier traffic is pure control messages.
        for r in 0..n {
            assert!(w.profile(r).control_msgs > 0);
            assert_eq!(w.profile(r).data_msgs, 0);
        }
    }
}

#[test]
fn bcast_delivers_to_all() {
    let mut w = world(
        "global float arr[8];
         fn main() {
             var int i;
             mpi_init();
             if (mpi_rank() == 0) {
                 for (i = 0; i < 8; i = i + 1) { arr[i] = float(i) * 3.0; }
             }
             mpi_bcast(addr(arr), 64, 0);
             print_flt(arr[7], 1);
             mpi_finalize();
         }",
        4,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    for r in 0..4 {
        assert_eq!(w.machine(r).console_text(), "21.0", "rank {r}");
    }
}

#[test]
fn reduce_sums_to_root() {
    let mut w = world(
        "global float part[2];
         global float out[2];
         fn main() {
             var int me;
             mpi_init();
             me = mpi_rank();
             part[0] = float(me);
             part[1] = 1.0;
             mpi_reduce(addr(part), 2, 0, addr(out));
             if (me == 0) { print_flt(out[0], 1); print_str(\" \"); print_flt(out[1], 1); }
             mpi_finalize();
         }",
        4,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "6.0 4.0");
}

#[test]
fn allreduce_sums_everywhere() {
    let mut w = world(
        "global float part[1];
         global float out[1];
         fn main() {
             mpi_init();
             part[0] = float(mpi_rank() + 1);
             mpi_allreduce(addr(part), 1, addr(out));
             print_flt(out[0], 1);
             mpi_finalize();
         }",
        4,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    for r in 0..4 {
        assert_eq!(w.machine(r).console_text(), "10.0", "rank {r}");
    }
}

#[test]
fn mismatched_recv_deadlocks() {
    let mut w = world(
        "global float b[1];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { mpi_recv(addr(b), 8, 1, 99); }
             mpi_finalize();
         }",
        2,
    );
    assert!(matches!(w.run(), WorldExit::Hung { .. }));
}

#[test]
fn invalid_dest_without_handler_crashes() {
    let mut w = world(
        "global float b[1];
         fn main() { mpi_init(); mpi_send(addr(b), 8, 77, 1); mpi_finalize(); }",
        2,
    );
    let e = w.run();
    assert!(
        matches!(&e, WorldExit::Crashed { reason, .. } if reason.contains("invalid rank")),
        "{e:?}"
    );
}

#[test]
fn invalid_dest_with_handler_is_mpi_detected() {
    let mut w = world(
        "global float b[1];
         fn main() {
             mpi_init();
             mpi_errhandler_set(1);
             mpi_send(addr(b), 8, 77, 1);
             mpi_finalize();
         }",
        2,
    );
    let e = w.run();
    assert!(matches!(&e, WorldExit::MpiDetected { .. }), "{e:?}");
}

#[test]
fn invalid_buffer_detected() {
    let mut w = world(
        // Address 64 is unmapped.
        "fn main() { mpi_init(); mpi_errhandler_set(1); mpi_send(64, 8, 1, 1); mpi_finalize(); }",
        2,
    );
    assert!(matches!(w.run(), WorldExit::MpiDetected { .. }));
}

#[test]
fn exit_before_finalize_crashes_job() {
    let mut w = world(
        "fn main() {
             mpi_init();
             if (mpi_rank() == 1) { } else { mpi_barrier(); }
         }",
        2,
    );
    // Rank 1 returns from main without finalize -> job abort.
    let e = w.run();
    assert!(
        matches!(&e, WorldExit::Crashed { reason, .. } if reason.contains("before MPI_Finalize")),
        "{e:?}"
    );
}

#[test]
fn message_fault_in_payload_corrupts_silently() {
    let src = "global float buf[1];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) {
                 buf[0] = 1.0;
                 mpi_send(addr(buf), 8, 1, 2);
             } else {
                 mpi_recv(addr(buf), 8, 0, 2);
                 print_flt(buf[0], 6);
             }
             mpi_finalize();
         }";
    // Golden run.
    let mut w = world(src, 2);
    assert_eq!(w.run(), WorldExit::Clean);
    let golden = w.machine(1).console_text();
    // Faulted run: flip a high mantissa bit of the payload's f64
    // (payload starts after the 48-byte header).
    let mut w = world(src, 2);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 48 + 6,
        bit: 4,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_ne!(
        w.machine(1).console_text(),
        golden,
        "payload corruption must show"
    );
}

#[test]
fn message_fault_in_header_magic_crashes() {
    let src = "global float buf[1];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { buf[0] = 1.0; mpi_send(addr(buf), 8, 1, 2); }
             else { mpi_recv(addr(buf), 8, 0, 2); }
             mpi_finalize();
         }";
    let mut w = world(src, 2);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 1,
        bit: 3,
    });
    let e = w.run();
    assert!(
        matches!(&e, WorldExit::Crashed { reason, .. } if reason.contains("MPICH internal error")),
        "{e:?}"
    );
}

#[test]
fn message_fault_in_tag_hangs() {
    let src = "global float buf[1];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { buf[0] = 1.0; mpi_send(addr(buf), 8, 1, 2); }
             else { mpi_recv(addr(buf), 8, 0, 2); }
             mpi_finalize();
         }";
    let mut w = world(src, 2);
    // Byte 12 is the tag field.
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 12,
        bit: 6,
    });
    assert!(matches!(w.run(), WorldExit::Hung { .. }));
}

#[test]
fn app_abort_is_app_detected() {
    let mut w = world(
        r#"fn main() { mpi_init(); assert(mpi_size() == 99, "wrong world"); mpi_finalize(); }"#,
        2,
    );
    assert!(matches!(w.run(), WorldExit::AppAborted { msg, .. } if msg == "wrong world"));
}

#[test]
fn nondet_changes_any_source_order_but_reduction_stays_stable() {
    // Sum of contributions is order-independent; the arrival order of the
    // individual messages is not. Both worlds must produce the same total.
    let src = "global float v[1];
         fn main() {
             var int i;
             var float total;
             mpi_init();
             if (mpi_rank() == 0) {
                 total = 0.0;
                 for (i = 1; i < 6; i = i + 1) { mpi_recv(addr(v), 8, -1, 4); total = total + v[0]; }
                 print_flt(total, 2);
             } else {
                 v[0] = 1.0 / float(mpi_rank());
                 mpi_send(addr(v), 8, 0, 4);
             }
             mpi_finalize();
         }";
    let img = compile(src).unwrap();
    let mut outputs = Vec::new();
    for seed in 0..4 {
        let mut w = MpiWorld::new(
            &img,
            WorldConfig {
                nranks: 6,
                nondet: true,
                seed,
                machine: MachineConfig {
                    budget: 50_000_000,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(w.run(), WorldExit::Clean);
        outputs.push(w.machine(0).console_text());
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "totals must agree: {outputs:?}"
    );
}

#[test]
fn traffic_profile_counts_messages() {
    let mut w = world(
        "global float b[16];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { mpi_send(addr(b), 128, 1, 1); }
             else { mpi_recv(addr(b), 128, 0, 1); }
             mpi_barrier();
             mpi_finalize();
         }",
        2,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    let p1 = *w.profile(1);
    assert_eq!(p1.data_msgs, 1);
    assert_eq!(p1.payload_bytes, 128);
    assert!(p1.control_msgs >= 1); // barrier token
    assert!(p1.header_percent() > 0.0 && p1.header_percent() < 100.0);
    assert!(w.received_bytes(1) >= p1.total_bytes());
}

#[test]
fn truncated_receive_raises_handler() {
    // Receiver's capacity is smaller than the payload: MPI_ERR_TRUNCATE
    // raises the registered handler (MPI Detected path).
    let mut w = world(
        "global float big[8];
         global float small[1];
         fn main() {
             mpi_init();
             mpi_errhandler_set(1);
             if (mpi_rank() == 0) { mpi_send(addr(big), 64, 1, 5); }
             else { mpi_recv(addr(small), 8, 0, 5); }
             mpi_finalize();
         }",
        2,
    );
    let e = w.run();
    assert!(
        matches!(&e, WorldExit::MpiDetected { what, .. } if what.contains("truncated")),
        "{e:?}"
    );
}

#[test]
fn send_to_self_matches_own_receive() {
    let mut w = world(
        "global float b[1];
         fn main() {
             mpi_init();
             b[0] = 7.5;
             mpi_send(addr(b), 8, mpi_rank(), 3);
             b[0] = 0.0;
             mpi_recv(addr(b), 8, mpi_rank(), 3);
             print_flt(b[0], 1);
             mpi_finalize();
         }",
        2,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "7.5");
}

#[test]
fn single_rank_collectives_are_identity() {
    let mut w = world(
        "global float v[2];
         global float o[2];
         fn main() {
             mpi_init();
             v[0] = 3.0; v[1] = 4.0;
             mpi_bcast(addr(v), 16, 0);
             mpi_reduce(addr(v), 2, 0, addr(o));
             mpi_allreduce(addr(v), 2, addr(o));
             mpi_barrier();
             print_flt(o[0] + o[1], 1);
             mpi_finalize();
         }",
        1,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(0).console_text(), "7.0");
}

#[test]
fn back_to_back_collectives_do_not_cross_match() {
    // Two consecutive bcasts with different payloads: collective
    // sequence numbers keep them apart even though src/root coincide.
    let mut w = world(
        "global float a[1];
         global float b[1];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { a[0] = 1.0; b[0] = 2.0; }
             mpi_bcast(addr(a), 8, 0);
             mpi_bcast(addr(b), 8, 0);
             print_flt(a[0], 0); print_flt(b[0], 0);
             mpi_finalize();
         }",
        3,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    for r in 0..3 {
        assert_eq!(w.machine(r).console_text(), "12", "rank {r}");
    }
}

#[test]
fn allreduce_twice_accumulates_independently() {
    let mut w = world(
        "global float v[1];
         global float o[1];
         fn main() {
             mpi_init();
             v[0] = 1.0;
             mpi_allreduce(addr(v), 1, addr(o));
             v[0] = o[0];
             mpi_allreduce(addr(v), 1, addr(o));
             print_flt(o[0], 0);
             mpi_finalize();
         }",
        3,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    // 3 -> 9 across two allreduces on 3 ranks.
    for r in 0..3 {
        assert_eq!(w.machine(r).console_text(), "9", "rank {r}");
    }
}

#[test]
fn message_fault_hit_reports_location() {
    let src = "global float buf[4];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { mpi_send(addr(buf), 32, 1, 2); }
             else { mpi_recv(addr(buf), 32, 0, 2); }
             mpi_finalize();
         }";
    // Header hit.
    let mut w = world(src, 2);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 30,
        bit: 0,
    });
    let _ = w.run();
    let hit = w.message_fault_hit().expect("fault fired");
    assert!(hit.in_header);
    assert_eq!(hit.offset_in_msg, 30);
    // Payload hit.
    let mut w = world(src, 2);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 60,
        bit: 0,
    });
    let _ = w.run();
    let hit = w.message_fault_hit().expect("fault fired");
    assert!(!hit.in_header);
    assert_eq!(hit.msg_len, 48 + 32);
}

#[test]
fn corrupted_src_field_crashes_instead_of_panicking() {
    // A rendezvous RTS whose src field is corrupted to a nonexistent
    // rank: granting the CTS must fail like MPICH (job abort), not
    // panic the simulator. Byte 6 is the low byte of the src field.
    let src = "global float big[256];
         fn main() {
             mpi_init();
             if (mpi_rank() == 0) { mpi_send(addr(big), 2048, 1, 3); }
             else { mpi_recv(addr(big), 2048, 0, 3); }
             mpi_finalize();
         }";
    let mut w = world(src, 2);
    w.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 6,
        bit: 5,
    });
    let e = w.run();
    assert!(
        matches!(&e, WorldExit::Crashed { .. } | WorldExit::Hung { .. }),
        "{e:?}"
    );
}

// --- process-level faults (fl-ft substrate) -------------------------------

/// Two ranks ping-ponging many times: plenty of mid-run block clocks for
/// a rank kill to land on, and the survivor deadlocks without help.
const PING_LOOP: &str = "global float b[1];
     fn main() {
         var int i;
         mpi_init();
         for (i = 0; i < 40; i = i + 1) {
             if (mpi_rank() == 0) {
                 b[0] = float(i);
                 mpi_send(addr(b), 8, 1, 4);
                 mpi_recv(addr(b), 8, 1, 5);
             } else {
                 mpi_recv(addr(b), 8, 0, 4);
                 b[0] = b[0] + 0.5;
                 mpi_send(addr(b), 8, 0, 5);
             }
         }
         mpi_finalize();
     }";

fn mid_run_blocks(src: &str, nranks: u16, rank: u16) -> u64 {
    let mut w = world(src, nranks);
    assert_eq!(w.run(), WorldExit::Clean);
    w.machine(rank).counters.blocks / 2
}

#[test]
fn rank_kill_without_detector_strands_peers() {
    let at = mid_run_blocks(PING_LOOP, 2, 1);
    for wedge in [false, true] {
        let mut w = world(PING_LOOP, 2);
        w.set_rank_kill(RankKill {
            rank: 1,
            at_blocks: at,
            wedge,
        });
        assert!(
            matches!(w.run(), WorldExit::Hung { .. }),
            "killed rank must strand rank 0 (wedge={wedge})"
        );
        assert!(w.rank_kill().is_none(), "the kill disarms after firing");
    }
}

#[test]
fn detector_turns_rank_kill_into_typed_failure() {
    let at = mid_run_blocks(PING_LOOP, 2, 1);
    for wedge in [false, true] {
        let img = compile(PING_LOOP).unwrap();
        let mut w = MpiWorld::new(
            &img,
            WorldConfig {
                nranks: 2,
                ft: FailureDetector {
                    enabled: true,
                    ..Default::default()
                },
                machine: MachineConfig {
                    budget: 50_000_000,
                    obs_capacity: 256,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        w.set_rank_kill(RankKill {
            rank: 1,
            at_blocks: at,
            wedge,
        });
        let e = w.run();
        assert!(
            matches!(e, WorldExit::RankFailed { rank: 1, .. }),
            "wedge={wedge}: {e:?}"
        );
        // The kill is recorded on the victim; the suspicion lands on its
        // ring buddy (rank 0 in a 2-rank world).
        let streams = w.event_streams();
        assert!(streams[1]
            .iter()
            .any(|e| matches!(e.kind, fl_obs::EventKind::RankKilled { wedge: we } if we == wedge)));
        assert!(streams[0]
            .iter()
            .any(|e| matches!(e.kind, fl_obs::EventKind::RankSuspected { rank: 1, .. })));
        assert!(streams[0]
            .iter()
            .any(|e| matches!(e.kind, fl_obs::EventKind::HeartbeatProbe { to: 1, .. })));
    }
}

#[test]
fn detector_does_not_false_positive_on_long_blocked_rank() {
    // Rank 0 computes for far longer than the suspicion threshold before
    // sending; rank 1 sits blocked in recv the whole time. An alive rank
    // answers probes even while blocked, so the job must finish clean.
    let src = "global float b[1];
         global float acc[1];
         fn main() {
             var int i;
             mpi_init();
             if (mpi_rank() == 0) {
                 acc[0] = 0.0;
                 for (i = 0; i < 300000; i = i + 1) { acc[0] = acc[0] + 1.0; }
                 b[0] = acc[0];
                 mpi_send(addr(b), 8, 1, 9);
             } else {
                 mpi_recv(addr(b), 8, 0, 9);
                 print_flt(b[0], 1);
             }
             mpi_finalize();
         }";
    let img = compile(src).unwrap();
    let mut w = MpiWorld::new(
        &img,
        WorldConfig {
            nranks: 2,
            ft: FailureDetector {
                enabled: true,
                probe_rounds: 4,
                suspect_rounds: 16,
                accrual: false,
            },
            machine: MachineConfig {
                budget: 50_000_000,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.machine(1).console_text(), "300000.0");
}

#[test]
fn kill_after_exit_is_a_missed_fault() {
    // at_blocks beyond the victim's lifetime: the rank exits cleanly
    // first, the armed kill never fires, the job completes.
    let mut w = world(PING_LOOP, 2);
    w.set_rank_kill(RankKill {
        rank: 1,
        at_blocks: u64::MAX,
        wedge: false,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert!(w.rank_kill().is_none(), "missed kills disarm");
}

#[test]
fn out_digests_deterministic_and_sensitive_to_corruption() {
    let img = compile(PING_LOOP).unwrap();
    let cfg = WorldConfig {
        nranks: 2,
        track_digests: true,
        machine: MachineConfig {
            budget: 50_000_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let digests = |w: &MpiWorld| (w.out_digest(0), w.out_digest(1));
    let mut a = MpiWorld::new(&img, cfg);
    assert_eq!(a.run(), WorldExit::Clean);
    let mut b = MpiWorld::new(&img, cfg);
    assert_eq!(b.run(), WorldExit::Clean);
    assert_eq!(
        digests(&a),
        digests(&b),
        "identical runs, identical digests"
    );
    assert_ne!(digests(&a).0, 0, "traffic must fold into the digest");
    // Corrupt a payload byte of rank 1's inbound traffic: its *outbound*
    // echo diverges, so its digest — the replica voting key — moves.
    let mut c = MpiWorld::new(&img, cfg);
    // Byte 7 of the f64 payload holds sign/exponent bits: the corrupted
    // value survives rank 1's arithmetic and changes what it echoes back.
    c.set_message_fault(MessageFault {
        rank: 1,
        at_recv_byte: 48 + 7,
        bit: 6,
    });
    assert_eq!(c.run(), WorldExit::Clean);
    assert_ne!(
        digests(&a).1,
        digests(&c).1,
        "corrupt echo must move rank 1's digest"
    );
}

#[test]
fn ft_off_world_is_bit_identical_to_pre_ft_config() {
    // The detector and digest knobs default off; a default-config world
    // must behave — and trace — exactly like one that never heard of
    // them, and no ft event kinds may appear in its stream.
    let img = compile(PING_LOOP).unwrap();
    let mk = |cfg: WorldConfig| {
        let mut w = MpiWorld::new(&img, cfg);
        let exit = w.run();
        (
            exit,
            w.event_streams(),
            w.machine(0).console_text().to_string(),
        )
    };
    let base = WorldConfig {
        nranks: 2,
        machine: MachineConfig {
            budget: 50_000_000,
            obs_capacity: 512,
            ..Default::default()
        },
        ..Default::default()
    };
    let explicit = WorldConfig {
        ft: FailureDetector {
            enabled: false,
            probe_rounds: 8,
            suspect_rounds: 32,
            accrual: false,
        },
        track_digests: false,
        ..base
    };
    let (ea, sa, ca) = mk(base);
    let (eb, sb, cb) = mk(explicit);
    assert_eq!(ea, eb);
    assert_eq!(ca, cb);
    assert_eq!(sa, sb, "ft-off event streams must be bit-identical");
    let ft_kinds = [
        "rank_killed",
        "heartbeat_probe",
        "rank_suspected",
        "world_shrunk",
        "rank_respawned",
        "replica_vote",
    ];
    for stream in &sa {
        for ev in stream {
            assert!(
                !ft_kinds.contains(&ev.kind.name()),
                "ft event {:?} leaked into an ft-off run",
                ev.kind
            );
        }
    }
}

// --- fl-ulfm: app-visible fault tolerance ------------------------------

/// A world in ulfm mode: failures become app-visible error returns
/// instead of terminating the run, and the detector is on so suspicion
/// can mature into failure knowledge.
fn ulfm_world(src: &str, nranks: u16) -> MpiWorld {
    let img = fl_lang::compile(src).expect("compiles");
    MpiWorld::new(
        &img,
        WorldConfig {
            nranks,
            ulfm: true,
            ft: FailureDetector {
                enabled: true,
                ..Default::default()
            },
            machine: MachineConfig {
                budget: 50_000_000,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn ulfm_agree_is_the_or_of_all_flags() {
    // One dissenting rank poisons everyone's agreement result.
    let mut w = ulfm_world(
        "fn main() {
             var int r;
             mpi_init();
             r = mpix_comm_agree(mpi_rank() == 1);
             print_int(r);
             r = mpix_comm_agree(0);
             print_int(r);
             mpi_finalize();
         }",
        3,
    );
    assert_eq!(w.run(), WorldExit::Clean);
    for r in 0..3 {
        assert_eq!(w.machine(r).console_text(), "10", "rank {r}");
    }
}

#[test]
fn ulfm_ckpt_save_restore_roundtrip() {
    // fl_ckpt is a plain per-rank byte stash: restore is non-consuming
    // and an empty stash restores zero bytes.
    let mut w = ulfm_world(
        r#"global float a[4];
         fn main() {
             var int r;
             mpi_init();
             r = fl_ckpt_restore(addr(a), 32);
             assert(r == 0, "no checkpoint yet");
             a[0] = 42.0;
             r = fl_ckpt_save(addr(a), 32);
             assert(r == 32, "save length");
             a[0] = 7.0;
             r = fl_ckpt_restore(addr(a), 32);
             assert(r == 32, "restore length");
             assert(a[0] == 42.0, "restored value");
             r = fl_ckpt_restore(addr(a), 32);
             assert(r == 32, "restore is non-consuming");
             mpi_finalize();
         }"#,
        1,
    );
    assert_eq!(w.run(), WorldExit::Clean);
}

#[test]
fn ulfm_peer_death_errors_the_recv_and_shrink_renumbers() {
    // The full recovery sequence from FL: a blocked recv completes with
    // MPIX_ERR_PROC_FAILED, ack/get_acked surface the failure mask, and
    // shrink renumbers the survivors contiguously.
    let mut w = ulfm_world(
        r#"global float buf[16];
         fn main() {
             var int r;
             mpi_init();
             if (mpi_rank() == 2) {
                 r = mpi_recv(addr(buf), 8, 0, 7);
             } else {
                 r = mpi_recv(addr(buf), 8, 2, 7);
                 assert(r + 1 == 0, "peer death must error the recv");
                 r = mpix_comm_failure_ack();
                 r = mpix_comm_failure_get_acked();
                 assert(r != 0, "acked mask must name the dead rank");
                 r = mpix_comm_shrink();
                 print_int(r); print_str("/"); print_int(mpi_size());
             }
             mpi_finalize();
         }"#,
        3,
    );
    w.set_rank_kill(RankKill {
        rank: 2,
        at_blocks: 1,
        wedge: false,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.nranks(), 2);
    assert_eq!(w.app_shrinks(), 1);
    assert_eq!(w.ulfm_failed_mask(), 0, "shrink clears failure knowledge");
    assert_eq!(w.machine(0).console_text(), "0/2");
    assert_eq!(w.machine(1).console_text(), "1/2");
}

#[test]
fn ulfm_failure_poisons_an_agreement_in_flight() {
    // A participant that dies mid-agreement forces result bit 0 on the
    // survivors once its suspicion matures — agreement never succeeds
    // over unstable failure knowledge.
    let mut w = ulfm_world(
        r#"fn main() {
             var int r;
             var int i;
             var int s;
             mpi_init();
             if (mpi_rank() == 1) {
                 s = 0;
                 for (i = 0; i < 1000000; i = i + 1) { s = s + i; }
                 r = mpix_comm_agree(s == 0 - 1);
             } else {
                 r = mpix_comm_agree(0);
                 assert(r != 0, "a dead participant must poison the agreement");
                 r = mpix_comm_failure_ack();
                 r = mpix_comm_shrink();
             }
             mpi_finalize();
         }"#,
        3,
    );
    w.set_rank_kill(RankKill {
        rank: 1,
        at_blocks: 50,
        wedge: false,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.nranks(), 2);
    assert_eq!(w.app_shrinks(), 1);
}

#[test]
fn ulfm_failure_revokes_p2p_with_live_peers() {
    // The classic ULFM revoke problem: rank 0 waits on *live* rank 1,
    // which has already left for the agreement after seeing the failure
    // of rank 2. A known failure must error every p2p call — not only
    // those naming the dead peer — or rank 0 never reaches recovery.
    let mut w = ulfm_world(
        r#"global float buf[16];
         fn main() {
             var int r;
             var int i;
             var int s;
             mpi_init();
             if (mpi_rank() == 2) {
                 s = 0;
                 for (i = 0; i < 1000000; i = i + 1) { s = s + i; }
                 print_int(s);
             } else {
                 if (mpi_rank() == 0) {
                     r = mpi_recv(addr(buf), 8, 1, 5);
                     assert(r + 1 == 0, "revoked recv from a live peer must error");
                 }
                 r = mpix_comm_agree(0);
                 assert(r != 0, "agreement must report the failure");
                 r = mpix_comm_failure_ack();
                 r = mpix_comm_shrink();
             }
             mpi_finalize();
         }"#,
        3,
    );
    w.set_rank_kill(RankKill {
        rank: 2,
        at_blocks: 50,
        wedge: false,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.nranks(), 2);
}

#[test]
fn ulfm_wedged_rank_is_shrunk_like_a_dead_one() {
    let mut w = ulfm_world(
        r#"global float buf[16];
         fn main() {
             var int r;
             mpi_init();
             if (mpi_rank() == 1) {
                 r = mpi_recv(addr(buf), 8, 0, 7);
             } else {
                 r = mpi_recv(addr(buf), 8, 1, 7);
                 assert(r + 1 == 0, "wedged peer must error the recv");
                 r = mpix_comm_failure_ack();
                 r = mpix_comm_shrink();
                 print_int(r); print_str("/"); print_int(mpi_size());
             }
             mpi_finalize();
         }"#,
        2,
    );
    w.set_rank_kill(RankKill {
        rank: 1,
        at_blocks: 1,
        wedge: true,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.nranks(), 1);
    assert_eq!(w.machine(0).console_text(), "0/1");
}

#[test]
fn ulfm_unhandled_failure_hangs_instead_of_terminating() {
    // An app that ignores the error return and simply exits leaves the
    // dead rank unresolved: the world cannot end Clean and must report a
    // hang once the idle bound trips — ulfm never invents a recovery.
    let mut w = ulfm_world(
        r#"global float buf[16];
         fn main() {
             var int r;
             mpi_init();
             if (mpi_rank() == 1) {
                 r = mpi_recv(addr(buf), 8, 0, 7);
             } else {
                 r = mpi_recv(addr(buf), 8, 1, 7);
             }
             mpi_finalize();
         }"#,
        2,
    );
    w.set_rank_kill(RankKill {
        rank: 1,
        at_blocks: 1,
        wedge: false,
    });
    match w.run() {
        WorldExit::Hung { reason } => assert!(reason.contains("ulfm"), "{reason}"),
        other => panic!("expected Hung, got {other:?}"),
    }
}

// --- fl-chaos: network, partition, node, burst faults --------------------

use fl_mpi::{ChannelGuard, Health, NetFault, NetFaultKind, NodeKill, Partition};

/// One-shot send with the receiver printing what it got — the unguarded
/// corrupt-in-flight probe.
const ONE_SEND: &str = "global float buf[1];
     fn main() {
         mpi_init();
         if (mpi_rank() == 0) {
             buf[0] = 1.0;
             mpi_send(addr(buf), 8, 1, 2);
         } else {
             mpi_recv(addr(buf), 8, 0, 2);
             print_flt(buf[0], 6);
         }
         mpi_finalize();
     }";

fn mid_run_recv_bytes(src: &str, nranks: u16, rank: u16) -> u64 {
    let mut w = world(src, nranks);
    assert_eq!(w.run(), WorldExit::Clean);
    w.received_bytes(rank) / 2
}

#[test]
fn net_drop_strands_the_receiver() {
    let at = mid_run_recv_bytes(PING_LOOP, 2, 0);
    let mut w = world(PING_LOOP, 2);
    w.set_net_fault(NetFault {
        rank: 0,
        at_recv_byte: at,
        kind: NetFaultKind::Drop,
    });
    assert!(matches!(w.run(), WorldExit::Hung { .. }));
    assert_eq!(w.net_faults_fired(), 1);
    assert!(w.message_fault_hit().is_some(), "strike location recorded");
}

#[test]
fn net_duplicate_still_completes() {
    // The duplicated echo matches a later same-tag receive; every recv
    // still finds a message, so the lockstep loop runs to completion.
    let at = mid_run_recv_bytes(PING_LOOP, 2, 0);
    let mut w = world(PING_LOOP, 2);
    w.set_net_fault(NetFault {
        rank: 0,
        at_recv_byte: at,
        kind: NetFaultKind::Duplicate,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.net_faults_fired(), 1);
}

#[test]
fn net_reorder_only_delays_a_serialized_exchange() {
    // Ping-pong is fully serialized: deferring one echo stalls both
    // ranks until the delay elapses, then the run finishes clean.
    let at = mid_run_recv_bytes(PING_LOOP, 2, 0);
    let mut w = world(PING_LOOP, 2);
    w.set_net_fault(NetFault {
        rank: 0,
        at_recv_byte: at,
        kind: NetFaultKind::Reorder { delay_rounds: 64 },
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.net_faults_fired(), 1);
}

#[test]
fn net_corrupt_unguarded_reaches_the_user_buffer() {
    let mut g = world(ONE_SEND, 2);
    assert_eq!(g.run(), WorldExit::Clean);
    let golden = g.machine(1).console_text();
    let mut w = world(ONE_SEND, 2);
    w.set_net_fault(NetFault {
        rank: 1,
        at_recv_byte: 54,
        kind: NetFaultKind::Corrupt,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.net_faults_fired(), 1);
    assert_ne!(
        w.machine(1).console_text(),
        golden,
        "an inverted payload byte must show in the output"
    );
}

#[test]
fn net_corrupt_guarded_is_caught_and_retransmitted() {
    let img = compile(ONE_SEND).unwrap();
    let cfg = WorldConfig {
        nranks: 2,
        guard: ChannelGuard {
            enabled: true,
            max_retransmits: 3,
        },
        machine: MachineConfig {
            budget: 50_000_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut g = MpiWorld::new(&img, cfg);
    assert_eq!(g.run(), WorldExit::Clean);
    let golden = g.machine(1).console_text();
    let mut w = MpiWorld::new(&img, cfg);
    w.set_net_fault(NetFault {
        rank: 1,
        at_recv_byte: 54,
        kind: NetFaultKind::Corrupt,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.net_faults_fired(), 1);
    assert!(w.retransmits() >= 1, "the CRC guard must NACK the flip");
    assert_eq!(
        w.machine(1).console_text(),
        golden,
        "the retransmitted pristine copy masks the corruption"
    );
}

#[test]
fn partition_severs_cross_traffic_and_hangs_the_job() {
    let at = mid_run_blocks(PING_LOOP, 2, 0);
    let mut w = world(PING_LOOP, 2);
    w.set_partition(Partition {
        mask: 0b10,
        trigger_rank: 0,
        at_blocks: at,
        rounds: 1_000_000,
    });
    assert!(matches!(w.run(), WorldExit::Hung { .. }));
    assert!(w.partition_drops() >= 1, "the cut must drop real traffic");
}

#[test]
fn partition_within_one_group_cuts_nothing() {
    // Both ranks on the same side of the cut: no channel is severed.
    let at = mid_run_blocks(PING_LOOP, 2, 0);
    let mut w = world(PING_LOOP, 2);
    w.set_partition(Partition {
        mask: 0b11,
        trigger_rank: 0,
        at_blocks: at,
        rounds: 1_000_000,
    });
    assert_eq!(w.run(), WorldExit::Clean);
    assert_eq!(w.partition_drops(), 0);
}

/// Four ranks in a barrier loop: group faults strand the survivors.
const BARRIER_LOOP: &str = "fn main() {
         var int i;
         mpi_init();
         for (i = 0; i < 40; i = i + 1) { mpi_barrier(); }
         mpi_finalize();
     }";

#[test]
fn node_kill_takes_the_whole_group_at_once() {
    let at = mid_run_blocks(BARRIER_LOOP, 4, 2);
    let mut w = world(BARRIER_LOOP, 4);
    w.set_node_kill(NodeKill {
        mask: 0b1100,
        trigger_rank: 2,
        at_blocks: at,
        wedge: false,
    });
    assert!(matches!(w.run(), WorldExit::Hung { .. }));
    assert_eq!(w.health(2), Health::Dead);
    assert_eq!(w.health(3), Health::Dead);
    assert_eq!(w.health(0), Health::Alive);
    assert_eq!(w.health(1), Health::Alive);
}

#[test]
fn burst_kills_fire_on_their_own_clocks() {
    let a1 = mid_run_blocks(BARRIER_LOOP, 4, 1);
    let a3 = mid_run_blocks(BARRIER_LOOP, 4, 3);
    let mut w = world(BARRIER_LOOP, 4);
    w.add_rank_kill(RankKill {
        rank: 1,
        at_blocks: a1,
        wedge: false,
    });
    // Both clocks sit at the same barrier round of the lockstep loop, so
    // both victims cross their thresholds before either stall bites.
    w.add_rank_kill(RankKill {
        rank: 3,
        at_blocks: a3,
        wedge: true,
    });
    assert!(matches!(w.run(), WorldExit::Hung { .. }));
    assert_eq!(w.health(1), Health::Dead);
    assert_eq!(w.health(3), Health::Wedged);
}

#[test]
fn take_rank_kill_disarms_every_process_fault() {
    let mut w = world(BARRIER_LOOP, 4);
    w.add_rank_kill(RankKill {
        rank: 1,
        at_blocks: 1,
        wedge: false,
    });
    w.set_node_kill(NodeKill {
        mask: 0b1100,
        trigger_rank: 2,
        at_blocks: 1,
        wedge: false,
    });
    assert!(w.take_rank_kill().is_none());
    assert_eq!(w.run(), WorldExit::Clean, "disarmed faults never fire");
}

#[test]
fn chaos_faults_ride_snapshots() {
    // Arm a corrupt-in-flight fault, snapshot before it fires, and run
    // both worlds: the restored one replays the identical strike.
    let mut w = world(ONE_SEND, 2);
    w.set_net_fault(NetFault {
        rank: 1,
        at_recv_byte: 54,
        kind: NetFaultKind::Corrupt,
    });
    let snap = w.snapshot();
    assert_eq!(w.run(), WorldExit::Clean);
    let out_a = w.machine(1).console_text().to_string();
    assert_eq!(w.net_faults_fired(), 1);
    let mut r = snap.restore();
    assert_eq!(r.run(), WorldExit::Clean);
    assert_eq!(r.net_faults_fired(), 1);
    assert_eq!(r.machine(1).console_text(), out_a);
}
