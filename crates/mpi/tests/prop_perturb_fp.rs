//! Accrual-detector false-positive immunity, test-enforced (fl-perturb).
//!
//! The degradation-aware detector's whole claim is that *slow is not
//! dead*: a compute-bound rank that keeps progressing — however badly a
//! scheduler tax starves it — must never be declared failed. This pins
//! that claim as a property over arbitrary quantum-tax schedules
//! (victim rank, onset clock, window length, severity up to the 995‰
//! cap) and arbitrary detector cadences, on both executor paths. A
//! companion property keeps the detector honest in the other direction:
//! under the very same accrual settings, a genuinely wedged or killed
//! rank is still converted into an explicit failure verdict, never a
//! silent hang.

use fl_lang::compile;
use fl_machine::{MachineConfig, ProgramImage};
use fl_mpi::{FailureDetector, MpiWorld, QuantumTax, RankKill, WorldConfig, WorldExit};
use proptest::prelude::*;

/// A ring exchange with a compute phase between communications — the
/// shape most exposed to a scheduling tax: long stretches where the
/// taxed rank is silent on the wire because it is (slowly) computing.
fn ring_compute_program(iters: u32, work: u32) -> String {
    format!(
        "global float buf[16];
         fn main() {{
             var int me;
             var int n;
             var int i;
             var int j;
             var int right;
             var int left;
             mpi_init();
             me = mpi_rank();
             n = mpi_size();
             right = me + 1;
             if (right == n) {{ right = 0; }}
             left = me - 1;
             if (left < 0) {{ left = n - 1; }}
             for (i = 0; i < {iters}; i = i + 1) {{
                 for (j = 0; j < {work}; j = j + 1) {{
                     buf[0] = buf[0] + 1.0;
                 }}
                 mpi_send(addr(buf), 32, right, i);
                 mpi_recv(addr(buf), 32, left, i);
             }}
             print_flt(buf[0], 1);
             mpi_finalize();
         }}"
    )
}

fn accrual_world(
    img: &ProgramImage,
    nranks: u16,
    probe_rounds: u64,
    suspect_rounds: u64,
    fastpath: bool,
) -> MpiWorld {
    MpiWorld::new(
        img,
        WorldConfig {
            nranks,
            ft: FailureDetector {
                enabled: true,
                probe_rounds,
                suspect_rounds,
                accrual: true,
            },
            machine: MachineConfig {
                budget: 50_000_000,
                fastpath,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No quantum-tax schedule — whatever the victim, onset, window or
    /// severity — makes the accrual detector suspect a progressing
    /// rank: the run completes Clean on both executor paths, with
    /// byte-identical console output.
    #[test]
    fn accrual_detector_never_suspects_a_taxed_rank(
        nranks in 2u16..5,
        iters in 2u32..7,
        work in 10u32..400,
        victim in 0u16..5,
        at_blocks in 0u64..4_000,
        rounds in 16u64..2_048,
        tax_permille in 500u32..996,
        probe_rounds in 4u64..16,
        suspect_rounds in 8u64..64,
    ) {
        let img = compile(&ring_compute_program(iters, work)).expect("compiles");
        let tax = QuantumTax {
            rank: victim % nranks,
            at_blocks,
            rounds,
            tax_permille,
        };
        let mut outcomes = Vec::new();
        for fastpath in [false, true] {
            let mut w = accrual_world(&img, nranks, probe_rounds, suspect_rounds, fastpath);
            w.set_quantum_tax(tax);
            let exit = w.run();
            prop_assert_eq!(
                &exit,
                &WorldExit::Clean,
                "tax {:?} must not be read as a failure (fastpath={})",
                tax,
                fastpath
            );
            let console: Vec<String> = (0..nranks)
                .map(|r| w.machine(r).console_text().to_string())
                .collect();
            outcomes.push((console, w.starved_mask()));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "executor paths diverged");
    }

    /// The same accrual settings still catch real process failures: a
    /// rank wedged or killed at an arbitrary clock yields an explicit
    /// RankFailed verdict (or, if it dies after its last communication,
    /// a Clean finish) — never an undiagnosed hang.
    #[test]
    fn accrual_detector_still_catches_real_failures(
        nranks in 2u16..5,
        iters in 2u32..7,
        work in 10u32..200,
        victim in 0u16..5,
        at_blocks in 0u64..3_000,
        wedge in any::<bool>(),
        probe_rounds in 4u64..16,
        suspect_rounds in 8u64..64,
        fastpath in any::<bool>(),
    ) {
        let img = compile(&ring_compute_program(iters, work)).expect("compiles");
        let mut w = accrual_world(&img, nranks, probe_rounds, suspect_rounds, fastpath);
        w.set_rank_kill(RankKill {
            rank: victim % nranks,
            at_blocks,
            wedge,
        });
        let exit = w.run();
        let fired = w.rank_kill().is_none();
        match exit {
            WorldExit::RankFailed { rank, .. } => {
                prop_assert!(fired, "verdict without a fired kill");
                prop_assert_eq!(rank, victim % nranks);
            }
            WorldExit::Clean => {
                // Legitimate only when the kill landed after (or never
                // reached) the victim's last observable communication.
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "kill/wedge misdiagnosed as {other:?} (fired={fired}, wedge={wedge})"
                )));
            }
        }
    }
}
