//! `faultlab` — command-line driver for the FaultLab experiments.
//!
//! ```text
//! faultlab profile  [<app> ...]                 Table 1 application profiles
//! faultlab campaign <app> [options]             Tables 2-4 injection campaigns
//! faultlab trace    <app> [--samples N]         Tables 5-7 working-set curves
//! faultlab trial    <app> <region> --seed K     run one injection, verbosely
//! faultlab events   <app> <region> --trial K    replay one trial's event timeline
//! faultlab metrics  <app> [options]             campaign-level event metrics
//! faultlab guard    <app> [options]             guard-on/off detection coverage
//! faultlab ft       <app> [options]             rank-kill recovery + replication campaign
//! faultlab chaos    <app> [options]             chaos-model x defense coverage matrix
//! faultlab perturb  <app> [options]             interference-model x detection matrix
//! faultlab sample-size --error D [--conf C]     §4.3 sample-size calculator
//! faultlab source   <app>                       print the generated FL source
//! faultlab disasm   <app> [--limit N]           disassemble the app text
//! ```
//!
//! Apps: `wavetoy`, `moldyn`, `climsim`, `jacobi3d`. Regions:
//! `regular-reg`, `fp-reg`, `bss`, `data`, `stack`, `text`, `heap`,
//! `message` (or `all`).

use fl_apps::{App, AppKind, AppParams};
use fl_inject::{
    estimation_error, render_chaos, render_chaos_focus, render_chaos_tsv, render_ft_focus,
    render_perturb, render_perturb_focus, render_perturb_tsv, render_register_breakdown, run_spec,
    sample_size, sort_records_jsonl, CampaignBuilder, CampaignConfig, CampaignSpec, ChaosPolicy,
    EngineControl, EngineProgress, EngineSink, FaultModel, FtMode, FtPolicy, GuardPolicy,
    MetricsReport, PerturbPolicy, PerturbResult, Report, ReportFormat, SpecMode, SpecOutcome,
    StderrProgress, TargetClass, TrialOutput, VecSink,
};
use fl_serve::{ServeConfig, Server};
use fl_snap::RecoveryConfig;

const DEFAULT_BUDGET: u64 = 2_000_000_000;

/// Default campaign-service address for `serve` and its client verbs.
const DEFAULT_ADDR: &str = "127.0.0.1:7717";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("faultlab: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "profile" => cmd_profile(rest),
        "campaign" => cmd_campaign(rest),
        "run-config" => cmd_run_config(rest),
        "trace" => cmd_trace(rest),
        "trial" => cmd_trial(rest),
        "replay" => cmd_replay(rest),
        "events" => cmd_events(rest),
        "metrics" => cmd_metrics(rest),
        "guard" => cmd_guard(rest),
        "ft" => cmd_ft(rest),
        "chaos" => cmd_chaos(rest),
        "perturb" => cmd_perturb(rest),
        "recovery" => cmd_recovery(rest),
        "spec" => cmd_spec(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "watch" => cmd_watch(rest),
        "pause" | "resume" | "stop" => cmd_control(cmd, rest),
        "sample-size" => cmd_sample_size(rest),
        "source" => cmd_source(rest),
        "disasm" => cmd_disasm(rest),
        "regpressure" => cmd_regpressure(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `faultlab help`)")),
    }
}

fn print_usage() {
    println!(
        "faultlab — software fault injection for MPI applications\n\
         \n\
         USAGE:\n\
         \x20 faultlab profile  [<app> ...]\n\
         \x20 faultlab campaign <app> [--injections N] [--regions R1,R2|all]\n\
         \x20                   [--seed S] [--jobs N] [--epoch-rounds E] [--ring N]\n\
         \x20                   [--tiny] [--tsv] [--jsonl] [--registers] [--no-fastpath]\n\
         \x20 faultlab trace    <app> [--samples N] [--tsv] [--tiny]\n\
         \x20 faultlab trial    <app> <region> [--seed K] [--tiny]\n\
         \x20 faultlab replay   <app> <region> --trial K [--regions R1,R2|all]\n\
         \x20                   [--seed S] [--injections N] [--epoch-rounds E] [--tiny]\n\
         \x20 faultlab events   <app> <region> --trial K [--regions R1,R2|all]\n\
         \x20                   [--seed S] [--ring N] [--jsonl] [--tiny] [--no-fastpath]\n\
         \x20 faultlab metrics  <app> [--injections N] [--regions R1,R2|all]\n\
         \x20                   [--seed S] [--ring N] [--tsv] [--tiny] [--no-fastpath]\n\
         \x20 faultlab guard    <app> [--injections N] [--regions R1,R2|all]\n\
         \x20                   [--seed S] [--threads T] [--checkpoint-rounds C]\n\
         \x20                   [--restarts R] [--retransmits X] [--tiny] [--tsv] [--jsonl]\n\
         \x20                   [--no-fastpath]\n\
         \x20 faultlab ft       <app> [--injections N] [--seed S] [--jobs N]\n\
         \x20                   [--mode baseline|shrink|respawn|replicated|app]\n\
         \x20                   [--buddy-rounds B] [--respawns R] [--replicas N]\n\
         \x20                   [--probe-rounds P] [--suspect-rounds Q]\n\
         \x20                   [--tiny] [--tsv] [--jsonl] [--no-fastpath]\n\
         \x20 faultlab chaos    <app> [--injections N] [--seed S] [--jobs N]\n\
         \x20                   [--model net-drop|net-dup|net-reorder|net-corrupt|\n\
         \x20                    partition|syscall-malloc|syscall-write|burst-kill|node-kill]\n\
         \x20                   [--partition-lo L] [--partition-hi H] [--reorder-delay D]\n\
         \x20                   [--burst-max K] [--node-ranks R] [guard/ft flags ...]\n\
         \x20                   [--tiny] [--tsv] [--jsonl] [--no-fastpath]\n\
         \x20 faultlab perturb  <app> [--injections N] [--seed S] [--jobs N]\n\
         \x20                   [--model quantum-tax|hog-rank|mem-stall|kill-rank|wedge-rank]\n\
         \x20                   [--probe-rounds P] [--suspect-rounds Q]\n\
         \x20                   [--tax-lo L] [--tax-hi H] [--tax-rounds-lo L] [--tax-rounds-hi H]\n\
         \x20                   [--hog-share-lo L] [--hog-share-hi H] [--hog-node-ranks R]\n\
         \x20                   [--stall-access-lo L] [--stall-access-hi H]\n\
         \x20                   [--stall-window-lo L] [--stall-window-hi H]\n\
         \x20                   [--degraded-permille D] [--tiny] [--tsv] [--jsonl] [--no-fastpath]\n\
         \x20 faultlab recovery <app> [--checkpoint-every K] [--kill-rank R]\n\
         \x20                   [--kill-round N] [--tiny]\n\
         \x20 faultlab run-config <file.cfg>\n\
         \x20 faultlab spec     <app> [--mode campaign|guard|ft|chaos|perturb] [spec flags ...]\n\
         \x20 faultlab serve    [--addr HOST:PORT] [--state-dir DIR]\n\
         \x20 faultlab submit   [<spec.json>|-] [--addr HOST:PORT]\n\
         \x20 faultlab status   [<id>] [--addr HOST:PORT]\n\
         \x20 faultlab watch    <id> [--addr HOST:PORT]\n\
         \x20 faultlab pause|resume|stop <id> [--addr HOST:PORT]\n\
         \x20 faultlab sample-size --error D [--confidence C] [--injections N]\n\
         \x20 faultlab source   <app> [--tiny]\n\
         \x20 faultlab disasm   <app> [--limit N] [--tiny]\n\
         \x20 faultlab regpressure <app> [--tiny]\n\
         \n\
         FLAGS (same meaning on every verb that takes them):\n\
         \x20 --injections N      trials per region (campaign/metrics/guard) or per\n\
         \x20                     fault kind (ft)\n\
         \x20 --regions R1,R2     comma-separated region list, or `all`\n\
         \x20 --seed S            campaign PRNG seed\n\
         \x20 --jobs N / --threads N  worker threads (0 = one per core)\n\
         \x20 --addr HOST:PORT    campaign service address (default 127.0.0.1:7717)\n\
         \x20 --epoch-rounds E    scheduler rounds per snapshot epoch\n\
         \x20 --ring N            per-rank event ring capacity\n\
         \x20 --tiny              CI-sized app parameters (fast)\n\
         \x20 --tsv / --jsonl     machine-readable output instead of the table\n\
         \x20 --no-fastpath       disable the software-TLB/basic-block fast path\n\
         \x20                     (observably identical, much slower)\n\
         \x20 --mode M            ft: focus the table on one recovery discipline\n\
         \x20                     (baseline|shrink|respawn|replicated|app);\n\
         \x20                     spec: experiment family (campaign|guard|ft|chaos|perturb)\n\
         \x20 --model M           chaos/perturb: focus the table on one fault model's row\n\
         \x20 --degraded-permille D  perturb: slowdown threshold separating Correct from\n\
         \x20                     Degraded, in permille of the clean reference (1050 = 5%)\n\
         \n\
         APPS: wavetoy (Cactus Wavetoy), moldyn (NAMD), climsim (CAM),\n\
         \x20     jacobi3d (Jacobi-3D, fl-ulfm app-side recovery)\n\
         REGIONS: regular-reg fp-reg bss data stack text heap message all"
    );
}

fn parse_app(name: &str) -> Result<AppKind, String> {
    name.parse()
}

fn parse_region(name: &str) -> Result<TargetClass, String> {
    name.parse()
}

/// Pull `--flag value` options and bare words out of an argument list.
struct Opts {
    words: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut words = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                words.push(a.clone());
            }
            i += 1;
        }
        Opts { words, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// Reject flags outside `valid`, suggesting the nearest valid flag.
    fn expect(&self, valid: &[&str]) -> Result<(), String> {
        for (name, _) in &self.flags {
            if valid.iter().any(|v| v == name) {
                continue;
            }
            let nearest = valid
                .iter()
                .map(|v| (edit_distance(name, v), *v))
                .min()
                .filter(|&(d, v)| d <= 3 || v.starts_with(name.as_str()) || name.starts_with(v));
            return Err(match nearest {
                Some((_, v)) => format!("unknown flag `--{name}` (did you mean `--{v}`?)"),
                None => format!(
                    "unknown flag `--{name}` (valid flags: {})",
                    valid
                        .iter()
                        .map(|v| format!("--{v}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        Ok(())
    }
}

/// Validate a mode name against its closed set, suggesting the nearest
/// valid mode on a miss — the same did-you-mean unknown flags get.
fn check_mode(input: &str, valid: &[&str], what: &str) -> Result<(), String> {
    if valid.contains(&input) {
        return Ok(());
    }
    let nearest = valid
        .iter()
        .map(|v| (edit_distance(input, v), *v))
        .min()
        .filter(|&(d, v)| d <= 3 || v.starts_with(input) || input.starts_with(v));
    Err(match nearest {
        Some((_, v)) => format!("unknown {what} `{input}` (did you mean `{v}`?)"),
        None => format!(
            "unknown {what} `{input}` (valid modes: {})",
            valid.join(", ")
        ),
    })
}

/// Levenshtein distance, for did-you-mean flag suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

fn build_app(kind: AppKind, tiny: bool) -> App {
    let params = if tiny {
        AppParams::tiny(kind)
    } else {
        AppParams::default_for(kind)
    };
    App::build(kind, params)
}

/// Flags shared by every spec-building verb (`campaign`, `metrics`,
/// `guard`, `ft`, `spec`), excluding each verb's output/policy flags.
const SPEC_FLAGS: &[&str] = &[
    "injections",
    "regions",
    "seed",
    "threads",
    "jobs",
    "epoch-rounds",
    "ring",
    "tiny",
    "no-fastpath",
];

const GUARD_FLAGS: &[&str] = &["checkpoint-rounds", "restarts", "retransmits"];
const FT_FLAGS: &[&str] = &[
    "buddy-rounds",
    "respawns",
    "replicas",
    "probe-rounds",
    "suspect-rounds",
];
const CHAOS_FLAGS: &[&str] = &[
    "partition-lo",
    "partition-hi",
    "reorder-delay",
    "burst-max",
    "node-ranks",
];
const PERTURB_FLAGS: &[&str] = &[
    "probe-rounds",
    "suspect-rounds",
    "tax-lo",
    "tax-hi",
    "tax-rounds-lo",
    "tax-rounds-hi",
    "hog-share-lo",
    "hog-share-hi",
    "hog-node-ranks",
    "stall-access-lo",
    "stall-access-hi",
    "stall-window-lo",
    "stall-window-hi",
    "degraded-permille",
];

fn guard_policy_from(o: &Opts) -> Result<GuardPolicy, String> {
    Ok(GuardPolicy {
        checkpoint_rounds: o.get_num("checkpoint-rounds")?.unwrap_or(32),
        max_restarts: o.get_num("restarts")?.unwrap_or(3),
        max_retransmits: o.get_num("retransmits")?.unwrap_or(3),
        ..GuardPolicy::default()
    })
}

fn ft_policy_from(o: &Opts) -> Result<FtPolicy, String> {
    let mut policy = FtPolicy::default();
    if let Some(b) = o.get_num("buddy-rounds")? {
        policy.buddy_rounds = b;
    }
    if let Some(r) = o.get_num("respawns")? {
        policy.max_respawns = r;
    }
    if let Some(n) = o.get_num("replicas")? {
        policy.replicas = n;
    }
    if let Some(p) = o.get_num("probe-rounds")? {
        policy.detector.probe_rounds = p;
    }
    if let Some(q) = o.get_num("suspect-rounds")? {
        policy.detector.suspect_rounds = q;
    }
    Ok(policy)
}

fn chaos_policy_from(o: &Opts) -> Result<ChaosPolicy, String> {
    // Guard and ft knobs configure the crc/watchdog and
    // replica/shrink/app defense columns respectively.
    let mut p = ChaosPolicy {
        ft: ft_policy_from(o)?,
        ..ChaosPolicy::default()
    };
    if let Some(c) = o.get_num("checkpoint-rounds")? {
        p.guard.checkpoint_rounds = c;
    }
    if let Some(r) = o.get_num("restarts")? {
        p.guard.max_restarts = r;
    }
    if let Some(x) = o.get_num("retransmits")? {
        p.guard.max_retransmits = x;
    }
    if let Some(v) = o.get_num("partition-lo")? {
        p.partition_rounds.0 = v;
    }
    if let Some(v) = o.get_num("partition-hi")? {
        p.partition_rounds.1 = v;
    }
    if let Some(v) = o.get_num("reorder-delay")? {
        p.reorder_max_delay = v;
    }
    if let Some(v) = o.get_num("burst-max")? {
        p.burst_max = v;
    }
    if let Some(v) = o.get_num("node-ranks")? {
        p.node_ranks = v;
    }
    Ok(p)
}

/// Build a [`CampaignSpec`] from a verb's flags — the single source the
/// one-shot verbs, `faultlab spec` and the service submissions share.
/// `--jobs` and `--threads` are aliases (0 = one worker per core).
fn perturb_policy_from(o: &Opts) -> Result<PerturbPolicy, String> {
    let mut p = PerturbPolicy::default();
    if let Some(v) = o.get_num("probe-rounds")? {
        p.probe_rounds = v;
    }
    if let Some(v) = o.get_num("suspect-rounds")? {
        p.suspect_rounds = v;
    }
    if let Some(v) = o.get_num("tax-lo")? {
        p.tax_permille.0 = v;
    }
    if let Some(v) = o.get_num("tax-hi")? {
        p.tax_permille.1 = v;
    }
    if let Some(v) = o.get_num("tax-rounds-lo")? {
        p.tax_rounds.0 = v;
    }
    if let Some(v) = o.get_num("tax-rounds-hi")? {
        p.tax_rounds.1 = v;
    }
    if let Some(v) = o.get_num("hog-share-lo")? {
        p.hog_share_permille.0 = v;
    }
    if let Some(v) = o.get_num("hog-share-hi")? {
        p.hog_share_permille.1 = v;
    }
    if let Some(v) = o.get_num("hog-node-ranks")? {
        p.hog_node_ranks = v;
    }
    if let Some(v) = o.get_num("stall-access-lo")? {
        p.stall_per_access.0 = v;
    }
    if let Some(v) = o.get_num("stall-access-hi")? {
        p.stall_per_access.1 = v;
    }
    if let Some(v) = o.get_num("stall-window-lo")? {
        p.stall_window_per16.0 = v;
    }
    if let Some(v) = o.get_num("stall-window-hi")? {
        p.stall_window_per16.1 = v;
    }
    if let Some(v) = o.get_num("degraded-permille")? {
        p.degraded_permille = v;
    }
    Ok(p)
}

fn spec_from_opts(o: &Opts, mode: &str, default_injections: u32) -> Result<CampaignSpec, String> {
    let app_name = o.words.first().ok_or("needs an app name")?;
    let kind = parse_app(app_name)?;
    let mut spec = CampaignSpec::new(kind);
    spec.tiny = o.has("tiny");
    spec.classes = match o.get("regions") {
        None | Some("all") => TargetClass::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_region)
            .collect::<Result<_, _>>()?,
    };
    let c = &mut spec.campaign;
    c.injections = o.get_num("injections")?.unwrap_or(default_injections);
    c.seed = o.get_num("seed")?.unwrap_or(0xFA17);
    c.threads = match o.get_num("jobs")? {
        Some(j) => j,
        None => o.get_num("threads")?.unwrap_or(0),
    };
    c.epoch_rounds = o.get_num("epoch-rounds")?.unwrap_or(16);
    c.obs_capacity = o.get_num("ring")?.unwrap_or(0);
    c.fastpath = !o.has("no-fastpath");
    check_mode(
        mode,
        &["campaign", "guard", "ft", "chaos", "perturb"],
        "mode",
    )?;
    spec.mode = match mode {
        "campaign" => SpecMode::Campaign,
        "guard" => SpecMode::Guard(guard_policy_from(o)?),
        "chaos" => SpecMode::Chaos(chaos_policy_from(o)?),
        "perturb" => SpecMode::Perturb(perturb_policy_from(o)?),
        _ => SpecMode::Ft(ft_policy_from(o)?),
    };
    Ok(spec)
}

/// The one-shot verbs' engine sink: a stderr progress line, plus the
/// canonical record stream when `--jsonl` asked for it.
struct CliSink {
    records: Option<VecSink>,
    progress: StderrProgress,
}

impl CliSink {
    fn new(app: AppKind, collect_records: bool, total: u64) -> CliSink {
        CliSink {
            records: collect_records.then(|| VecSink::new(app)),
            progress: StderrProgress::new((total / 20).max(1)),
        }
    }

    fn canonical_records(self) -> String {
        match self.records {
            Some(v) => sort_records_jsonl(&v.into_lines().join("\n")),
            None => String::new(),
        }
    }
}

impl EngineSink for CliSink {
    fn trial(&self, t: &TrialOutput) {
        if let Some(v) = &self.records {
            v.trial(t);
        }
    }

    fn progress(&self, p: EngineProgress) {
        self.progress.progress(p);
    }
}

/// Run a spec on the engine with the CLI sink; uncontrolled one-shot
/// runs always complete.
fn run_spec_cli(spec: &CampaignSpec, sink: &CliSink) -> SpecOutcome {
    run_spec(spec, sink, &EngineControl::new(), None)
        .expect("uncontrolled one-shot runs always complete")
}

fn jobs_label(threads: usize) -> String {
    if threads == 0 {
        "auto".into()
    } else {
        threads.to_string()
    }
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["tiny"])?;
    let kinds: Vec<AppKind> = if o.words.is_empty() {
        AppKind::ALL.to_vec()
    } else {
        o.words
            .iter()
            .map(|w| parse_app(w))
            .collect::<Result<_, _>>()?
    };
    let mut rows = Vec::new();
    for kind in kinds {
        eprintln!("profiling {} ...", kind.name());
        let app = build_app(kind, o.has("tiny"));
        let g = app.golden(DEFAULT_BUDGET);
        rows.push((kind.name(), fl_apps::profile(&app, &g)));
    }
    println!("Table 1: Per-Process Profiles of Test Applications\n");
    print!("{}", fl_apps::render_profile_table(&rows));
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.extend(["tsv", "jsonl", "registers"]);
    o.expect(&valid)?;
    let spec = spec_from_opts(&o, "campaign", 500)?;
    let kind = spec.app;
    eprintln!(
        "campaign: {} x {} injections over {} regions, {} workers ...",
        kind.name(),
        spec.campaign.injections,
        spec.classes.len(),
        jobs_label(spec.campaign.threads),
    );
    let total = spec.classes.len() as u64 * spec.campaign.injections as u64;
    let sink = CliSink::new(kind, o.has("jsonl"), total);
    let SpecOutcome::Campaign(result) = run_spec_cli(&spec, &sink) else {
        unreachable!("campaign mode yields a campaign outcome");
    };
    match ReportFormat::from_flags(o.has("tsv"), o.has("jsonl")) {
        // The engine's live record stream is a superset of the
        // result-level `Report::jsonl` (per-trial insns, obs fields);
        // this verb keeps streaming the canonical records.
        ReportFormat::Jsonl => print!("{}", sink.canonical_records()),
        ReportFormat::Tsv => print!("{}", result.tsv()),
        ReportFormat::Table => {
            let title = format!(
                "Fault Injection Results ({} / {} analogue), d = {:.1}% at 95% confidence",
                kind.name(),
                kind.paper_name(),
                estimation_error(0.95, spec.campaign.injections) * 100.0
            );
            print!("{}", result.table(&title));
            println!("\n{}", throughput_line(&result));
            if o.has("registers") {
                for class in [TargetClass::RegularReg, TargetClass::FpReg] {
                    if let Some(c) = result.class(class) {
                        println!("\nPer-register breakdown ({}):", class.label());
                        print!("{}", render_register_breakdown(c));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Human-readable campaign throughput summary: one line of rates, one
/// line of exec-cache behaviour (block/trace hits, side exits,
/// demotions) so a cold cache or a demotion storm is visible at a
/// glance.
fn throughput_line(result: &fl_inject::CampaignResult) -> String {
    let s = &result.exec_stats;
    format!(
        "throughput: {} trials, {:.1}M guest insns in {:.2}s — {:.1} MIPS, {:.1} trials/sec\n\
         exec-cache: {} block hits, {} block misses, {} trace passes, {} side exits, {} demotions",
        result.trials_total(),
        result.insns_total as f64 / 1e6,
        result.wall_nanos as f64 / 1e9,
        result.mips(),
        result.trials_per_sec(),
        s.block_hits,
        s.block_misses,
        s.trace_hits,
        s.trace_side_exits,
        s.demotions,
    )
}

fn cmd_run_config(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&[])?;
    let path = o.words.first().ok_or("run-config needs a file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = fl_inject::parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    let app = build_app(spec.app, spec.tiny);
    eprintln!(
        "run-config: {} x {} injections over {} regions ...",
        spec.app.name(),
        spec.campaign.injections,
        spec.classes.len()
    );
    let result = CampaignBuilder::new(&app)
        .classes(&spec.classes)
        .with_config(spec.campaign)
        .run();
    let title = format!(
        "Fault Injection Results ({}), n = {}, d = {:.1}% @95%",
        spec.app.name(),
        spec.campaign.injections,
        estimation_error(0.95, spec.campaign.injections) * 100.0
    );
    print!("{}", result.table(&title));
    Ok(())
}

fn cmd_regpressure(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["tiny"])?;
    let app_name = o.words.first().ok_or("regpressure needs an app name")?;
    let app = build_app(parse_app(app_name)?, o.has("tiny"));
    print!("{}", fl_inject::render_register_pressure(&app.image));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["samples", "tsv", "tiny"])?;
    let app_name = o.words.first().ok_or("trace needs an app name")?;
    let kind = parse_app(app_name)?;
    let samples: usize = o.get_num("samples")?.unwrap_or(60);
    let app = build_app(kind, o.has("tiny"));
    eprintln!("tracing {} ...", kind.name());
    let report = fl_trace::trace_app(&app, DEFAULT_BUDGET, samples);
    if o.has("tsv") {
        print!("{}", fl_trace::render_tsv(&report));
    } else {
        print!("{}", fl_trace::render_summary(&report));
    }
    Ok(())
}

// `trial` takes a raw trial seed, not campaign coordinates, so it is the
// one caller of the deprecated driver-level entry point.
#[allow(deprecated)]
fn cmd_trial(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["seed", "tiny"])?;
    let app_name = o.words.first().ok_or("trial needs an app name")?;
    let region = o.words.get(1).ok_or("trial needs a region")?;
    let kind = parse_app(app_name)?;
    let class = parse_region(region)?;
    let seed: u64 = o.get_num("seed")?.unwrap_or(1);
    let app = build_app(kind, o.has("tiny"));
    let golden = app.golden(DEFAULT_BUDGET);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let dicts = fl_inject::Dictionaries::build(&app);
    let rec = fl_inject::run_trial(&app, &golden, &dicts, class, seed, budget);
    println!("app:     {}", kind.name());
    println!("fault:   {}", rec.detail);
    println!("outcome: {}", rec.outcome);
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&[
        "trial",
        "regions",
        "seed",
        "injections",
        "threads",
        "epoch-rounds",
        "tiny",
    ])?;
    let app_name = o.words.first().ok_or("replay needs an app name")?;
    let region = o.words.get(1).ok_or("replay needs a region")?;
    let kind = parse_app(app_name)?;
    let class = parse_region(region)?;
    let regions: Vec<TargetClass> = match o.get("regions") {
        None | Some("all") => TargetClass::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_region)
            .collect::<Result<_, _>>()?,
    };
    let ci = regions
        .iter()
        .position(|&c| c == class)
        .ok_or_else(|| format!("region `{region}` is not in the campaign's region list"))?;
    let k: u32 = o.get_num("trial")?.ok_or("replay needs --trial K")?;
    let cfg = CampaignConfig {
        injections: o.get_num("injections")?.unwrap_or(500),
        seed: o.get_num("seed")?.unwrap_or(0xFA17),
        budget_factor: 3.0,
        threads: o.get_num("threads")?.unwrap_or(0),
        epoch_rounds: o.get_num("epoch-rounds")?.unwrap_or(16),
        ..Default::default()
    };
    if k >= cfg.injections {
        return Err(format!(
            "--trial {k} out of range (campaign has {} trials)",
            cfg.injections
        ));
    }
    let app = build_app(kind, o.has("tiny"));
    eprintln!("replaying {} {} trial {k} ...", kind.name(), class.label());
    let seed = cfg.seed;
    let rec = CampaignBuilder::new(&app)
        .classes(&regions)
        .with_config(cfg)
        .replay(ci, k);
    println!("app:     {}", kind.name());
    println!("class:   {}", class.label());
    println!(
        "trial:   {k} (seed {:#x})",
        fl_inject::trial_seed(seed, ci, k)
    );
    println!("fault:   {}", rec.detail);
    println!("outcome: {}", rec.outcome);
    Ok(())
}

fn cmd_events(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&[
        "trial",
        "regions",
        "seed",
        "injections",
        "threads",
        "epoch-rounds",
        "ring",
        "jsonl",
        "tiny",
        "no-fastpath",
    ])?;
    let app_name = o.words.first().ok_or("events needs an app name")?;
    let region = o.words.get(1).ok_or("events needs a region")?;
    let kind = parse_app(app_name)?;
    let class = parse_region(region)?;
    let regions: Vec<TargetClass> = match o.get("regions") {
        None | Some("all") => TargetClass::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_region)
            .collect::<Result<_, _>>()?,
    };
    let ci = regions
        .iter()
        .position(|&c| c == class)
        .ok_or_else(|| format!("region `{region}` is not in the campaign's region list"))?;
    let k: u32 = o.get_num("trial")?.ok_or("events needs --trial K")?;
    let cfg = CampaignConfig {
        injections: o.get_num("injections")?.unwrap_or(500),
        seed: o.get_num("seed")?.unwrap_or(0xFA17),
        budget_factor: 3.0,
        threads: o.get_num("threads")?.unwrap_or(0),
        epoch_rounds: o.get_num("epoch-rounds")?.unwrap_or(16),
        obs_capacity: o.get_num("ring")?.unwrap_or(4096),
        fastpath: !o.has("no-fastpath"),
    };
    if k >= cfg.injections {
        return Err(format!(
            "--trial {k} out of range (campaign has {} trials)",
            cfg.injections
        ));
    }
    let app = build_app(kind, o.has("tiny"));
    eprintln!(
        "tracing events: {} {} trial {k} ...",
        kind.name(),
        class.label()
    );
    let trace = CampaignBuilder::new(&app)
        .classes(&regions)
        .with_config(cfg)
        .replay_traced(ci, k);
    if o.has("jsonl") {
        print!("{}", trace.events_jsonl());
        return Ok(());
    }
    println!("app:     {}", kind.name());
    println!("class:   {}", class.label());
    println!("fault:   {}", trace.record.detail);
    println!("outcome: {}", trace.record.outcome);
    let m = trace.metrics();
    match (m.injection_clock, m.first_symptom_clock) {
        (Some(i), Some(s)) => println!(
            "landed:  block {i}, first symptom block {s} (+{} blocks, {} events between)",
            m.blocks_to_manifestation.unwrap_or(0),
            m.events_to_symptom.unwrap_or(0),
        ),
        (Some(i), None) => println!("landed:  block {i}, no symptom recorded"),
        _ => println!("landed:  no (fault never fired in the retained window)"),
    }
    println!("events:  {} retained", m.events_total);
    for (rank, e) in trace.timeline() {
        println!("  [{:>8}] rank {rank}  {}", e.clock, e.kind.describe());
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.push("tsv");
    o.expect(&valid)?;
    let mut spec = spec_from_opts(&o, "campaign", 500)?;
    if o.get("ring").is_none() {
        spec.campaign.obs_capacity = 4096;
    }
    let kind = spec.app;
    eprintln!(
        "metrics: {} x {} injections over {} regions ...",
        kind.name(),
        spec.campaign.injections,
        spec.classes.len()
    );
    let total = spec.classes.len() as u64 * spec.campaign.injections as u64;
    let sink = CliSink::new(kind, false, total);
    let SpecOutcome::Campaign(result) = run_spec_cli(&spec, &sink) else {
        unreachable!("campaign mode yields a campaign outcome");
    };
    // Keep stdout machine-readable; the throughput summary goes to
    // stderr alongside the progress line.
    eprintln!("{}", throughput_line(&result));
    let metrics = result
        .metrics
        .expect("metrics campaigns always record events");
    let view = MetricsReport {
        app: kind,
        metrics: &metrics,
        exec: Some(&result.exec_stats),
    };
    // Default stays JSONL: this verb's stdout is machine-readable.
    let fmt = ReportFormat::from_flags(o.has("tsv"), !o.has("tsv"));
    print!("{}", view.render(fmt, ""));
    Ok(())
}

fn cmd_guard(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.extend(GUARD_FLAGS);
    valid.extend(["tsv", "jsonl"]);
    o.expect(&valid)?;
    let spec = spec_from_opts(&o, "guard", 100)?;
    let kind = spec.app;
    eprintln!(
        "guard: {} x {} paired trials over {} regions ...",
        kind.name(),
        spec.campaign.injections,
        spec.classes.len()
    );
    let total = spec.classes.len() as u64 * spec.campaign.injections as u64;
    let sink = CliSink::new(kind, false, total);
    let SpecOutcome::Coverage(result) = run_spec_cli(&spec, &sink) else {
        unreachable!("guard mode yields a coverage outcome");
    };
    let title = format!(
        "Detection Coverage ({} / {} analogue), guard-off vs guard-on",
        kind.name(),
        kind.paper_name()
    );
    let fmt = ReportFormat::from_flags(o.has("tsv"), o.has("jsonl"));
    print!("{}", result.render(fmt, &title));
    Ok(())
}

fn cmd_ft(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.extend(FT_FLAGS);
    valid.extend(["mode", "tsv", "jsonl"]);
    o.expect(&valid)?;
    // `--mode M` focuses the table on one recovery discipline; every
    // trial still runs all of them (the columns are paired draws).
    let focus: Option<FtMode> = match o.get("mode") {
        None => None,
        Some(m) => {
            let labels: Vec<&str> = FtMode::ALL.iter().map(|m| m.label()).collect();
            check_mode(m, &labels, "ft mode")?;
            Some(m.parse()?)
        }
    };
    let spec = spec_from_opts(&o, "ft", 40)?;
    let kind = spec.app;
    eprintln!(
        "ft: {} x {} rank kills (baseline/shrink/respawn/app) + {} message faults (replicated) ...",
        kind.name(),
        spec.campaign.injections,
        spec.campaign.injections
    );
    let total = 2 * spec.campaign.injections as u64;
    let sink = CliSink::new(kind, false, total);
    let SpecOutcome::Ft(result) = run_spec_cli(&spec, &sink) else {
        unreachable!("ft mode yields an ft outcome");
    };
    let fmt = ReportFormat::from_flags(o.has("tsv"), o.has("jsonl"));
    match focus {
        // The machine formats always carry every discipline's columns;
        // focus only changes the human-readable view.
        Some(mode) if fmt == ReportFormat::Table => print!("{}", render_ft_focus(&result, mode)),
        _ => {
            let title = format!(
                "Process-Level Fault Tolerance ({} / {} analogue), shrink vs respawn vs app vs replication",
                kind.name(),
                kind.paper_name()
            );
            print!("{}", result.render(fmt, &title));
        }
    }
    Ok(())
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.extend(GUARD_FLAGS);
    valid.extend(FT_FLAGS);
    valid.extend(CHAOS_FLAGS);
    valid.extend(["model", "tsv", "jsonl"]);
    o.expect(&valid)?;
    // `--model M` focuses the table on one fault model's row; every
    // model still runs (the defense columns are paired draws). The
    // parse error carries the registry-wide did-you-mean hint.
    let focus: Option<FaultModel> = match o.get("model") {
        None => None,
        Some(m) => {
            let model: FaultModel = m.parse()?;
            if model.chaos_class().is_none() {
                let rows: Vec<&str> = FaultModel::chaos_models()
                    .iter()
                    .map(|m| m.label())
                    .collect();
                return Err(format!(
                    "`{model}` is not a chaos model (matrix rows: {})",
                    rows.join(", ")
                ));
            }
            Some(model)
        }
    };
    let spec = spec_from_opts(&o, "chaos", 20)?;
    let kind = spec.app;
    let total = spec.record_classes().len() as u64 * spec.campaign.injections as u64;
    eprintln!(
        "chaos: {} x {} injections per cell over {} fault models x {} defenses, {} workers ...",
        kind.name(),
        spec.campaign.injections,
        FaultModel::chaos_models().len(),
        fl_inject::Defense::ALL.len(),
        jobs_label(spec.campaign.threads),
    );
    let sink = CliSink::new(kind, o.has("jsonl"), total);
    let SpecOutcome::Chaos(result) = run_spec_cli(&spec, &sink) else {
        unreachable!("chaos mode yields a chaos outcome");
    };
    match ReportFormat::from_flags(o.has("tsv"), o.has("jsonl")) {
        // Like `campaign --jsonl`: stream the canonical per-trial
        // records (the resumable wire format), not the cell summaries.
        ReportFormat::Jsonl => print!("{}", sink.canonical_records()),
        ReportFormat::Tsv => print!("{}", render_chaos_tsv(&result)),
        ReportFormat::Table => match focus {
            Some(model) => print!("{}", render_chaos_focus(&result, model)),
            None => {
                let title = format!(
                    "Chaos Defense-Coverage Matrix ({} / {} analogue)",
                    kind.name(),
                    kind.paper_name()
                );
                print!("{}", render_chaos(&result, &title));
            }
        },
    }
    Ok(())
}

fn cmd_perturb(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.extend(PERTURB_FLAGS);
    valid.extend(["model", "tsv", "jsonl"]);
    o.expect(&valid)?;
    // `--model M` focuses the table on one matrix row; every model
    // still runs (the detection columns are paired draws). The parse
    // error carries the registry-wide did-you-mean hint.
    let focus: Option<FaultModel> = match o.get("model") {
        None => None,
        Some(m) => {
            let model: FaultModel = m.parse()?;
            if !PerturbResult::models().contains(&model) {
                let rows: Vec<&str> = PerturbResult::models().iter().map(|m| m.label()).collect();
                return Err(format!(
                    "`{model}` is not a perturb model (matrix rows: {})",
                    rows.join(", ")
                ));
            }
            Some(model)
        }
    };
    let spec = spec_from_opts(&o, "perturb", 10)?;
    let kind = spec.app;
    let total = spec.record_classes().len() as u64 * spec.campaign.injections as u64;
    eprintln!(
        "perturb: {} x {} injections per cell over {} interference/process models x {} detectors, {} workers ...",
        kind.name(),
        spec.campaign.injections,
        PerturbResult::models().len(),
        fl_inject::Detection::ALL.len(),
        jobs_label(spec.campaign.threads),
    );
    let sink = CliSink::new(kind, o.has("jsonl"), total);
    let SpecOutcome::Perturb(result) = run_spec_cli(&spec, &sink) else {
        unreachable!("perturb mode yields a perturb outcome");
    };
    match ReportFormat::from_flags(o.has("tsv"), o.has("jsonl")) {
        // Like `chaos --jsonl`: stream the canonical per-trial records
        // (the resumable wire format), not the cell summaries.
        ReportFormat::Jsonl => print!("{}", sink.canonical_records()),
        ReportFormat::Tsv => print!("{}", render_perturb_tsv(&result)),
        ReportFormat::Table => match focus {
            Some(model) => print!("{}", render_perturb_focus(&result, model)),
            None => {
                let title = format!(
                    "Performance-Interference Detection Matrix ({} / {} analogue), fixed vs accrual",
                    kind.name(),
                    kind.paper_name()
                );
                print!("{}", render_perturb(&result, &title));
            }
        },
    }
    Ok(())
}

fn cmd_spec(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    let mut valid = SPEC_FLAGS.to_vec();
    valid.push("mode");
    valid.extend(GUARD_FLAGS);
    valid.extend(FT_FLAGS);
    valid.extend(CHAOS_FLAGS);
    valid.extend(PERTURB_FLAGS);
    o.expect(&valid)?;
    let mode = o.get("mode").unwrap_or("campaign");
    let default_injections = match mode {
        "guard" => 100,
        "ft" => 40,
        "chaos" => 20,
        "perturb" => 10,
        _ => 500,
    };
    let spec = spec_from_opts(&o, mode, default_injections)?;
    println!("{}", spec.to_json());
    Ok(())
}

fn serve_addr(o: &Opts) -> String {
    o.get("addr").unwrap_or(DEFAULT_ADDR).to_string()
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["addr", "state-dir"])?;
    let cfg = ServeConfig {
        addr: serve_addr(&o),
        state_dir: o.get("state-dir").unwrap_or(".faultlab-serve").into(),
    };
    let state_dir = cfg.state_dir.clone();
    let server = Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "faultlab serve: listening on {}, state in {} (POST /shutdown to exit)",
        server.local_addr(),
        state_dir.display(),
    );
    server.join();
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["addr"])?;
    let text = match o.words.first().map(String::as_str) {
        Some("-") | None => {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)
                .map_err(|e| format!("reading spec from stdin: {e}"))?;
            s
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
    };
    let addr = serve_addr(&o);
    let id = fl_serve::submit(&addr, text.trim())?;
    println!("{}", fl_serve::status(&addr, &id)?);
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["addr"])?;
    let addr = serve_addr(&o);
    match o.words.first() {
        Some(id) => println!("{}", fl_serve::status(&addr, id)?),
        None => {
            let (code, body) = fl_serve::request(&addr, "GET", "/campaigns", None)?;
            if code != 200 {
                return Err(format!("status failed ({code}): {body}"));
            }
            println!("{body}");
        }
    }
    Ok(())
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["addr"])?;
    let id = o.words.first().ok_or("watch needs a campaign id")?;
    fl_serve::watch(&serve_addr(&o), id, |line| println!("{line}"))
}

fn cmd_control(action: &str, args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["addr"])?;
    let id = o
        .words
        .first()
        .ok_or_else(|| format!("{action} needs a campaign id"))?;
    println!("{}", fl_serve::control(&serve_addr(&o), id, action)?);
    Ok(())
}

fn cmd_recovery(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["checkpoint-every", "kill-rank", "kill-round", "tiny"])?;
    let app_name = o.words.first().ok_or("recovery needs an app name")?;
    let kind = parse_app(app_name)?;
    let app = build_app(kind, o.has("tiny"));
    let golden = app.golden(DEFAULT_BUDGET);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let wcfg = app.world_config(budget);
    let every: u32 = o.get_num("checkpoint-every")?.unwrap_or(16);
    let kill_rank: u16 = o.get_num("kill-rank")?.unwrap_or(1);
    if kill_rank >= app.params.nranks {
        return Err(format!(
            "--kill-rank {kill_rank} out of range (app has {} ranks)",
            app.params.nranks
        ));
    }
    let kill_round: u64 = match o.get_num("kill-round")? {
        Some(r) => r,
        None => {
            // Default: mid-run, measured on a throwaway golden pass.
            fl_snap::EpochCache::build(&app.image, wcfg, u32::MAX).rounds() / 2
        }
    };
    eprintln!(
        "recovery: {}, checkpoint every {every} rounds, kill rank {kill_rank} at round {kill_round} ...",
        kind.name()
    );
    let r = fl_snap::run_recovery(
        &app.image,
        wcfg,
        RecoveryConfig {
            checkpoint_every: every,
            kill_rank,
            kill_round,
        },
    );
    println!("golden run:        {} scheduler rounds", r.golden_rounds);
    println!("crash:             {:?}", r.crash_exit);
    println!("checkpoints taken: {}", r.checkpoints_taken);
    println!("restored from:     round {}", r.checkpoint_round);
    println!("work lost:         {} rounds", r.lost_rounds);
    println!("re-run exit:       {:?}", r.recovered_exit);
    println!(
        "recovered:         {}",
        if r.recovered {
            "yes (output matches golden)"
        } else {
            "NO"
        }
    );
    Ok(())
}

fn cmd_sample_size(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["error", "confidence", "injections"])?;
    let conf: f64 = o.get_num("confidence")?.unwrap_or(0.95);
    if let Some(n) = o.get_num::<u32>("injections")? {
        println!(
            "n = {n} at {:.0}% confidence -> estimation error d = {:.2}%",
            conf * 100.0,
            estimation_error(conf, n) * 100.0
        );
        return Ok(());
    }
    let d: f64 = o
        .get_num("error")?
        .ok_or("sample-size needs --error D (fraction) or --injections N")?;
    println!(
        "d = {:.2}% at {:.0}% confidence -> n >= {} injections (oversampled, P = 0.5)",
        d * 100.0,
        conf * 100.0,
        sample_size(conf, d)
    );
    Ok(())
}

fn cmd_source(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["tiny"])?;
    let app_name = o.words.first().ok_or("source needs an app name")?;
    let app = build_app(parse_app(app_name)?, o.has("tiny"));
    print!("{}", app.source);
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args);
    o.expect(&["limit", "tiny"])?;
    let app_name = o.words.first().ok_or("disasm needs an app name")?;
    let limit: usize = o.get_num("limit")?.unwrap_or(200);
    let app = build_app(parse_app(app_name)?, o.has("tiny"));
    let words: Vec<u32> = app
        .image
        .text
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut idx = 0;
    let mut printed = 0;
    while idx < words.len() && printed < limit {
        let addr = fl_machine::TEXT_BASE + 4 * idx as u32;
        if let Some(sym) = app
            .image
            .symbols
            .iter()
            .find(|s| s.addr == addr && !s.library)
        {
            println!("\n<{}>:", sym.name);
        }
        match fl_isa::decode_at(&words, idx) {
            Ok((insn, len)) => {
                println!("{addr:#010x}:  {}", fl_isa::disasm(&insn));
                idx += len;
            }
            Err(e) => {
                println!("{addr:#010x}:  (bad) {e}");
                idx += 1;
            }
        }
        printed += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opts_words_and_flags() {
        let o = Opts::parse(&s(&[
            "moldyn",
            "--injections",
            "400",
            "--tsv",
            "--seed",
            "7",
        ]));
        assert_eq!(o.words, vec!["moldyn"]);
        assert!(o.has("tsv"));
        assert_eq!(o.get("injections"), Some("400"));
        assert_eq!(o.get_num::<u32>("injections").unwrap(), Some(400));
        assert_eq!(o.get_num::<u64>("seed").unwrap(), Some(7));
        assert_eq!(o.get_num::<u32>("missing").unwrap(), None);
    }

    #[test]
    fn opts_flag_followed_by_flag_has_no_value() {
        let o = Opts::parse(&s(&["--tiny", "--tsv"]));
        assert!(o.has("tiny"));
        assert!(o.has("tsv"));
        assert_eq!(o.get("tiny"), None);
    }

    #[test]
    fn opts_bad_number_is_an_error() {
        let o = Opts::parse(&s(&["--injections", "many"]));
        assert!(o.get_num::<u32>("injections").is_err());
    }

    #[test]
    fn app_and_region_parsing() {
        assert_eq!(parse_app("wavetoy").unwrap(), AppKind::Wavetoy);
        assert_eq!(parse_app("climsim").unwrap(), AppKind::Climsim);
        assert!(parse_app("namd").is_err());
        assert_eq!(
            parse_region("regular-reg").unwrap(),
            TargetClass::RegularReg
        );
        assert_eq!(parse_region("msg").unwrap(), TargetClass::Message);
        assert!(parse_region("rom").is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn unknown_flag_suggests_nearest() {
        let o = Opts::parse(&s(&["--injetions", "400"]));
        let err = o.expect(&["injections", "seed", "tiny"]).unwrap_err();
        assert!(
            err.contains("did you mean `--injections`?"),
            "bad suggestion: {err}"
        );
    }

    #[test]
    fn unknown_flag_far_from_everything_lists_valid_flags() {
        let o = Opts::parse(&s(&["--frobnicate"]));
        let err = o.expect(&["seed", "tiny"]).unwrap_err();
        assert!(err.contains("valid flags: --seed, --tiny"), "{err}");
    }

    #[test]
    fn known_flags_pass_validation() {
        let o = Opts::parse(&s(&["wavetoy", "--seed", "7", "--tiny"]));
        assert!(o.expect(&["seed", "tiny"]).is_ok());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("seed", "seed"), 0);
        assert_eq!(edit_distance("sed", "seed"), 1);
        assert_eq!(edit_distance("no-fastpath", "fastpath"), 3);
        assert_eq!(edit_distance("", "ring"), 4);
    }

    #[test]
    fn verbs_reject_mistyped_flags() {
        let err = run(&s(&["campaign", "wavetoy", "--inject", "5"])).unwrap_err();
        assert!(err.contains("did you mean `--injections`?"), "{err}");
        let err = run(&s(&["ft", "wavetoy", "--replica", "3"])).unwrap_err();
        assert!(err.contains("did you mean `--replicas`?"), "{err}");
    }

    #[test]
    fn spec_from_opts_matches_legacy_defaults() {
        let o = Opts::parse(&s(&["wavetoy"]));
        let spec = spec_from_opts(&o, "campaign", 500).unwrap();
        assert_eq!(spec.app, AppKind::Wavetoy);
        assert!(!spec.tiny);
        assert_eq!(spec.campaign.injections, 500);
        assert_eq!(spec.campaign.seed, 0xFA17);
        assert_eq!(spec.campaign.epoch_rounds, 16);
        assert_eq!(spec.campaign.obs_capacity, 0);
        assert!(spec.campaign.fastpath);
        assert!(matches!(spec.mode, SpecMode::Campaign));

        let o = Opts::parse(&s(&["moldyn", "--tiny", "--checkpoint-rounds", "8"]));
        let spec = spec_from_opts(&o, "guard", 100).unwrap();
        assert_eq!(spec.campaign.injections, 100);
        let SpecMode::Guard(g) = &spec.mode else {
            panic!("expected guard mode");
        };
        assert_eq!(g.checkpoint_rounds, 8);
        assert_eq!(g.max_restarts, 3);
        assert_eq!(g.max_retransmits, 3);
    }

    #[test]
    fn unknown_modes_suggest_the_nearest_valid_mode() {
        // ft recovery disciplines
        let err = run(&s(&["ft", "wavetoy", "--mode", "ap"])).unwrap_err();
        assert!(err.contains("did you mean `app`?"), "{err}");
        let err = run(&s(&["ft", "wavetoy", "--mode", "shrnk"])).unwrap_err();
        assert!(err.contains("did you mean `shrink`?"), "{err}");
        // spec experiment families
        let err = run(&s(&["spec", "wavetoy", "--mode", "campain"])).unwrap_err();
        assert!(err.contains("did you mean `campaign`?"), "{err}");
        // far from everything: list the valid modes instead
        let err = run(&s(&["spec", "wavetoy", "--mode", "frobnicate"])).unwrap_err();
        assert!(err.contains("valid modes: campaign, guard, ft"), "{err}");
    }

    #[test]
    fn perturb_flags_shape_the_policy() {
        let o = Opts::parse(&s(&[
            "wavetoy",
            "--tiny",
            "--tax-hi",
            "990",
            "--hog-node-ranks",
            "4",
            "--degraded-permille",
            "1100",
        ]));
        let spec = spec_from_opts(&o, "perturb", 10).unwrap();
        let SpecMode::Perturb(p) = &spec.mode else {
            panic!("expected perturb mode");
        };
        assert_eq!(p.tax_permille, (900, 990));
        assert_eq!(p.hog_node_ranks, 4);
        assert_eq!(p.degraded_permille, 1100);
        assert_eq!(spec.campaign.injections, 10);
    }

    #[test]
    fn perturb_model_flag_surfaces_parse_suggestions() {
        let err = run(&s(&[
            "perturb",
            "wavetoy",
            "--tiny",
            "--model",
            "quantum-tx",
        ]))
        .unwrap_err();
        assert!(err.contains("did you mean `quantum-tax`?"), "{err}");
        // A real model that is not a matrix row names the rows.
        let err = run(&s(&["perturb", "wavetoy", "--tiny", "--model", "net-drop"])).unwrap_err();
        assert!(err.contains("not a perturb model"), "{err}");
        assert!(err.contains("quantum-tax, hog-rank, mem-stall"), "{err}");
        // Mistyped perturb flags suggest their nearest valid flag.
        let err = run(&s(&["perturb", "wavetoy", "--tax-high", "990"])).unwrap_err();
        assert!(err.contains("did you mean `--tax-hi`?"), "{err}");
    }

    #[test]
    fn perturb_mode_is_a_spec_family() {
        let err = run(&s(&["spec", "wavetoy", "--mode", "pertrb"])).unwrap_err();
        assert!(err.contains("did you mean `perturb`?"), "{err}");
        let err = run(&s(&["spec", "wavetoy", "--mode", "frobnicate"])).unwrap_err();
        assert!(
            err.contains("perturb"),
            "mode list must name perturb: {err}"
        );
    }

    #[test]
    fn chaos_flags_shape_the_policy() {
        let o = Opts::parse(&s(&[
            "wavetoy",
            "--tiny",
            "--burst-max",
            "4",
            "--partition-hi",
            "1024",
            "--replicas",
            "5",
        ]));
        let spec = spec_from_opts(&o, "chaos", 20).unwrap();
        let SpecMode::Chaos(p) = &spec.mode else {
            panic!("expected chaos mode");
        };
        assert_eq!(p.burst_max, 4);
        assert_eq!(p.partition_rounds, (64, 1024));
        assert_eq!(p.ft.replicas, 5);
        assert_eq!(p.node_ranks, ChaosPolicy::default().node_ranks);
    }

    #[test]
    fn chaos_model_flag_surfaces_parse_suggestions() {
        let err = run(&s(&["chaos", "wavetoy", "--tiny", "--model", "net-crrupt"])).unwrap_err();
        assert!(err.contains("did you mean `net-corrupt`?"), "{err}");
        // A real model that is not a matrix row is rejected with the
        // row list, not run.
        let err = run(&s(&["chaos", "wavetoy", "--tiny", "--model", "transient"])).unwrap_err();
        assert!(err.contains("not a chaos model"), "{err}");
        assert!(err.contains("net-drop"), "{err}");
    }

    #[test]
    fn jacobi3d_parses_as_an_app() {
        assert_eq!(parse_app("jacobi3d").unwrap(), AppKind::Jacobi3d);
        let o = Opts::parse(&s(&["jacobi3d", "--tiny"]));
        let spec = spec_from_opts(&o, "ft", 40).unwrap();
        assert_eq!(spec.app, AppKind::Jacobi3d);
    }

    #[test]
    fn jobs_is_an_alias_for_threads() {
        let o = Opts::parse(&s(&["wavetoy", "--jobs", "4"]));
        let spec = spec_from_opts(&o, "campaign", 500).unwrap();
        assert_eq!(spec.campaign.threads, 4);
        let o = Opts::parse(&s(&["wavetoy", "--threads", "3"]));
        let spec = spec_from_opts(&o, "campaign", 500).unwrap();
        assert_eq!(spec.campaign.threads, 3);
    }

    #[test]
    fn spec_verb_output_round_trips() {
        for mode in ["campaign", "guard", "ft", "chaos"] {
            let o = Opts::parse(&s(&["climsim", "--tiny", "--mode", mode]));
            let spec = spec_from_opts(&o, mode, 500).unwrap();
            let json = spec.to_json();
            let back = CampaignSpec::from_json(&json).unwrap();
            assert_eq!(back.to_json(), json, "mode {mode} did not round-trip");
        }
        assert!(run(&s(&["spec", "wavetoy", "--tiny"])).is_ok());
    }

    #[test]
    fn service_verbs_validate_their_arguments() {
        let err = run(&s(&["watch"])).unwrap_err();
        assert!(err.contains("campaign id"), "{err}");
        let err = run(&s(&["pause"])).unwrap_err();
        assert!(err.contains("campaign id"), "{err}");
        let err = run(&s(&["submit", "/no/such/spec.json"])).unwrap_err();
        assert!(err.contains("/no/such/spec.json"), "{err}");
    }

    #[test]
    fn sample_size_command_works() {
        assert!(cmd_sample_size(&s(&["--error", "0.05"])).is_ok());
        assert!(cmd_sample_size(&s(&["--injections", "500"])).is_ok());
        assert!(cmd_sample_size(&s(&[])).is_err());
    }
}
