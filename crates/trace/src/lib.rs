//! # fl-trace — Valgrind-style working-set analysis
//!
//! The paper used Valgrind to instrument each x86 instruction and record
//! text accesses (executed instructions) and data accesses (loads in
//! Data/BSS/Heap), then plotted the *working set size at time t* — the
//! fraction of each section accessed **since** block count t, a
//! non-increasing function of t (Tables 5–7). Those curves explain the
//! low memory-injection error rates: faults outside the (small, shrinking)
//! working set cannot manifest.
//!
//! Here the machine itself records per-granule last-access block counts
//! when tracing is enabled (no binary rewriting needed), and this crate
//! turns one rank's trace into the paper's curves and summary statistics.
//! As in the paper (§6.1.2 footnote), the data comes from a single
//! instrumented process — rank 1, an interior rank with typical
//! communication behaviour — and the run is slower than normal, which is
//! why tracing is off for injection campaigns.

use fl_apps::App;
use fl_machine::Region;
use fl_mpi::WorldExit;
use std::fmt::Write as _;

/// One working-set curve: WS(t)/section-size at sampled block counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Sampled block counts (the time axis of Tables 5–7).
    pub times: Vec<u64>,
    /// Working-set percentage of the section size at each sample.
    pub percent: Vec<f64>,
}

impl Curve {
    /// WS percentage at time 0 — the "fraction ever accessed".
    pub fn at_start(&self) -> f64 {
        self.percent.first().copied().unwrap_or(0.0)
    }

    /// WS percentage in the computation phase (sampled at 60 % of the
    /// run, safely past initialisation).
    pub fn in_compute_phase(&self) -> f64 {
        let idx = (self.percent.len() as f64 * 0.6) as usize;
        self.percent
            .get(idx)
            .copied()
            .or_else(|| self.percent.last().copied())
            .unwrap_or(0.0)
    }

    /// Curves are non-increasing by construction; expose the check for
    /// tests and sanity assertions.
    pub fn is_nonincreasing(&self) -> bool {
        self.percent.windows(2).all(|w| w[0] >= w[1] - 1e-9)
    }
}

/// The full memory trace of one application run (one rank).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Application name.
    pub app: String,
    /// Rank that was instrumented.
    pub rank: u16,
    /// Total basic blocks retired by that rank.
    pub total_blocks: u64,
    /// Text (instruction fetch) working set.
    pub text: Curve,
    /// Data-section load working set.
    pub data: Curve,
    /// BSS load working set.
    pub bss: Curve,
    /// Heap load working set (relative to the peak heap size).
    pub heap: Curve,
    /// Combined Data+BSS+Heap working set (the paper's right-hand plots).
    pub combined: Curve,
    /// Section sizes in bytes: (text, data, bss, peak heap).
    pub section_bytes: (u64, u64, u64, u64),
}

/// Run `app` with tracing enabled and compute its working-set curves with
/// `samples` points along the block-count axis.
///
/// # Panics
///
/// Panics if the traced (fault-free) run does not complete cleanly.
pub fn trace_app(app: &App, budget: u64, samples: usize) -> TraceReport {
    assert!(samples >= 2);
    let mut w = app.traced_world(budget);
    let exit = w.run();
    assert_eq!(exit, WorldExit::Clean, "traced run must be clean");
    // Instrument an interior rank (the paper instrumented one randomly
    // selected process; rank 1 has both neighbours on every app).
    let rank: u16 = if app.params.nranks > 1 { 1 } else { 0 };
    let m = w.machine(rank);
    let total_blocks = m.counters.blocks;
    let (text_sz, data_sz, bss_sz) = app.image.section_sizes();
    let heap_sz = m.heap.peak_bytes() as u64;

    let times: Vec<u64> = (0..samples)
        .map(|i| total_blocks * i as u64 / (samples as u64 - 1).max(1))
        .collect();

    let curve = |region: Region, size: u64| -> Curve {
        let percent = times
            .iter()
            .map(|&t| {
                let ws = m
                    .mem
                    .trace(region)
                    .map(|tr| tr.working_set_bytes(t))
                    .unwrap_or(0);
                if size == 0 {
                    0.0
                } else {
                    100.0 * ws as f64 / size as f64
                }
            })
            .collect();
        Curve {
            times: times.clone(),
            percent,
        }
    };

    let text = curve(Region::Text, text_sz as u64);
    let data = curve(Region::Data, data_sz as u64);
    let bss = curve(Region::Bss, bss_sz as u64);
    let heap = curve(Region::Heap, heap_sz);
    let combined_size = data_sz as u64 + bss_sz as u64 + heap_sz;
    let combined_percent: Vec<f64> = times
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let ws = data.percent[i] / 100.0 * data_sz as f64
                + bss.percent[i] / 100.0 * bss_sz as f64
                + heap.percent[i] / 100.0 * heap_sz as f64;
            if combined_size == 0 {
                0.0
            } else {
                100.0 * ws / combined_size as f64
            }
        })
        .collect();
    let combined = Curve {
        times: times.clone(),
        percent: combined_percent,
    };

    TraceReport {
        app: app.kind.name().to_string(),
        rank,
        total_blocks,
        text,
        data,
        bss,
        heap,
        combined,
        section_bytes: (text_sz as u64, data_sz as u64, bss_sz as u64, heap_sz),
    }
}

/// Render the report as tab-separated values matching the plots of
/// Tables 5–7: block count, then text / data / bss / heap / combined
/// working-set percentages.
pub fn render_tsv(r: &TraceReport) -> String {
    let mut out = String::from("blocks\ttext_ws\tdata_ws\tbss_ws\theap_ws\tcombined_ws\n");
    for i in 0..r.text.times.len() {
        let _ = writeln!(
            out,
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            r.text.times[i],
            r.text.percent[i],
            r.data.percent[i],
            r.bss.percent[i],
            r.heap.percent[i],
            r.combined.percent[i],
        );
    }
    out
}

/// Render the paper-style summary: WS at time 0 vs in the compute phase,
/// per section — the numbers §6.1.2 quotes from the plots.
pub fn render_summary(r: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Memory trace of {} (rank {}, {} blocks)",
        r.app, r.rank, r.total_blocks
    );
    let (t, d, b, h) = r.section_bytes;
    let _ = writeln!(
        out,
        "  sections: text {} KB, data {} KB, bss {} KB, heap {} KB",
        t / 1024,
        d / 1024,
        b / 1024,
        h / 1024
    );
    let _ = writeln!(
        out,
        "  {:<18} {:>10} {:>14}",
        "section", "WS(t=0) %", "compute-phase %"
    );
    for (name, c) in [
        ("Text", &r.text),
        ("Data", &r.data),
        ("BSS", &r.bss),
        ("Heap", &r.heap),
        ("Data+BSS+Heap", &r.combined),
    ] {
        let _ = writeln!(
            out,
            "  {:<18} {:>10.1} {:>14.1}",
            name,
            c.at_start(),
            c.in_compute_phase()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::{AppKind, AppParams};

    fn report(kind: AppKind) -> TraceReport {
        let app = App::build(kind, AppParams::tiny(kind));
        trace_app(&app, 2_000_000_000, 50)
    }

    #[test]
    fn curves_are_nonincreasing_and_bounded() {
        for kind in AppKind::ALL {
            let r = report(kind);
            for c in [&r.text, &r.data, &r.bss, &r.heap, &r.combined] {
                assert!(c.is_nonincreasing(), "{kind:?}");
                assert!(
                    c.percent.iter().all(|&p| (0.0..=100.0).contains(&p)),
                    "{kind:?}"
                );
            }
            assert!(r.total_blocks > 0);
        }
    }

    #[test]
    fn text_working_set_is_small_and_shrinks() {
        // §6.1.2: WS(0) 15-30 %, compute phase 8-13 % for the real codes.
        // With generated cold text the same shape must hold: well under
        // half the text ever runs, and the compute phase is smaller still.
        for kind in AppKind::ALL {
            let r = report(kind);
            assert!(
                r.text.at_start() < 60.0,
                "{kind:?}: text WS(0) = {:.1}%",
                r.text.at_start()
            );
            assert!(
                r.text.in_compute_phase() < r.text.at_start(),
                "{kind:?}: compute-phase text WS must shrink"
            );
        }
    }

    #[test]
    fn data_bss_heap_working_set_shrinks_after_init() {
        for kind in AppKind::ALL {
            let r = report(kind);
            assert!(
                r.combined.in_compute_phase() <= r.combined.at_start(),
                "{kind:?}"
            );
            // Most of Data+BSS+Heap is never loaded after init (paper:
            // 12-22 % in the compute phase).
            assert!(
                r.combined.in_compute_phase() < 70.0,
                "{kind:?}: combined compute-phase WS = {:.1}%",
                r.combined.in_compute_phase()
            );
        }
    }

    #[test]
    fn tsv_and_summary_render() {
        let r = report(AppKind::Wavetoy);
        let tsv = render_tsv(&r);
        assert_eq!(tsv.lines().count(), 51);
        assert!(tsv.starts_with("blocks\t"));
        let summary = render_summary(&r);
        assert!(summary.contains("Data+BSS+Heap"));
        assert!(summary.contains("wavetoy"));
    }

    #[test]
    fn heap_sized_by_peak() {
        let r = report(AppKind::Wavetoy);
        let (_, _, _, heap) = r.section_bytes;
        assert!(heap > 0, "wavetoy allocates its grids on the heap");
    }
}
