//! # fl-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index), plus Criterion micro/macro benchmarks and the design-choice
//! ablations. Every binary prints its table to stdout and, when a
//! `results/` directory exists at the workspace root, writes a copy
//! there.
//!
//! ```sh
//! cargo run --release -p fl-bench --bin table1          # profiles
//! cargo run --release -p fl-bench --bin table2 -- 200   # wavetoy campaign
//! cargo run --release -p fl-bench --bin table3 -- 200   # moldyn campaign
//! cargo run --release -p fl-bench --bin table4 -- 200   # climsim campaign
//! cargo run --release -p fl-bench --bin table5          # wavetoy trace
//! cargo run --release -p fl-bench --bin table6          # moldyn trace
//! cargo run --release -p fl-bench --bin table7          # climsim trace
//! cargo run --release -p fl-bench --bin message_analysis
//! cargo run --release -p fl-bench --bin all_tables -- 200
//! cargo bench -p fl-bench                               # perf + ablations
//! ```

use fl_apps::{App, AppKind, AppParams};
use fl_inject::{estimation_error, render_table, render_tsv, CampaignBuilder, CampaignResult};
use std::path::PathBuf;

/// Default instruction budget for golden/traced runs.
pub const BUDGET: u64 = 2_000_000_000;

/// Build an application with its experiment-scale parameters.
pub fn experiment_app(kind: AppKind) -> App {
    App::build(kind, AppParams::default_for(kind))
}

/// Run the full eight-region campaign for an application — the engine
/// behind Tables 2, 3 and 4.
pub fn full_campaign(kind: AppKind, injections: u32, seed: u64) -> CampaignResult {
    let app = experiment_app(kind);
    CampaignBuilder::new(&app)
        .injections(injections)
        .seed(seed)
        .run()
}

/// What distinguishes one injection-results table from another: its
/// number in the paper, the app under test, the per-region trial count
/// and the campaign seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSpec {
    /// Paper table number (2, 3 or 4).
    pub number: u32,
    /// Application under test.
    pub kind: AppKind,
    /// Injections per region.
    pub injections: u32,
    /// Campaign seed.
    pub seed: u64,
}

/// Run one Tables 2–4 style campaign and emit `table<N>.txt` /
/// `table<N>.tsv` — the shared engine the `table2`/`table3`/`table4`
/// and `all_tables` binaries all call.
pub fn table_campaign(spec: &TableSpec) {
    let TableSpec {
        number,
        kind,
        injections,
        seed,
    } = *spec;
    eprintln!(
        "table{number}: {} x {injections} injections per region (wall time scales with n) ...",
        kind.name()
    );
    let result = full_campaign(kind, injections, seed);
    let title = format!(
        "Table {number}: Fault Injection Results ({} / {} analogue), n = {injections}, d = {:.1}% @95%",
        kind.name(),
        kind.paper_name(),
        estimation_error(0.95, injections) * 100.0
    );
    emit(
        &format!("table{number}.txt"),
        &render_table(&result, &title),
    );
    emit(&format!("table{number}.tsv"), &render_tsv(&result));
}

/// Injections per region taken from the first CLI argument, defaulting
/// to `default_n`. The paper used 400–500 (d = 4.4–4.9 % at 95 %); on a
/// single-core host smaller counts with a correspondingly larger d keep
/// table regeneration to minutes.
pub fn injections_from_args(default_n: u32) -> u32 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n)
}

/// The workspace `results/` directory, if present.
pub fn results_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("results");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Print a report and mirror it into `results/<name>`.
pub fn emit(name: &str, content: &str) {
    print!("{content}");
    if let Some(dir) = results_dir() {
        if let Err(e) = std::fs::write(dir.join(name), content) {
            eprintln!("warning: could not write results/{name}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_apps_build() {
        // Building at experiment scale is slow-ish; just check one.
        let app = experiment_app(AppKind::Climsim);
        assert!(
            app.image.text.len() > 50_000,
            "experiment-scale text should be substantial"
        );
    }

    #[test]
    fn injections_default_applies() {
        assert_eq!(injections_from_args(123), 123);
    }
}
