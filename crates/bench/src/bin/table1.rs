//! Regenerate **Table 1**: per-process profiles of the test applications
//! (memory section sizes; message volume and header/user distribution).

use fl_apps::AppKind;
use fl_bench::{emit, experiment_app, BUDGET};

fn main() {
    let mut rows = Vec::new();
    for kind in AppKind::PAPER {
        eprintln!("profiling {} ...", kind.name());
        let app = experiment_app(kind);
        let golden = app.golden(BUDGET);
        rows.push((kind.name(), fl_apps::profile(&app, &golden)));
    }
    let mut out = String::from("Table 1: Per-Process Profiles of Test Applications\n\n");
    out.push_str(&fl_apps::render_profile_table(&rows));
    out.push_str(
        "\nPaper shape: Wavetoy 6%/94% header/user, NAMD 8%/92%, CAM 63%/37%;\n\
         heap-dominant Wavetoy and NAMD, data+BSS-dominant CAM; stacks of a\n\
         few KB on every code.\n",
    );
    emit("table1.txt", &out);
}
