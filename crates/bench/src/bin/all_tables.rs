//! Regenerate **every table and figure** in one run: Table 1 (profiles),
//! Tables 2–4 (injection campaigns), Tables 5–7 (working-set traces) and
//! the §6.2 message analysis. Results land in `results/`.
//!
//! ```sh
//! cargo run --release -p fl-bench --bin all_tables -- 200
//! ```

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, experiment_app, injections_from_args, table_campaign, TableSpec, BUDGET};

fn main() {
    let n = injections_from_args(200);
    let t0 = std::time::Instant::now();

    // Table 1.
    let mut rows = Vec::new();
    for kind in AppKind::PAPER {
        eprintln!("[{:>6.1?}] profiling {} ...", t0.elapsed(), kind.name());
        let app = experiment_app(kind);
        let golden = app.golden(BUDGET);
        rows.push((kind.name(), fl_apps::profile(&app, &golden)));
    }
    let mut t1 = String::from("Table 1: Per-Process Profiles of Test Applications\n\n");
    t1.push_str(&fl_apps::render_profile_table(&rows));
    emit("table1.txt", &t1);

    // Tables 2-4.
    for (num, kind) in [
        (2u32, AppKind::Wavetoy),
        (3, AppKind::Moldyn),
        (4, AppKind::Climsim),
    ] {
        eprintln!(
            "[{:>6.1?}] campaign: {} x {n}/region ...",
            t0.elapsed(),
            kind.name()
        );
        table_campaign(&TableSpec {
            number: num,
            kind,
            injections: n,
            seed: 0x1A00 + num as u64,
        });
    }

    // Tables 5-7.
    for (num, kind) in [
        (5u32, AppKind::Wavetoy),
        (6, AppKind::Moldyn),
        (7, AppKind::Climsim),
    ] {
        eprintln!("[{:>6.1?}] tracing {} ...", t0.elapsed(), kind.name());
        let app = App::build(kind, AppParams::default_for(kind));
        let report = fl_trace::trace_app(&app, BUDGET, 80);
        let mut out = format!("Table {num}: Memory Trace of {}\n\n", kind.name());
        out.push_str(&fl_trace::render_summary(&report));
        emit(&format!("table{num}.txt"), &out);
        emit(&format!("table{num}.tsv"), &fl_trace::render_tsv(&report));
    }

    eprintln!("[{:>6.1?}] all tables regenerated", t0.elapsed());
}
