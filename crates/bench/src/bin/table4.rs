//! Regenerate **Table 4**: fault injection results for climsim
//! (the paper's Climsim analogue): all eight regions with error rates
//! and manifestation breakdowns.

use fl_apps::AppKind;
use fl_bench::{emit, full_campaign, injections_from_args};
use fl_inject::{estimation_error, render_table, render_tsv};

fn main() {
    let n = injections_from_args(200);
    eprintln!("table4: {n} injections per region (wall time scales with n) ...");
    let result = full_campaign(AppKind::Climsim, n, 0x1A4);
    let title = format!(
        "Table 4: Fault Injection Results (climsim / {} analogue), n = {n}, d = {:.1}% @95%",
        AppKind::Climsim.paper_name(),
        estimation_error(0.95, n) * 100.0
    );
    emit("table4.txt", &render_table(&result, &title));
    emit("table4.tsv", &render_tsv(&result));
}
