//! Regenerate **Table 4**: fault injection results for climsim
//! (the paper's Climsim analogue): all eight regions with error rates
//! and manifestation breakdowns.

use fl_apps::AppKind;
use fl_bench::{injections_from_args, table_campaign, TableSpec};

fn main() {
    table_campaign(&TableSpec {
        number: 4,
        kind: AppKind::Climsim,
        injections: injections_from_args(200),
        seed: 0x1A4,
    });
}
