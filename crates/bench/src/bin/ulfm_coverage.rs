//! Regenerate the **ulfm coverage report**: the same seeded rank-kill
//! fault set run under *harness-side* recovery (fl-ft's detector-driven
//! shrink and buddy-checkpoint respawn) and under *app-side* recovery
//! (fl-ulfm: the application observes `MPIX_ERR_PROC_FAILED`, agrees,
//! shrinks, and restores its own control-point checkpoint) — on all four
//! applications, with the recovery cost (retired instructions and wall
//! time) of each discipline on each app.
//!
//! ```sh
//! cargo run --release -p fl-bench --bin ulfm_coverage -- 25
//! ```
//!
//! Only jacobi3d carries fl-ulfm recovery code, so the app column is the
//! experiment: the paper's three apps recover 0 % of kills by themselves,
//! jacobi3d must recover at least 90 % (the exit-status contract). The
//! harness disciplines recover every app, but pay for it in either a
//! full restart (shrink) or checkpoint traffic on the fault-free path
//! (respawn); jacobi3d's app-side recovery pays only its own
//! control-point gathers.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, injections_from_args};
use fl_inject::{classify, draw_kill, run_app, run_respawn, run_shrink, FtPolicy, Manifestation};
use fl_mpi::{MpiWorld, WorldExit};
use std::fmt::Write as _;
use std::time::Instant;

/// Per-mode accumulators: outcome counts, recovered count, and cost.
#[derive(Default)]
struct ModeStats {
    trials: u32,
    recovered: u32,
    insns: u64,
    wall_nanos: u64,
}

impl ModeStats {
    fn note(&mut self, recovered: bool, insns: u64, wall_nanos: u64) {
        self.trials += 1;
        self.recovered += recovered as u32;
        self.insns += insns;
        self.wall_nanos += wall_nanos;
    }

    fn pct(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        100.0 * self.recovered as f64 / self.trials as f64
    }

    fn mean_insns(&self) -> u64 {
        self.insns / self.trials.max(1) as u64
    }

    fn mean_micros(&self) -> f64 {
        self.wall_nanos as f64 / 1000.0 / self.trials.max(1) as f64
    }
}

/// Total retired instructions across the (possibly shrunken) world — the
/// recovery-cost numerator: a restart re-executes, a checkpoint line
/// spends cycles before the fault, an app-side rollback repeats only the
/// iterations since the last control point.
fn world_insns(w: &MpiWorld) -> u64 {
    (0..w.nranks()).map(|r| w.machine(r).counters.insns).sum()
}

fn main() {
    let trials = injections_from_args(25);
    let policy = FtPolicy::default();
    let mut out = String::from(
        "ULFM coverage: harness-side vs app-side recovery of rank kills\n\
         (identical seeded kills per app; cost = mean retired insns and\n\
         wall time of the whole trial, fault to finish)\n\n",
    );
    let mut tsv =
        String::from("app\tmode\ttrials\trecovered\trecovered_pct\tmean_insns\tmean_wall_us\n");
    let mut jsonl = String::new();
    let mut broken = Vec::new();

    for kind in AppKind::ALL {
        eprintln!("ulfm_coverage: {} x {trials} rank kills ...", kind.name());
        let app = App::build(kind, AppParams::tiny(kind));
        let golden = app.golden(2_000_000_000);
        let budget = golden.insns.iter().max().unwrap() * 4 + 4_000_000;
        let mut shrink_s = ModeStats::default();
        let mut respawn_s = ModeStats::default();
        let mut app_s = ModeStats::default();

        for k in 0..trials {
            let seed = 0x01F3 + k as u64 * 7919;
            let (kill, detail) = draw_kill(&golden, seed, app.params.nranks);
            let mut wcfg = app.world_config(budget);
            wcfg.seed = seed;
            wcfg.ulfm = false;
            wcfg.ft.enabled = false;

            // Harness shrink: detector fires, fresh world at n-1 ranks.
            let t0 = Instant::now();
            let (sw, sr) = run_shrink(&app.image, wcfg, &policy, |w| w.set_rank_kill(kill));
            let s_wall = t0.elapsed().as_nanos() as u64;
            let s_ok = sr.intervened() && sr.exit == WorldExit::Clean;
            shrink_s.note(s_ok, world_insns(&sw), s_wall);

            // Harness respawn: buddy checkpoints, restore, re-execute.
            let t0 = Instant::now();
            let (rw, rr) = run_respawn(&app.image, wcfg, &policy, |w| w.set_rank_kill(kill));
            let r_wall = t0.elapsed().as_nanos() as u64;
            let r_ok = rr.intervened()
                && rr.exit == WorldExit::Clean
                && app.comparable_output(&rw) == golden.output;
            respawn_s.note(r_ok, world_insns(&rw), r_wall);

            // App-side: the world only *reports* the failure; recovery is
            // the application's problem.
            let t0 = Instant::now();
            let (aw, ar) = run_app(&app.image, wcfg, &policy, |w| w.set_rank_kill(kill));
            let a_wall = t0.elapsed().as_nanos() as u64;
            let a_m = if ar.exit == WorldExit::Clean && ar.shrinks > 0 {
                if app.comparable_output(&aw) == golden.output {
                    Manifestation::RecoveredByApp
                } else {
                    Manifestation::Incorrect
                }
            } else {
                classify(&ar.exit, &app.comparable_output(&aw), &golden.output)
            };
            let a_ok = a_m == Manifestation::RecoveredByApp;
            app_s.note(a_ok, world_insns(&aw), a_wall);

            let _ = writeln!(
                jsonl,
                "{{\"app\":\"{}\",\"trial\":{k},\"detail\":\"{detail}\",\"shrink_ok\":{s_ok},\"respawn_ok\":{r_ok},\"app_mode\":\"{}\",\"app_shrinks\":{},\"shrink_insns\":{},\"respawn_insns\":{},\"app_insns\":{}}}",
                kind.name(),
                a_m.slug(),
                ar.shrinks,
                world_insns(&sw),
                world_insns(&rw),
                world_insns(&aw),
            );
        }

        let _ = writeln!(
            out,
            "{} ({} analogue), n = {trials} kills:",
            kind.name(),
            kind.paper_name()
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>9} {:>13} {:>13}",
            "mode", "recov(%)", "mean insns", "mean wall(us)"
        );
        for (mode, s) in [
            ("harness-shrink", &shrink_s),
            ("harness-respawn", &respawn_s),
            ("app-ulfm", &app_s),
        ] {
            let _ = writeln!(
                out,
                "  {:<14} {:>9.1} {:>13} {:>13.0}",
                mode,
                s.pct(),
                s.mean_insns(),
                s.mean_micros()
            );
            let _ = writeln!(
                tsv,
                "{}\t{}\t{}\t{}\t{:.2}\t{}\t{:.1}",
                kind.name(),
                mode,
                s.trials,
                s.recovered,
                s.pct(),
                s.mean_insns(),
                s.mean_micros()
            );
        }
        out.push('\n');

        // Contracts: harness recovery works everywhere; app recovery is
        // jacobi3d's alone — and must cover at least 90 % of its kills.
        for (what, pct) in [
            ("harness shrink", shrink_s.pct()),
            ("harness respawn", respawn_s.pct()),
        ] {
            if pct < 90.0 {
                broken.push(format!("{}: {what} {pct:.1}% < 90%", kind.name()));
            }
        }
        match kind {
            AppKind::Jacobi3d => {
                if app_s.pct() < 90.0 {
                    broken.push(format!(
                        "jacobi3d: app-side recovery {:.1}% < 90%",
                        app_s.pct()
                    ));
                }
            }
            _ => {
                if app_s.recovered != 0 {
                    broken.push(format!(
                        "{}: recovered {} kills by itself with no ulfm code",
                        kind.name(),
                        app_s.recovered
                    ));
                }
            }
        }
    }

    emit("ulfm_coverage.txt", &out);
    emit("ulfm_coverage.tsv", &tsv);
    emit("ulfm_coverage.jsonl", &jsonl);
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("ulfm_coverage: CONTRACT BROKEN: {b}");
        }
        std::process::exit(1);
    }
}
