//! Regenerate **Table 3**: fault injection results for moldyn
//! (the paper's Moldyn analogue): all eight regions with error rates
//! and manifestation breakdowns.

use fl_apps::AppKind;
use fl_bench::{emit, full_campaign, injections_from_args};
use fl_inject::{estimation_error, render_table, render_tsv};

fn main() {
    let n = injections_from_args(200);
    eprintln!("table3: {n} injections per region (wall time scales with n) ...");
    let result = full_campaign(AppKind::Moldyn, n, 0x1A3);
    let title = format!(
        "Table 3: Fault Injection Results (moldyn / {} analogue), n = {n}, d = {:.1}% @95%",
        AppKind::Moldyn.paper_name(),
        estimation_error(0.95, n) * 100.0
    );
    emit("table3.txt", &render_table(&result, &title));
    emit("table3.tsv", &render_tsv(&result));
}
