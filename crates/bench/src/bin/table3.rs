//! Regenerate **Table 3**: fault injection results for moldyn
//! (the paper's Moldyn analogue): all eight regions with error rates
//! and manifestation breakdowns.

use fl_apps::AppKind;
use fl_bench::{injections_from_args, table_campaign, TableSpec};

fn main() {
    table_campaign(&TableSpec {
        number: 3,
        kind: AppKind::Moldyn,
        injections: injections_from_args(200),
        seed: 0x1A3,
    });
}
