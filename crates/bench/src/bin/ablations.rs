//! Regenerate the **design-choice ablations** (experiments E11/E12 in
//! DESIGN.md):
//!
//! * **Output format** (§6.2): Wavetoy with plain-text vs binary output —
//!   how many silent message corruptions does each format expose?
//! * **Message checksums** (§6.2/§7): Moldyn with and without checksums —
//!   what do the checksums cost (instruction overhead; the paper measured
//!   three percent) and what fraction of message faults do they catch?
//! * **Control-flow signature checking** (§8.2, experiment E13): how many
//!   register/text faults does the software-signature instrumentation
//!   convert from crashes/silence into App-Detected aborts, and at what
//!   instruction overhead?

use fl_apps::{App, AppKind, AppParams, AppVariant};
use fl_bench::{emit, injections_from_args, BUDGET};
use fl_inject::{classify, Manifestation};
use fl_mpi::MessageFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Message-fault outcome distribution for an app build.
fn message_outcomes(app: &App, trials: u32, seed: u64) -> Vec<Manifestation> {
    let golden = app.golden(BUDGET);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..trials {
        let rank = rng.gen_range(0..app.params.nranks);
        let off = rng.gen_range(0..golden.recv_bytes[rank as usize].max(1));
        let bit = rng.gen_range(0..8u8);
        let mut cfg = app.world_config(budget);
        cfg.seed = rng.gen();
        let mut w = fl_mpi::MpiWorld::new(&app.image, cfg);
        w.set_message_fault(MessageFault {
            rank,
            at_recv_byte: off,
            bit,
        });
        let exit = w.run();
        out.push(classify(&exit, &app.comparable_output(&w), &golden.output));
    }
    out
}

fn dist(outcomes: &[Manifestation]) -> String {
    let n = outcomes.len().max(1);
    let count = |m: Manifestation| outcomes.iter().filter(|&&x| x == m).count();
    format!(
        "correct {:.0}%, crash {:.0}%, hang {:.0}%, incorrect {:.0}%, app-det {:.0}%, mpi-det {:.0}%",
        100.0 * count(Manifestation::Correct) as f64 / n as f64,
        100.0 * count(Manifestation::Crash) as f64 / n as f64,
        100.0 * count(Manifestation::Hang) as f64 / n as f64,
        100.0 * count(Manifestation::Incorrect) as f64 / n as f64,
        100.0 * count(Manifestation::AppDetected) as f64 / n as f64,
        100.0 * count(Manifestation::MpiDetected) as f64 / n as f64,
    )
}

fn main() {
    let trials = injections_from_args(150);
    let mut out = String::new();

    // --- E11: output format --------------------------------------------
    let _ = writeln!(
        out,
        "Ablation E11: Wavetoy output format (n = {trials} message faults)"
    );
    let params = AppParams::default_for(AppKind::Wavetoy);
    let text_app = App::build(AppKind::Wavetoy, params);
    let bin_app = App::build_variant(AppKind::Wavetoy, params, AppVariant::BinaryOutput);
    eprintln!("ablation E11: text output ...");
    let text_out = message_outcomes(&text_app, trials, 0xE11A);
    eprintln!("ablation E11: binary output ...");
    let bin_out = message_outcomes(&bin_app, trials, 0xE11A);
    let _ = writeln!(out, "  text (4 digits) : {}", dist(&text_out));
    let _ = writeln!(out, "  binary (full)   : {}", dist(&bin_out));
    let inc = |v: &[Manifestation]| v.iter().filter(|&&m| m == Manifestation::Incorrect).count();
    let _ = writeln!(
        out,
        "  incorrect-output detections: text {} vs binary {} — \"a binary\n\
         \x20 output format would detect more cases of incorrect output\" (§6.2)\n",
        inc(&text_out),
        inc(&bin_out)
    );

    // --- E12: message checksums -----------------------------------------
    let _ = writeln!(
        out,
        "Ablation E12: Moldyn message checksums (n = {trials} message faults)"
    );
    let params = AppParams::default_for(AppKind::Moldyn);
    let with = App::build(AppKind::Moldyn, params);
    let without = App::build_variant(AppKind::Moldyn, params, AppVariant::NoChecksums);
    let g_with = with.golden(BUDGET);
    let g_without = without.golden(BUDGET);
    let i_with: u64 = g_with.insns.iter().sum();
    let i_without: u64 = g_without.insns.iter().sum();
    let overhead = 100.0 * (i_with as f64 - i_without as f64) / i_without as f64;
    let _ = writeln!(
        out,
        "  instruction overhead of checksums: {overhead:.1}% \
         ({i_with} vs {i_without} instructions; paper: ~3%)"
    );
    eprintln!("ablation E12: with checksums ...");
    let o_with = message_outcomes(&with, trials, 0xE12A);
    eprintln!("ablation E12: without checksums ...");
    let o_without = message_outcomes(&without, trials, 0xE12A);
    let _ = writeln!(out, "  with checksums    : {}", dist(&o_with));
    let _ = writeln!(out, "  without checksums : {}", dist(&o_without));
    let det = |v: &[Manifestation]| {
        v.iter()
            .filter(|&&m| m == Manifestation::AppDetected)
            .count()
    };
    let silent = |v: &[Manifestation]| v.iter().filter(|&&m| m == Manifestation::Incorrect).count();
    let _ = writeln!(
        out,
        "  app-detected {} -> {}; silent corruption {} -> {} — removing the\n\
         \x20 checksums converts detected faults into silent or crashing ones.",
        det(&o_with),
        det(&o_without),
        silent(&o_with),
        silent(&o_without)
    );

    // --- E13: control-flow signature checking ----------------------------
    let _ = writeln!(
        out,
        "\nAblation E13: control-flow signature checking (climsim, register+text faults)"
    );
    let params = AppParams::default_for(AppKind::Climsim);
    let plain = App::build(AppKind::Climsim, params);
    let cfc = App::build_variant(AppKind::Climsim, params, AppVariant::ControlFlowChecks);
    let gp: u64 = plain.golden(BUDGET).insns.iter().sum();
    let gc: u64 = cfc.golden(BUDGET).insns.iter().sum();
    let _ = writeln!(
        out,
        "  instruction overhead of signatures: {:.1}% ({gc} vs {gp})",
        100.0 * (gc as f64 - gp as f64) / gp as f64
    );
    use fl_inject::{CampaignBuilder, TargetClass};
    let classes = [TargetClass::RegularReg, TargetClass::Text];
    eprintln!("ablation E13: plain build ...");
    let r_plain = CampaignBuilder::new(&plain)
        .classes(&classes)
        .injections(trials)
        .seed(0xE13A)
        .run();
    eprintln!("ablation E13: instrumented build ...");
    let r_cfc = CampaignBuilder::new(&cfc)
        .classes(&classes)
        .injections(trials)
        .seed(0xE13A)
        .run();
    for class in classes {
        let p = &r_plain.class(class).unwrap().tally;
        let c = &r_cfc.class(class).unwrap().tally;
        let _ = writeln!(
            out,
            "  {:<13} plain: {:>4.1}% errors, {:>2} app-detected | CFC: {:>4.1}% errors, {:>2} app-detected",
            class.label(),
            p.error_rate_percent(),
            p.count(Manifestation::AppDetected),
            c.error_rate_percent(),
            c.count(Manifestation::AppDetected),
        );
    }
    let _ = writeln!(
        out,
        "  Signature checks convert a slice of wild-jump faults into clean\n\
         \x20 aborts — the §8.2 defence, bought with the overhead above."
    );

    emit("ablations.txt", &out);
}
