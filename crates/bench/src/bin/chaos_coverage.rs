//! Regenerate the **chaos defense-coverage matrix**: every chaos fault
//! model (network drop/duplicate/reorder/corrupt, partitions, syscall
//! failures, correlated bursts, node kills) run against every defense
//! column (none, CRC channel, watchdog harness, replication, shrink
//! recovery, app-owned ULFM) on the byte-identical fault draw — the
//! fl-chaos answer to "which defense actually covers which fault
//! class".
//!
//! ```sh
//! cargo run --release -p fl-bench --bin chaos_coverage -- 10
//! ```
//!
//! Runs wavetoy (no app-side recovery) and jacobi3d (fl-ulfm app-side
//! recovery) so the matrix shows the app-column asymmetry. Exits
//! non-zero if any provable-coverage floor misses its contract: the CRC
//! channel must neutralize at least 90 % of in-flight corruptions, the
//! watchdog must catch at least 90 % of partition-induced hangs, and
//! shrink recovery must recover at least 90 % of manifesting node
//! kills.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, injections_from_args};
use fl_inject::{chaos_jsonl, render_chaos, render_chaos_tsv, CampaignBuilder, ChaosPolicy};

fn main() {
    let injections = injections_from_args(10);
    let seed = 0x51C2;
    let policy = ChaosPolicy::default();
    let apps = [AppKind::Wavetoy, AppKind::Jacobi3d];
    let mut texts = Vec::new();
    let mut tsvs = Vec::new();
    let mut jsonls = Vec::new();
    let mut broken = Vec::new();
    for kind in apps {
        eprintln!(
            "chaos_coverage: {} x {injections} injections per model x defense cell ...",
            kind.name()
        );
        let app = App::build(kind, AppParams::tiny(kind));
        let result = CampaignBuilder::new(&app)
            .injections(injections)
            .seed(seed)
            .chaos(policy)
            .run_chaos();
        let title = format!(
            "Chaos Defense-Coverage Matrix ({} / {} analogue), n = {injections} per cell",
            kind.name(),
            kind.paper_name()
        );
        texts.push(render_chaos(&result, &title));
        tsvs.push(render_chaos_tsv(&result));
        jsonls.push(chaos_jsonl(&result));
        for c in result.contracts() {
            if !c.passed() {
                broken.push(format!(
                    "{}: {} ({}) {}/{} = {:.1}% < {:.0}%",
                    kind.name(),
                    c.name,
                    c.what,
                    c.covered,
                    c.denom,
                    c.percent(),
                    c.floor_percent
                ));
            }
        }
    }
    emit("chaos_coverage.txt", &texts.join("\n"));
    // One TSV: repeat the header only once, tag rows with the app name.
    let mut tsv = String::new();
    for (i, (t, kind)) in tsvs.iter().zip(apps).enumerate() {
        for (li, line) in t.lines().enumerate() {
            if li == 0 {
                if i == 0 {
                    tsv.push_str("app\t");
                    tsv.push_str(line);
                    tsv.push('\n');
                }
            } else {
                tsv.push_str(kind.name());
                tsv.push('\t');
                tsv.push_str(line);
                tsv.push('\n');
            }
        }
    }
    emit("chaos_coverage.tsv", &tsv);
    emit("chaos_coverage.jsonl", &jsonls.concat());
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("chaos_coverage: CONTRACT BROKEN: {b}");
        }
        std::process::exit(1);
    }
}
