//! Regenerate **Table 7**: the memory trace (working-set curves) of
//! climsim, the paper's Climsim analogue — text accesses and
//! Data+BSS+Heap loads as a function of basic-block count.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, BUDGET};

fn main() {
    eprintln!("table7: tracing climsim ...");
    let app = App::build(AppKind::Climsim, AppParams::default_for(AppKind::Climsim));
    let report = fl_trace::trace_app(&app, BUDGET, 80);
    let mut out = "Table 7: Memory Trace of climsim\n\n".to_string();
    out.push_str(&fl_trace::render_summary(&report));
    emit("table7.txt", &out);
    emit("table7.tsv", &fl_trace::render_tsv(&report));
}
