//! Regenerate the **§6.2 message analysis**: split message-fault outcomes
//! by whether the flipped bit landed in a header or a payload, per
//! application.
//!
//! The paper's arithmetic for Cactus: 6 % of incoming bytes are headers;
//! "perturbing the headers has about a 40 percent probability of
//! corrupting the Cactus execution. Therefore, the combined Crash and
//! Hang rate is 6 * 0.4 or roughly 2.4 percent", while payload flips land
//! in large arrays of near-zero floats whose low-order corruption the
//! text output hides.

use fl_apps::AppKind;
use fl_bench::{emit, experiment_app, injections_from_args, BUDGET};
use fl_inject::{classify, Manifestation};
use fl_mpi::MessageFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

fn main() {
    let trials = injections_from_args(300);
    let mut out = String::from("Message fault analysis (per §6.2)\n");
    for kind in AppKind::PAPER {
        eprintln!("message analysis: {} x {trials} ...", kind.name());
        let app = experiment_app(kind);
        let golden = app.golden(BUDGET);
        let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
        let mut rng = StdRng::seed_from_u64(0xE8 + kind as u64);

        // (hits, manifested, crash+hang) per location class.
        let mut header = (0u32, 0u32, 0u32);
        let mut payload = (0u32, 0u32, 0u32);
        for _ in 0..trials {
            let rank = rng.gen_range(0..app.params.nranks);
            let off = rng.gen_range(0..golden.recv_bytes[rank as usize].max(1));
            let bit = rng.gen_range(0..8u8);
            let mut cfg = app.world_config(budget);
            cfg.seed = rng.gen();
            let mut w = fl_mpi::MpiWorld::new(&app.image, cfg);
            w.set_message_fault(MessageFault {
                rank,
                at_recv_byte: off,
                bit,
            });
            let exit = w.run();
            let outcome = classify(&exit, &app.comparable_output(&w), &golden.output);
            let Some(hit) = w.message_fault_hit() else {
                continue;
            };
            let slot = if hit.in_header {
                &mut header
            } else {
                &mut payload
            };
            slot.0 += 1;
            if outcome.is_error() {
                slot.1 += 1;
            }
            if matches!(outcome, Manifestation::Crash | Manifestation::Hang) {
                slot.2 += 1;
            }
        }

        let mut traffic = fl_mpi::TrafficProfile::default();
        for p in &golden.profiles {
            traffic.merge(p);
        }
        let pct = |n: u32, d: u32| {
            if d == 0 {
                0.0
            } else {
                100.0 * n as f64 / d as f64
            }
        };
        let _ = writeln!(
            out,
            "\n{} ({} analogue): traffic = {:.0}% header / {:.0}% user",
            kind.name(),
            kind.paper_name(),
            traffic.header_percent(),
            traffic.user_percent()
        );
        let _ = writeln!(
            out,
            "  header flips : {:>4} hits, {:>5.1}% manifest, {:>5.1}% crash+hang",
            header.0,
            pct(header.1, header.0),
            pct(header.2, header.0)
        );
        let _ = writeln!(
            out,
            "  payload flips: {:>4} hits, {:>5.1}% manifest, {:>5.1}% crash+hang",
            payload.0,
            pct(payload.1, payload.0),
            pct(payload.2, payload.0)
        );
        let _ = writeln!(
            out,
            "  predicted overall crash+hang (header% x header-rate): {:.1}%",
            traffic.header_percent() / 100.0 * pct(header.2, header.0)
        );
    }
    out.push_str(
        "\nPaper shape: header flips corrupt the run with high probability on\n\
         every code; payload flips on Wavetoy are largely masked (near-zero\n\
         data + 4-digit text output), giving its low overall message error\n\
         rate (3.1% vs 38%/24.2% for NAMD/CAM).\n",
    );
    emit("message_analysis.txt", &out);
}
