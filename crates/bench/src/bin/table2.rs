//! Regenerate **Table 2**: fault injection results for wavetoy
//! (the paper's Wavetoy analogue): all eight regions with error rates
//! and manifestation breakdowns.

use fl_apps::AppKind;
use fl_bench::{emit, full_campaign, injections_from_args};
use fl_inject::{estimation_error, render_table, render_tsv};

fn main() {
    let n = injections_from_args(200);
    eprintln!("table2: {n} injections per region (wall time scales with n) ...");
    let result = full_campaign(AppKind::Wavetoy, n, 0x1A2);
    let title = format!(
        "Table 2: Fault Injection Results (wavetoy / {} analogue), n = {n}, d = {:.1}% @95%",
        AppKind::Wavetoy.paper_name(),
        estimation_error(0.95, n) * 100.0
    );
    emit("table2.txt", &render_table(&result, &title));
    emit("table2.tsv", &render_tsv(&result));
}
