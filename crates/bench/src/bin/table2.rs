//! Regenerate **Table 2**: fault injection results for wavetoy
//! (the paper's Wavetoy analogue): all eight regions with error rates
//! and manifestation breakdowns.

use fl_apps::AppKind;
use fl_bench::{injections_from_args, table_campaign, TableSpec};

fn main() {
    table_campaign(&TableSpec {
        number: 2,
        kind: AppKind::Wavetoy,
        injections: injections_from_args(200),
        seed: 0x1A2,
    });
}
