//! Regenerate the **detection-coverage report**: every trial's fault run
//! guard-off and guard-on, per region, for all three applications —
//! the paper's closing argument (message-level detection plus
//! checkpoint/recovery) measured inside the lab.
//!
//! ```sh
//! cargo run --release -p fl-bench --bin guard_coverage -- 100
//! ```

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, injections_from_args};
use fl_inject::{
    coverage_jsonl, render_coverage, render_coverage_tsv, CampaignBuilder, GuardPolicy, TargetClass,
};

fn main() {
    let injections = injections_from_args(100);
    let seed = 0x6A_12D;
    let policy = GuardPolicy {
        checkpoint_rounds: 32,
        ..GuardPolicy::default()
    };
    // Tiny app parameters: each fault runs twice, and guarded runs may
    // re-execute up to max_restarts times, so the trial cost is ~2-5x a
    // plain campaign's.
    let mut texts = Vec::new();
    let mut tsvs = Vec::new();
    let mut jsonls = Vec::new();
    for kind in AppKind::PAPER {
        eprintln!(
            "guard_coverage: {} x {injections} paired trials per region ...",
            kind.name()
        );
        let app = App::build(kind, AppParams::tiny(kind));
        let result = CampaignBuilder::new(&app)
            .classes(&TargetClass::ALL)
            .injections(injections)
            .seed(seed)
            .guarded(policy)
            .run_coverage();
        let title = format!(
            "Detection Coverage ({} / {} analogue), n = {injections} paired trials per region",
            kind.name(),
            kind.paper_name()
        );
        texts.push(render_coverage(&result, &title));
        tsvs.push(render_coverage_tsv(&result));
        jsonls.push(coverage_jsonl(&result));
    }
    emit("guard_coverage.txt", &texts.join("\n"));
    // One TSV: repeat the header only once, tag rows with the app name.
    let mut tsv = String::new();
    for (i, (t, kind)) in tsvs.iter().zip(AppKind::PAPER).enumerate() {
        for (li, line) in t.lines().enumerate() {
            if li == 0 {
                if i == 0 {
                    tsv.push_str("app\t");
                    tsv.push_str(line);
                    tsv.push('\n');
                }
            } else {
                tsv.push_str(kind.name());
                tsv.push('\t');
                tsv.push_str(line);
                tsv.push('\n');
            }
        }
    }
    emit("guard_coverage.tsv", &tsv);
    emit("guard_coverage.jsonl", &jsonls.concat());
}
