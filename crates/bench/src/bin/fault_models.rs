//! Regenerate the **fault-duration comparison** (experiment E16 in
//! DESIGN.md): transient single-event upsets versus held and stuck-at
//! faults, reproducing the qualitative finding of the hardware study the
//! paper compares against (§8.1): "Transients proved more difficult to
//! detect, whereas longer faults led to application failures."

use fl_apps::AppKind;
use fl_bench::{emit, experiment_app, injections_from_args};
use fl_inject::{compare_models, TargetClass};
use std::fmt::Write as _;

fn main() {
    let trials = injections_from_args(80);
    let app = experiment_app(AppKind::Climsim);
    let mut out = format!(
        "Fault-duration models on climsim (n = {trials} per cell)\n\
         {:<14} {:>11} {:>11} {:>11} {:>11}\n",
        "Region", "transient", "held-flip", "stuck-at-0", "stuck-at-1"
    );
    for class in [
        TargetClass::RegularReg,
        TargetClass::Text,
        TargetClass::Data,
        TargetClass::Bss,
    ] {
        eprintln!("fault models: {class:?} ...");
        let rows = compare_models(&app, class, trials, 0xE16);
        let _ = writeln!(
            out,
            "{:<14} {:>10.1}% {:>10.1}% {:>10.1}% {:>10.1}%",
            class.label(),
            rows[0].1,
            rows[1].1,
            rows[2].1,
            rows[3].1
        );
    }
    out.push_str(
        "\nPaper context (§8.1): Constantinescu's stuck-at injections on ASCI\n\
         Red were detected/failing far more often than transients — a held\n\
         bit cannot be overwritten away, so every later access re-reads the\n\
         corruption. Note the pin-level stuck-at-X rows include no-op draws\n\
         (the bit already held X), which dilutes them relative to held-flip.\n",
    );
    emit("fault_models.txt", &out);
}
