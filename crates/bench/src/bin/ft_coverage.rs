//! Regenerate the **process-failure recovery report**: every rank kill
//! run baseline / shrink / respawn and every message fault run baseline
//! / replicated, for all three applications — the fl-ft answer to the
//! paper's "what would it take to survive these faults" question.
//!
//! ```sh
//! cargo run --release -p fl-bench --bin ft_coverage -- 40
//! ```
//!
//! Exits non-zero if any recovery discipline misses its contract:
//! shrink and respawn must each convert at least 90 % of manifesting
//! rank kills into `Recovered`, and the replica vote must mask at least
//! 90 % of manifesting single-replica message corruptions.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, injections_from_args};
use fl_inject::{ft_jsonl, render_ft, render_ft_tsv, CampaignBuilder, FtPolicy};

fn main() {
    let injections = injections_from_args(40);
    let seed = 0xF7_AB1;
    let policy = FtPolicy::default();
    let mut texts = Vec::new();
    let mut tsvs = Vec::new();
    let mut jsonls = Vec::new();
    let mut broken = Vec::new();
    for kind in AppKind::PAPER {
        eprintln!(
            "ft_coverage: {} x {injections} rank kills + {injections} message faults ...",
            kind.name()
        );
        let app = App::build(kind, AppParams::tiny(kind));
        let result = CampaignBuilder::new(&app)
            .injections(injections)
            .seed(seed)
            .ft(policy)
            .run_ft();
        let title = format!(
            "Process-Level Fault Tolerance ({} / {} analogue), n = {injections} per fault kind",
            kind.name(),
            kind.paper_name()
        );
        texts.push(render_ft(&result, &title));
        tsvs.push(render_ft_tsv(&result));
        jsonls.push(ft_jsonl(&result));
        for (what, pct) in [
            ("shrink recovery", result.shrink_recovery_percent()),
            ("respawn recovery", result.respawn_recovery_percent()),
        ] {
            if pct < 90.0 {
                broken.push(format!("{}: {what} {pct:.1}% < 90%", kind.name()));
            }
        }
        if result.replica_errors() == 0 {
            broken.push(format!(
                "{}: no baseline message-fault errors to mask (n too small)",
                kind.name()
            ));
        } else if result.masked_percent() < 90.0 {
            broken.push(format!(
                "{}: replica masking {:.1}% < 90%",
                kind.name(),
                result.masked_percent()
            ));
        }
    }
    emit("ft_coverage.txt", &texts.join("\n"));
    // One TSV: repeat the header only once, tag rows with the app name.
    let mut tsv = String::new();
    for (i, (t, kind)) in tsvs.iter().zip(AppKind::PAPER).enumerate() {
        for (li, line) in t.lines().enumerate() {
            if li == 0 {
                if i == 0 {
                    tsv.push_str("app\t");
                    tsv.push_str(line);
                    tsv.push('\n');
                }
            } else {
                tsv.push_str(kind.name());
                tsv.push('\t');
                tsv.push_str(line);
                tsv.push('\n');
            }
        }
    }
    emit("ft_coverage.tsv", &tsv);
    emit("ft_coverage.jsonl", &jsonls.concat());
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("ft_coverage: CONTRACT BROKEN: {b}");
        }
        std::process::exit(1);
    }
}
