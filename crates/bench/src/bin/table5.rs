//! Regenerate **Table 5**: the memory trace (working-set curves) of
//! wavetoy, the paper's Wavetoy analogue — text accesses and
//! Data+BSS+Heap loads as a function of basic-block count.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, BUDGET};

fn main() {
    eprintln!("table5: tracing wavetoy ...");
    let app = App::build(AppKind::Wavetoy, AppParams::default_for(AppKind::Wavetoy));
    let report = fl_trace::trace_app(&app, BUDGET, 80);
    let mut out = "Table 5: Memory Trace of wavetoy\n\n".to_string();
    out.push_str(&fl_trace::render_summary(&report));
    emit("table5.txt", &out);
    emit("table5.tsv", &fl_trace::render_tsv(&report));
}
