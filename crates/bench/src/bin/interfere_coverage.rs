//! Regenerate the **performance-interference detection matrix**: every
//! perturb fault model (quantum tax, co-scheduled hog, memory stall,
//! plus the kill/wedge detection denominator) run under every detection
//! column (none, fixed threshold, accrual) on the byte-identical fault
//! draw, across all four applications — the fl-perturb answer to "does
//! a slow rank look dead, and to which detector".
//!
//! ```sh
//! cargo run --release -p fl-bench --bin interfere_coverage -- 10
//! ```
//!
//! Exits non-zero if any floor misses its contract: the accrual
//! detector must produce **zero** false positives over pure-interference
//! trials, and both real detectors must convert at least 90 % of true
//! kills and wedges into explicit failure verdicts.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, injections_from_args};
use fl_inject::{
    perturb_jsonl, render_perturb, render_perturb_tsv, CampaignBuilder, PerturbPolicy,
};

fn main() {
    let injections = injections_from_args(10);
    let seed = 0x9E27;
    let policy = PerturbPolicy::default();
    let apps = AppKind::ALL;
    let mut texts = Vec::new();
    let mut tsvs = Vec::new();
    let mut jsonls = Vec::new();
    let mut broken = Vec::new();
    for kind in apps {
        eprintln!(
            "interfere_coverage: {} x {injections} injections per model x detection cell ...",
            kind.name()
        );
        let app = App::build(kind, AppParams::tiny(kind));
        let result = CampaignBuilder::new(&app)
            .injections(injections)
            .seed(seed)
            .perturb(policy)
            .run_perturb();
        let title = format!(
            "Performance-Interference Detection Matrix ({} / {} analogue), n = {injections} per cell",
            kind.name(),
            kind.paper_name()
        );
        texts.push(render_perturb(&result, &title));
        tsvs.push(render_perturb_tsv(&result));
        jsonls.push(perturb_jsonl(&result));
        for c in result.contracts() {
            if !c.passed() {
                broken.push(format!(
                    "{}: {} ({}) {}/{} = {:.1}% < {:.0}%",
                    kind.name(),
                    c.name,
                    c.what,
                    c.covered,
                    c.denom,
                    c.percent(),
                    c.floor_percent
                ));
            }
        }
    }
    emit("interfere_coverage.txt", &texts.join("\n"));
    // One TSV: repeat the header only once, tag rows with the app name.
    let mut tsv = String::new();
    for (i, (t, kind)) in tsvs.iter().zip(apps).enumerate() {
        for (li, line) in t.lines().enumerate() {
            if li == 0 {
                if i == 0 {
                    tsv.push_str("app\t");
                    tsv.push_str(line);
                    tsv.push('\n');
                }
            } else {
                tsv.push_str(kind.name());
                tsv.push('\t');
                tsv.push_str(line);
                tsv.push('\n');
            }
        }
    }
    emit("interfere_coverage.tsv", &tsv);
    emit("interfere_coverage.jsonl", &jsonls.concat());
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("interfere_coverage: CONTRACT BROKEN: {b}");
        }
        std::process::exit(1);
    }
}
