//! Regenerate **Table 6**: the memory trace (working-set curves) of
//! moldyn, the paper's Moldyn analogue — text accesses and
//! Data+BSS+Heap loads as a function of basic-block count.

use fl_apps::{App, AppKind, AppParams};
use fl_bench::{emit, BUDGET};

fn main() {
    eprintln!("table6: tracing moldyn ...");
    let app = App::build(AppKind::Moldyn, AppParams::default_for(AppKind::Moldyn));
    let report = fl_trace::trace_app(&app, BUDGET, 80);
    let mut out = "Table 6: Memory Trace of moldyn\n\n".to_string();
    out.push_str(&fl_trace::render_summary(&report));
    emit("table6.txt", &out);
    emit("table6.tsv", &fl_trace::render_tsv(&report));
}
