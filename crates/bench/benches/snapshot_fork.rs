//! Cold vs snapshot-forked trial throughput.
//!
//! Measures the campaign fast path's payoff: identical trials (same
//! seeds, same faults, same records) run once with full prefix
//! re-execution and once forked from the epoch cache. Writes the
//! trials/sec for both paths and the speedup to `BENCH_snapshot.json`
//! at the workspace root.

// Benchmarks measure the raw driver path below the builder/spec
// veneer, so they call the deprecated trial entry points on purpose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_inject::{run_trial, run_trial_forked, trial_seed, Dictionaries, TargetClass};
use fl_snap::EpochCache;
use std::cell::Cell;

/// Seeds cycled by both paths so they execute the same trial population.
const SEEDS: u32 = 64;

fn bench_snapshot_fork(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let dicts = Dictionaries::build(&app);
    let cache = EpochCache::build(&app.image, app.world_config(budget), 8);
    let class = TargetClass::RegularReg;
    let campaign_seed = 0xBE7C_u64;

    let k = Cell::new(0u32);
    c.bench_function("snapshot_fork/cold", |b| {
        b.iter(|| {
            let s = trial_seed(campaign_seed, 0, k.get() % SEEDS);
            k.set(k.get().wrapping_add(1));
            run_trial(&app, &golden, &dicts, class, s, budget)
        })
    });
    let cold_ns = c.last_ns_per_iter.expect("cold bench must have run");

    let k = Cell::new(0u32);
    c.bench_function("snapshot_fork/forked", |b| {
        b.iter(|| {
            let s = trial_seed(campaign_seed, 0, k.get() % SEEDS);
            k.set(k.get().wrapping_add(1));
            run_trial_forked(&app, &golden, &dicts, class, s, budget, Some(&cache))
        })
    });
    let forked_ns = c.last_ns_per_iter.expect("forked bench must have run");

    let cold_tps = 1e9 / cold_ns;
    let forked_tps = 1e9 / forked_ns;
    let speedup = forked_tps / cold_tps;
    println!(
        "snapshot_fork: cold {cold_tps:.2} trials/s, forked {forked_tps:.2} trials/s, \
         speedup {speedup:.2}x ({} epochs)",
        cache.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"snapshot_fork\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"class\": \"regular-reg\",\n  \"epoch_rounds\": 8,\n  \"epochs\": {},\n  \
         \"cold_trials_per_sec\": {cold_tps:.3},\n  \
         \"forked_trials_per_sec\": {forked_tps:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"threshold_speedup\": 1.25\n}}\n",
        cache.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(path, json).expect("write BENCH_snapshot.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_snapshot_fork);
criterion_main!(benches);
