//! Campaign throughput with event recording off vs on.
//!
//! The observability layer's cost contract: a disabled `EventLog` is a
//! single branch per would-be event (~zero overhead), and a bounded
//! ring must cost well under 10 % of campaign throughput. Measures the
//! same trial population three ways — recording off, a small ring and a
//! large ring — and writes the trials/sec plus the relative overhead to
//! `BENCH_obs.json` at the workspace root.

// Benchmarks measure the raw driver path below the builder/spec
// veneer, so they call the deprecated trial entry points on purpose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_inject::{run_trial, run_trial_traced, trial_seed, Dictionaries, TargetClass};
use std::cell::Cell;

/// Seeds cycled by every path so they execute the same trial population.
const SEEDS: u32 = 64;

fn bench_obs_overhead(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let dicts = Dictionaries::build(&app);
    let class = TargetClass::RegularReg;
    let campaign_seed = 0x0B5E_u64;

    let run_at = |name: &str, c: &mut Criterion, capacity: u32| -> f64 {
        let k = Cell::new(0u32);
        c.bench_function(name, |b| {
            b.iter(|| {
                let s = trial_seed(campaign_seed, 0, k.get() % SEEDS);
                k.set(k.get().wrapping_add(1));
                if capacity == 0 {
                    run_trial(&app, &golden, &dicts, class, s, budget).outcome
                } else {
                    run_trial_traced(&app, &golden, &dicts, class, s, budget, None, capacity)
                        .record
                        .outcome
                }
            })
        });
        c.last_ns_per_iter.expect("bench must have run")
    };

    let off_ns = run_at("obs_overhead/off", c, 0);
    let ring_ns = run_at("obs_overhead/ring_512", c, 512);
    let big_ns = run_at("obs_overhead/ring_8192", c, 8192);

    let off_tps = 1e9 / off_ns;
    let ring_tps = 1e9 / ring_ns;
    let big_tps = 1e9 / big_ns;
    let ring_overhead = (ring_ns - off_ns) / off_ns;
    let big_overhead = (big_ns - off_ns) / off_ns;
    println!(
        "obs_overhead: off {off_tps:.2} trials/s, ring(512) {ring_tps:.2} trials/s \
         ({:+.1}%), ring(8192) {big_tps:.2} trials/s ({:+.1}%)",
        ring_overhead * 100.0,
        big_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"class\": \"regular-reg\",\n  \
         \"off_trials_per_sec\": {off_tps:.3},\n  \
         \"ring512_trials_per_sec\": {ring_tps:.3},\n  \
         \"ring8192_trials_per_sec\": {big_tps:.3},\n  \
         \"ring512_overhead_frac\": {ring_overhead:.4},\n  \
         \"ring8192_overhead_frac\": {big_overhead:.4},\n  \
         \"threshold_frac\": 0.10\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
