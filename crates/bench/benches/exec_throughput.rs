//! Interpreter fast-path throughput: software TLB + basic-block
//! dispatch versus the plain per-instruction slow path.
//!
//! Runs the identical fault-free wavetoy-tiny world cold both ways,
//! checks the two paths retire the same instruction count and produce
//! the same output (the zero-divergence contract), and writes guest
//! MIPS, cold trials/sec, and the fast/slow speedup to
//! `BENCH_exec.json` at the workspace root. The CI perf-smoke step
//! fails if the fast path is not faster than the baseline it just
//! measured; the committed file documents the ≥2x target.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_mpi::{MpiWorld, WorldConfig, WorldExit};

/// One cold trial: fresh world, full run, instruction total.
fn cold_run(app: &App, cfg: WorldConfig) -> (MpiWorld, u64) {
    let mut w = MpiWorld::new(&app.image, cfg);
    assert_eq!(w.run(), WorldExit::Clean);
    let insns = (0..app.params.nranks)
        .map(|r| w.machine(r).counters.insns)
        .sum();
    (w, insns)
}

fn bench_exec_throughput(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let fast_cfg = app.world_config(2_000_000_000);
    let mut slow_cfg = fast_cfg;
    slow_cfg.machine.fastpath = false;

    // Zero-divergence check before timing anything: both paths must
    // retire the same instructions and emit the same output.
    let (fast_w, insns) = cold_run(&app, fast_cfg);
    let (slow_w, slow_insns) = cold_run(&app, slow_cfg);
    assert_eq!(insns, slow_insns, "fast path diverged in retired insns");
    assert_eq!(
        app.comparable_output(&fast_w),
        app.comparable_output(&slow_w),
        "fast path diverged in output"
    );

    c.bench_function("exec_throughput/fastpath", |b| {
        b.iter(|| cold_run(&app, fast_cfg).1)
    });
    let fast_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function("exec_throughput/no_fastpath", |b| {
        b.iter(|| cold_run(&app, slow_cfg).1)
    });
    let slow_ns = c.last_ns_per_iter.expect("bench must have run");

    let fast_tps = 1e9 / fast_ns;
    let slow_tps = 1e9 / slow_ns;
    let fast_mips = insns as f64 * 1e3 / fast_ns;
    let slow_mips = insns as f64 * 1e3 / slow_ns;
    let speedup = slow_ns / fast_ns;
    println!(
        "exec_throughput: fast {fast_tps:.2} trials/s ({fast_mips:.1} MIPS), \
         slow {slow_tps:.2} trials/s ({slow_mips:.1} MIPS), speedup {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"exec_throughput\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"insns_per_trial\": {insns},\n  \
         \"fastpath_trials_per_sec\": {fast_tps:.3},\n  \
         \"no_fastpath_trials_per_sec\": {slow_tps:.3},\n  \
         \"fastpath_mips\": {fast_mips:.3},\n  \
         \"no_fastpath_mips\": {slow_mips:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"threshold_speedup\": 2.0\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, json).expect("write BENCH_exec.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_exec_throughput);
criterion_main!(benches);
