//! Interpreter fast-path throughput: pre-decoded superblock traces +
//! software TLB versus the plain per-instruction slow path.
//!
//! Sweeps all four applications at their tiny parameter sets. For each
//! app it runs the identical fault-free world cold both ways, checks
//! the two paths retire the same instruction count and produce the
//! same output (the zero-divergence contract), and times both. Results
//! land in `BENCH_exec.json` at the workspace root: a per-app entry
//! plus the geometric-mean speedup, with the wavetoy numbers mirrored
//! at the top level for consumers of the PR 4 schema. The CI
//! perf-smoke step gates on `speedup ≥ threshold_speedup` (4.0 —
//! margin under the ≥5x target for CI noise).

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_mpi::{MpiWorld, WorldConfig, WorldExit};
use std::fmt::Write as _;

/// One cold trial: fresh world, full run, instruction total.
fn cold_run(app: &App, cfg: WorldConfig) -> (MpiWorld, u64) {
    let mut w = MpiWorld::new(&app.image, cfg);
    assert_eq!(w.run(), WorldExit::Clean);
    let insns = (0..app.params.nranks)
        .map(|r| w.machine(r).counters.insns)
        .sum();
    (w, insns)
}

/// One app's fast/slow measurement.
struct AppResult {
    name: &'static str,
    insns: u64,
    fast_tps: f64,
    slow_tps: f64,
    fast_mips: f64,
    slow_mips: f64,
    speedup: f64,
}

fn measure_app(c: &mut Criterion, kind: AppKind) -> AppResult {
    let app = App::build(kind, AppParams::tiny(kind));
    let fast_cfg = app.world_config(2_000_000_000);
    let mut slow_cfg = fast_cfg;
    slow_cfg.machine.fastpath = false;

    // Zero-divergence check before timing anything: both paths must
    // retire the same instructions and emit the same output. (Moldyn's
    // nondeterministic schedule is seeded from the config, identical
    // here on both sides.)
    let (fast_w, insns) = cold_run(&app, fast_cfg);
    let (slow_w, slow_insns) = cold_run(&app, slow_cfg);
    assert_eq!(
        insns,
        slow_insns,
        "{}: fast path diverged in retired insns",
        kind.name()
    );
    assert_eq!(
        app.comparable_output(&fast_w),
        app.comparable_output(&slow_w),
        "{}: fast path diverged in output",
        kind.name()
    );

    c.bench_function(format!("exec_throughput/fastpath/{}", kind.name()), |b| {
        b.iter(|| cold_run(&app, fast_cfg).1)
    });
    let fast_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function(
        format!("exec_throughput/no_fastpath/{}", kind.name()),
        |b| b.iter(|| cold_run(&app, slow_cfg).1),
    );
    let slow_ns = c.last_ns_per_iter.expect("bench must have run");

    let r = AppResult {
        name: kind.name(),
        insns,
        fast_tps: 1e9 / fast_ns,
        slow_tps: 1e9 / slow_ns,
        fast_mips: insns as f64 * 1e3 / fast_ns,
        slow_mips: insns as f64 * 1e3 / slow_ns,
        speedup: slow_ns / fast_ns,
    };
    println!(
        "exec_throughput/{}: fast {:.2} trials/s ({:.1} MIPS), \
         slow {:.2} trials/s ({:.1} MIPS), speedup {:.2}x",
        r.name, r.fast_tps, r.fast_mips, r.slow_tps, r.slow_mips, r.speedup
    );
    r
}

fn bench_exec_throughput(c: &mut Criterion) {
    let results: Vec<AppResult> = AppKind::ALL.iter().map(|&k| measure_app(c, k)).collect();

    let geomean =
        (results.iter().map(|r| r.speedup.ln()).sum::<f64>() / results.len() as f64).exp();
    println!(
        "exec_throughput: geomean speedup {geomean:.2}x over {} apps",
        results.len()
    );

    // Wavetoy stays the headline entry (the PR 4 schema CI parses);
    // the sweep lands under "apps".
    let w = &results[0];
    assert_eq!(w.name, "wavetoy", "wavetoy must lead AppKind::ALL");
    let mut json = format!(
        "{{\n  \"bench\": \"exec_throughput\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"insns_per_trial\": {},\n  \
         \"fastpath_trials_per_sec\": {:.3},\n  \
         \"no_fastpath_trials_per_sec\": {:.3},\n  \
         \"fastpath_mips\": {:.3},\n  \
         \"no_fastpath_mips\": {:.3},\n  \
         \"speedup\": {:.3},\n  \
         \"geomean_speedup\": {geomean:.3},\n  \
         \"threshold_speedup\": 4.0,\n  \"apps\": [\n",
        w.insns, w.fast_tps, w.slow_tps, w.fast_mips, w.slow_mips, w.speedup
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"app\": \"{}-tiny\", \"insns_per_trial\": {}, \
             \"fastpath_trials_per_sec\": {:.3}, \"no_fastpath_trials_per_sec\": {:.3}, \
             \"fastpath_mips\": {:.3}, \"no_fastpath_mips\": {:.3}, \"speedup\": {:.3}}}{}",
            r.name,
            r.insns,
            r.fast_tps,
            r.slow_tps,
            r.fast_mips,
            r.slow_mips,
            r.speedup,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, json).expect("write BENCH_exec.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_exec_throughput);
criterion_main!(benches);
