//! Fault-free cost of the interference machinery.
//!
//! The perturb price contract: with every interference fault class
//! compiled in and armed — a quantum tax, a hog and a memory stall all
//! scheduled past the end of the run, so the full per-round credit /
//! mask / per-access accounting path executes but nothing ever fires —
//! a clean run must cost at most 15 % of wall time versus the same
//! world with no perturb state armed. Writes the runs/sec plus relative
//! overhead to `BENCH_interfere.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_machine::MemStall;
use fl_mpi::{HogRank, MpiWorld, QuantumTax, WorldExit};

fn bench_interfere_overhead(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let cfg = app.world_config(2_000_000_000);

    c.bench_function("interfere_overhead/off", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, cfg);
            assert_eq!(w.run(), WorldExit::Clean);
        })
    });
    let off_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function("interfere_overhead/armed_never_firing", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, cfg);
            w.set_quantum_tax(QuantumTax {
                rank: 0,
                at_blocks: u64::MAX,
                rounds: 256,
                tax_permille: 990,
            });
            w.set_hog(HogRank {
                mask: 0b01,
                trigger_rank: 0,
                at_blocks: u64::MAX,
                rounds: 256,
                share_permille: 500,
            });
            w.machine_mut(0).set_mem_stall(MemStall {
                at_insns: u64::MAX,
                window_insns: 1024,
                per_access: 4,
            });
            assert_eq!(w.run(), WorldExit::Clean);
            assert_eq!(w.starved_mask(), 0, "nothing may actually fire");
        })
    });
    let armed_ns = c.last_ns_per_iter.expect("bench must have run");

    let off_rps = 1e9 / off_ns;
    let armed_rps = 1e9 / armed_ns;
    let armed_overhead = (armed_ns - off_ns) / off_ns;
    println!(
        "interfere_overhead: off {off_rps:.2} runs/s, armed-never-firing {armed_rps:.2} runs/s \
         ({:+.1}%)",
        armed_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"interfere_overhead\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"off_runs_per_sec\": {off_rps:.3},\n  \
         \"armed_runs_per_sec\": {armed_rps:.3},\n  \
         \"armed_overhead_frac\": {armed_overhead:.4},\n  \
         \"threshold_frac\": 0.15\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interfere.json");
    std::fs::write(path, json).expect("write BENCH_interfere.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_interfere_overhead);
criterion_main!(benches);
