//! Fault-free cost of process-level fault tolerance.
//!
//! The ft price contract: on a run where no rank fails, the heartbeat
//! failure detector plus the periodic buddy-checkpoint line must
//! together cost at most 15 % of wall time versus the bare world.
//! Measures a fault-free wavetoy run three ways — ft off, detector
//! only, detector + buddy line at the default cadence — and writes the
//! runs/sec plus relative overhead to `BENCH_ft.json` at the workspace
//! root.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_inject::{ft_config, run_respawn, FtPolicy};
use fl_mpi::{MpiWorld, WorldExit};

fn bench_ft_overhead(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let cfg = app.world_config(2_000_000_000);
    let policy = FtPolicy::default();

    c.bench_function("ft_overhead/off", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, cfg);
            assert_eq!(w.run(), WorldExit::Clean);
        })
    });
    let off_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function("ft_overhead/detector", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, ft_config(cfg, &policy));
            assert_eq!(w.run(), WorldExit::Clean);
        })
    });
    let det_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function("ft_overhead/respawn_line", |b| {
        b.iter(|| {
            let (_, report) = run_respawn(&app.image, cfg, &policy, |_| {});
            assert_eq!(report.exit, WorldExit::Clean);
            assert!(!report.intervened());
        })
    });
    let line_ns = c.last_ns_per_iter.expect("bench must have run");

    let off_rps = 1e9 / off_ns;
    let det_rps = 1e9 / det_ns;
    let line_rps = 1e9 / line_ns;
    let det_overhead = (det_ns - off_ns) / off_ns;
    let line_overhead = (line_ns - off_ns) / off_ns;
    println!(
        "ft_overhead: off {off_rps:.2} runs/s, detector {det_rps:.2} runs/s \
         ({:+.1}%), detector+buddy(64) {line_rps:.2} runs/s ({:+.1}%)",
        det_overhead * 100.0,
        line_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"ft_overhead\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"off_runs_per_sec\": {off_rps:.3},\n  \
         \"detector_runs_per_sec\": {det_rps:.3},\n  \
         \"respawn_line_runs_per_sec\": {line_rps:.3},\n  \
         \"detector_overhead_frac\": {det_overhead:.4},\n  \
         \"respawn_line_overhead_frac\": {line_overhead:.4},\n  \
         \"threshold_frac\": 0.15\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ft.json");
    std::fs::write(path, json).expect("write BENCH_ft.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_ft_overhead);
criterion_main!(benches);
