//! Campaign-service sharding throughput: the work-stealing worker pool
//! behind `faultlab serve` and `faultlab campaign --jobs N`, measured at
//! one worker versus four on the same spec.
//!
//! Checks the parallel run's canonical record stream is bit-identical
//! to the serial one (the determinism contract sharding must not
//! break), then writes trials/sec for both and the speedup to
//! `BENCH_serve.json` at the workspace root. The host's core count is
//! recorded alongside a core-count-aware threshold: on a ≥4-core host
//! (CI) the pool must clear 2x; on smaller hosts the gate only asks
//! that sharding is not a slowdown, since there is no parallelism to
//! harvest. The CI serve-bench step reads the file's own threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::AppKind;
use fl_inject::{run_spec, sort_records_jsonl, CampaignSpec, EngineControl, TargetClass, VecSink};

const INJECTIONS: u32 = 8;

fn spec(threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(AppKind::Wavetoy);
    spec.tiny = true;
    spec.classes = vec![
        TargetClass::RegularReg,
        TargetClass::Stack,
        TargetClass::Message,
    ];
    spec.campaign.injections = INJECTIONS;
    spec.campaign.threads = threads;
    spec
}

/// One full campaign through the engine; returns the canonical stream.
fn run(threads: usize) -> String {
    let spec = spec(threads);
    let sink = VecSink::new(spec.app);
    run_spec(&spec, &sink, &EngineControl::new(), None).expect("uncontrolled run");
    sort_records_jsonl(&(sink.into_lines().join("\n") + "\n"))
}

fn bench_serve_throughput(c: &mut Criterion) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let trials = (spec(1).classes.len() as u32 * INJECTIONS) as f64;

    // Determinism check before timing anything: sharded and serial runs
    // must produce byte-identical canonical record streams.
    let serial = run(1);
    let sharded = run(4);
    assert_eq!(serial, sharded, "sharding changed the record stream");

    c.bench_function("serve_throughput/jobs_1", |b| b.iter(|| run(1).len()));
    let serial_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function("serve_throughput/jobs_4", |b| b.iter(|| run(4).len()));
    let sharded_ns = c.last_ns_per_iter.expect("bench must have run");

    let serial_tps = trials * 1e9 / serial_ns;
    let sharded_tps = trials * 1e9 / sharded_ns;
    let speedup = serial_ns / sharded_ns;
    // A ≥4-core host must clear 2x; a smaller host has no parallelism
    // to harvest, so the gate only rejects a real slowdown there.
    let threshold = if host_cores >= 4 { 2.0 } else { 0.6 };
    println!(
        "serve_throughput: jobs=1 {serial_tps:.2} trials/s, \
         jobs=4 {sharded_tps:.2} trials/s, speedup {speedup:.2}x \
         ({host_cores} cores, threshold {threshold})"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"trials\": {trials},\n  \
         \"host_cores\": {host_cores},\n  \
         \"jobs1_trials_per_sec\": {serial_tps:.3},\n  \
         \"jobs4_trials_per_sec\": {sharded_tps:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"threshold_speedup\": {threshold}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
