//! Criterion benchmarks: substrate performance (the interpreter and
//! compiler the whole study stands on) and experiment throughput (trials
//! per second, which bounds campaign sizes — the paper spent two months
//! of cluster time on its campaigns).

// Benchmarks measure the raw driver path below the builder/spec
// veneer, so they call the deprecated trial entry points on purpose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fl_apps::{App, AppKind, AppParams};
use fl_inject::{CampaignConfig, Dictionaries, TargetClass};
use fl_lang::compile;
use fl_machine::{Exit, Machine, MachineConfig, F80};

/// A compute-heavy FL kernel for interpreter throughput.
const KERNEL: &str = "
fn main() {
    var int i;
    var float acc;
    acc = 0.0;
    for (i = 0; i < 20000; i = i + 1) {
        acc = acc + sqrt(float(i)) * 1.0001;
        if (acc > 1000000.0) { acc = acc * 0.5; }
    }
    print_flt(acc, 2);
}";

fn bench_interpreter(c: &mut Criterion) {
    let img = compile(KERNEL).unwrap();
    // Measure retired instructions per iteration once.
    let mut probe = Machine::load(&img, MachineConfig::default());
    assert!(matches!(probe.run(u64::MAX), Exit::Halted(0)));
    let insns = probe.counters.insns;

    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("kernel_insns", |b| {
        b.iter_batched(
            || Machine::load(&img, MachineConfig::default()),
            |mut m| {
                assert!(matches!(m.run(u64::MAX), Exit::Halted(0)));
                m.counters.insns
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let app_src = fl_apps::wavetoy::source(&AppParams::tiny(AppKind::Wavetoy));
    let mut g = c.benchmark_group("compiler");
    g.throughput(Throughput::Bytes(app_src.len() as u64));
    g.bench_function("compile_wavetoy", |b| {
        b.iter(|| compile(&app_src).unwrap().text.len())
    });
    g.finish();
}

fn bench_f80(c: &mut Criterion) {
    let values: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.37 - 200.0).collect();
    c.bench_function("f80_roundtrip_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &values {
                acc ^= F80::from_f64(v).to_f64().to_bits();
            }
            acc
        })
    });
}

fn bench_golden_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_run");
    g.sample_size(10);
    for kind in AppKind::ALL {
        let app = App::build(kind, AppParams::tiny(kind));
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut w = app.world(2_000_000_000);
                assert_eq!(w.run(), fl_mpi::WorldExit::Clean);
                w.machine(0).counters.insns
            })
        });
    }
    g.finish();
}

fn bench_trial_throughput(c: &mut Criterion) {
    // The unit of campaign cost: one injection experiment end to end.
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let golden = app.golden(2_000_000_000);
    let budget = golden.insns.iter().max().unwrap() * 3 + 2_000_000;
    let dicts = Dictionaries::build(&app);
    let _ = CampaignConfig::default();
    let mut g = c.benchmark_group("trial");
    g.sample_size(20);
    for class in [
        TargetClass::RegularReg,
        TargetClass::Text,
        TargetClass::Message,
    ] {
        let mut seed = 0u64;
        g.bench_function(class.label().replace(' ', "_").replace('.', ""), |b| {
            b.iter(|| {
                seed += 1;
                fl_inject::run_trial(&app, &golden, &dicts, class, seed, budget).outcome
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_compiler,
    bench_f80,
    bench_golden_runs,
    bench_trial_throughput
);
criterion_main!(benches);
