//! Fault-free cost of the chaos machinery.
//!
//! The chaos price contract: with every chaos fault class compiled in
//! and armed — a network fault, a partition, a node kill and a syscall
//! fault all scheduled past the end of the run, so the full per-byte /
//! per-round / per-call check path executes but nothing ever fires —
//! a clean run must cost at most 15 % of wall time versus the same
//! world with no chaos state armed. Writes the runs/sec plus relative
//! overhead to `BENCH_chaos.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_machine::{SyscallFault, SyscallFaultKind};
use fl_mpi::{MpiWorld, NetFault, NetFaultKind, NodeKill, Partition, WorldExit};

fn bench_chaos_overhead(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let cfg = app.world_config(2_000_000_000);

    c.bench_function("chaos_overhead/off", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, cfg);
            assert_eq!(w.run(), WorldExit::Clean);
        })
    });
    let off_ns = c.last_ns_per_iter.expect("bench must have run");

    c.bench_function("chaos_overhead/armed_never_firing", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, cfg);
            w.set_net_fault(NetFault {
                rank: 0,
                at_recv_byte: u64::MAX,
                kind: NetFaultKind::Corrupt,
            });
            w.set_partition(Partition {
                mask: 0b01,
                trigger_rank: 0,
                at_blocks: u64::MAX,
                rounds: 8,
            });
            w.set_node_kill(NodeKill {
                mask: 0b01,
                trigger_rank: 0,
                at_blocks: u64::MAX,
                wedge: false,
            });
            w.machine_mut(0).set_syscall_fault(SyscallFault {
                kind: SyscallFaultKind::Malloc,
                at_call: u64::MAX,
                persist: false,
            });
            assert_eq!(w.run(), WorldExit::Clean);
            assert_eq!(w.net_faults_fired(), 0, "nothing may actually fire");
        })
    });
    let armed_ns = c.last_ns_per_iter.expect("bench must have run");

    let off_rps = 1e9 / off_ns;
    let armed_rps = 1e9 / armed_ns;
    let armed_overhead = (armed_ns - off_ns) / off_ns;
    println!(
        "chaos_overhead: off {off_rps:.2} runs/s, armed-never-firing {armed_rps:.2} runs/s \
         ({:+.1}%)",
        armed_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"chaos_overhead\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"off_runs_per_sec\": {off_rps:.3},\n  \
         \"armed_runs_per_sec\": {armed_rps:.3},\n  \
         \"armed_overhead_frac\": {armed_overhead:.4},\n  \
         \"threshold_frac\": 0.15\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, json).expect("write BENCH_chaos.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_chaos_overhead);
criterion_main!(benches);
