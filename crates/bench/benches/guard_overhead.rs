//! Fault-free cost of guarded execution.
//!
//! The guard's price contract: on a run where nothing goes wrong, CRC
//! stamping + verification, the sender retransmit queue, the watchdog
//! samples and the periodic COW checkpoints must together cost at most
//! 15 % of wall time versus the bare world. Measures a fault-free
//! wavetoy run three ways — unguarded, guard with default checkpoint
//! cadence, guard with a tight cadence — and writes the runs/sec plus
//! relative overhead to `BENCH_guard.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_apps::{App, AppKind, AppParams};
use fl_guard::{run_guarded, GuardPolicy};
use fl_mpi::{MpiWorld, WorldExit};

fn bench_guard_overhead(c: &mut Criterion) {
    let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
    let cfg = app.world_config(2_000_000_000);

    c.bench_function("guard_overhead/off", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(&app.image, cfg);
            assert_eq!(w.run(), WorldExit::Clean);
        })
    });
    let off_ns = c.last_ns_per_iter.expect("bench must have run");

    let guarded_at = |name: &str, c: &mut Criterion, checkpoint_rounds: u32| -> f64 {
        let policy = GuardPolicy {
            checkpoint_rounds,
            ..GuardPolicy::default()
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                let (_, report) = run_guarded(&app.image, cfg, &policy, |_| {});
                assert_eq!(report.exit, WorldExit::Clean);
                assert!(!report.intervened());
            })
        });
        c.last_ns_per_iter.expect("bench must have run")
    };

    let on_ns = guarded_at("guard_overhead/on_ckpt64", c, 64);
    let tight_ns = guarded_at("guard_overhead/on_ckpt16", c, 16);

    let off_rps = 1e9 / off_ns;
    let on_rps = 1e9 / on_ns;
    let tight_rps = 1e9 / tight_ns;
    let on_overhead = (on_ns - off_ns) / off_ns;
    let tight_overhead = (tight_ns - off_ns) / off_ns;
    println!(
        "guard_overhead: off {off_rps:.2} runs/s, guard(ckpt=64) {on_rps:.2} runs/s \
         ({:+.1}%), guard(ckpt=16) {tight_rps:.2} runs/s ({:+.1}%)",
        on_overhead * 100.0,
        tight_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"guard_overhead\",\n  \"app\": \"wavetoy-tiny\",\n  \
         \"off_runs_per_sec\": {off_rps:.3},\n  \
         \"guard_ckpt64_runs_per_sec\": {on_rps:.3},\n  \
         \"guard_ckpt16_runs_per_sec\": {tight_rps:.3},\n  \
         \"guard_ckpt64_overhead_frac\": {on_overhead:.4},\n  \
         \"guard_ckpt16_overhead_frac\": {tight_overhead:.4},\n  \
         \"threshold_frac\": 0.15\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_guard.json");
    std::fs::write(path, json).expect("write BENCH_guard.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_guard_overhead);
criterion_main!(benches);
