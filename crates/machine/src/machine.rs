//! The FaultLab virtual machine: CPU state, the execution loop, syscall
//! dispatch, and the privileged access the fault injector uses.
//!
//! One `Machine` models one MPI process — a Linux IA-32 process in the
//! paper. Faults propagate mechanically: a corrupted pointer faults the
//! protection check (SIGSEGV), a corrupted opcode fails the decoder
//! (SIGILL), a corrupted divisor traps (SIGFPE), a corrupted loop counter
//! burns the instruction budget (hang), and corrupted data flows silently
//! into output (incorrect output). These are precisely the manifestation
//! classes of §5.1.

use crate::fpu::Fpu;
use crate::image::ProgramImage;
use crate::layout::{Mapping, Perms, Region, DEFAULT_STACK_SIZE, LIB_BASE, STACK_TOP, TEXT_BASE};
use crate::malloc::{AllocTag, HeapAllocator, HeapError};
use crate::mem::{Memory, MemorySnapshot};
use crate::AddressSpaceMap;
use fl_isa::insn::{AluOp, FpuBinOp, FpuUnOp};
use fl_isa::{decode_at, Cond, Gpr, Insn, RegisterName, Syscall};
use fl_isa::{EFLAGS_CF, EFLAGS_OF, EFLAGS_SF, EFLAGS_ZF};
use fl_obs::{EventKind, EventLog, SigKind};

use crate::f80::F80;

use std::sync::{Arc, OnceLock};

/// CPU register state (the paper's register fault targets).
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    /// The eight general-purpose registers, indexed by [`Gpr`].
    pub gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Flags register.
    pub eflags: u32,
    /// x87 FPU state.
    pub fpu: Fpu,
}

impl Cpu {
    fn new(entry: u32, esp: u32) -> Self {
        let mut gpr = [0u32; 8];
        gpr[Gpr::Esp as usize] = esp;
        gpr[Gpr::Ebp as usize] = 0; // frame-chain terminator
        Cpu {
            gpr,
            eip: entry,
            eflags: 0,
            fpu: Fpu::new(),
        }
    }

    /// Read a GPR.
    pub fn get(&self, r: Gpr) -> u32 {
        self.gpr[r as usize]
    }

    /// Write a GPR.
    pub fn set(&mut self, r: Gpr, v: u32) {
        self.gpr[r as usize] = v;
    }
}

/// Fatal signals, named after their POSIX counterparts. MPICH handles all
/// of these and aborts the whole application (§5.1, "Crash").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Invalid memory reference.
    Segv { addr: u32 },
    /// Illegal instruction.
    Ill { eip: u32 },
    /// Arithmetic fault (integer divide by zero / overflow).
    Fpe { eip: u32 },
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Signal::Segv { addr } => write!(f, "SIGSEGV at address {addr:#010x}"),
            Signal::Ill { eip } => write!(f, "SIGILL at eip {eip:#010x}"),
            Signal::Fpe { eip } => write!(f, "SIGFPE at eip {eip:#010x}"),
        }
    }
}

/// Why the execution loop returned.
#[derive(Debug, Clone, PartialEq)]
pub enum Exit {
    /// Clean termination with an exit status.
    Halted(i32),
    /// Abnormal termination by signal.
    Signal(Signal),
    /// The application aborted itself after a failed internal check
    /// ("Application Detected", §5.1).
    Abort(String),
    /// The allocator detected heap corruption or an invalid free —
    /// glibc-style abort, classified as a crash.
    HeapCorruption(HeapError),
    /// The process issued an MPI syscall and is parked until the MPI
    /// layer completes it (number identifies the call; arguments are in
    /// the registers).
    Mpi(Syscall),
    /// The per-call instruction quantum expired (cooperative scheduling).
    Quantum,
    /// The total instruction budget was exhausted — the deterministic
    /// analogue of the paper's "one minute past expected completion"
    /// hang rule.
    Budget,
}

/// Execution statistics, including the progress metrics §7 proposes for
/// hang detection (FLOP and message-call rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions retired.
    pub insns: u64,
    /// Basic blocks retired (control transfers) — the time axis of the
    /// paper's working-set plots.
    pub blocks: u64,
    /// Floating-point operations retired.
    pub flops: u64,
    /// `malloc` calls served.
    pub mallocs: u64,
    /// MPI syscalls issued.
    pub mpi_calls: u64,
    /// Output syscalls issued (console/file write family) — the draw
    /// denominator for fl-chaos write-failure injection.
    pub io_writes: u64,
}

/// Which syscall family a [`SyscallFault`] fails (fl-chaos' OS-level
/// failure model — the SystemTap-style "make the kernel say no").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallFaultKind {
    /// `malloc` returns NULL (allocation denied).
    Malloc,
    /// An output syscall fails: nothing reaches the console or output
    /// file and EAX reads back -1, like a full disk or a closed fd.
    Write,
}

/// An armed OS-level failure: the `at_call`-th matching syscall issued
/// after arming fails instead of being serviced. `Copy`, carried by
/// [`MachineSnapshot`]s — restoring a pre-fire checkpoint re-arms it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallFault {
    /// Which family of syscalls fails.
    pub kind: SyscallFaultKind,
    /// 1-based index (among matching calls, counted from arming) of the
    /// call that fails.
    pub at_call: u64,
    /// True: every subsequent matching call fails too (a resource gone
    /// for good). False: one-shot (a transient EINTR-style denial).
    pub persist: bool,
}

/// An armed memory-stall interference fault (fl-perturb): from
/// `at_insns` until `at_insns + window_insns` on this machine's retired
/// instruction clock, every checked data access costs `per_access`
/// extra retired instructions — contention for a shared memory bus,
/// modelled as a latency surcharge in retired-insn accounting. `Copy`,
/// carried by [`MachineSnapshot`]s like [`SyscallFault`], so restoring
/// a mid-window checkpoint resumes the stall deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStall {
    /// Instruction clock at which the stall window opens.
    pub at_insns: u64,
    /// Window length on the (surcharge-inflated) instruction clock.
    pub window_insns: u64,
    /// Extra retired instructions charged per checked load/store.
    pub per_access: u64,
}

/// Configuration for machine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Stack reservation in bytes.
    pub stack_size: u32,
    /// Hard cap on heap growth in bytes.
    pub heap_limit: u32,
    /// Total instruction budget; `u64::MAX` means unlimited.
    pub budget: u64,
    /// Trace text/data accesses for working-set analysis (slower).
    pub trace: bool,
    /// Per-rank structured-event ring capacity; 0 disables recording
    /// (the default — recording then costs one branch per hook).
    pub obs_capacity: u32,
    /// Execution fast path: software TLB + basic-block dispatch. On by
    /// default; turn off for the fully-checked per-instruction baseline
    /// (bit-identical behaviour, several times slower).
    pub fastpath: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            stack_size: DEFAULT_STACK_SIZE,
            heap_limit: 64 << 20,
            budget: u64::MAX,
            trace: false,
            obs_capacity: 0,
            fastpath: true,
        }
    }
}

struct ICache {
    base: u32,
    entries: Vec<Option<(Insn, u8)>>,
}

impl ICache {
    fn new(base: u32, len: u32) -> Self {
        ICache {
            base,
            entries: vec![None; (len as usize).div_ceil(4)],
        }
    }

    fn idx(&self, addr: u32) -> Option<usize> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.base) / 4) as usize;
        (i < self.entries.len()).then_some(i)
    }

    fn invalidate(&mut self, addr: u32) {
        // A poke at `addr` can change the instruction starting there or
        // the immediate word of the instruction one word earlier.
        if let Some(i) = self.idx(addr & !3) {
            self.entries[i] = None;
            if i > 0 {
                self.entries[i - 1] = None;
            }
        }
    }
}

/// A decoded basic block: the straight-line instruction run starting at
/// some text address, ending at the first block-ending instruction (or
/// a size cap). Instructions are stored as `(insn, words)` exactly as
/// the per-instruction icache stores them.
struct Block {
    insns: Vec<(Insn, u8)>,
}

/// Basic-block cache, indexed like [`ICache`] by entry word. Blocks are
/// built lazily by [`Machine::run`]'s fast path and flushed wholesale on
/// any text poke (pokes happen at injection rate, so coarse-grained
/// invalidation costs nothing measurable); `generation` detects a flush
/// that lands while a block is checked out for execution.
struct BlockCache {
    slots: Vec<Option<Block>>,
    generation: u64,
}

impl BlockCache {
    fn new(len: u32) -> Self {
        BlockCache {
            slots: (0..(len as usize).div_ceil(4)).map(|_| None).collect(),
            generation: 0,
        }
    }

    fn flush(&mut self) {
        self.generation += 1;
        for s in &mut self.slots {
            *s = None;
        }
    }
}

/// Straight-line blocks stop at the first block-ending instruction or
/// at this many instructions, on both the shared and private paths.
const MAX_BLOCK_INSNS: usize = 64;

/// Block-entry dispatch count after which a superblock is compiled.
const TRACE_HOT_THRESHOLD: u16 = 16;

/// Superblock size caps: architectural instructions per pass and chained
/// basic blocks. Bounds both compile time and the headroom a pass needs.
const MAX_TRACE_INSNS: u64 = 256;
const MAX_TRACE_BLOCKS: u32 = 16;

/// Decoded-code cache effectiveness counters. Telemetry only — never
/// part of snapshots, records or metrics rows, because hit/miss ratios
/// depend on fork warmth and worker scheduling while the architectural
/// results must stay byte-identical across all of that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Block dispatches that found a ready decoded block.
    pub block_hits: u64,
    /// Block dispatches that had to assemble the block first.
    pub block_misses: u64,
    /// Superblock passes entered (each retires up to a whole loop body).
    pub trace_hits: u64,
    /// Superblock passes abandoned mid-body by a mispredicted branch.
    pub trace_side_exits: u64,
    /// Text banks demoted from the shared store by a poke.
    pub demotions: u64,
    /// Scheduler quanta this machine was granted (fl-perturb
    /// effective-quantum telemetry, filled by the round scheduler).
    pub quanta_granted: u64,
    /// Instructions' worth of quantum granted across those rounds —
    /// shrinks under a hog's share steal, so `quantum_insns_granted /
    /// quanta_granted` is the effective per-round quantum.
    pub quantum_insns_granted: u64,
    /// Rounds in which a quantum tax starved this machine outright
    /// (zero quantum handed out).
    pub quanta_starved: u64,
}

impl ExecStats {
    /// Accumulate another machine's counters into this one.
    pub fn add(&mut self, o: &ExecStats) {
        self.block_hits += o.block_hits;
        self.block_misses += o.block_misses;
        self.trace_hits += o.trace_hits;
        self.trace_side_exits += o.trace_side_exits;
        self.demotions += o.demotions;
        self.quanta_granted += o.quanta_granted;
        self.quantum_insns_granted += o.quantum_insns_granted;
        self.quanta_starved += o.quanta_starved;
    }
}

/// One operation of a compiled superblock. Inline variants skip the
/// full `exec` dispatch and do not touch EIP on the non-faulting path
/// (`exec` never *reads* EIP, so it may go stale inside a trace as long
/// as every fault, exit and side exit restores it); the `Exec` variants
/// wrap the general interpreter for everything else. `CmpIJ`/`CmpJ` and
/// `LdAlu` are the macro-op fusions of the FL compiler's compare+branch
/// and load+op idioms.
#[derive(Debug, Clone)]
enum TraceOp {
    MovI {
        rd: Gpr,
        imm: u32,
    },
    Mov {
        rd: Gpr,
        rs: Gpr,
    },
    AddI {
        rd: Gpr,
        ra: Gpr,
        imm: u32,
    },
    /// Non-trapping ALU only; Div/Mod go through `Exec` for SIGFPE.
    Alu {
        op: AluOp,
        rd: Gpr,
        ra: Gpr,
        rb: Gpr,
    },
    Ld {
        rd: Gpr,
        base: Gpr,
        off: i32,
        at: u32,
    },
    St {
        rb: Gpr,
        base: Gpr,
        off: i32,
        at: u32,
    },
    LdG {
        rd: Gpr,
        addr: u32,
        at: u32,
    },
    StG {
        rs: Gpr,
        addr: u32,
        at: u32,
    },
    /// Fused load + ALU over the loaded value (two retired insns; on a
    /// load fault only the load has retired and EIP points at it).
    LdAlu {
        rd: Gpr,
        base: Gpr,
        off: i32,
        at: u32,
        op: AluOp,
        ard: Gpr,
        ara: Gpr,
        arb: Gpr,
    },
    /// Fused compare-immediate + conditional branch (two retired insns,
    /// one retired block; flags are still architecturally written).
    CmpIJ {
        ra: Gpr,
        imm: u32,
        cond: Cond,
        target: u32,
        fall: u32,
        expect_taken: bool,
    },
    /// Fused register compare + conditional branch.
    CmpJ {
        ra: Gpr,
        rb: Gpr,
        cond: Cond,
        target: u32,
        fall: u32,
        expect_taken: bool,
    },
    MulI {
        rd: Gpr,
        ra: Gpr,
        imm: u32,
    },
    /// Standalone compare (not fused with a branch): flags only.
    CmpOnly {
        ra: Gpr,
        rb: Gpr,
    },
    CmpIOnly {
        ra: Gpr,
        imm: u32,
    },
    LdB {
        rd: Gpr,
        base: Gpr,
        off: i32,
        at: u32,
    },
    StB {
        rb: Gpr,
        base: Gpr,
        off: i32,
        at: u32,
    },
    Push {
        rs: Gpr,
        at: u32,
    },
    Pop {
        rd: Gpr,
        at: u32,
    },
    Enter {
        frame: u32,
        at: u32,
    },
    Leave {
        at: u32,
    },
    /// Conditional branch with a predicted direction; always writes EIP
    /// (it is a control transfer either way), side-exits on the
    /// unpredicted one.
    Jmp {
        cond: Cond,
        target: u32,
        fall: u32,
        expect_taken: bool,
    },
    /// Unconditional direct jump: retires counters only — the trace
    /// already continues at the target.
    JmpU,
    /// Direct call chained through: push the return address and continue
    /// into the callee inline.
    CallPush {
        ret: u32,
        at: u32,
    },
    /// Return whose address is known from a `CallPush` earlier in the
    /// same trace: pop, jump, side-exit if the stack was retargeted.
    RetTo {
        expect: u32,
        at: u32,
    },
    /// Any FPU instruction, through the shared `exec_fpu` body inlined
    /// into the trace loop.
    Fpu {
        insn: Insn,
        at: u32,
    },
    /// Any other instruction, through the full interpreter.
    Exec {
        insn: Insn,
        at: u32,
        next: u32,
        end: bool,
    },
    /// A control transfer with a statically predicted continuation:
    /// execution leaves the pass when EIP lands anywhere else.
    ExecBranch {
        insn: Insn,
        at: u32,
        next: u32,
        expect: u32,
        end: bool,
    },
    /// Restore EIP at a trace tail that falls off mid-block (the
    /// preceding inline op left it stale).
    FallThrough {
        to: u32,
    },
}

/// A superblock: hot basic blocks chained across statically predicted
/// branch directions, entered only at `entry`. The dispatcher admits a
/// pass only when `insn_count` fits under both the budget and the
/// quantum, which is what lets the body run with no per-instruction
/// limit checks while staying exact to the instruction.
#[derive(Debug, Clone)]
struct Trace {
    entry: u32,
    /// Architectural instructions one full pass retires.
    insn_count: u64,
    /// The chain closes back on `entry`: loop in-trace without
    /// re-dispatching.
    closes_loop: bool,
    ops: Vec<TraceOp>,
}

/// One text bank's share of the campaign-wide decoded-code store: every
/// aligned word pre-decoded at image-load time, plus lazily assembled
/// basic blocks and hot-promoted superblocks published through
/// `OnceLock` slots (first publisher wins; contents are pure functions
/// of `insns`, so a lost race publishes an identical value). The bank
/// is immutable after construction, so any number of machines — across
/// ranks, snapshot forks and worker threads — share one `Arc` and warm
/// each other's caches for free.
pub(crate) struct SharedBank {
    base: u32,
    insns: Vec<Option<(Insn, u8)>>,
    blocks: Vec<OnceLock<Block>>,
    traces: Vec<OnceLock<Trace>>,
}

impl SharedBank {
    /// Pre-decode a text section. Replicates `Memory::fetch_words`
    /// exactly: the mapping covers `bytes.len().max(4)` bytes, a word is
    /// fetchable iff it lies wholly inside the mapping, the lookahead
    /// word reads zero past the end, and unwritten mapping bytes are
    /// zero.
    fn build(base: u32, bytes: &[u8]) -> SharedBank {
        let map_len = bytes.len().max(4);
        let words = map_len.div_ceil(4);
        let word_at = |i: usize| -> u32 {
            let mut w = [0u8; 4];
            for (j, b) in w.iter_mut().enumerate() {
                *b = bytes.get(4 * i + j).copied().unwrap_or(0);
            }
            u32::from_le_bytes(w)
        };
        let mut insns = Vec::with_capacity(words);
        for i in 0..words {
            if 4 * i + 4 > map_len {
                insns.push(None);
                continue;
            }
            let w0 = word_at(i);
            let w1 = if 4 * i + 8 <= map_len {
                word_at(i + 1)
            } else {
                0
            };
            insns.push(
                decode_at(&[w0, w1], 0)
                    .ok()
                    .map(|(insn, len)| (insn, len as u8)),
            );
        }
        SharedBank {
            base,
            blocks: (0..words).map(|_| OnceLock::new()).collect(),
            traces: (0..words).map(|_| OnceLock::new()).collect(),
            insns,
        }
    }

    fn idx(&self, addr: u32) -> Option<usize> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.base) / 4) as usize;
        (i < self.insns.len()).then_some(i)
    }

    /// The shared decoded block at slot `i`, assembling and publishing
    /// it on first use anywhere in the campaign.
    fn block(&self, i: usize, stats: &mut ExecStats) -> Option<&Block> {
        if let Some(b) = self.blocks[i].get() {
            stats.block_hits += 1;
            return Some(b);
        }
        stats.block_misses += 1;
        let b = self.assemble_block(i)?;
        Some(self.blocks[i].get_or_init(|| b))
    }

    /// Assemble the straight-line block at slot `i` from the pre-decoded
    /// words — the shared-store twin of `Machine::build_block`, with the
    /// identical stop conditions.
    fn assemble_block(&self, i: usize) -> Option<Block> {
        let mut insns = Vec::new();
        let mut j = i;
        while let Some(Some((insn, len))) = self.insns.get(j).copied() {
            insns.push((insn, len));
            if insn.is_block_end() || insns.len() >= MAX_BLOCK_INSNS {
                break;
            }
            j += len as usize;
        }
        (!insns.is_empty()).then_some(Block { insns })
    }

    /// Compile the superblock starting at `entry`: follow the straight
    /// line, predict conditional branches (backward = taken loop edge,
    /// forward = fall through), chain through direct jumps/calls and
    /// continuing syscalls, fuse compare+branch and load+op pairs, and
    /// stop at indirect control flow, undecodable words, the size caps,
    /// or when the chain closes back on the entry.
    fn build_trace(&self, entry: u32) -> Option<Trace> {
        let mut ops: Vec<TraceOp> = Vec::new();
        let mut insn_count: u64 = 0;
        let mut blocks: u32 = 0;
        let mut at = entry;
        let mut closes_loop = false;
        // Return addresses pushed by calls chained into this trace, so a
        // matching RET can chain through with a known continuation.
        let mut callstack: Vec<u32> = Vec::new();
        let peek = |a: u32| self.idx(a).and_then(|i| self.insns[i]);
        loop {
            if insn_count >= MAX_TRACE_INSNS || blocks >= MAX_TRACE_BLOCKS {
                break;
            }
            let Some((insn, len)) = peek(at) else {
                break;
            };
            let next = at.wrapping_add(4 * len as u32);

            // Macro-op fusion: compare + conditional branch.
            if let Insn::CmpI { ra, imm } = insn {
                if let Some((Insn::J { cond, target }, jlen)) = peek(next) {
                    let fall = next.wrapping_add(4 * jlen as u32);
                    let expect_taken = cond == Cond::Always || target < next;
                    ops.push(TraceOp::CmpIJ {
                        ra,
                        imm,
                        cond,
                        target,
                        fall,
                        expect_taken,
                    });
                    insn_count += 2;
                    blocks += 1;
                    at = if expect_taken { target } else { fall };
                    if at == entry {
                        closes_loop = true;
                        break;
                    }
                    continue;
                }
            }
            if let Insn::Cmp { ra, rb } = insn {
                if let Some((Insn::J { cond, target }, jlen)) = peek(next) {
                    let fall = next.wrapping_add(4 * jlen as u32);
                    let expect_taken = cond == Cond::Always || target < next;
                    ops.push(TraceOp::CmpJ {
                        ra,
                        rb,
                        cond,
                        target,
                        fall,
                        expect_taken,
                    });
                    insn_count += 2;
                    blocks += 1;
                    at = if expect_taken { target } else { fall };
                    if at == entry {
                        closes_loop = true;
                        break;
                    }
                    continue;
                }
            }
            // Macro-op fusion: load + non-trapping ALU.
            if let Insn::Ld { rd, base, off } = insn {
                if let Some((
                    Insn::Alu {
                        op,
                        rd: ard,
                        ra: ara,
                        rb: arb,
                    },
                    alen,
                )) = peek(next)
                {
                    if !matches!(op, AluOp::Div | AluOp::Mod) {
                        ops.push(TraceOp::LdAlu {
                            rd,
                            base,
                            off,
                            at,
                            op,
                            ard,
                            ara,
                            arb,
                        });
                        insn_count += 2;
                        at = next.wrapping_add(4 * alen as u32);
                        if at == entry {
                            closes_loop = true;
                            break;
                        }
                        continue;
                    }
                }
            }

            let mut cont = next;
            let mut stop = false;
            let op = match insn {
                Insn::MovI { rd, imm } => TraceOp::MovI { rd, imm },
                Insn::Mov { rd, rs } => TraceOp::Mov { rd, rs },
                Insn::AddI { rd, ra, imm } => TraceOp::AddI { rd, ra, imm },
                Insn::MulI { rd, ra, imm } => TraceOp::MulI { rd, ra, imm },
                Insn::Alu { op, rd, ra, rb } if !matches!(op, AluOp::Div | AluOp::Mod) => {
                    TraceOp::Alu { op, rd, ra, rb }
                }
                // Unfused compares (the branch fusion above didn't fire).
                Insn::Cmp { ra, rb } => TraceOp::CmpOnly { ra, rb },
                Insn::CmpI { ra, imm } => TraceOp::CmpIOnly { ra, imm },
                Insn::Ld { rd, base, off } => TraceOp::Ld { rd, base, off, at },
                Insn::St { rb, base, off } => TraceOp::St { rb, base, off, at },
                Insn::LdG { rd, addr } => TraceOp::LdG { rd, addr, at },
                Insn::StG { rs, addr } => TraceOp::StG { rs, addr, at },
                Insn::LdB { rd, base, off } => TraceOp::LdB { rd, base, off, at },
                Insn::StB { rb, base, off } => TraceOp::StB { rb, base, off, at },
                Insn::Push { rs } => TraceOp::Push { rs, at },
                Insn::Pop { rd } => TraceOp::Pop { rd, at },
                Insn::Enter { frame } => TraceOp::Enter { frame, at },
                Insn::Leave => TraceOp::Leave { at },
                Insn::J { cond, target } => {
                    if cond == Cond::Always {
                        cont = target;
                        TraceOp::JmpU
                    } else {
                        let expect_taken = target < at;
                        cont = if expect_taken { target } else { next };
                        TraceOp::Jmp {
                            cond,
                            target,
                            fall: next,
                            expect_taken,
                        }
                    }
                }
                Insn::Call { target } => {
                    cont = target;
                    callstack.push(next);
                    TraceOp::CallPush { ret: next, at }
                }
                // A return whose address was pushed by a call earlier in
                // this same trace chains through; any other return is an
                // indirect transfer and stops the trace.
                Insn::Ret => match callstack.pop() {
                    Some(expect) => {
                        cont = expect;
                        TraceOp::RetTo { expect, at }
                    }
                    None => {
                        stop = true;
                        TraceOp::Exec {
                            insn,
                            at,
                            next,
                            end: true,
                        }
                    }
                },
                // Print-family syscalls continue at `next`; MPI traps and
                // exits leave the pass through their Exit instead.
                Insn::Sys { .. } => TraceOp::ExecBranch {
                    insn,
                    at,
                    next,
                    expect: next,
                    end: true,
                },
                Insn::JmpR { .. } | Insn::CallR { .. } | Insn::Halt => {
                    stop = true;
                    TraceOp::Exec {
                        insn,
                        at,
                        next,
                        end: true,
                    }
                }
                other if is_fpu_insn(&other) => TraceOp::Fpu { insn: other, at },
                other => TraceOp::Exec {
                    insn: other,
                    at,
                    next,
                    end: false,
                },
            };
            ops.push(op);
            insn_count += 1;
            if insn.is_block_end() {
                blocks += 1;
            }
            if stop {
                break;
            }
            at = cont;
            if at == entry {
                closes_loop = true;
                break;
            }
        }
        if ops.is_empty() {
            return None;
        }
        // A pass must leave EIP correct when it falls off the tail: ops
        // that only write EIP on faults get an explicit fall-through to
        // the chain continuation (`at` holds it at every break above).
        if let Some(
            TraceOp::MovI { .. }
            | TraceOp::Mov { .. }
            | TraceOp::AddI { .. }
            | TraceOp::MulI { .. }
            | TraceOp::Alu { .. }
            | TraceOp::CmpOnly { .. }
            | TraceOp::CmpIOnly { .. }
            | TraceOp::Ld { .. }
            | TraceOp::St { .. }
            | TraceOp::LdG { .. }
            | TraceOp::StG { .. }
            | TraceOp::LdB { .. }
            | TraceOp::StB { .. }
            | TraceOp::LdAlu { .. }
            | TraceOp::Push { .. }
            | TraceOp::Pop { .. }
            | TraceOp::Enter { .. }
            | TraceOp::Leave { .. }
            | TraceOp::JmpU
            | TraceOp::CallPush { .. }
            | TraceOp::Fpu { .. },
        ) = ops.last()
        {
            ops.push(TraceOp::FallThrough { to: at });
        }
        Some(Trace {
            entry,
            insn_count,
            closes_loop,
            ops,
        })
    }
}

/// The campaign-wide decoded-code store: one pre-decoded `SharedBank`
/// per text bank, cheaply cloneable (two `Arc`s). Build it once per
/// image and pass it to every machine loaded from that image — all
/// ranks, forks and worker threads then share decoded blocks and
/// promoted superblocks, and snapshots carry the handles so forked
/// trials start warm.
#[derive(Clone)]
pub struct SharedCode {
    pub(crate) app: Arc<SharedBank>,
    pub(crate) lib: Arc<SharedBank>,
}

impl SharedCode {
    /// Eagerly pre-decode both text sections of an image.
    pub fn build(image: &ProgramImage) -> SharedCode {
        SharedCode {
            app: Arc::new(SharedBank::build(TEXT_BASE, &image.text)),
            lib: Arc::new(SharedBank::build(LIB_BASE, &image.lib_text)),
        }
    }
}

impl std::fmt::Debug for SharedCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCode")
            .field("app_words", &self.app.insns.len())
            .field("lib_words", &self.lib.insns.len())
            .finish()
    }
}

/// One text bank's view of the decode machinery: the `Arc`-shared
/// pre-decoded store while the bank's text still matches the image, or
/// private lazy caches after a poke demotes it (copy-on-poke — the
/// shared store always describes pristine text, so a text-corrupting
/// fault drops the handle and falls back to the PR 4 per-machine
/// caches with their generation-flush semantics).
struct CacheBank {
    base: u32,
    /// Mapping length in bytes (`text_len.max(4)`, like the mappings).
    len: u32,
    /// The shared store; `None` once demoted or when loaded cold.
    shared: Option<Arc<SharedBank>>,
    /// Per-machine promotion heat for shared block entries (lazily
    /// sized — most forks never run anything hot).
    hotness: Vec<u16>,
    /// Private decode caches, used only when `shared` is gone.
    icache: Option<Box<ICache>>,
    bcache: Option<Box<BlockCache>>,
}

impl CacheBank {
    fn cold(base: u32, len: u32) -> CacheBank {
        CacheBank {
            base,
            len: len.max(4),
            shared: None,
            hotness: Vec::new(),
            icache: None,
            bcache: None,
        }
    }

    fn warm(base: u32, len: u32, shared: Arc<SharedBank>) -> CacheBank {
        CacheBank {
            shared: Some(shared),
            ..CacheBank::cold(base, len)
        }
    }

    fn idx(&self, addr: u32) -> Option<usize> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.base) / 4) as usize;
        (i < (self.len as usize).div_ceil(4)).then_some(i)
    }

    fn heat(&mut self, i: usize) -> &mut u16 {
        if self.hotness.is_empty() {
            self.hotness = vec![0; (self.len as usize).div_ceil(4)];
        }
        &mut self.hotness[i]
    }

    fn icache_mut(&mut self) -> &mut ICache {
        self.icache
            .get_or_insert_with(|| Box::new(ICache::new(self.base, self.len)))
    }

    fn bcache_mut(&mut self) -> &mut BlockCache {
        self.bcache
            .get_or_insert_with(|| Box::new(BlockCache::new(self.len)))
    }

    /// A privileged poke landed on [lo, hi): demote a shared bank to
    /// the private caches, or flush the private caches (the
    /// pre-demotion semantics).
    fn poke(&mut self, lo: u32, hi: u32, stats: &mut ExecStats) {
        let bank_end = self.base + self.len;
        if lo >= bank_end || hi <= self.base {
            return;
        }
        if self.shared.take().is_some() {
            self.hotness = Vec::new();
            self.icache = None;
            self.bcache = None;
            stats.demotions += 1;
            return;
        }
        if let Some(ic) = self.icache.as_deref_mut() {
            for a in lo..hi {
                ic.invalidate(a);
            }
        }
        if let Some(bc) = self.bcache.as_deref_mut() {
            bc.flush();
        }
    }
}

/// The two text banks (app at `TEXT_BASE`, lib at `LIB_BASE`) behind
/// one probe: every use site resolves a bank by address instead of
/// repeating the app-then-lib fallback dance.
struct CodeCache {
    app: CacheBank,
    lib: CacheBank,
}

impl CodeCache {
    fn bank(&self, addr: u32) -> &CacheBank {
        if addr < LIB_BASE {
            &self.app
        } else {
            &self.lib
        }
    }

    fn bank_mut(&mut self, addr: u32) -> &mut CacheBank {
        if addr < LIB_BASE {
            &mut self.app
        } else {
            &mut self.lib
        }
    }
}

/// The FPU family — exactly the variants `Machine::exec_fpu` handles, so
/// the trace builder can route them to the inline [`TraceOp::Fpu`] arm.
fn is_fpu_insn(i: &Insn) -> bool {
    matches!(
        i,
        Insn::Fld { .. }
            | Insn::FldG { .. }
            | Insn::Fst { .. }
            | Insn::Fstp { .. }
            | Insn::FstpG { .. }
            | Insn::Fild { .. }
            | Insn::Fistp { .. }
            | Insn::FildR { .. }
            | Insn::FistpR { .. }
            | Insn::Fldz
            | Insn::Fld1
            | Insn::Fbinp { .. }
            | Insn::Funop { .. }
            | Insn::Fxch { .. }
            | Insn::FldSt { .. }
            | Insn::Fcomip
            | Insn::Fpop
    )
}

/// ALU ops that cannot trap (everything but Div/Mod) — the trace path's
/// inline arms share this with nothing else; `exec` keeps its own match
/// because it must also raise SIGFPE.
#[inline]
fn alu_nontrapping(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b & 31),
        AluOp::Shr => a.wrapping_shr(b & 31),
        AluOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Div | AluOp::Mod => unreachable!("trapping ALU ops never inline into traces"),
    }
}

/// One simulated MPI process.
pub struct Machine {
    /// CPU registers.
    pub cpu: Cpu,
    /// The process address space.
    pub mem: Memory,
    /// The malloc arena.
    pub heap: HeapAllocator,
    /// Console (stdout) bytes.
    pub console: Vec<u8>,
    /// Output-file bytes (rank 0 writes results here).
    pub outfile: Vec<u8>,
    /// True while servicing an MPI call — drives heap-chunk tagging
    /// (§3.2's "at entry to an MPI routine, a flag is set").
    pub in_mpi: bool,
    /// Execution statistics.
    pub counters: Counters,
    /// Structured-event ring buffer ([`fl_obs`]). Part of the
    /// architectural state: snapshots carry it, so a forked trial
    /// replays the identical event stream a cold run produces.
    pub obs: EventLog,
    /// Decoded-code cache effectiveness counters (telemetry, not
    /// architectural state: snapshots neither carry nor compare them).
    pub exec_stats: ExecStats,
    budget: u64,
    text_end: u32,
    lib_text_end: u32,
    code: CodeCache,
    /// Lowest ESP observed on a push — measures peak stack depth for the
    /// Table 1 profile ("the stack size varied between 5-10 KB").
    min_esp: u32,
    /// fl-chaos: armed OS-level syscall failure.
    syscall_fault: Option<SyscallFault>,
    /// Matching syscalls seen since the fault was armed.
    syscall_fault_seen: u64,
    /// Syscall failures applied so far (0 = armed fault never fired).
    syscall_faults_fired: u64,
    /// fl-perturb: armed memory-latency surcharge window. Cleared when
    /// the window closes.
    mem_stall: Option<MemStall>,
    /// Surcharge instructions charged by mem-stall windows so far —
    /// part of the architectural insn clock (snapshots carry it).
    stall_insns: u64,
}

impl Machine {
    /// Load a program image, pre-decoding its text sections.
    pub fn load(image: &ProgramImage, cfg: MachineConfig) -> Machine {
        Machine::load_shared(image, cfg, None)
    }

    /// Load a program image, attaching an existing [`SharedCode`] store
    /// (which must have been built from the same image) instead of
    /// pre-decoding a fresh one. Campaigns build one store per app and
    /// hand it to every world, so all ranks, snapshot forks and worker
    /// threads share decoded blocks and promoted superblocks.
    ///
    /// With `None`, a fresh store is built — unless the configuration
    /// cannot use it (fast path off, or access tracing on), in which
    /// case the machine loads cold and decodes lazily as before.
    pub fn load_shared(
        image: &ProgramImage,
        cfg: MachineConfig,
        code: Option<&SharedCode>,
    ) -> Machine {
        let mut map = AddressSpaceMap::new();
        let text_len = image.text.len() as u32;
        map.add(Mapping {
            start: TEXT_BASE,
            end: TEXT_BASE + text_len.max(4),
            region: Region::Text,
            perms: Perms::RX,
        });
        let data_base = image.data_base();
        if !image.data.is_empty() {
            map.add(Mapping {
                start: data_base,
                end: data_base + image.data.len() as u32,
                region: Region::Data,
                perms: Perms::RW,
            });
        }
        let bss_base = image.bss_base();
        if image.bss_size > 0 {
            map.add(Mapping {
                start: bss_base,
                end: bss_base + image.bss_size,
                region: Region::Bss,
                perms: Perms::RW,
            });
        }
        let heap_base = image.heap_base();
        map.add(Mapping {
            start: heap_base,
            end: heap_base + image.heap_reserve.max(4096),
            region: Region::Heap,
            perms: Perms::RW,
        });
        let lib_text_len = image.lib_text.len() as u32;
        map.add(Mapping {
            start: LIB_BASE,
            end: LIB_BASE + lib_text_len.max(4),
            region: Region::LibText,
            perms: Perms::RX,
        });
        let lib_data_base = image.lib_data_base();
        map.add(Mapping {
            start: lib_data_base,
            end: lib_data_base + (image.lib_data.len() as u32).max(4096),
            region: Region::LibData,
            perms: Perms::RW,
        });
        map.add(Mapping {
            start: STACK_TOP - cfg.stack_size,
            end: STACK_TOP,
            region: Region::Stack,
            perms: Perms::RW,
        });

        let mut mem = Memory::new(map);
        mem.set_fastpath(cfg.fastpath);
        if cfg.trace {
            mem.enable_tracing(&[Region::Text, Region::Data, Region::Bss, Region::Heap]);
        }
        mem.poke(TEXT_BASE, &image.text);
        mem.poke(data_base, &image.data);
        mem.poke(LIB_BASE, &image.lib_text);
        mem.poke(lib_data_base, &image.lib_data);

        let heap_limit = heap_base + cfg.heap_limit.min(LIB_BASE - heap_base);
        let code = if cfg.fastpath && !cfg.trace {
            let owned;
            let code = match code {
                Some(c) => c,
                None => {
                    owned = SharedCode::build(image);
                    &owned
                }
            };
            debug_assert_eq!(
                code.app.insns.len(),
                (text_len.max(4) as usize).div_ceil(4),
                "shared store was built from a different image"
            );
            CodeCache {
                app: CacheBank::warm(TEXT_BASE, text_len, code.app.clone()),
                lib: CacheBank::warm(LIB_BASE, lib_text_len, code.lib.clone()),
            }
        } else {
            CodeCache {
                app: CacheBank::cold(TEXT_BASE, text_len),
                lib: CacheBank::cold(LIB_BASE, lib_text_len),
            }
        };
        Machine {
            cpu: Cpu::new(image.entry, STACK_TOP - 16),
            mem,
            heap: HeapAllocator::new(heap_base, heap_limit),
            console: Vec::new(),
            outfile: Vec::new(),
            in_mpi: false,
            counters: Counters::default(),
            obs: if cfg.obs_capacity > 0 {
                EventLog::bounded(cfg.obs_capacity as usize)
            } else {
                EventLog::disabled()
            },
            exec_stats: ExecStats::default(),
            budget: cfg.budget,
            text_end: TEXT_BASE + text_len,
            lib_text_end: LIB_BASE + lib_text_len,
            code,
            min_esp: STACK_TOP - 16,
            syscall_fault: None,
            syscall_fault_seen: 0,
            syscall_faults_fired: 0,
            mem_stall: None,
            stall_insns: 0,
        }
    }

    /// Arm an OS-level syscall failure (fl-chaos). Replaces any armed
    /// one and restarts the matching-call count.
    pub fn set_syscall_fault(&mut self, f: SyscallFault) {
        self.syscall_fault = Some(f);
        self.syscall_fault_seen = 0;
    }

    /// Syscall failures applied so far (0 = armed fault never fired).
    pub fn syscall_faults_fired(&self) -> u64 {
        self.syscall_faults_fired
    }

    /// Arm a memory-stall interference window (fl-perturb). Replaces
    /// any armed one.
    pub fn set_mem_stall(&mut self, f: MemStall) {
        self.mem_stall = Some(f);
    }

    /// The armed (not yet closed) mem-stall window, if any.
    pub fn mem_stall(&self) -> Option<MemStall> {
        self.mem_stall
    }

    /// Surcharge instructions charged by mem-stall windows so far.
    pub fn stall_insns(&self) -> u64 {
        self.stall_insns
    }

    /// Peak stack usage in bytes.
    pub fn peak_stack_bytes(&self) -> u32 {
        (STACK_TOP - 16).saturating_sub(self.min_esp)
    }

    /// The application text range (for the stack walker and injector).
    pub fn app_text_range(&self) -> (u32, u32) {
        (TEXT_BASE, self.text_end)
    }

    /// The library text range.
    pub fn lib_text_range(&self) -> (u32, u32) {
        (LIB_BASE, self.lib_text_end)
    }

    /// Remaining instruction budget.
    pub fn budget_left(&self) -> u64 {
        self.budget.saturating_sub(self.counters.insns)
    }

    // --- flags -----------------------------------------------------------

    fn set_flag(&mut self, mask: u32, on: bool) {
        if on {
            self.cpu.eflags |= mask;
        } else {
            self.cpu.eflags &= !mask;
        }
    }

    fn flags_from_sub(&mut self, a: u32, b: u32) {
        let (res, carry) = a.overflowing_sub(b);
        let (_, of) = (a as i32).overflowing_sub(b as i32);
        self.set_flag(EFLAGS_ZF, res == 0);
        self.set_flag(EFLAGS_SF, (res as i32) < 0);
        self.set_flag(EFLAGS_CF, carry);
        self.set_flag(EFLAGS_OF, of);
    }

    fn cond_holds(&self, c: Cond) -> bool {
        let f = self.cpu.eflags;
        let zf = f & EFLAGS_ZF != 0;
        let sf = f & EFLAGS_SF != 0;
        let cf = f & EFLAGS_CF != 0;
        let of = f & EFLAGS_OF != 0;
        match c {
            Cond::Always => true,
            Cond::Eq => zf,
            Cond::Ne => !zf,
            Cond::Lt => sf != of,
            Cond::Le => zf || sf != of,
            Cond::Gt => !zf && sf == of,
            Cond::Ge => sf == of,
            Cond::B => cf,
            Cond::Ae => !cf,
            Cond::Be => cf || zf,
            Cond::A => !cf && !zf,
        }
    }

    // --- stack helpers ----------------------------------------------------

    fn push(&mut self, v: u32) -> Result<(), Signal> {
        let esp = self.cpu.get(Gpr::Esp).wrapping_sub(4);
        self.cpu.set(Gpr::Esp, esp);
        self.min_esp = self.min_esp.min(esp);
        self.mem
            .store_u32(esp, v, self.counters.blocks)
            .map_err(|f| Signal::Segv { addr: f.addr })
    }

    fn pop(&mut self) -> Result<u32, Signal> {
        let esp = self.cpu.get(Gpr::Esp);
        let v = self
            .mem
            .load_u32(esp, self.counters.blocks)
            .map_err(|f| Signal::Segv { addr: f.addr })?;
        self.cpu.set(Gpr::Esp, esp.wrapping_add(4));
        Ok(v)
    }

    // --- execution --------------------------------------------------------

    /// Run until an exit condition, retiring at most `quantum` further
    /// instructions (then returning [`Exit::Quantum`]).
    ///
    /// Dispatches to the basic-block fast path when the memory fast path
    /// is on and tracing is off; otherwise runs the per-instruction slow
    /// loop. Both paths retire the same instructions in the same order
    /// with identical counters, events and signal points.
    pub fn run(&mut self, quantum: u64) -> Exit {
        let stop_at = self.counters.insns.saturating_add(quantum);
        match self.mem_stall {
            Some(f) => self.run_stalled(f, stop_at),
            None => self.run_to(stop_at),
        }
    }

    fn run_to(&mut self, stop_at: u64) -> Exit {
        if self.mem.fastpath() && !self.mem.tracing_enabled() {
            self.run_fast(stop_at)
        } else {
            self.run_slow(stop_at)
        }
    }

    /// Run with an armed [`MemStall`]: outside the window, plain
    /// execution clipped to the window edges; inside it, execute in
    /// small chunks and charge `data-accesses × per_access` extra
    /// retired instructions after each chunk. Chunk boundaries live on
    /// the instruction clock and the access counter is identical on
    /// both exec paths, so the inflated clock is path- and
    /// snapshot-deterministic (slop within one chunk is the same slop
    /// every run).
    fn run_stalled(&mut self, f: MemStall, stop_at: u64) -> Exit {
        /// Surcharge accounting granularity in retired instructions.
        const STALL_CHUNK: u64 = 64;
        let window_end = f.at_insns.saturating_add(f.window_insns);
        loop {
            let insns = self.counters.insns;
            if insns >= self.budget {
                return Exit::Budget;
            }
            if insns >= stop_at {
                return Exit::Quantum;
            }
            if insns >= window_end {
                // Window exhausted: disarm and finish the quantum plain.
                self.mem_stall = None;
                return self.run_to(stop_at);
            }
            let in_window = insns >= f.at_insns;
            let chunk_end = if in_window {
                (insns + STALL_CHUNK).min(stop_at).min(window_end)
            } else {
                // Not yet open: run plain up to the window start.
                f.at_insns.min(stop_at)
            };
            let before = self.mem.data_accesses();
            let exit = self.run_to(chunk_end);
            if in_window {
                let tax = (self.mem.data_accesses() - before).saturating_mul(f.per_access);
                self.counters.insns = self.counters.insns.saturating_add(tax);
                self.stall_insns += tax;
            }
            if exit != Exit::Quantum {
                return exit;
            }
            // Chunk boundary (or surcharge overshoot): loop re-checks
            // budget/quantum/window on the inflated clock.
        }
    }

    fn run_slow(&mut self, stop_at: u64) -> Exit {
        loop {
            if self.counters.insns >= self.budget {
                return Exit::Budget;
            }
            if self.counters.insns >= stop_at {
                return Exit::Quantum;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Block/superblock dispatch: look up the shared decoded block (or
    /// superblock) at EIP and execute it in a tight inner loop, paying
    /// the cache-probe and dispatch overhead once per block — or once
    /// per whole loop body when a superblock pass is admitted — instead
    /// of once per instruction.
    fn run_fast(&mut self, stop_at: u64) -> Exit {
        let limit = self.budget.min(stop_at);
        // The shared banks cannot change during a run (demotion happens
        // on privileged pokes, between runs), so resolve them once.
        let app = self.code.app.shared.clone();
        let lib = self.code.lib.shared.clone();
        loop {
            if self.counters.insns >= limit {
                return if self.counters.insns >= self.budget {
                    Exit::Budget
                } else {
                    Exit::Quantum
                };
            }
            let eip = self.cpu.eip;
            let bank = if eip < LIB_BASE { &app } else { &lib };
            let exit = match bank.as_deref() {
                Some(b) => self.dispatch_shared(b, eip, stop_at, limit),
                None => self.dispatch_private(eip, stop_at),
            };
            if let Some(exit) = exit {
                return exit;
            }
        }
    }

    /// One dispatch against the shared store: enter a promoted
    /// superblock if a full pass fits under the limits, otherwise heat
    /// the entry (compiling a superblock at the threshold) and run the
    /// shared decoded block.
    fn dispatch_shared(
        &mut self,
        bank: &SharedBank,
        eip: u32,
        stop_at: u64,
        limit: u64,
    ) -> Option<Exit> {
        let Some(i) = bank.idx(eip) else {
            // Unaligned or outside the bank: single-step raises whatever
            // is architecturally right.
            return self.step();
        };
        match bank.traces[i].get() {
            Some(tr) if limit.saturating_sub(self.counters.insns) >= tr.insn_count => {
                return self.exec_trace(tr, limit);
            }
            // Not enough headroom for a full pass: the block path below
            // finishes the quantum with per-instruction exactness.
            Some(_) => {}
            None => {
                let h = self.code.bank_mut(eip).heat(i);
                *h = h.saturating_add(1);
                if *h == TRACE_HOT_THRESHOLD {
                    if let Some(tr) = bank.build_trace(eip) {
                        let _ = bank.traces[i].set(tr);
                    }
                }
            }
        }
        let Some(block) = bank.block(i, &mut self.exec_stats) else {
            // Head instruction unfetchable/undecodable: the step path
            // raises the proper SIGSEGV/SIGILL with events.
            return self.step();
        };
        self.exec_block(block, eip, stop_at)
    }

    /// One dispatch against the private caches (a demoted bank, or a
    /// configuration that never attached the shared store).
    fn dispatch_private(&mut self, eip: u32, stop_at: u64) -> Option<Exit> {
        let bank = self.code.bank_mut(eip);
        let Some(idx) = bank.idx(eip) else {
            // Not a block-cacheable address (unaligned or outside
            // text): single-step, which raises the right signal.
            return self.step();
        };
        let bc = bank.bcache_mut();
        let generation = bc.generation;
        let slot = bc.slots[idx].take();
        if slot.is_some() {
            self.exec_stats.block_hits += 1;
        } else {
            self.exec_stats.block_misses += 1;
        }
        let block = match slot.or_else(|| self.build_block(eip)) {
            Some(b) => b,
            // Head instruction unfetchable/undecodable: the step path
            // raises the proper SIGSEGV/SIGILL with events.
            None => return self.step(),
        };
        let exit = self.exec_block(&block, eip, stop_at);
        // Put the block back unless a flush raced the execution
        // (nothing inside exec can poke text today, but the generation
        // check keeps the contract local).
        let bc = self.code.bank_mut(eip).bcache_mut();
        if bc.generation == generation {
            bc.slots[idx] = Some(block);
        }
        exit
    }

    /// Execute one full pass (or several, for a loop-closing trace) of a
    /// compiled superblock. The dispatcher has already verified that an
    /// entire pass fits under both the budget and the quantum, so the
    /// body runs with no per-instruction limit checks; counters still
    /// advance per instruction because syscalls and events read them.
    ///
    /// EIP discipline: inline ops leave EIP stale and restore it on a
    /// fault; `Exec`-family ops set it before dispatching (so early
    /// interpreter returns see the right value); every return path
    /// below therefore leaves `cpu.eip` architecturally exact.
    fn exec_trace(&mut self, tr: &Trace, limit: u64) -> Option<Exit> {
        // Counters are batched in locals so the hot arms touch registers,
        // not memory; they are written back (`sync!`) before anything that
        // can observe them — the interpreter, `raise`'s event record, a
        // side exit — and reloaded after the interpreter returns. Safe
        // because access tracing is always off on this path, so nothing
        // else reads the counters mid-pass.
        let mut insns = self.counters.insns;
        let mut blocks = self.counters.blocks;
        macro_rules! sync {
            () => {{
                self.counters.insns = insns;
                self.counters.blocks = blocks;
            }};
        }
        loop {
            self.exec_stats.trace_hits += 1;
            let last = tr.ops.len() - 1;
            for (i, op) in tr.ops.iter().enumerate() {
                match *op {
                    TraceOp::MovI { rd, imm } => {
                        insns += 1;
                        self.cpu.set(rd, imm);
                    }
                    TraceOp::Mov { rd, rs } => {
                        insns += 1;
                        let v = self.cpu.get(rs);
                        self.cpu.set(rd, v);
                    }
                    TraceOp::AddI { rd, ra, imm } => {
                        insns += 1;
                        let v = self.cpu.get(ra).wrapping_add(imm);
                        self.cpu.set(rd, v);
                    }
                    TraceOp::MulI { rd, ra, imm } => {
                        insns += 1;
                        let v = self.cpu.get(ra).wrapping_mul(imm);
                        self.cpu.set(rd, v);
                    }
                    TraceOp::Alu { op, rd, ra, rb } => {
                        insns += 1;
                        let v = alu_nontrapping(op, self.cpu.get(ra), self.cpu.get(rb));
                        self.cpu.set(rd, v);
                    }
                    TraceOp::CmpOnly { ra, rb } => {
                        insns += 1;
                        let (a, b) = (self.cpu.get(ra), self.cpu.get(rb));
                        self.flags_from_sub(a, b);
                    }
                    TraceOp::CmpIOnly { ra, imm } => {
                        insns += 1;
                        let a = self.cpu.get(ra);
                        self.flags_from_sub(a, imm);
                    }
                    TraceOp::Ld { rd, base, off, at } => {
                        insns += 1;
                        let addr = self.cpu.get(base).wrapping_add(off as u32);
                        match self.mem.load_u32(addr, blocks) {
                            Ok(v) => self.cpu.set(rd, v),
                            Err(f) => {
                                sync!();
                                return Some(self.trace_fault(at, f.addr));
                            }
                        }
                    }
                    TraceOp::St { rb, base, off, at } => {
                        insns += 1;
                        let addr = self.cpu.get(base).wrapping_add(off as u32);
                        let v = self.cpu.get(rb);
                        if let Err(f) = self.mem.store_u32(addr, v, blocks) {
                            sync!();
                            return Some(self.trace_fault(at, f.addr));
                        }
                    }
                    TraceOp::LdG { rd, addr, at } => {
                        insns += 1;
                        match self.mem.load_u32(addr, blocks) {
                            Ok(v) => self.cpu.set(rd, v),
                            Err(f) => {
                                sync!();
                                return Some(self.trace_fault(at, f.addr));
                            }
                        }
                    }
                    TraceOp::StG { rs, addr, at } => {
                        insns += 1;
                        let v = self.cpu.get(rs);
                        if let Err(f) = self.mem.store_u32(addr, v, blocks) {
                            sync!();
                            return Some(self.trace_fault(at, f.addr));
                        }
                    }
                    TraceOp::LdB { rd, base, off, at } => {
                        insns += 1;
                        let addr = self.cpu.get(base).wrapping_add(off as u32);
                        match self.mem.load_u8(addr, blocks) {
                            Ok(v) => self.cpu.set(rd, v as u32),
                            Err(f) => {
                                sync!();
                                return Some(self.trace_fault(at, f.addr));
                            }
                        }
                    }
                    TraceOp::StB { rb, base, off, at } => {
                        insns += 1;
                        let addr = self.cpu.get(base).wrapping_add(off as u32);
                        let v = self.cpu.get(rb) as u8;
                        if let Err(f) = self.mem.store_u8(addr, v, blocks) {
                            sync!();
                            return Some(self.trace_fault(at, f.addr));
                        }
                    }
                    TraceOp::LdAlu {
                        rd,
                        base,
                        off,
                        at,
                        op,
                        ard,
                        ara,
                        arb,
                    } => {
                        insns += 1;
                        let addr = self.cpu.get(base).wrapping_add(off as u32);
                        match self.mem.load_u32(addr, blocks) {
                            Ok(v) => self.cpu.set(rd, v),
                            Err(f) => {
                                sync!();
                                return Some(self.trace_fault(at, f.addr));
                            }
                        }
                        insns += 1;
                        let v = alu_nontrapping(op, self.cpu.get(ara), self.cpu.get(arb));
                        self.cpu.set(ard, v);
                    }
                    TraceOp::Push { rs, at } => {
                        insns += 1;
                        let v = self.cpu.get(rs);
                        if let Err(sig) = self.push(v) {
                            sync!();
                            self.cpu.eip = at;
                            return Some(self.raise(sig));
                        }
                    }
                    TraceOp::Pop { rd, at } => {
                        insns += 1;
                        match self.pop() {
                            Ok(v) => self.cpu.set(rd, v),
                            Err(sig) => {
                                sync!();
                                self.cpu.eip = at;
                                return Some(self.raise(sig));
                            }
                        }
                    }
                    TraceOp::Enter { frame, at } => {
                        insns += 1;
                        let ebp = self.cpu.get(Gpr::Ebp);
                        if let Err(sig) = self.push(ebp) {
                            sync!();
                            self.cpu.eip = at;
                            return Some(self.raise(sig));
                        }
                        let esp = self.cpu.get(Gpr::Esp);
                        self.cpu.set(Gpr::Ebp, esp);
                        self.cpu.set(Gpr::Esp, esp.wrapping_sub(frame));
                    }
                    TraceOp::Leave { at } => {
                        insns += 1;
                        let ebp = self.cpu.get(Gpr::Ebp);
                        self.cpu.set(Gpr::Esp, ebp);
                        match self.pop() {
                            Ok(saved) => self.cpu.set(Gpr::Ebp, saved),
                            Err(sig) => {
                                sync!();
                                self.cpu.eip = at;
                                return Some(self.raise(sig));
                            }
                        }
                    }
                    TraceOp::CmpIJ {
                        ra,
                        imm,
                        cond,
                        target,
                        fall,
                        expect_taken,
                    } => {
                        let a = self.cpu.get(ra);
                        self.flags_from_sub(a, imm);
                        insns += 2;
                        blocks += 1;
                        let taken = self.cond_holds(cond);
                        self.cpu.eip = if taken { target } else { fall };
                        if taken != expect_taken {
                            if i != last {
                                self.exec_stats.trace_side_exits += 1;
                            }
                            sync!();
                            return None;
                        }
                    }
                    TraceOp::CmpJ {
                        ra,
                        rb,
                        cond,
                        target,
                        fall,
                        expect_taken,
                    } => {
                        let (a, b) = (self.cpu.get(ra), self.cpu.get(rb));
                        self.flags_from_sub(a, b);
                        insns += 2;
                        blocks += 1;
                        let taken = self.cond_holds(cond);
                        self.cpu.eip = if taken { target } else { fall };
                        if taken != expect_taken {
                            if i != last {
                                self.exec_stats.trace_side_exits += 1;
                            }
                            sync!();
                            return None;
                        }
                    }
                    TraceOp::Jmp {
                        cond,
                        target,
                        fall,
                        expect_taken,
                    } => {
                        insns += 1;
                        blocks += 1;
                        let taken = self.cond_holds(cond);
                        self.cpu.eip = if taken { target } else { fall };
                        if taken != expect_taken {
                            if i != last {
                                self.exec_stats.trace_side_exits += 1;
                            }
                            sync!();
                            return None;
                        }
                    }
                    TraceOp::JmpU => {
                        insns += 1;
                        blocks += 1;
                    }
                    TraceOp::CallPush { ret, at } => {
                        insns += 1;
                        blocks += 1;
                        if let Err(sig) = self.push(ret) {
                            sync!();
                            self.cpu.eip = at;
                            return Some(self.raise(sig));
                        }
                    }
                    TraceOp::RetTo { expect, at } => {
                        insns += 1;
                        blocks += 1;
                        match self.pop() {
                            Ok(t) => {
                                self.cpu.eip = t;
                                if t != expect {
                                    if i != last {
                                        self.exec_stats.trace_side_exits += 1;
                                    }
                                    sync!();
                                    return None;
                                }
                            }
                            Err(sig) => {
                                sync!();
                                self.cpu.eip = at;
                                return Some(self.raise(sig));
                            }
                        }
                    }
                    TraceOp::Fpu { insn, at } => {
                        insns += 1;
                        if let Err(sig) = self.exec_fpu(insn, at, blocks) {
                            sync!();
                            self.cpu.eip = at;
                            return Some(self.raise(sig));
                        }
                    }
                    TraceOp::Exec {
                        insn,
                        at,
                        next,
                        end,
                    } => {
                        insns += 1;
                        if end {
                            blocks += 1;
                        }
                        sync!();
                        self.cpu.eip = at;
                        match self.exec(insn, at, next) {
                            Ok(None) => {
                                insns = self.counters.insns;
                                blocks = self.counters.blocks;
                            }
                            Ok(Some(exit)) => return Some(exit),
                            Err(sig) => return Some(self.raise(sig)),
                        }
                    }
                    TraceOp::ExecBranch {
                        insn,
                        at,
                        next,
                        expect,
                        end,
                    } => {
                        insns += 1;
                        if end {
                            blocks += 1;
                        }
                        sync!();
                        self.cpu.eip = at;
                        match self.exec(insn, at, next) {
                            Ok(None) => {
                                insns = self.counters.insns;
                                blocks = self.counters.blocks;
                                if self.cpu.eip != expect {
                                    if i != last {
                                        self.exec_stats.trace_side_exits += 1;
                                    }
                                    return None;
                                }
                            }
                            Ok(Some(exit)) => return Some(exit),
                            Err(sig) => return Some(self.raise(sig)),
                        }
                    }
                    TraceOp::FallThrough { to } => self.cpu.eip = to,
                }
            }
            // Loop in-trace only while another full pass fits under the
            // limits; otherwise the dispatcher (or block path) resumes.
            if !(tr.closes_loop
                && self.cpu.eip == tr.entry
                && limit.saturating_sub(insns) >= tr.insn_count)
            {
                sync!();
                return None;
            }
        }
    }

    /// An inline trace op faulted: restore EIP to the faulting
    /// instruction (where the interpreter leaves it) and raise.
    fn trace_fault(&mut self, at: u32, addr: u32) -> Exit {
        self.cpu.eip = at;
        self.raise(Signal::Segv { addr })
    }

    /// Decode the straight-line run starting at `eip`, up to the first
    /// block-ending instruction or a size cap. `None` if even the first
    /// instruction cannot be fetched or decoded.
    fn build_block(&mut self, eip: u32) -> Option<Block> {
        const MAX_BLOCK_INSNS: usize = 64;
        let now = self.counters.blocks;
        let mut insns = Vec::new();
        let mut a = eip;
        while let Ok(words) = self.mem.fetch_words(a, now) {
            let Ok((insn, len)) = decode_at(&words, 0) else {
                break;
            };
            insns.push((insn, len as u8));
            if insn.is_block_end() || insns.len() >= MAX_BLOCK_INSNS {
                break;
            }
            a = a.wrapping_add(4 * len as u32);
        }
        if insns.is_empty() {
            None
        } else {
            Some(Block { insns })
        }
    }

    /// Execute a decoded block starting at `eip`, replicating
    /// [`Machine::step`]'s retire order exactly: budget/quantum check,
    /// counters, then exec. Leaves the block early on any taken branch,
    /// trap or raised signal. `None` means continue at `self.cpu.eip`.
    fn exec_block(&mut self, block: &Block, eip: u32, stop_at: u64) -> Option<Exit> {
        let limit = self.budget.min(stop_at);
        let mut at = eip;
        for &(insn, len) in &block.insns {
            if self.counters.insns >= limit {
                // One folded compare per instruction; disambiguate only
                // at the boundary (budget wins, exactly as the slow
                // path's check order has it).
                return Some(if self.counters.insns >= self.budget {
                    Exit::Budget
                } else {
                    Exit::Quantum
                });
            }
            self.counters.insns += 1;
            if insn.is_block_end() {
                self.counters.blocks += 1;
            }
            let next = at.wrapping_add(4 * len as u32);
            match self.exec(insn, at, next) {
                Ok(None) => {}
                Ok(Some(exit)) => return Some(exit),
                Err(sig) => return Some(self.raise(sig)),
            }
            if self.cpu.eip != next {
                // Taken branch (or a jump landing mid-block): resume
                // dispatch at the new EIP.
                return None;
            }
            at = next;
        }
        None
    }

    /// Execute one instruction. `None` means keep going.
    pub fn step(&mut self) -> Option<Exit> {
        let eip = self.cpu.eip;
        let now = self.counters.blocks;

        // Decode: through the shared pre-decoded store while the bank is
        // pristine, else through the private i-cache (aligned text only).
        let bank = self.code.bank(eip);
        let cached = match (bank.idx(eip), &bank.shared) {
            (Some(i), Some(s)) => s.insns[i],
            (Some(i), None) => bank.icache.as_ref().and_then(|ic| ic.entries[i]),
            (None, _) => None,
        };
        let (insn, len) = match cached {
            Some((insn, len)) => {
                // Protection was checked when the cache entry was built and
                // text is immutable to the program itself, so the fetch
                // only needs repeating when access tracing wants to see it.
                if self.mem.tracing_enabled() {
                    if let Err(f) = self.mem.fetch_words(eip, now) {
                        return Some(self.raise(Signal::Segv { addr: f.addr }));
                    }
                }
                (insn, len as usize)
            }
            None => {
                let words = match self.mem.fetch_words(eip, now) {
                    Ok(w) => w,
                    Err(f) => return Some(self.raise(Signal::Segv { addr: f.addr })),
                };
                match decode_at(&words, 0) {
                    Ok((insn, len)) => {
                        // A shared bank can never miss on a decodable word
                        // (its text is pristine by construction), so an
                        // insert only ever targets the private cache.
                        let bank = self.code.bank_mut(eip);
                        if bank.shared.is_none() {
                            if let Some(i) = bank.idx(eip) {
                                bank.icache_mut().entries[i] = Some((insn, len as u8));
                            }
                        }
                        (insn, len)
                    }
                    Err(_) => return Some(self.raise(Signal::Ill { eip })),
                }
            }
        };

        self.counters.insns += 1;
        if insn.is_block_end() {
            self.counters.blocks += 1;
        }
        let next = eip.wrapping_add(4 * len as u32);
        match self.exec(insn, eip, next) {
            Ok(None) => None,
            Ok(Some(exit)) => Some(exit),
            Err(sig) => Some(self.raise(sig)),
        }
    }

    /// Record and return a fatal signal.
    fn raise(&mut self, sig: Signal) -> Exit {
        let (signal, addr) = match sig {
            Signal::Segv { addr } => (SigKind::Segv, addr),
            Signal::Ill { eip } => (SigKind::Ill, eip),
            Signal::Fpe { eip } => (SigKind::Fpe, eip),
        };
        self.obs.record(
            self.counters.blocks,
            EventKind::SignalRaised { signal, addr },
        );
        Exit::Signal(sig)
    }

    fn exec(&mut self, insn: Insn, eip: u32, next: u32) -> Result<Option<Exit>, Signal> {
        use Insn::*;
        let now = self.counters.blocks;
        let mut jumped = false;
        match insn {
            Nop => {}
            MovI { rd, imm } => self.cpu.set(rd, imm),
            Mov { rd, rs } => {
                let v = self.cpu.get(rs);
                self.cpu.set(rd, v);
            }
            Alu { op, rd, ra, rb } => {
                let a = self.cpu.get(ra);
                let b = self.cpu.get(rb);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div | AluOp::Mod => {
                        let (sa, sb) = (a as i32, b as i32);
                        if sb == 0 || (sa == i32::MIN && sb == -1) {
                            return Err(Signal::Fpe { eip });
                        }
                        if op == AluOp::Div {
                            (sa / sb) as u32
                        } else {
                            (sa % sb) as u32
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Shl => a.wrapping_shl(b & 31),
                    AluOp::Shr => a.wrapping_shr(b & 31),
                    AluOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
                };
                self.cpu.set(rd, v);
            }
            AddI { rd, ra, imm } => {
                let v = self.cpu.get(ra).wrapping_add(imm);
                self.cpu.set(rd, v);
            }
            MulI { rd, ra, imm } => {
                let v = self.cpu.get(ra).wrapping_mul(imm);
                self.cpu.set(rd, v);
            }
            Cmp { ra, rb } => {
                let (a, b) = (self.cpu.get(ra), self.cpu.get(rb));
                self.flags_from_sub(a, b);
            }
            CmpI { ra, imm } => {
                let a = self.cpu.get(ra);
                self.flags_from_sub(a, imm);
            }
            J { cond, target } => {
                if self.cond_holds(cond) {
                    self.cpu.eip = target;
                    jumped = true;
                }
            }
            JmpR { rs } => {
                self.cpu.eip = self.cpu.get(rs);
                jumped = true;
            }
            Ld { rd, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_u32(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.set(rd, v);
            }
            St { rb, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.get(rb);
                self.mem
                    .store_u32(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            LdG { rd, addr } => {
                let v = self
                    .mem
                    .load_u32(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.set(rd, v);
            }
            StG { rs, addr } => {
                let v = self.cpu.get(rs);
                self.mem
                    .store_u32(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            LdB { rd, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_u8(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.set(rd, v as u32);
            }
            StB { rb, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.get(rb) as u8;
                self.mem
                    .store_u8(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            Push { rs } => {
                let v = self.cpu.get(rs);
                self.push(v)?;
            }
            Pop { rd } => {
                let v = self.pop()?;
                self.cpu.set(rd, v);
            }
            Call { target } => {
                self.push(next)?;
                self.cpu.eip = target;
                jumped = true;
            }
            CallR { rs } => {
                let t = self.cpu.get(rs);
                self.push(next)?;
                self.cpu.eip = t;
                jumped = true;
            }
            Ret => {
                let t = self.pop()?;
                self.cpu.eip = t;
                jumped = true;
            }
            Enter { frame } => {
                let ebp = self.cpu.get(Gpr::Ebp);
                self.push(ebp)?;
                let esp = self.cpu.get(Gpr::Esp);
                self.cpu.set(Gpr::Ebp, esp);
                self.cpu.set(Gpr::Esp, esp.wrapping_sub(frame));
            }
            Leave => {
                let ebp = self.cpu.get(Gpr::Ebp);
                self.cpu.set(Gpr::Esp, ebp);
                let saved = self.pop()?;
                self.cpu.set(Gpr::Ebp, saved);
            }
            Sys { num } => {
                // EIP must already point past the SYS so MPI traps resume
                // correctly.
                self.cpu.eip = next;
                return self.exec_sys(num, eip).map(Some).or_else(|e| match e {
                    SysOutcome::Signal(s) => Err(s),
                    SysOutcome::Continue => Ok(None),
                });
            }
            Halt => return Ok(Some(Exit::Halted(self.cpu.get(Gpr::Eax) as i32))),

            // --- FPU: dispatched through `exec_fpu`, which the
            // superblock fast path also calls directly (one source of
            // truth for the op bodies, minus this interpreter frame).
            other => self.exec_fpu(other, eip, now)?,
        }
        if !jumped {
            self.cpu.eip = next;
        }
        Ok(None)
    }

    /// Execute one FPU instruction. Shared verbatim between the
    /// general interpreter and the superblock fast path: `eip` is the
    /// instruction address (for `note_insn` and fault reporting), and
    /// EIP advancement is the caller's business. Inlined so the trace
    /// loop pays one dispatch, not a nested interpreter call.
    #[inline(always)]
    fn exec_fpu(&mut self, insn: Insn, eip: u32, now: u64) -> Result<(), Signal> {
        use Insn::*;
        match insn {
            Fld { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_f64(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.push(F80::from_f64(v));
            }
            FldG { addr } => {
                let v = self
                    .mem
                    .load_f64(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.push(F80::from_f64(v));
            }
            Fst { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.fpu.read_st_f64(0);
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.mem
                    .store_f64(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            Fstp { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.fpu.read_st_f64(0);
                self.mem
                    .store_f64(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.pop();
            }
            FstpG { addr } => {
                let v = self.cpu.fpu.read_st_f64(0);
                self.mem
                    .store_f64(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.pop();
            }
            Fild { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_u32(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.push(F80::from_f64(v as i32 as f64));
            }
            Fistp { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.fpu.read_st_f64(0);
                let iv = f64_to_i32_x87(v);
                self.mem
                    .store_u32(addr, iv as u32, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.pop();
            }
            FildR { rs } => {
                let v = self.cpu.get(rs) as i32 as f64;
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(F80::from_f64(v));
            }
            FistpR { rd } => {
                let v = self.cpu.fpu.read_st_f64(0);
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.set(rd, f64_to_i32_x87(v) as u32);
            }
            Fldz => {
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(F80::ZERO);
            }
            Fld1 => {
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(F80::ONE);
            }
            Fbinp { op } => {
                let b = self.cpu.fpu.read_st_f64(0);
                let a = self.cpu.fpu.read_st_f64(1);
                let v = match op {
                    FpuBinOp::Add => a + b,
                    FpuBinOp::Sub => a - b,
                    FpuBinOp::SubR => b - a,
                    FpuBinOp::Mul => a * b,
                    FpuBinOp::Div => a / b,
                    FpuBinOp::DivR => b / a,
                };
                self.cpu.fpu.write_st(1, F80::from_f64(v));
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
                self.counters.flops += 1;
            }
            Funop { op } => {
                let a = self.cpu.fpu.read_st_f64(0);
                let v = match op {
                    FpuUnOp::Chs => -a,
                    FpuUnOp::Abs => a.abs(),
                    FpuUnOp::Sqrt => a.sqrt(),
                    FpuUnOp::Sin => a.sin(),
                    FpuUnOp::Cos => a.cos(),
                    FpuUnOp::Exp => a.exp(),
                    FpuUnOp::Ln => a.ln(),
                };
                self.cpu.fpu.write_st(0, F80::from_f64(v));
                self.cpu.fpu.note_insn(eip, None);
                self.counters.flops += 1;
            }
            Fxch { i } => {
                self.cpu.fpu.fxch(i);
                self.cpu.fpu.note_insn(eip, None);
            }
            FldSt { i } => {
                let v = self.cpu.fpu.read_st(i);
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(v);
            }
            Fcomip => {
                let a = self.cpu.fpu.read_st_f64(0);
                let b = self.cpu.fpu.read_st_f64(1);
                // x87 FCOMI semantics: unordered sets ZF and CF.
                if a.is_nan() || b.is_nan() {
                    self.set_flag(EFLAGS_ZF, true);
                    self.set_flag(EFLAGS_CF, true);
                } else {
                    self.set_flag(EFLAGS_ZF, a == b);
                    self.set_flag(EFLAGS_CF, a < b);
                }
                self.set_flag(EFLAGS_SF, false);
                self.set_flag(EFLAGS_OF, false);
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
            }
            Fpop => {
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
            }
            other => unreachable!("non-FPU insn {other:?} routed to exec_fpu"),
        }
        Ok(())
    }
    fn exec_sys(&mut self, num: u16, eip: u32) -> Result<Exit, SysOutcome> {
        let call = match Syscall::from_num(num) {
            Some(c) => c,
            // Unknown syscall number (e.g. a corrupted SYS field): the
            // kernel would deliver SIGSYS; we fold it into SIGILL.
            None => return Err(SysOutcome::Signal(Signal::Ill { eip })),
        };
        let eax = self.cpu.get(Gpr::Eax);
        let ecx = self.cpu.get(Gpr::Ecx);
        let now = self.counters.blocks;
        let is_write = matches!(
            call,
            Syscall::PrintStr
                | Syscall::FileWrite
                | Syscall::PrintInt
                | Syscall::PrintFlt
                | Syscall::FileWriteFlt
                | Syscall::FileWriteBin
        );
        if is_write {
            self.counters.io_writes += 1;
        }
        if let Some(f) = self.syscall_fault {
            let hit = match f.kind {
                SyscallFaultKind::Malloc => call == Syscall::Malloc,
                SyscallFaultKind::Write => is_write,
            };
            if hit {
                self.syscall_fault_seen += 1;
                if self.syscall_fault_seen >= f.at_call {
                    if !f.persist {
                        self.syscall_fault = None;
                    }
                    self.syscall_faults_fired += 1;
                    self.obs.record(
                        now,
                        EventKind::FaultFired {
                            at_insns: self.counters.insns,
                        },
                    );
                    return match f.kind {
                        SyscallFaultKind::Malloc => {
                            // Allocation denied: the call is still counted
                            // and recorded, but the arena is untouched and
                            // the program sees NULL.
                            self.counters.mallocs += 1;
                            self.obs
                                .record(now, EventKind::MallocCall { size: ecx, ptr: 0 });
                            self.cpu.set(Gpr::Eax, 0);
                            Err(SysOutcome::Continue)
                        }
                        SyscallFaultKind::Write => {
                            // The write fails after consuming its operands
                            // (the FPU pop still happens, like a kernel
                            // that read the user buffer before erroring)
                            // and nothing reaches the sink; EAX reads -1.
                            if matches!(
                                call,
                                Syscall::PrintFlt | Syscall::FileWriteFlt | Syscall::FileWriteBin
                            ) {
                                self.cpu.fpu.pop();
                            }
                            self.cpu.set(Gpr::Eax, u32::MAX);
                            Err(SysOutcome::Continue)
                        }
                    };
                }
            }
        }
        match call {
            Syscall::Exit => Ok(Exit::Halted(eax as i32)),
            Syscall::PrintStr | Syscall::FileWrite => {
                // Append straight into the sink: no per-call scratch Vec.
                let sink = if call == Syscall::PrintStr {
                    &mut self.console
                } else {
                    &mut self.outfile
                };
                self.mem
                    .load_append(eax, ecx, now, sink)
                    .map_err(|f| SysOutcome::Signal(Signal::Segv { addr: f.addr }))?;
                Err(SysOutcome::Continue)
            }
            Syscall::PrintInt => {
                let s = (eax as i32).to_string();
                self.console.extend_from_slice(s.as_bytes());
                Err(SysOutcome::Continue)
            }
            Syscall::PrintFlt | Syscall::FileWriteFlt => {
                let digits = (ecx as usize).min(17);
                let v = self.cpu.fpu.pop().to_f64();
                let s = format!("{v:.digits$}");
                if call == Syscall::PrintFlt {
                    self.console.extend_from_slice(s.as_bytes());
                } else {
                    self.outfile.extend_from_slice(s.as_bytes());
                }
                Err(SysOutcome::Continue)
            }
            Syscall::FileWriteBin => {
                let v = self.cpu.fpu.pop().to_f64();
                self.outfile.extend_from_slice(&v.to_bits().to_le_bytes());
                Err(SysOutcome::Continue)
            }
            Syscall::Malloc => {
                self.counters.mallocs += 1;
                let tag = if self.in_mpi || self.eip_in_lib(eip) {
                    AllocTag::Mpi
                } else {
                    AllocTag::User
                };
                let ptr = self.heap.alloc(&mut self.mem, ecx, tag).unwrap_or(0);
                self.obs
                    .record(now, EventKind::MallocCall { size: ecx, ptr });
                self.cpu.set(Gpr::Eax, ptr);
                Err(SysOutcome::Continue)
            }
            Syscall::Free => {
                self.obs.record(now, EventKind::FreeCall { ptr: eax });
                match self.heap.free(&mut self.mem, eax) {
                    Ok(()) => Err(SysOutcome::Continue),
                    Err(e) => Ok(Exit::HeapCorruption(e)),
                }
            }
            Syscall::AbortMsg => {
                // Terminal path: one bounded read into a local buffer.
                let mut bytes = Vec::new();
                self.mem
                    .load_append(eax, ecx.min(4096), now, &mut bytes)
                    .map_err(|f| SysOutcome::Signal(Signal::Segv { addr: f.addr }))?;
                Ok(Exit::Abort(String::from_utf8_lossy(&bytes).into_owned()))
            }
            mpi if mpi.is_mpi() => {
                self.counters.mpi_calls += 1;
                self.in_mpi = true;
                self.obs.record(now, EventKind::SyscallTrap { num });
                Ok(Exit::Mpi(mpi))
            }
            _ => unreachable!("non-MPI syscalls all handled above"),
        }
    }

    fn eip_in_lib(&self, eip: u32) -> bool {
        (LIB_BASE..self.lib_text_end).contains(&eip)
    }

    /// Complete an MPI syscall: optionally write a return value to EAX and
    /// clear the in-MPI flag. The machine continues at the instruction
    /// after the trapping `SYS` on the next `run`.
    pub fn mpi_complete(&mut self, ret: Option<u32>) {
        if let Some(v) = ret {
            self.cpu.set(Gpr::Eax, v);
        }
        self.in_mpi = false;
    }

    // --- fault-injection interface (the `ptrace` analogue, §3.1) ---------

    /// Privileged memory write; keeps the decode caches coherent. A
    /// poke landing in a shared text bank demotes it to private caches
    /// (copy-on-poke); private caches invalidate per-word and flush
    /// blocks coarsely, as before (pokes happen at injection rate).
    pub fn poke_mem(&mut self, addr: u32, data: &[u8]) {
        self.mem.poke(addr, data);
        let end = addr.saturating_add(data.len() as u32);
        self.code.app.poke(addr, end, &mut self.exec_stats);
        self.code.lib.poke(addr, end, &mut self.exec_stats);
    }

    /// Flip one bit of memory (privileged).
    pub fn flip_mem_bit(&mut self, addr: u32, bit: u8) {
        let b = self.mem.peek_u8(addr) ^ (1 << (bit & 7));
        self.poke_mem(addr, &[b]);
    }

    /// Force one bit of memory to a value — the stuck-at fault model
    /// (hard errors / long-duration faults, cf. Constantinescu's ASCI Red
    /// study discussed in §8.1 of the paper). Returns true if the byte
    /// changed.
    pub fn set_mem_bit(&mut self, addr: u32, bit: u8, value: bool) -> bool {
        let old = self.mem.peek_u8(addr);
        let mask = 1 << (bit & 7);
        let new = if value { old | mask } else { old & !mask };
        if new != old {
            self.poke_mem(addr, &[new]);
        }
        new != old
    }

    /// Force one bit of a 32-bit register to a value (stuck-at model).
    /// FPU registers re-route through [`Machine::flip_register_bit`]
    /// semantics: the bit is read, and flipped only when it differs.
    pub fn set_register_bit(&mut self, reg: RegisterName, bit: u32, value: bool) {
        let current = match reg {
            RegisterName::Gpr(g) => self.cpu.get(g) >> (bit & 31) & 1 == 1,
            RegisterName::Eip => self.cpu.eip >> (bit & 31) & 1 == 1,
            RegisterName::Eflags => self.cpu.eflags >> (bit & 31) & 1 == 1,
            RegisterName::St(i) => {
                let (m, se) = self.cpu.fpu.regs[(i & 7) as usize].to_bits();
                let b = bit % 80;
                if b < 64 {
                    m >> b & 1 == 1
                } else {
                    se >> (b - 64) & 1 == 1
                }
            }
            RegisterName::FpuSpecial(s) => {
                let f = &self.cpu.fpu;
                let v: u32 = match s {
                    fl_isa::FpuSpecial::Cwd => f.cwd as u32,
                    fl_isa::FpuSpecial::Swd => f.swd as u32,
                    fl_isa::FpuSpecial::Twd => f.twd as u32,
                    fl_isa::FpuSpecial::Fip => f.fip,
                    fl_isa::FpuSpecial::Fcs => f.fcs as u32,
                    fl_isa::FpuSpecial::Foo => f.foo,
                    fl_isa::FpuSpecial::Fos => f.fos as u32,
                };
                v >> (bit % reg.width_bits()) & 1 == 1
            }
        };
        if current != value {
            self.flip_register_bit(reg, bit);
        }
    }

    /// Flip one bit of a register — the register fault model of §3.2.
    ///
    /// FPU data registers are addressed *physically* (a particle strike
    /// hits a cell, not a stack slot) and the tag word is deliberately NOT
    /// updated: the upset changes the bits behind the FPU's back.
    pub fn flip_register_bit(&mut self, reg: RegisterName, bit: u32) {
        match reg {
            RegisterName::Gpr(g) => {
                let v = self.cpu.get(g) ^ (1 << (bit & 31));
                self.cpu.set(g, v);
            }
            RegisterName::Eip => self.cpu.eip ^= 1 << (bit & 31),
            RegisterName::Eflags => self.cpu.eflags ^= 1 << (bit & 31),
            RegisterName::St(i) => {
                let p = (i & 7) as usize;
                self.cpu.fpu.regs[p] = self.cpu.fpu.regs[p].flip_bit(bit % 80);
            }
            RegisterName::FpuSpecial(s) => {
                use crate::fpu::Fpu;
                let f: &mut Fpu = &mut self.cpu.fpu;
                match s {
                    fl_isa::FpuSpecial::Cwd => f.cwd ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Swd => f.swd ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Twd => f.twd ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Fip => f.fip ^= 1 << (bit & 31),
                    fl_isa::FpuSpecial::Fcs => f.fcs ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Foo => f.foo ^= 1 << (bit & 31),
                    fl_isa::FpuSpecial::Fos => f.fos ^= 1 << (bit & 15),
                }
            }
        }
    }

    /// Console contents as UTF-8 (lossy).
    pub fn console_text(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    // --- snapshots --------------------------------------------------------

    /// Capture the complete architectural state of the process: CPU
    /// (GPRs, EFLAGS, EIP, full FPU), memory (COW page table + region
    /// map), malloc-runtime records, console/output buffers, counters
    /// and budget. Decoded code is *not* architectural state — the
    /// snapshot only carries the shared-store handles (if the banks are
    /// still pristine) so forks start with warm caches; demoted banks
    /// hand their forks cold private caches that refill lazily.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            cpu: self.cpu.clone(),
            mem: self.mem.snapshot(),
            heap: self.heap.clone(),
            console: self.console.clone(),
            outfile: self.outfile.clone(),
            in_mpi: self.in_mpi,
            counters: self.counters,
            obs: self.obs.clone(),
            budget: self.budget,
            text_end: self.text_end,
            lib_text_end: self.lib_text_end,
            code: CodeHandle {
                app: self.code.app.shared.clone(),
                lib: self.code.lib.shared.clone(),
            },
            min_esp: self.min_esp,
            syscall_fault: self.syscall_fault,
            syscall_fault_seen: self.syscall_fault_seen,
            syscall_faults_fired: self.syscall_faults_fired,
            mem_stall: self.mem_stall,
            stall_insns: self.stall_insns,
        }
    }
}

/// The shared-store handles a [`MachineSnapshot`] carries so forked
/// machines start with warm decoded caches. A pure performance
/// artifact: `PartialEq` ignores it entirely — two snapshots are
/// architecturally equal whether their forks will run warm or cold —
/// mirroring how `MemorySnapshot` equality ignores the fastpath flag.
#[derive(Clone, Default)]
pub struct CodeHandle {
    app: Option<Arc<SharedBank>>,
    lib: Option<Arc<SharedBank>>,
}

impl PartialEq for CodeHandle {
    fn eq(&self, _: &CodeHandle) -> bool {
        true
    }
}

impl std::fmt::Debug for CodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodeHandle")
            .field("app_warm", &self.app.is_some())
            .field("lib_warm", &self.lib.is_some())
            .finish()
    }
}

/// A captured [`Machine`] state. Equality is *architectural*: two
/// snapshots compare equal iff every register, every mapped byte, the
/// allocator records, the I/O buffers and the counters agree — which is
/// the invariant the snapshot property tests enforce between forked and
/// cold runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    pub cpu: Cpu,
    pub mem: MemorySnapshot,
    pub heap: HeapAllocator,
    pub console: Vec<u8>,
    pub outfile: Vec<u8>,
    pub in_mpi: bool,
    pub counters: Counters,
    pub obs: EventLog,
    pub budget: u64,
    pub text_end: u32,
    pub lib_text_end: u32,
    /// Shared decoded-code handles (warm-cache fork); compares equal
    /// regardless of warmth.
    pub code: CodeHandle,
    pub min_esp: u32,
    pub syscall_fault: Option<SyscallFault>,
    pub syscall_fault_seen: u64,
    pub syscall_faults_fired: u64,
    pub mem_stall: Option<MemStall>,
    pub stall_insns: u64,
}

impl MachineSnapshot {
    /// Materialise a runnable [`Machine`] from this snapshot. Memory
    /// pages are shared copy-on-write with the snapshot (and with every
    /// other machine forked from it); decoded code reattaches warm from
    /// the shared store when the snapshot carries the handles, else the
    /// private caches start cold and refill on execution.
    pub fn to_machine(&self) -> Machine {
        let text_len = (self.text_end - TEXT_BASE).max(4);
        let lib_text_len = (self.lib_text_end - LIB_BASE).max(4);
        let bank = |base: u32, len: u32, shared: &Option<Arc<SharedBank>>| match shared {
            Some(s) => CacheBank::warm(base, len, s.clone()),
            None => CacheBank::cold(base, len),
        };
        Machine {
            cpu: self.cpu.clone(),
            mem: self.mem.to_memory(),
            heap: self.heap.clone(),
            console: self.console.clone(),
            outfile: self.outfile.clone(),
            in_mpi: self.in_mpi,
            counters: self.counters,
            obs: self.obs.clone(),
            exec_stats: ExecStats::default(),
            budget: self.budget,
            text_end: self.text_end,
            lib_text_end: self.lib_text_end,
            code: CodeCache {
                app: bank(TEXT_BASE, text_len, &self.code.app),
                lib: bank(LIB_BASE, lib_text_len, &self.code.lib),
            },
            min_esp: self.min_esp,
            syscall_fault: self.syscall_fault,
            syscall_fault_seen: self.syscall_fault_seen,
            syscall_faults_fired: self.syscall_faults_fired,
            mem_stall: self.mem_stall,
            stall_insns: self.stall_insns,
        }
    }
}

enum SysOutcome {
    Signal(Signal),
    Continue,
}

/// x87 FIST conversion: round to nearest even; out-of-range and NaN yield
/// the "integer indefinite" value 0x80000000.
fn f64_to_i32_x87(v: f64) -> i32 {
    if v.is_nan() || !(-2147483648.0..=2147483647.0).contains(&v) {
        return i32::MIN;
    }
    let r = v.round_ties_even();
    if !(-2147483648.0..=2147483647.0).contains(&r) {
        i32::MIN
    } else {
        r as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::KERNEL_BASE;
    use fl_isa::encode;

    /// Assemble a program image from instructions placed at TEXT_BASE.
    fn image(insns: &[Insn]) -> ProgramImage {
        let mut text = Vec::new();
        for i in insns {
            text.extend(encode(i).to_bytes());
        }
        ProgramImage {
            text,
            data: vec![0u8; 64],
            bss_size: 64,
            lib_text: encode(&Insn::Ret).to_bytes(),
            lib_data: Vec::new(),
            entry: TEXT_BASE,
            symbols: Vec::new(),
            heap_reserve: 4096,
        }
    }

    fn run_insns(insns: &[Insn]) -> (Machine, Exit) {
        let img = image(insns);
        let mut m = Machine::load(&img, MachineConfig::default());
        let e = m.run(100_000);
        (m, e)
    }

    #[test]
    fn arithmetic_and_halt() {
        use Gpr::*;
        let (m, e) = run_insns(&[
            Insn::MovI { rd: Eax, imm: 20 },
            Insn::MovI { rd: Ebx, imm: 22 },
            Insn::Alu {
                op: AluOp::Add,
                rd: Eax,
                ra: Eax,
                rb: Ebx,
            },
            Insn::Halt,
        ]);
        assert_eq!(e, Exit::Halted(42));
        assert_eq!(m.counters.insns, 4);
        assert_eq!(m.counters.blocks, 1); // only Halt ends a block
    }

    #[test]
    fn division_by_zero_sigfpe() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI { rd: Eax, imm: 7 },
            Insn::MovI { rd: Ebx, imm: 0 },
            Insn::Alu {
                op: AluOp::Div,
                rd: Eax,
                ra: Eax,
                rb: Ebx,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Signal(Signal::Fpe { .. })));
    }

    #[test]
    fn int_min_div_minus_one_sigfpe() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: 0x8000_0000,
            },
            Insn::MovI {
                rd: Ebx,
                imm: (-1i32) as u32,
            },
            Insn::Alu {
                op: AluOp::Div,
                rd: Eax,
                ra: Eax,
                rb: Ebx,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Signal(Signal::Fpe { .. })));
    }

    #[test]
    fn wild_load_sigsegv() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: 0x1234,
            },
            Insn::Ld {
                rd: Ebx,
                base: Eax,
                off: 0,
            },
            Insn::Halt,
        ]);
        assert_eq!(e, Exit::Signal(Signal::Segv { addr: 0x1234 }));
    }

    #[test]
    fn kernel_space_access_sigsegv() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: KERNEL_BASE,
            },
            Insn::Ld {
                rd: Ebx,
                base: Eax,
                off: 16,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Signal(Signal::Segv { .. })));
    }

    #[test]
    fn illegal_opcode_sigill() {
        let img = {
            let mut i = image(&[Insn::Nop]);
            i.text = vec![0u8; 8]; // opcode 0 is undefined
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        assert!(matches!(m.run(10), Exit::Signal(Signal::Ill { .. })));
    }

    #[test]
    fn loops_and_branches() {
        use Gpr::*;
        // sum 1..=10 in EBX
        let loop_start = TEXT_BASE + 8 + 8; // after two MovI (2 words each)
        let (m, e) = run_insns(&[
            Insn::MovI { rd: Ecx, imm: 1 },
            Insn::MovI { rd: Ebx, imm: 0 },
            // loop:
            Insn::Alu {
                op: AluOp::Add,
                rd: Ebx,
                ra: Ebx,
                rb: Ecx,
            },
            Insn::AddI {
                rd: Ecx,
                ra: Ecx,
                imm: 1,
            },
            Insn::CmpI { ra: Ecx, imm: 10 },
            Insn::J {
                cond: Cond::Le,
                target: loop_start,
            },
            Insn::Mov { rd: Eax, rs: Ebx },
            Insn::Halt,
        ]);
        assert_eq!(e, Exit::Halted(55));
        assert!(m.counters.blocks >= 10);
    }

    #[test]
    fn call_ret_and_frames() {
        use Gpr::*;
        // main: call f; halt.  f: enter 8; mov eax, 99; leave; ret
        // Layout: call (2w) halt (1w) -> f at TEXT_BASE+12
        let f_addr = TEXT_BASE + 12;
        let (m, e) = run_insns(&[
            Insn::Call { target: f_addr },
            Insn::Halt,
            Insn::Enter { frame: 8 },
            Insn::MovI { rd: Eax, imm: 99 },
            Insn::Leave,
            Insn::Ret,
        ]);
        assert_eq!(e, Exit::Halted(99));
        assert_eq!(m.cpu.get(Esp), STACK_TOP - 16); // balanced
    }

    #[test]
    fn fpu_computation() {
        use Gpr::*;
        // Compute sqrt(2.0 * 8.0) = 4.0 and print it.
        let data_base = image(&[Insn::Nop; 12]).data_base();
        let img = {
            let mut i = image(&[
                Insn::FldG { addr: data_base },
                Insn::FldG {
                    addr: data_base + 8,
                },
                Insn::Fbinp { op: FpuBinOp::Mul },
                Insn::Funop { op: FpuUnOp::Sqrt },
                Insn::MovI { rd: Ecx, imm: 3 },
                Insn::Sys {
                    num: Syscall::PrintFlt as u16,
                },
                Insn::MovI { rd: Eax, imm: 0 },
                Insn::Sys {
                    num: Syscall::Exit as u16,
                },
            ]);
            i.data[..8].copy_from_slice(&2.0f64.to_le_bytes());
            i.data[8..16].copy_from_slice(&8.0f64.to_le_bytes());
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        let e = m.run(1000);
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "4.000");
        assert_eq!(m.counters.flops, 2);
    }

    #[test]
    fn malloc_free_via_syscalls() {
        use Gpr::*;
        let (m, e) = run_insns(&[
            Insn::MovI { rd: Ecx, imm: 128 },
            Insn::Sys {
                num: Syscall::Malloc as u16,
            },
            Insn::Mov { rd: Esi, rs: Eax },
            // store through the pointer
            Insn::MovI { rd: Ebx, imm: 7 },
            Insn::St {
                rb: Ebx,
                base: Esi,
                off: 0,
            },
            Insn::Mov { rd: Eax, rs: Esi },
            Insn::Sys {
                num: Syscall::Free as u16,
            },
            Insn::Ld {
                rd: Eax,
                base: Esi,
                off: 0,
            }, // use-after-free reads ok (no poison)
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Halted(_)));
        assert_eq!(m.counters.mallocs, 1);
        assert_eq!(m.heap.live_chunks().len(), 0);
    }

    #[test]
    fn syscall_fault_denies_malloc() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 128 },
            Insn::Sys {
                num: Syscall::Malloc as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Malloc,
            at_call: 1,
            persist: false,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.cpu.get(Eax), 0, "denied malloc returns NULL");
        assert_eq!(m.counters.mallocs, 1, "the call is still counted");
        assert_eq!(m.syscall_faults_fired(), 1);
        assert!(m.heap.live_chunks().is_empty(), "nothing was allocated");
    }

    #[test]
    fn syscall_fault_fails_the_drawn_write_only() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 42 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::MovI { rd: Eax, imm: 43 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Write,
            at_call: 1,
            persist: false,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.console_text(), "43", "only the drawn write fails");
        assert_eq!(m.counters.io_writes, 2, "both calls are counted");
        assert_eq!(m.syscall_faults_fired(), 1);
    }

    #[test]
    fn persistent_write_fault_suppresses_everything_after() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 1 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::MovI { rd: Eax, imm: 2 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::MovI { rd: Eax, imm: 3 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Write,
            at_call: 2,
            persist: true,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.console_text(), "1", "writes 2 and 3 both fail");
        assert_eq!(m.syscall_faults_fired(), 2);
    }

    #[test]
    fn failed_float_write_still_pops_the_fpu() {
        use Gpr::*;
        // Push 2.0 then 3.0; the first (failed) print must consume 3.0
        // so the second prints 2.0 — a fault may deny the write, never
        // desynchronize the FPU stack.
        let data_base = image(&[Insn::Nop; 8]).data_base();
        let img = {
            let mut i = image(&[
                Insn::FldG { addr: data_base },
                Insn::FldG {
                    addr: data_base + 8,
                },
                Insn::MovI { rd: Ecx, imm: 1 },
                Insn::Sys {
                    num: Syscall::PrintFlt as u16,
                },
                Insn::MovI { rd: Ecx, imm: 1 },
                Insn::Sys {
                    num: Syscall::PrintFlt as u16,
                },
                Insn::Halt,
            ]);
            i.data[..8].copy_from_slice(&2.0f64.to_le_bytes());
            i.data[8..16].copy_from_slice(&3.0f64.to_le_bytes());
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Write,
            at_call: 1,
            persist: false,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.console_text(), "2.0");
    }

    #[test]
    fn syscall_fault_rides_snapshots() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 64 },
            Insn::Sys {
                num: Syscall::Malloc as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Malloc,
            at_call: 1,
            persist: false,
        });
        let snap = m.snapshot();
        let mut r = snap.to_machine();
        assert!(matches!(r.run(100), Exit::Halted(_)));
        assert_eq!(r.cpu.get(Eax), 0, "the restored machine replays the denial");
        assert_eq!(r.syscall_faults_fired(), 1);
    }

    #[test]
    fn corrupted_free_crashes_like_glibc() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: 0x0b00_0000,
            },
            Insn::Sys {
                num: Syscall::Free as u16,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::HeapCorruption(_)));
    }

    #[test]
    fn abort_msg_is_app_detected() {
        use Gpr::*;
        let data_base = image(&[Insn::Nop]).data_base();
        let img = {
            let mut i = image(&[
                Insn::MovI {
                    rd: Eax,
                    imm: data_base,
                },
                Insn::MovI { rd: Ecx, imm: 9 },
                Insn::Sys {
                    num: Syscall::AbortMsg as u16,
                },
                Insn::Halt,
            ]);
            i.data[..9].copy_from_slice(b"NaN check");
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        assert_eq!(m.run(100), Exit::Abort("NaN check".into()));
    }

    #[test]
    fn mpi_syscall_traps_and_resumes() {
        use Gpr::*;
        let (mut m, e) = {
            let img = image(&[
                Insn::Sys {
                    num: Syscall::MpiCommRank as u16,
                },
                Insn::Mov { rd: Ebx, rs: Eax },
                Insn::Halt,
            ]);
            let mut m = Machine::load(&img, MachineConfig::default());
            let e = m.run(100);
            (m, e)
        };
        assert_eq!(e, Exit::Mpi(Syscall::MpiCommRank));
        assert!(m.in_mpi);
        m.mpi_complete(Some(3));
        assert!(!m.in_mpi);
        assert_eq!(m.run(100), Exit::Halted(3));
        assert_eq!(m.cpu.get(Ebx), 3);
    }

    #[test]
    fn budget_exhaustion_reports_hang() {
        // Infinite loop.
        let img = image(&[Insn::J {
            cond: Cond::Always,
            target: TEXT_BASE,
        }]);
        let mut m = Machine::load(
            &img,
            MachineConfig {
                budget: 5000,
                ..Default::default()
            },
        );
        assert_eq!(m.run(u64::MAX), Exit::Budget);
        assert_eq!(m.counters.insns, 5000);
    }

    #[test]
    fn quantum_preemption_preserves_state() {
        use Gpr::*;
        let loop_start = TEXT_BASE + 8;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 0 },
            Insn::AddI {
                rd: Ecx,
                ra: Ecx,
                imm: 1,
            },
            Insn::CmpI { ra: Ecx, imm: 100 },
            Insn::J {
                cond: Cond::Lt,
                target: loop_start,
            },
            Insn::Mov { rd: Eax, rs: Ecx },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        let mut quanta = 0;
        loop {
            match m.run(7) {
                Exit::Quantum => quanta += 1,
                Exit::Halted(v) => {
                    assert_eq!(v, 100);
                    break;
                }
                other => panic!("unexpected exit {other:?}"),
            }
        }
        assert!(quanta > 10);
    }

    #[test]
    fn text_bit_flip_through_poke_changes_execution() {
        use Gpr::*;
        let img = image(&[Insn::MovI { rd: Eax, imm: 5 }, Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        // Run once partially to warm the i-cache, then rewind.
        assert!(matches!(m.run(100), Exit::Halted(5)));

        let mut m = Machine::load(&img, MachineConfig::default());
        // Flip a bit in the immediate word of MovI (word 1, bit 1): 5 -> 7.
        m.flip_mem_bit(TEXT_BASE + 4, 1);
        assert!(matches!(m.run(100), Exit::Halted(7)));
    }

    #[test]
    fn icache_invalidation_after_poke() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 5 },
            Insn::J {
                cond: Cond::Always,
                target: TEXT_BASE + 12,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        // Execute the MovI once (warming the cache) via single steps.
        assert!(m.step().is_none());
        // Now corrupt the MovI opcode to an illegal value and jump back.
        m.poke_mem(TEXT_BASE, &[0x00]);
        m.cpu.eip = TEXT_BASE;
        assert!(matches!(m.run(10), Exit::Signal(Signal::Ill { .. })));
    }

    #[test]
    fn block_cache_invalidation_after_poke() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 5 },
            Insn::J {
                cond: Cond::Always,
                target: TEXT_BASE,
            },
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        // Warm the block cache through the fast path (one quantum spins
        // the MovI+J loop several times).
        assert_eq!(m.run(10), Exit::Quantum);
        // Corrupt the MovI opcode; the next dispatch of the cached block
        // must see the poke and raise SIGILL at the corrupted address.
        m.poke_mem(TEXT_BASE, &[0x00]);
        m.cpu.eip = TEXT_BASE;
        assert!(matches!(
            m.run(10),
            Exit::Signal(Signal::Ill { eip }) if eip == TEXT_BASE
        ));
    }

    #[test]
    fn fastpath_and_slowpath_agree_on_final_state() {
        use Gpr::*;
        let loop_start = TEXT_BASE + 8;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 0 },
            Insn::AddI {
                rd: Ecx,
                ra: Ecx,
                imm: 1,
            },
            Insn::CmpI { ra: Ecx, imm: 250 },
            Insn::J {
                cond: Cond::Lt,
                target: loop_start,
            },
            Insn::Mov { rd: Eax, rs: Ecx },
            Insn::Halt,
        ]);
        let mut fast = Machine::load(&img, MachineConfig::default());
        let mut slow = Machine::load(
            &img,
            MachineConfig {
                fastpath: false,
                ..Default::default()
            },
        );
        // Drive both in identical awkward quanta so block boundaries and
        // quantum stops interleave.
        loop {
            let (a, b) = (fast.run(7), slow.run(7));
            assert_eq!(a, b);
            assert_eq!(fast.counters, slow.counters);
            if a != Exit::Quantum {
                break;
            }
        }
        assert_eq!(fast.snapshot(), slow.snapshot());
    }

    #[test]
    fn register_flip_gpr() {
        use Gpr::*;
        let img = image(&[Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.cpu.set(Eax, 0b100);
        m.flip_register_bit(RegisterName::Gpr(Eax), 0);
        assert_eq!(m.cpu.get(Eax), 0b101);
        m.flip_register_bit(RegisterName::Eip, 31);
        assert_eq!(m.cpu.eip, TEXT_BASE ^ (1 << 31));
    }

    #[test]
    fn register_flip_fpu_does_not_update_tag() {
        let img = image(&[Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.cpu.fpu.push(F80::from_f64(1.0));
        let p = m.cpu.fpu.phys(0) as u8;
        let tag_before = m.cpu.fpu.tag(p as usize);
        // Flip the integer bit: value becomes an unnormal, but the tag
        // still says "valid" — the upset happened behind the FPU's back.
        m.flip_register_bit(RegisterName::St(p), 63);
        assert_eq!(m.cpu.fpu.tag(p as usize), tag_before);
        assert!(m.cpu.fpu.read_st(0).classify() == crate::f80::F80Class::Special);
    }

    #[test]
    fn fist_conversion_edge_cases() {
        assert_eq!(f64_to_i32_x87(1.5), 2); // ties to even
        assert_eq!(f64_to_i32_x87(2.5), 2);
        assert_eq!(f64_to_i32_x87(-1.5), -2);
        assert_eq!(f64_to_i32_x87(f64::NAN), i32::MIN);
        assert_eq!(f64_to_i32_x87(1e300), i32::MIN);
        assert_eq!(f64_to_i32_x87(-1e300), i32::MIN);
    }

    #[test]
    fn eip_flip_usually_crashes() {
        // The classic register-injection outcome: a flipped EIP lands
        // outside any mapping and faults.
        let img = image(&[Insn::Nop, Insn::Nop, Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.flip_register_bit(RegisterName::Eip, 30);
        assert!(matches!(m.run(10), Exit::Signal(Signal::Segv { .. })));
    }
}
