//! The FaultLab virtual machine: CPU state, the execution loop, syscall
//! dispatch, and the privileged access the fault injector uses.
//!
//! One `Machine` models one MPI process — a Linux IA-32 process in the
//! paper. Faults propagate mechanically: a corrupted pointer faults the
//! protection check (SIGSEGV), a corrupted opcode fails the decoder
//! (SIGILL), a corrupted divisor traps (SIGFPE), a corrupted loop counter
//! burns the instruction budget (hang), and corrupted data flows silently
//! into output (incorrect output). These are precisely the manifestation
//! classes of §5.1.

use crate::fpu::Fpu;
use crate::image::ProgramImage;
use crate::layout::{Mapping, Perms, Region, DEFAULT_STACK_SIZE, LIB_BASE, STACK_TOP, TEXT_BASE};
use crate::malloc::{AllocTag, HeapAllocator, HeapError};
use crate::mem::{Memory, MemorySnapshot};
use crate::AddressSpaceMap;
use fl_isa::insn::{AluOp, FpuBinOp, FpuUnOp};
use fl_isa::{decode_at, Cond, Gpr, Insn, RegisterName, Syscall};
use fl_isa::{EFLAGS_CF, EFLAGS_OF, EFLAGS_SF, EFLAGS_ZF};
use fl_obs::{EventKind, EventLog, SigKind};

use crate::f80::F80;

/// CPU register state (the paper's register fault targets).
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    /// The eight general-purpose registers, indexed by [`Gpr`].
    pub gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Flags register.
    pub eflags: u32,
    /// x87 FPU state.
    pub fpu: Fpu,
}

impl Cpu {
    fn new(entry: u32, esp: u32) -> Self {
        let mut gpr = [0u32; 8];
        gpr[Gpr::Esp as usize] = esp;
        gpr[Gpr::Ebp as usize] = 0; // frame-chain terminator
        Cpu {
            gpr,
            eip: entry,
            eflags: 0,
            fpu: Fpu::new(),
        }
    }

    /// Read a GPR.
    pub fn get(&self, r: Gpr) -> u32 {
        self.gpr[r as usize]
    }

    /// Write a GPR.
    pub fn set(&mut self, r: Gpr, v: u32) {
        self.gpr[r as usize] = v;
    }
}

/// Fatal signals, named after their POSIX counterparts. MPICH handles all
/// of these and aborts the whole application (§5.1, "Crash").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Invalid memory reference.
    Segv { addr: u32 },
    /// Illegal instruction.
    Ill { eip: u32 },
    /// Arithmetic fault (integer divide by zero / overflow).
    Fpe { eip: u32 },
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Signal::Segv { addr } => write!(f, "SIGSEGV at address {addr:#010x}"),
            Signal::Ill { eip } => write!(f, "SIGILL at eip {eip:#010x}"),
            Signal::Fpe { eip } => write!(f, "SIGFPE at eip {eip:#010x}"),
        }
    }
}

/// Why the execution loop returned.
#[derive(Debug, Clone, PartialEq)]
pub enum Exit {
    /// Clean termination with an exit status.
    Halted(i32),
    /// Abnormal termination by signal.
    Signal(Signal),
    /// The application aborted itself after a failed internal check
    /// ("Application Detected", §5.1).
    Abort(String),
    /// The allocator detected heap corruption or an invalid free —
    /// glibc-style abort, classified as a crash.
    HeapCorruption(HeapError),
    /// The process issued an MPI syscall and is parked until the MPI
    /// layer completes it (number identifies the call; arguments are in
    /// the registers).
    Mpi(Syscall),
    /// The per-call instruction quantum expired (cooperative scheduling).
    Quantum,
    /// The total instruction budget was exhausted — the deterministic
    /// analogue of the paper's "one minute past expected completion"
    /// hang rule.
    Budget,
}

/// Execution statistics, including the progress metrics §7 proposes for
/// hang detection (FLOP and message-call rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions retired.
    pub insns: u64,
    /// Basic blocks retired (control transfers) — the time axis of the
    /// paper's working-set plots.
    pub blocks: u64,
    /// Floating-point operations retired.
    pub flops: u64,
    /// `malloc` calls served.
    pub mallocs: u64,
    /// MPI syscalls issued.
    pub mpi_calls: u64,
    /// Output syscalls issued (console/file write family) — the draw
    /// denominator for fl-chaos write-failure injection.
    pub io_writes: u64,
}

/// Which syscall family a [`SyscallFault`] fails (fl-chaos' OS-level
/// failure model — the SystemTap-style "make the kernel say no").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallFaultKind {
    /// `malloc` returns NULL (allocation denied).
    Malloc,
    /// An output syscall fails: nothing reaches the console or output
    /// file and EAX reads back -1, like a full disk or a closed fd.
    Write,
}

/// An armed OS-level failure: the `at_call`-th matching syscall issued
/// after arming fails instead of being serviced. `Copy`, carried by
/// [`MachineSnapshot`]s — restoring a pre-fire checkpoint re-arms it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallFault {
    /// Which family of syscalls fails.
    pub kind: SyscallFaultKind,
    /// 1-based index (among matching calls, counted from arming) of the
    /// call that fails.
    pub at_call: u64,
    /// True: every subsequent matching call fails too (a resource gone
    /// for good). False: one-shot (a transient EINTR-style denial).
    pub persist: bool,
}

/// Configuration for machine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Stack reservation in bytes.
    pub stack_size: u32,
    /// Hard cap on heap growth in bytes.
    pub heap_limit: u32,
    /// Total instruction budget; `u64::MAX` means unlimited.
    pub budget: u64,
    /// Trace text/data accesses for working-set analysis (slower).
    pub trace: bool,
    /// Per-rank structured-event ring capacity; 0 disables recording
    /// (the default — recording then costs one branch per hook).
    pub obs_capacity: u32,
    /// Execution fast path: software TLB + basic-block dispatch. On by
    /// default; turn off for the fully-checked per-instruction baseline
    /// (bit-identical behaviour, several times slower).
    pub fastpath: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            stack_size: DEFAULT_STACK_SIZE,
            heap_limit: 64 << 20,
            budget: u64::MAX,
            trace: false,
            obs_capacity: 0,
            fastpath: true,
        }
    }
}

struct ICache {
    base: u32,
    entries: Vec<Option<(Insn, u8)>>,
}

impl ICache {
    fn new(base: u32, len: u32) -> Self {
        ICache {
            base,
            entries: vec![None; (len as usize).div_ceil(4)],
        }
    }

    fn idx(&self, addr: u32) -> Option<usize> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.base) / 4) as usize;
        (i < self.entries.len()).then_some(i)
    }

    fn invalidate(&mut self, addr: u32) {
        // A poke at `addr` can change the instruction starting there or
        // the immediate word of the instruction one word earlier.
        if let Some(i) = self.idx(addr & !3) {
            self.entries[i] = None;
            if i > 0 {
                self.entries[i - 1] = None;
            }
        }
    }
}

/// A decoded basic block: the straight-line instruction run starting at
/// some text address, ending at the first block-ending instruction (or
/// a size cap). Instructions are stored as `(insn, words)` exactly as
/// the per-instruction icache stores them.
struct Block {
    insns: Vec<(Insn, u8)>,
}

/// Basic-block cache, indexed like [`ICache`] by entry word. Blocks are
/// built lazily by [`Machine::run`]'s fast path and flushed wholesale on
/// any text poke (pokes happen at injection rate, so coarse-grained
/// invalidation costs nothing measurable); `generation` detects a flush
/// that lands while a block is checked out for execution.
struct BlockCache {
    base: u32,
    slots: Vec<Option<Block>>,
    generation: u64,
}

impl BlockCache {
    fn new(base: u32, len: u32) -> Self {
        BlockCache {
            base,
            slots: (0..(len as usize).div_ceil(4)).map(|_| None).collect(),
            generation: 0,
        }
    }

    fn idx(&self, addr: u32) -> Option<usize> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.base) / 4) as usize;
        (i < self.slots.len()).then_some(i)
    }

    fn flush(&mut self) {
        self.generation += 1;
        for s in &mut self.slots {
            *s = None;
        }
    }
}

/// One simulated MPI process.
pub struct Machine {
    /// CPU registers.
    pub cpu: Cpu,
    /// The process address space.
    pub mem: Memory,
    /// The malloc arena.
    pub heap: HeapAllocator,
    /// Console (stdout) bytes.
    pub console: Vec<u8>,
    /// Output-file bytes (rank 0 writes results here).
    pub outfile: Vec<u8>,
    /// True while servicing an MPI call — drives heap-chunk tagging
    /// (§3.2's "at entry to an MPI routine, a flag is set").
    pub in_mpi: bool,
    /// Execution statistics.
    pub counters: Counters,
    /// Structured-event ring buffer ([`fl_obs`]). Part of the
    /// architectural state: snapshots carry it, so a forked trial
    /// replays the identical event stream a cold run produces.
    pub obs: EventLog,
    budget: u64,
    text_end: u32,
    lib_text_end: u32,
    icache_app: ICache,
    icache_lib: ICache,
    bcache_app: BlockCache,
    bcache_lib: BlockCache,
    /// Lowest ESP observed on a push — measures peak stack depth for the
    /// Table 1 profile ("the stack size varied between 5-10 KB").
    min_esp: u32,
    /// fl-chaos: armed OS-level syscall failure.
    syscall_fault: Option<SyscallFault>,
    /// Matching syscalls seen since the fault was armed.
    syscall_fault_seen: u64,
    /// Syscall failures applied so far (0 = armed fault never fired).
    syscall_faults_fired: u64,
}

impl Machine {
    /// Load a program image.
    pub fn load(image: &ProgramImage, cfg: MachineConfig) -> Machine {
        let mut map = AddressSpaceMap::new();
        let text_len = image.text.len() as u32;
        map.add(Mapping {
            start: TEXT_BASE,
            end: TEXT_BASE + text_len.max(4),
            region: Region::Text,
            perms: Perms::RX,
        });
        let data_base = image.data_base();
        if !image.data.is_empty() {
            map.add(Mapping {
                start: data_base,
                end: data_base + image.data.len() as u32,
                region: Region::Data,
                perms: Perms::RW,
            });
        }
        let bss_base = image.bss_base();
        if image.bss_size > 0 {
            map.add(Mapping {
                start: bss_base,
                end: bss_base + image.bss_size,
                region: Region::Bss,
                perms: Perms::RW,
            });
        }
        let heap_base = image.heap_base();
        map.add(Mapping {
            start: heap_base,
            end: heap_base + image.heap_reserve.max(4096),
            region: Region::Heap,
            perms: Perms::RW,
        });
        let lib_text_len = image.lib_text.len() as u32;
        map.add(Mapping {
            start: LIB_BASE,
            end: LIB_BASE + lib_text_len.max(4),
            region: Region::LibText,
            perms: Perms::RX,
        });
        let lib_data_base = image.lib_data_base();
        map.add(Mapping {
            start: lib_data_base,
            end: lib_data_base + (image.lib_data.len() as u32).max(4096),
            region: Region::LibData,
            perms: Perms::RW,
        });
        map.add(Mapping {
            start: STACK_TOP - cfg.stack_size,
            end: STACK_TOP,
            region: Region::Stack,
            perms: Perms::RW,
        });

        let mut mem = Memory::new(map);
        mem.set_fastpath(cfg.fastpath);
        if cfg.trace {
            mem.enable_tracing(&[Region::Text, Region::Data, Region::Bss, Region::Heap]);
        }
        mem.poke(TEXT_BASE, &image.text);
        mem.poke(data_base, &image.data);
        mem.poke(LIB_BASE, &image.lib_text);
        mem.poke(lib_data_base, &image.lib_data);

        let heap_limit = heap_base + cfg.heap_limit.min(LIB_BASE - heap_base);
        Machine {
            cpu: Cpu::new(image.entry, STACK_TOP - 16),
            mem,
            heap: HeapAllocator::new(heap_base, heap_limit),
            console: Vec::new(),
            outfile: Vec::new(),
            in_mpi: false,
            counters: Counters::default(),
            obs: if cfg.obs_capacity > 0 {
                EventLog::bounded(cfg.obs_capacity as usize)
            } else {
                EventLog::disabled()
            },
            budget: cfg.budget,
            text_end: TEXT_BASE + text_len,
            lib_text_end: LIB_BASE + lib_text_len,
            icache_app: ICache::new(TEXT_BASE, text_len.max(4)),
            icache_lib: ICache::new(LIB_BASE, lib_text_len.max(4)),
            bcache_app: BlockCache::new(TEXT_BASE, text_len.max(4)),
            bcache_lib: BlockCache::new(LIB_BASE, lib_text_len.max(4)),
            min_esp: STACK_TOP - 16,
            syscall_fault: None,
            syscall_fault_seen: 0,
            syscall_faults_fired: 0,
        }
    }

    /// Arm an OS-level syscall failure (fl-chaos). Replaces any armed
    /// one and restarts the matching-call count.
    pub fn set_syscall_fault(&mut self, f: SyscallFault) {
        self.syscall_fault = Some(f);
        self.syscall_fault_seen = 0;
    }

    /// Syscall failures applied so far (0 = armed fault never fired).
    pub fn syscall_faults_fired(&self) -> u64 {
        self.syscall_faults_fired
    }

    /// Peak stack usage in bytes.
    pub fn peak_stack_bytes(&self) -> u32 {
        (STACK_TOP - 16).saturating_sub(self.min_esp)
    }

    /// The application text range (for the stack walker and injector).
    pub fn app_text_range(&self) -> (u32, u32) {
        (TEXT_BASE, self.text_end)
    }

    /// The library text range.
    pub fn lib_text_range(&self) -> (u32, u32) {
        (LIB_BASE, self.lib_text_end)
    }

    /// Remaining instruction budget.
    pub fn budget_left(&self) -> u64 {
        self.budget.saturating_sub(self.counters.insns)
    }

    // --- flags -----------------------------------------------------------

    fn set_flag(&mut self, mask: u32, on: bool) {
        if on {
            self.cpu.eflags |= mask;
        } else {
            self.cpu.eflags &= !mask;
        }
    }

    fn flags_from_sub(&mut self, a: u32, b: u32) {
        let (res, carry) = a.overflowing_sub(b);
        let (_, of) = (a as i32).overflowing_sub(b as i32);
        self.set_flag(EFLAGS_ZF, res == 0);
        self.set_flag(EFLAGS_SF, (res as i32) < 0);
        self.set_flag(EFLAGS_CF, carry);
        self.set_flag(EFLAGS_OF, of);
    }

    fn cond_holds(&self, c: Cond) -> bool {
        let f = self.cpu.eflags;
        let zf = f & EFLAGS_ZF != 0;
        let sf = f & EFLAGS_SF != 0;
        let cf = f & EFLAGS_CF != 0;
        let of = f & EFLAGS_OF != 0;
        match c {
            Cond::Always => true,
            Cond::Eq => zf,
            Cond::Ne => !zf,
            Cond::Lt => sf != of,
            Cond::Le => zf || sf != of,
            Cond::Gt => !zf && sf == of,
            Cond::Ge => sf == of,
            Cond::B => cf,
            Cond::Ae => !cf,
            Cond::Be => cf || zf,
            Cond::A => !cf && !zf,
        }
    }

    // --- stack helpers ----------------------------------------------------

    fn push(&mut self, v: u32) -> Result<(), Signal> {
        let esp = self.cpu.get(Gpr::Esp).wrapping_sub(4);
        self.cpu.set(Gpr::Esp, esp);
        self.min_esp = self.min_esp.min(esp);
        self.mem
            .store_u32(esp, v, self.counters.blocks)
            .map_err(|f| Signal::Segv { addr: f.addr })
    }

    fn pop(&mut self) -> Result<u32, Signal> {
        let esp = self.cpu.get(Gpr::Esp);
        let v = self
            .mem
            .load_u32(esp, self.counters.blocks)
            .map_err(|f| Signal::Segv { addr: f.addr })?;
        self.cpu.set(Gpr::Esp, esp.wrapping_add(4));
        Ok(v)
    }

    // --- execution --------------------------------------------------------

    /// Run until an exit condition, retiring at most `quantum` further
    /// instructions (then returning [`Exit::Quantum`]).
    ///
    /// Dispatches to the basic-block fast path when the memory fast path
    /// is on and tracing is off; otherwise runs the per-instruction slow
    /// loop. Both paths retire the same instructions in the same order
    /// with identical counters, events and signal points.
    pub fn run(&mut self, quantum: u64) -> Exit {
        let stop_at = self.counters.insns.saturating_add(quantum);
        if self.mem.fastpath() && !self.mem.tracing_enabled() {
            self.run_fast(stop_at)
        } else {
            self.run_slow(stop_at)
        }
    }

    fn run_slow(&mut self, stop_at: u64) -> Exit {
        loop {
            if self.counters.insns >= self.budget {
                return Exit::Budget;
            }
            if self.counters.insns >= stop_at {
                return Exit::Quantum;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Basic-block dispatch: look up (or build) the decoded block at EIP
    /// and execute it in a tight inner loop, paying the cache-probe and
    /// dispatch overhead once per block instead of once per instruction.
    fn run_fast(&mut self, stop_at: u64) -> Exit {
        loop {
            if self.counters.insns >= self.budget {
                return Exit::Budget;
            }
            if self.counters.insns >= stop_at {
                return Exit::Quantum;
            }
            let eip = self.cpu.eip;
            let (in_app, idx) = match (self.bcache_app.idx(eip), self.bcache_lib.idx(eip)) {
                (Some(i), _) => (true, i),
                (None, Some(i)) => (false, i),
                // Not a block-cacheable address (unaligned or outside
                // text): single-step, which raises the right signal.
                (None, None) => {
                    if let Some(exit) = self.step() {
                        return exit;
                    }
                    continue;
                }
            };
            let (generation, slot) = if in_app {
                (
                    self.bcache_app.generation,
                    self.bcache_app.slots[idx].take(),
                )
            } else {
                (
                    self.bcache_lib.generation,
                    self.bcache_lib.slots[idx].take(),
                )
            };
            let block = match slot.or_else(|| self.build_block(eip)) {
                Some(b) => b,
                // Head instruction unfetchable/undecodable: the step
                // path raises the proper SIGSEGV/SIGILL with events.
                None => {
                    if let Some(exit) = self.step() {
                        return exit;
                    }
                    continue;
                }
            };
            let exit = self.exec_block(&block, eip, stop_at);
            // Put the block back unless a flush raced the execution
            // (nothing inside exec can poke text today, but the
            // generation check keeps the contract local).
            let cache = if in_app {
                &mut self.bcache_app
            } else {
                &mut self.bcache_lib
            };
            if cache.generation == generation {
                cache.slots[idx] = Some(block);
            }
            if let Some(exit) = exit {
                return exit;
            }
        }
    }

    /// Decode the straight-line run starting at `eip`, up to the first
    /// block-ending instruction or a size cap. `None` if even the first
    /// instruction cannot be fetched or decoded.
    fn build_block(&mut self, eip: u32) -> Option<Block> {
        const MAX_BLOCK_INSNS: usize = 64;
        let now = self.counters.blocks;
        let mut insns = Vec::new();
        let mut a = eip;
        while let Ok(words) = self.mem.fetch_words(a, now) {
            let Ok((insn, len)) = decode_at(&words, 0) else {
                break;
            };
            insns.push((insn, len as u8));
            if insn.is_block_end() || insns.len() >= MAX_BLOCK_INSNS {
                break;
            }
            a = a.wrapping_add(4 * len as u32);
        }
        if insns.is_empty() {
            None
        } else {
            Some(Block { insns })
        }
    }

    /// Execute a decoded block starting at `eip`, replicating
    /// [`Machine::step`]'s retire order exactly: budget/quantum check,
    /// counters, then exec. Leaves the block early on any taken branch,
    /// trap or raised signal. `None` means continue at `self.cpu.eip`.
    fn exec_block(&mut self, block: &Block, eip: u32, stop_at: u64) -> Option<Exit> {
        let mut at = eip;
        for &(insn, len) in &block.insns {
            if self.counters.insns >= self.budget {
                return Some(Exit::Budget);
            }
            if self.counters.insns >= stop_at {
                return Some(Exit::Quantum);
            }
            self.counters.insns += 1;
            if insn.is_block_end() {
                self.counters.blocks += 1;
            }
            let next = at.wrapping_add(4 * len as u32);
            match self.exec(insn, at, next) {
                Ok(None) => {}
                Ok(Some(exit)) => return Some(exit),
                Err(sig) => return Some(self.raise(sig)),
            }
            if self.cpu.eip != next {
                // Taken branch (or a jump landing mid-block): resume
                // dispatch at the new EIP.
                return None;
            }
            at = next;
        }
        None
    }

    /// Execute one instruction. `None` means keep going.
    pub fn step(&mut self) -> Option<Exit> {
        let eip = self.cpu.eip;
        let now = self.counters.blocks;

        // Decode (through the i-cache for aligned text addresses).
        let cached = self
            .icache_app
            .idx(eip)
            .and_then(|i| self.icache_app.entries[i])
            .or_else(|| {
                self.icache_lib
                    .idx(eip)
                    .and_then(|i| self.icache_lib.entries[i])
            });
        let (insn, len) = match cached {
            Some((insn, len)) => {
                // Protection was checked when the cache entry was built and
                // text is immutable to the program itself, so the fetch
                // only needs repeating when access tracing wants to see it.
                if self.mem.tracing_enabled() {
                    if let Err(f) = self.mem.fetch_words(eip, now) {
                        return Some(self.raise(Signal::Segv { addr: f.addr }));
                    }
                }
                (insn, len as usize)
            }
            None => {
                let words = match self.mem.fetch_words(eip, now) {
                    Ok(w) => w,
                    Err(f) => return Some(self.raise(Signal::Segv { addr: f.addr })),
                };
                match decode_at(&words, 0) {
                    Ok((insn, len)) => {
                        if let Some(i) = self.icache_app.idx(eip) {
                            self.icache_app.entries[i] = Some((insn, len as u8));
                        } else if let Some(i) = self.icache_lib.idx(eip) {
                            self.icache_lib.entries[i] = Some((insn, len as u8));
                        }
                        (insn, len)
                    }
                    Err(_) => return Some(self.raise(Signal::Ill { eip })),
                }
            }
        };

        self.counters.insns += 1;
        if insn.is_block_end() {
            self.counters.blocks += 1;
        }
        let next = eip.wrapping_add(4 * len as u32);
        match self.exec(insn, eip, next) {
            Ok(None) => None,
            Ok(Some(exit)) => Some(exit),
            Err(sig) => Some(self.raise(sig)),
        }
    }

    /// Record and return a fatal signal.
    fn raise(&mut self, sig: Signal) -> Exit {
        let (signal, addr) = match sig {
            Signal::Segv { addr } => (SigKind::Segv, addr),
            Signal::Ill { eip } => (SigKind::Ill, eip),
            Signal::Fpe { eip } => (SigKind::Fpe, eip),
        };
        self.obs.record(
            self.counters.blocks,
            EventKind::SignalRaised { signal, addr },
        );
        Exit::Signal(sig)
    }

    fn exec(&mut self, insn: Insn, eip: u32, next: u32) -> Result<Option<Exit>, Signal> {
        use Insn::*;
        let now = self.counters.blocks;
        let mut jumped = false;
        match insn {
            Nop => {}
            MovI { rd, imm } => self.cpu.set(rd, imm),
            Mov { rd, rs } => {
                let v = self.cpu.get(rs);
                self.cpu.set(rd, v);
            }
            Alu { op, rd, ra, rb } => {
                let a = self.cpu.get(ra);
                let b = self.cpu.get(rb);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div | AluOp::Mod => {
                        let (sa, sb) = (a as i32, b as i32);
                        if sb == 0 || (sa == i32::MIN && sb == -1) {
                            return Err(Signal::Fpe { eip });
                        }
                        if op == AluOp::Div {
                            (sa / sb) as u32
                        } else {
                            (sa % sb) as u32
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Shl => a.wrapping_shl(b & 31),
                    AluOp::Shr => a.wrapping_shr(b & 31),
                    AluOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
                };
                self.cpu.set(rd, v);
            }
            AddI { rd, ra, imm } => {
                let v = self.cpu.get(ra).wrapping_add(imm);
                self.cpu.set(rd, v);
            }
            MulI { rd, ra, imm } => {
                let v = self.cpu.get(ra).wrapping_mul(imm);
                self.cpu.set(rd, v);
            }
            Cmp { ra, rb } => {
                let (a, b) = (self.cpu.get(ra), self.cpu.get(rb));
                self.flags_from_sub(a, b);
            }
            CmpI { ra, imm } => {
                let a = self.cpu.get(ra);
                self.flags_from_sub(a, imm);
            }
            J { cond, target } => {
                if self.cond_holds(cond) {
                    self.cpu.eip = target;
                    jumped = true;
                }
            }
            JmpR { rs } => {
                self.cpu.eip = self.cpu.get(rs);
                jumped = true;
            }
            Ld { rd, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_u32(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.set(rd, v);
            }
            St { rb, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.get(rb);
                self.mem
                    .store_u32(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            LdG { rd, addr } => {
                let v = self
                    .mem
                    .load_u32(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.set(rd, v);
            }
            StG { rs, addr } => {
                let v = self.cpu.get(rs);
                self.mem
                    .store_u32(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            LdB { rd, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_u8(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.set(rd, v as u32);
            }
            StB { rb, base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.get(rb) as u8;
                self.mem
                    .store_u8(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            Push { rs } => {
                let v = self.cpu.get(rs);
                self.push(v)?;
            }
            Pop { rd } => {
                let v = self.pop()?;
                self.cpu.set(rd, v);
            }
            Call { target } => {
                self.push(next)?;
                self.cpu.eip = target;
                jumped = true;
            }
            CallR { rs } => {
                let t = self.cpu.get(rs);
                self.push(next)?;
                self.cpu.eip = t;
                jumped = true;
            }
            Ret => {
                let t = self.pop()?;
                self.cpu.eip = t;
                jumped = true;
            }
            Enter { frame } => {
                let ebp = self.cpu.get(Gpr::Ebp);
                self.push(ebp)?;
                let esp = self.cpu.get(Gpr::Esp);
                self.cpu.set(Gpr::Ebp, esp);
                self.cpu.set(Gpr::Esp, esp.wrapping_sub(frame));
            }
            Leave => {
                let ebp = self.cpu.get(Gpr::Ebp);
                self.cpu.set(Gpr::Esp, ebp);
                let saved = self.pop()?;
                self.cpu.set(Gpr::Ebp, saved);
            }
            Sys { num } => {
                // EIP must already point past the SYS so MPI traps resume
                // correctly.
                self.cpu.eip = next;
                return self.exec_sys(num, eip).map(Some).or_else(|e| match e {
                    SysOutcome::Signal(s) => Err(s),
                    SysOutcome::Continue => Ok(None),
                });
            }
            Halt => return Ok(Some(Exit::Halted(self.cpu.get(Gpr::Eax) as i32))),

            // --- FPU ------------------------------------------------------
            Fld { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_f64(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.push(F80::from_f64(v));
            }
            FldG { addr } => {
                let v = self
                    .mem
                    .load_f64(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.push(F80::from_f64(v));
            }
            Fst { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.fpu.read_st_f64(0);
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.mem
                    .store_f64(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
            }
            Fstp { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.fpu.read_st_f64(0);
                self.mem
                    .store_f64(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.pop();
            }
            FstpG { addr } => {
                let v = self.cpu.fpu.read_st_f64(0);
                self.mem
                    .store_f64(addr, v, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.pop();
            }
            Fild { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self
                    .mem
                    .load_u32(addr, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.push(F80::from_f64(v as i32 as f64));
            }
            Fistp { base, off } => {
                let addr = self.cpu.get(base).wrapping_add(off as u32);
                let v = self.cpu.fpu.read_st_f64(0);
                let iv = f64_to_i32_x87(v);
                self.mem
                    .store_u32(addr, iv as u32, now)
                    .map_err(|f| Signal::Segv { addr: f.addr })?;
                self.cpu.fpu.note_insn(eip, Some(addr));
                self.cpu.fpu.pop();
            }
            FildR { rs } => {
                let v = self.cpu.get(rs) as i32 as f64;
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(F80::from_f64(v));
            }
            FistpR { rd } => {
                let v = self.cpu.fpu.read_st_f64(0);
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.set(rd, f64_to_i32_x87(v) as u32);
            }
            Fldz => {
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(F80::ZERO);
            }
            Fld1 => {
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(F80::ONE);
            }
            Fbinp { op } => {
                let b = self.cpu.fpu.read_st_f64(0);
                let a = self.cpu.fpu.read_st_f64(1);
                let v = match op {
                    FpuBinOp::Add => a + b,
                    FpuBinOp::Sub => a - b,
                    FpuBinOp::SubR => b - a,
                    FpuBinOp::Mul => a * b,
                    FpuBinOp::Div => a / b,
                    FpuBinOp::DivR => b / a,
                };
                self.cpu.fpu.write_st(1, F80::from_f64(v));
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
                self.counters.flops += 1;
            }
            Funop { op } => {
                let a = self.cpu.fpu.read_st_f64(0);
                let v = match op {
                    FpuUnOp::Chs => -a,
                    FpuUnOp::Abs => a.abs(),
                    FpuUnOp::Sqrt => a.sqrt(),
                    FpuUnOp::Sin => a.sin(),
                    FpuUnOp::Cos => a.cos(),
                    FpuUnOp::Exp => a.exp(),
                    FpuUnOp::Ln => a.ln(),
                };
                self.cpu.fpu.write_st(0, F80::from_f64(v));
                self.cpu.fpu.note_insn(eip, None);
                self.counters.flops += 1;
            }
            Fxch { i } => {
                self.cpu.fpu.fxch(i);
                self.cpu.fpu.note_insn(eip, None);
            }
            FldSt { i } => {
                let v = self.cpu.fpu.read_st(i);
                self.cpu.fpu.note_insn(eip, None);
                self.cpu.fpu.push(v);
            }
            Fcomip => {
                let a = self.cpu.fpu.read_st_f64(0);
                let b = self.cpu.fpu.read_st_f64(1);
                // x87 FCOMI semantics: unordered sets ZF and CF.
                if a.is_nan() || b.is_nan() {
                    self.set_flag(EFLAGS_ZF, true);
                    self.set_flag(EFLAGS_CF, true);
                } else {
                    self.set_flag(EFLAGS_ZF, a == b);
                    self.set_flag(EFLAGS_CF, a < b);
                }
                self.set_flag(EFLAGS_SF, false);
                self.set_flag(EFLAGS_OF, false);
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
            }
            Fpop => {
                self.cpu.fpu.pop();
                self.cpu.fpu.note_insn(eip, None);
            }
        }
        if !jumped {
            self.cpu.eip = next;
        }
        Ok(None)
    }

    fn exec_sys(&mut self, num: u16, eip: u32) -> Result<Exit, SysOutcome> {
        let call = match Syscall::from_num(num) {
            Some(c) => c,
            // Unknown syscall number (e.g. a corrupted SYS field): the
            // kernel would deliver SIGSYS; we fold it into SIGILL.
            None => return Err(SysOutcome::Signal(Signal::Ill { eip })),
        };
        let eax = self.cpu.get(Gpr::Eax);
        let ecx = self.cpu.get(Gpr::Ecx);
        let now = self.counters.blocks;
        let is_write = matches!(
            call,
            Syscall::PrintStr
                | Syscall::FileWrite
                | Syscall::PrintInt
                | Syscall::PrintFlt
                | Syscall::FileWriteFlt
                | Syscall::FileWriteBin
        );
        if is_write {
            self.counters.io_writes += 1;
        }
        if let Some(f) = self.syscall_fault {
            let hit = match f.kind {
                SyscallFaultKind::Malloc => call == Syscall::Malloc,
                SyscallFaultKind::Write => is_write,
            };
            if hit {
                self.syscall_fault_seen += 1;
                if self.syscall_fault_seen >= f.at_call {
                    if !f.persist {
                        self.syscall_fault = None;
                    }
                    self.syscall_faults_fired += 1;
                    self.obs.record(
                        now,
                        EventKind::FaultFired {
                            at_insns: self.counters.insns,
                        },
                    );
                    return match f.kind {
                        SyscallFaultKind::Malloc => {
                            // Allocation denied: the call is still counted
                            // and recorded, but the arena is untouched and
                            // the program sees NULL.
                            self.counters.mallocs += 1;
                            self.obs
                                .record(now, EventKind::MallocCall { size: ecx, ptr: 0 });
                            self.cpu.set(Gpr::Eax, 0);
                            Err(SysOutcome::Continue)
                        }
                        SyscallFaultKind::Write => {
                            // The write fails after consuming its operands
                            // (the FPU pop still happens, like a kernel
                            // that read the user buffer before erroring)
                            // and nothing reaches the sink; EAX reads -1.
                            if matches!(
                                call,
                                Syscall::PrintFlt | Syscall::FileWriteFlt | Syscall::FileWriteBin
                            ) {
                                self.cpu.fpu.pop();
                            }
                            self.cpu.set(Gpr::Eax, u32::MAX);
                            Err(SysOutcome::Continue)
                        }
                    };
                }
            }
        }
        match call {
            Syscall::Exit => Ok(Exit::Halted(eax as i32)),
            Syscall::PrintStr | Syscall::FileWrite => {
                // Append straight into the sink: no per-call scratch Vec.
                let sink = if call == Syscall::PrintStr {
                    &mut self.console
                } else {
                    &mut self.outfile
                };
                self.mem
                    .load_append(eax, ecx, now, sink)
                    .map_err(|f| SysOutcome::Signal(Signal::Segv { addr: f.addr }))?;
                Err(SysOutcome::Continue)
            }
            Syscall::PrintInt => {
                let s = (eax as i32).to_string();
                self.console.extend_from_slice(s.as_bytes());
                Err(SysOutcome::Continue)
            }
            Syscall::PrintFlt | Syscall::FileWriteFlt => {
                let digits = (ecx as usize).min(17);
                let v = self.cpu.fpu.pop().to_f64();
                let s = format!("{v:.digits$}");
                if call == Syscall::PrintFlt {
                    self.console.extend_from_slice(s.as_bytes());
                } else {
                    self.outfile.extend_from_slice(s.as_bytes());
                }
                Err(SysOutcome::Continue)
            }
            Syscall::FileWriteBin => {
                let v = self.cpu.fpu.pop().to_f64();
                self.outfile.extend_from_slice(&v.to_bits().to_le_bytes());
                Err(SysOutcome::Continue)
            }
            Syscall::Malloc => {
                self.counters.mallocs += 1;
                let tag = if self.in_mpi || self.eip_in_lib(eip) {
                    AllocTag::Mpi
                } else {
                    AllocTag::User
                };
                let ptr = self.heap.alloc(&mut self.mem, ecx, tag).unwrap_or(0);
                self.obs
                    .record(now, EventKind::MallocCall { size: ecx, ptr });
                self.cpu.set(Gpr::Eax, ptr);
                Err(SysOutcome::Continue)
            }
            Syscall::Free => {
                self.obs.record(now, EventKind::FreeCall { ptr: eax });
                match self.heap.free(&mut self.mem, eax) {
                    Ok(()) => Err(SysOutcome::Continue),
                    Err(e) => Ok(Exit::HeapCorruption(e)),
                }
            }
            Syscall::AbortMsg => {
                // Terminal path: one bounded read into a local buffer.
                let mut bytes = Vec::new();
                self.mem
                    .load_append(eax, ecx.min(4096), now, &mut bytes)
                    .map_err(|f| SysOutcome::Signal(Signal::Segv { addr: f.addr }))?;
                Ok(Exit::Abort(String::from_utf8_lossy(&bytes).into_owned()))
            }
            mpi if mpi.is_mpi() => {
                self.counters.mpi_calls += 1;
                self.in_mpi = true;
                self.obs.record(now, EventKind::SyscallTrap { num });
                Ok(Exit::Mpi(mpi))
            }
            _ => unreachable!("non-MPI syscalls all handled above"),
        }
    }

    fn eip_in_lib(&self, eip: u32) -> bool {
        (LIB_BASE..self.lib_text_end).contains(&eip)
    }

    /// Complete an MPI syscall: optionally write a return value to EAX and
    /// clear the in-MPI flag. The machine continues at the instruction
    /// after the trapping `SYS` on the next `run`.
    pub fn mpi_complete(&mut self, ret: Option<u32>) {
        if let Some(v) = ret {
            self.cpu.set(Gpr::Eax, v);
        }
        self.in_mpi = false;
    }

    // --- fault-injection interface (the `ptrace` analogue, §3.1) ---------

    /// Privileged memory write; keeps the decode caches coherent.
    pub fn poke_mem(&mut self, addr: u32, data: &[u8]) {
        self.mem.poke(addr, data);
        let end = addr.saturating_add(data.len() as u32);
        for i in 0..data.len() as u32 {
            self.icache_app.invalidate(addr + i);
            self.icache_lib.invalidate(addr + i);
        }
        // The block caches invalidate coarsely: any text poke flushes the
        // whole cache (pokes happen at injection rate — blocks rebuild on
        // demand, and a poked word may sit mid-block in many blocks).
        if addr < self.text_end && end > TEXT_BASE {
            self.bcache_app.flush();
        }
        if addr < self.lib_text_end && end > LIB_BASE {
            self.bcache_lib.flush();
        }
    }

    /// Flip one bit of memory (privileged).
    pub fn flip_mem_bit(&mut self, addr: u32, bit: u8) {
        let b = self.mem.peek_u8(addr) ^ (1 << (bit & 7));
        self.poke_mem(addr, &[b]);
    }

    /// Force one bit of memory to a value — the stuck-at fault model
    /// (hard errors / long-duration faults, cf. Constantinescu's ASCI Red
    /// study discussed in §8.1 of the paper). Returns true if the byte
    /// changed.
    pub fn set_mem_bit(&mut self, addr: u32, bit: u8, value: bool) -> bool {
        let old = self.mem.peek_u8(addr);
        let mask = 1 << (bit & 7);
        let new = if value { old | mask } else { old & !mask };
        if new != old {
            self.poke_mem(addr, &[new]);
        }
        new != old
    }

    /// Force one bit of a 32-bit register to a value (stuck-at model).
    /// FPU registers re-route through [`Machine::flip_register_bit`]
    /// semantics: the bit is read, and flipped only when it differs.
    pub fn set_register_bit(&mut self, reg: RegisterName, bit: u32, value: bool) {
        let current = match reg {
            RegisterName::Gpr(g) => self.cpu.get(g) >> (bit & 31) & 1 == 1,
            RegisterName::Eip => self.cpu.eip >> (bit & 31) & 1 == 1,
            RegisterName::Eflags => self.cpu.eflags >> (bit & 31) & 1 == 1,
            RegisterName::St(i) => {
                let (m, se) = self.cpu.fpu.regs[(i & 7) as usize].to_bits();
                let b = bit % 80;
                if b < 64 {
                    m >> b & 1 == 1
                } else {
                    se >> (b - 64) & 1 == 1
                }
            }
            RegisterName::FpuSpecial(s) => {
                let f = &self.cpu.fpu;
                let v: u32 = match s {
                    fl_isa::FpuSpecial::Cwd => f.cwd as u32,
                    fl_isa::FpuSpecial::Swd => f.swd as u32,
                    fl_isa::FpuSpecial::Twd => f.twd as u32,
                    fl_isa::FpuSpecial::Fip => f.fip,
                    fl_isa::FpuSpecial::Fcs => f.fcs as u32,
                    fl_isa::FpuSpecial::Foo => f.foo,
                    fl_isa::FpuSpecial::Fos => f.fos as u32,
                };
                v >> (bit % reg.width_bits()) & 1 == 1
            }
        };
        if current != value {
            self.flip_register_bit(reg, bit);
        }
    }

    /// Flip one bit of a register — the register fault model of §3.2.
    ///
    /// FPU data registers are addressed *physically* (a particle strike
    /// hits a cell, not a stack slot) and the tag word is deliberately NOT
    /// updated: the upset changes the bits behind the FPU's back.
    pub fn flip_register_bit(&mut self, reg: RegisterName, bit: u32) {
        match reg {
            RegisterName::Gpr(g) => {
                let v = self.cpu.get(g) ^ (1 << (bit & 31));
                self.cpu.set(g, v);
            }
            RegisterName::Eip => self.cpu.eip ^= 1 << (bit & 31),
            RegisterName::Eflags => self.cpu.eflags ^= 1 << (bit & 31),
            RegisterName::St(i) => {
                let p = (i & 7) as usize;
                self.cpu.fpu.regs[p] = self.cpu.fpu.regs[p].flip_bit(bit % 80);
            }
            RegisterName::FpuSpecial(s) => {
                use crate::fpu::Fpu;
                let f: &mut Fpu = &mut self.cpu.fpu;
                match s {
                    fl_isa::FpuSpecial::Cwd => f.cwd ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Swd => f.swd ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Twd => f.twd ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Fip => f.fip ^= 1 << (bit & 31),
                    fl_isa::FpuSpecial::Fcs => f.fcs ^= 1 << (bit & 15),
                    fl_isa::FpuSpecial::Foo => f.foo ^= 1 << (bit & 31),
                    fl_isa::FpuSpecial::Fos => f.fos ^= 1 << (bit & 15),
                }
            }
        }
    }

    /// Console contents as UTF-8 (lossy).
    pub fn console_text(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    // --- snapshots --------------------------------------------------------

    /// Capture the complete architectural state of the process: CPU
    /// (GPRs, EFLAGS, EIP, full FPU), memory (COW page table + region
    /// map), malloc-runtime records, console/output buffers, counters
    /// and budget. The decoded-instruction cache is *not* part of the
    /// state — it is a pure performance artifact and is rebuilt lazily
    /// after [`MachineSnapshot::to_machine`].
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            cpu: self.cpu.clone(),
            mem: self.mem.snapshot(),
            heap: self.heap.clone(),
            console: self.console.clone(),
            outfile: self.outfile.clone(),
            in_mpi: self.in_mpi,
            counters: self.counters,
            obs: self.obs.clone(),
            budget: self.budget,
            text_end: self.text_end,
            lib_text_end: self.lib_text_end,
            min_esp: self.min_esp,
            syscall_fault: self.syscall_fault,
            syscall_fault_seen: self.syscall_fault_seen,
            syscall_faults_fired: self.syscall_faults_fired,
        }
    }
}

/// A captured [`Machine`] state. Equality is *architectural*: two
/// snapshots compare equal iff every register, every mapped byte, the
/// allocator records, the I/O buffers and the counters agree — which is
/// the invariant the snapshot property tests enforce between forked and
/// cold runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    pub cpu: Cpu,
    pub mem: MemorySnapshot,
    pub heap: HeapAllocator,
    pub console: Vec<u8>,
    pub outfile: Vec<u8>,
    pub in_mpi: bool,
    pub counters: Counters,
    pub obs: EventLog,
    pub budget: u64,
    pub text_end: u32,
    pub lib_text_end: u32,
    pub min_esp: u32,
    pub syscall_fault: Option<SyscallFault>,
    pub syscall_fault_seen: u64,
    pub syscall_faults_fired: u64,
}

impl MachineSnapshot {
    /// Materialise a runnable [`Machine`] from this snapshot. Memory
    /// pages are shared copy-on-write with the snapshot (and with every
    /// other machine forked from it); the instruction caches start cold
    /// and refill on execution.
    pub fn to_machine(&self) -> Machine {
        let text_len = (self.text_end - TEXT_BASE).max(4);
        let lib_text_len = (self.lib_text_end - LIB_BASE).max(4);
        Machine {
            cpu: self.cpu.clone(),
            mem: self.mem.to_memory(),
            heap: self.heap.clone(),
            console: self.console.clone(),
            outfile: self.outfile.clone(),
            in_mpi: self.in_mpi,
            counters: self.counters,
            obs: self.obs.clone(),
            budget: self.budget,
            text_end: self.text_end,
            lib_text_end: self.lib_text_end,
            icache_app: ICache::new(TEXT_BASE, text_len),
            icache_lib: ICache::new(LIB_BASE, lib_text_len),
            bcache_app: BlockCache::new(TEXT_BASE, text_len),
            bcache_lib: BlockCache::new(LIB_BASE, lib_text_len),
            min_esp: self.min_esp,
            syscall_fault: self.syscall_fault,
            syscall_fault_seen: self.syscall_fault_seen,
            syscall_faults_fired: self.syscall_faults_fired,
        }
    }
}

enum SysOutcome {
    Signal(Signal),
    Continue,
}

/// x87 FIST conversion: round to nearest even; out-of-range and NaN yield
/// the "integer indefinite" value 0x80000000.
fn f64_to_i32_x87(v: f64) -> i32 {
    if v.is_nan() || !(-2147483648.0..=2147483647.0).contains(&v) {
        return i32::MIN;
    }
    let r = v.round_ties_even();
    if !(-2147483648.0..=2147483647.0).contains(&r) {
        i32::MIN
    } else {
        r as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::KERNEL_BASE;
    use fl_isa::encode;

    /// Assemble a program image from instructions placed at TEXT_BASE.
    fn image(insns: &[Insn]) -> ProgramImage {
        let mut text = Vec::new();
        for i in insns {
            text.extend(encode(i).to_bytes());
        }
        ProgramImage {
            text,
            data: vec![0u8; 64],
            bss_size: 64,
            lib_text: encode(&Insn::Ret).to_bytes(),
            lib_data: Vec::new(),
            entry: TEXT_BASE,
            symbols: Vec::new(),
            heap_reserve: 4096,
        }
    }

    fn run_insns(insns: &[Insn]) -> (Machine, Exit) {
        let img = image(insns);
        let mut m = Machine::load(&img, MachineConfig::default());
        let e = m.run(100_000);
        (m, e)
    }

    #[test]
    fn arithmetic_and_halt() {
        use Gpr::*;
        let (m, e) = run_insns(&[
            Insn::MovI { rd: Eax, imm: 20 },
            Insn::MovI { rd: Ebx, imm: 22 },
            Insn::Alu {
                op: AluOp::Add,
                rd: Eax,
                ra: Eax,
                rb: Ebx,
            },
            Insn::Halt,
        ]);
        assert_eq!(e, Exit::Halted(42));
        assert_eq!(m.counters.insns, 4);
        assert_eq!(m.counters.blocks, 1); // only Halt ends a block
    }

    #[test]
    fn division_by_zero_sigfpe() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI { rd: Eax, imm: 7 },
            Insn::MovI { rd: Ebx, imm: 0 },
            Insn::Alu {
                op: AluOp::Div,
                rd: Eax,
                ra: Eax,
                rb: Ebx,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Signal(Signal::Fpe { .. })));
    }

    #[test]
    fn int_min_div_minus_one_sigfpe() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: 0x8000_0000,
            },
            Insn::MovI {
                rd: Ebx,
                imm: (-1i32) as u32,
            },
            Insn::Alu {
                op: AluOp::Div,
                rd: Eax,
                ra: Eax,
                rb: Ebx,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Signal(Signal::Fpe { .. })));
    }

    #[test]
    fn wild_load_sigsegv() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: 0x1234,
            },
            Insn::Ld {
                rd: Ebx,
                base: Eax,
                off: 0,
            },
            Insn::Halt,
        ]);
        assert_eq!(e, Exit::Signal(Signal::Segv { addr: 0x1234 }));
    }

    #[test]
    fn kernel_space_access_sigsegv() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: KERNEL_BASE,
            },
            Insn::Ld {
                rd: Ebx,
                base: Eax,
                off: 16,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Signal(Signal::Segv { .. })));
    }

    #[test]
    fn illegal_opcode_sigill() {
        let img = {
            let mut i = image(&[Insn::Nop]);
            i.text = vec![0u8; 8]; // opcode 0 is undefined
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        assert!(matches!(m.run(10), Exit::Signal(Signal::Ill { .. })));
    }

    #[test]
    fn loops_and_branches() {
        use Gpr::*;
        // sum 1..=10 in EBX
        let loop_start = TEXT_BASE + 8 + 8; // after two MovI (2 words each)
        let (m, e) = run_insns(&[
            Insn::MovI { rd: Ecx, imm: 1 },
            Insn::MovI { rd: Ebx, imm: 0 },
            // loop:
            Insn::Alu {
                op: AluOp::Add,
                rd: Ebx,
                ra: Ebx,
                rb: Ecx,
            },
            Insn::AddI {
                rd: Ecx,
                ra: Ecx,
                imm: 1,
            },
            Insn::CmpI { ra: Ecx, imm: 10 },
            Insn::J {
                cond: Cond::Le,
                target: loop_start,
            },
            Insn::Mov { rd: Eax, rs: Ebx },
            Insn::Halt,
        ]);
        assert_eq!(e, Exit::Halted(55));
        assert!(m.counters.blocks >= 10);
    }

    #[test]
    fn call_ret_and_frames() {
        use Gpr::*;
        // main: call f; halt.  f: enter 8; mov eax, 99; leave; ret
        // Layout: call (2w) halt (1w) -> f at TEXT_BASE+12
        let f_addr = TEXT_BASE + 12;
        let (m, e) = run_insns(&[
            Insn::Call { target: f_addr },
            Insn::Halt,
            Insn::Enter { frame: 8 },
            Insn::MovI { rd: Eax, imm: 99 },
            Insn::Leave,
            Insn::Ret,
        ]);
        assert_eq!(e, Exit::Halted(99));
        assert_eq!(m.cpu.get(Esp), STACK_TOP - 16); // balanced
    }

    #[test]
    fn fpu_computation() {
        use Gpr::*;
        // Compute sqrt(2.0 * 8.0) = 4.0 and print it.
        let data_base = image(&[Insn::Nop; 12]).data_base();
        let img = {
            let mut i = image(&[
                Insn::FldG { addr: data_base },
                Insn::FldG {
                    addr: data_base + 8,
                },
                Insn::Fbinp { op: FpuBinOp::Mul },
                Insn::Funop { op: FpuUnOp::Sqrt },
                Insn::MovI { rd: Ecx, imm: 3 },
                Insn::Sys {
                    num: Syscall::PrintFlt as u16,
                },
                Insn::MovI { rd: Eax, imm: 0 },
                Insn::Sys {
                    num: Syscall::Exit as u16,
                },
            ]);
            i.data[..8].copy_from_slice(&2.0f64.to_le_bytes());
            i.data[8..16].copy_from_slice(&8.0f64.to_le_bytes());
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        let e = m.run(1000);
        assert_eq!(e, Exit::Halted(0));
        assert_eq!(m.console_text(), "4.000");
        assert_eq!(m.counters.flops, 2);
    }

    #[test]
    fn malloc_free_via_syscalls() {
        use Gpr::*;
        let (m, e) = run_insns(&[
            Insn::MovI { rd: Ecx, imm: 128 },
            Insn::Sys {
                num: Syscall::Malloc as u16,
            },
            Insn::Mov { rd: Esi, rs: Eax },
            // store through the pointer
            Insn::MovI { rd: Ebx, imm: 7 },
            Insn::St {
                rb: Ebx,
                base: Esi,
                off: 0,
            },
            Insn::Mov { rd: Eax, rs: Esi },
            Insn::Sys {
                num: Syscall::Free as u16,
            },
            Insn::Ld {
                rd: Eax,
                base: Esi,
                off: 0,
            }, // use-after-free reads ok (no poison)
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::Halted(_)));
        assert_eq!(m.counters.mallocs, 1);
        assert_eq!(m.heap.live_chunks().len(), 0);
    }

    #[test]
    fn syscall_fault_denies_malloc() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 128 },
            Insn::Sys {
                num: Syscall::Malloc as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Malloc,
            at_call: 1,
            persist: false,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.cpu.get(Eax), 0, "denied malloc returns NULL");
        assert_eq!(m.counters.mallocs, 1, "the call is still counted");
        assert_eq!(m.syscall_faults_fired(), 1);
        assert!(m.heap.live_chunks().is_empty(), "nothing was allocated");
    }

    #[test]
    fn syscall_fault_fails_the_drawn_write_only() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 42 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::MovI { rd: Eax, imm: 43 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Write,
            at_call: 1,
            persist: false,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.console_text(), "43", "only the drawn write fails");
        assert_eq!(m.counters.io_writes, 2, "both calls are counted");
        assert_eq!(m.syscall_faults_fired(), 1);
    }

    #[test]
    fn persistent_write_fault_suppresses_everything_after() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 1 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::MovI { rd: Eax, imm: 2 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::MovI { rd: Eax, imm: 3 },
            Insn::Sys {
                num: Syscall::PrintInt as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Write,
            at_call: 2,
            persist: true,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.console_text(), "1", "writes 2 and 3 both fail");
        assert_eq!(m.syscall_faults_fired(), 2);
    }

    #[test]
    fn failed_float_write_still_pops_the_fpu() {
        use Gpr::*;
        // Push 2.0 then 3.0; the first (failed) print must consume 3.0
        // so the second prints 2.0 — a fault may deny the write, never
        // desynchronize the FPU stack.
        let data_base = image(&[Insn::Nop; 8]).data_base();
        let img = {
            let mut i = image(&[
                Insn::FldG { addr: data_base },
                Insn::FldG {
                    addr: data_base + 8,
                },
                Insn::MovI { rd: Ecx, imm: 1 },
                Insn::Sys {
                    num: Syscall::PrintFlt as u16,
                },
                Insn::MovI { rd: Ecx, imm: 1 },
                Insn::Sys {
                    num: Syscall::PrintFlt as u16,
                },
                Insn::Halt,
            ]);
            i.data[..8].copy_from_slice(&2.0f64.to_le_bytes());
            i.data[8..16].copy_from_slice(&3.0f64.to_le_bytes());
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Write,
            at_call: 1,
            persist: false,
        });
        assert!(matches!(m.run(100), Exit::Halted(_)));
        assert_eq!(m.console_text(), "2.0");
    }

    #[test]
    fn syscall_fault_rides_snapshots() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 64 },
            Insn::Sys {
                num: Syscall::Malloc as u16,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.set_syscall_fault(SyscallFault {
            kind: SyscallFaultKind::Malloc,
            at_call: 1,
            persist: false,
        });
        let snap = m.snapshot();
        let mut r = snap.to_machine();
        assert!(matches!(r.run(100), Exit::Halted(_)));
        assert_eq!(r.cpu.get(Eax), 0, "the restored machine replays the denial");
        assert_eq!(r.syscall_faults_fired(), 1);
    }

    #[test]
    fn corrupted_free_crashes_like_glibc() {
        use Gpr::*;
        let (_, e) = run_insns(&[
            Insn::MovI {
                rd: Eax,
                imm: 0x0b00_0000,
            },
            Insn::Sys {
                num: Syscall::Free as u16,
            },
            Insn::Halt,
        ]);
        assert!(matches!(e, Exit::HeapCorruption(_)));
    }

    #[test]
    fn abort_msg_is_app_detected() {
        use Gpr::*;
        let data_base = image(&[Insn::Nop]).data_base();
        let img = {
            let mut i = image(&[
                Insn::MovI {
                    rd: Eax,
                    imm: data_base,
                },
                Insn::MovI { rd: Ecx, imm: 9 },
                Insn::Sys {
                    num: Syscall::AbortMsg as u16,
                },
                Insn::Halt,
            ]);
            i.data[..9].copy_from_slice(b"NaN check");
            i
        };
        let mut m = Machine::load(&img, MachineConfig::default());
        assert_eq!(m.run(100), Exit::Abort("NaN check".into()));
    }

    #[test]
    fn mpi_syscall_traps_and_resumes() {
        use Gpr::*;
        let (mut m, e) = {
            let img = image(&[
                Insn::Sys {
                    num: Syscall::MpiCommRank as u16,
                },
                Insn::Mov { rd: Ebx, rs: Eax },
                Insn::Halt,
            ]);
            let mut m = Machine::load(&img, MachineConfig::default());
            let e = m.run(100);
            (m, e)
        };
        assert_eq!(e, Exit::Mpi(Syscall::MpiCommRank));
        assert!(m.in_mpi);
        m.mpi_complete(Some(3));
        assert!(!m.in_mpi);
        assert_eq!(m.run(100), Exit::Halted(3));
        assert_eq!(m.cpu.get(Ebx), 3);
    }

    #[test]
    fn budget_exhaustion_reports_hang() {
        // Infinite loop.
        let img = image(&[Insn::J {
            cond: Cond::Always,
            target: TEXT_BASE,
        }]);
        let mut m = Machine::load(
            &img,
            MachineConfig {
                budget: 5000,
                ..Default::default()
            },
        );
        assert_eq!(m.run(u64::MAX), Exit::Budget);
        assert_eq!(m.counters.insns, 5000);
    }

    #[test]
    fn quantum_preemption_preserves_state() {
        use Gpr::*;
        let loop_start = TEXT_BASE + 8;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 0 },
            Insn::AddI {
                rd: Ecx,
                ra: Ecx,
                imm: 1,
            },
            Insn::CmpI { ra: Ecx, imm: 100 },
            Insn::J {
                cond: Cond::Lt,
                target: loop_start,
            },
            Insn::Mov { rd: Eax, rs: Ecx },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        let mut quanta = 0;
        loop {
            match m.run(7) {
                Exit::Quantum => quanta += 1,
                Exit::Halted(v) => {
                    assert_eq!(v, 100);
                    break;
                }
                other => panic!("unexpected exit {other:?}"),
            }
        }
        assert!(quanta > 10);
    }

    #[test]
    fn text_bit_flip_through_poke_changes_execution() {
        use Gpr::*;
        let img = image(&[Insn::MovI { rd: Eax, imm: 5 }, Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        // Run once partially to warm the i-cache, then rewind.
        assert!(matches!(m.run(100), Exit::Halted(5)));

        let mut m = Machine::load(&img, MachineConfig::default());
        // Flip a bit in the immediate word of MovI (word 1, bit 1): 5 -> 7.
        m.flip_mem_bit(TEXT_BASE + 4, 1);
        assert!(matches!(m.run(100), Exit::Halted(7)));
    }

    #[test]
    fn icache_invalidation_after_poke() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 5 },
            Insn::J {
                cond: Cond::Always,
                target: TEXT_BASE + 12,
            },
            Insn::Halt,
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        // Execute the MovI once (warming the cache) via single steps.
        assert!(m.step().is_none());
        // Now corrupt the MovI opcode to an illegal value and jump back.
        m.poke_mem(TEXT_BASE, &[0x00]);
        m.cpu.eip = TEXT_BASE;
        assert!(matches!(m.run(10), Exit::Signal(Signal::Ill { .. })));
    }

    #[test]
    fn block_cache_invalidation_after_poke() {
        use Gpr::*;
        let img = image(&[
            Insn::MovI { rd: Eax, imm: 5 },
            Insn::J {
                cond: Cond::Always,
                target: TEXT_BASE,
            },
        ]);
        let mut m = Machine::load(&img, MachineConfig::default());
        // Warm the block cache through the fast path (one quantum spins
        // the MovI+J loop several times).
        assert_eq!(m.run(10), Exit::Quantum);
        // Corrupt the MovI opcode; the next dispatch of the cached block
        // must see the poke and raise SIGILL at the corrupted address.
        m.poke_mem(TEXT_BASE, &[0x00]);
        m.cpu.eip = TEXT_BASE;
        assert!(matches!(
            m.run(10),
            Exit::Signal(Signal::Ill { eip }) if eip == TEXT_BASE
        ));
    }

    #[test]
    fn fastpath_and_slowpath_agree_on_final_state() {
        use Gpr::*;
        let loop_start = TEXT_BASE + 8;
        let img = image(&[
            Insn::MovI { rd: Ecx, imm: 0 },
            Insn::AddI {
                rd: Ecx,
                ra: Ecx,
                imm: 1,
            },
            Insn::CmpI { ra: Ecx, imm: 250 },
            Insn::J {
                cond: Cond::Lt,
                target: loop_start,
            },
            Insn::Mov { rd: Eax, rs: Ecx },
            Insn::Halt,
        ]);
        let mut fast = Machine::load(&img, MachineConfig::default());
        let mut slow = Machine::load(
            &img,
            MachineConfig {
                fastpath: false,
                ..Default::default()
            },
        );
        // Drive both in identical awkward quanta so block boundaries and
        // quantum stops interleave.
        loop {
            let (a, b) = (fast.run(7), slow.run(7));
            assert_eq!(a, b);
            assert_eq!(fast.counters, slow.counters);
            if a != Exit::Quantum {
                break;
            }
        }
        assert_eq!(fast.snapshot(), slow.snapshot());
    }

    #[test]
    fn register_flip_gpr() {
        use Gpr::*;
        let img = image(&[Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.cpu.set(Eax, 0b100);
        m.flip_register_bit(RegisterName::Gpr(Eax), 0);
        assert_eq!(m.cpu.get(Eax), 0b101);
        m.flip_register_bit(RegisterName::Eip, 31);
        assert_eq!(m.cpu.eip, TEXT_BASE ^ (1 << 31));
    }

    #[test]
    fn register_flip_fpu_does_not_update_tag() {
        let img = image(&[Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.cpu.fpu.push(F80::from_f64(1.0));
        let p = m.cpu.fpu.phys(0) as u8;
        let tag_before = m.cpu.fpu.tag(p as usize);
        // Flip the integer bit: value becomes an unnormal, but the tag
        // still says "valid" — the upset happened behind the FPU's back.
        m.flip_register_bit(RegisterName::St(p), 63);
        assert_eq!(m.cpu.fpu.tag(p as usize), tag_before);
        assert!(m.cpu.fpu.read_st(0).classify() == crate::f80::F80Class::Special);
    }

    #[test]
    fn fist_conversion_edge_cases() {
        assert_eq!(f64_to_i32_x87(1.5), 2); // ties to even
        assert_eq!(f64_to_i32_x87(2.5), 2);
        assert_eq!(f64_to_i32_x87(-1.5), -2);
        assert_eq!(f64_to_i32_x87(f64::NAN), i32::MIN);
        assert_eq!(f64_to_i32_x87(1e300), i32::MIN);
        assert_eq!(f64_to_i32_x87(-1e300), i32::MIN);
    }

    #[test]
    fn eip_flip_usually_crashes() {
        // The classic register-injection outcome: a flipped EIP lands
        // outside any mapping and faults.
        let img = image(&[Insn::Nop, Insn::Nop, Insn::Halt]);
        let mut m = Machine::load(&img, MachineConfig::default());
        m.flip_register_bit(RegisterName::Eip, 30);
        assert!(matches!(m.run(10), Exit::Signal(Signal::Segv { .. })));
    }
}
