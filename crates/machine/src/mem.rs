//! Sparse paged memory with region protection and access tracing.
//!
//! Pages are allocated lazily (a 3 GiB address space costs nothing until
//! touched). Every user-mode access is checked against the
//! [`AddressSpaceMap`]; a reference outside any mapping, into kernel space,
//! or violating permissions raises a fault that the machine turns into
//! SIGSEGV — which is how corrupted pointers and return addresses crash,
//! the dominant manifestation in the paper's memory-injection tables.
//!
//! Tracing, when enabled, records the basic-block count of the most recent
//! *instruction fetch* (text) and *data load* (data/BSS/heap) per 4-byte
//! granule, which is exactly the measurement the paper took with Valgrind
//! to produce the working-set curves of Tables 5–7.

use crate::layout::{AddressSpaceMap, Mapping, Region, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Low bits of an address within its page.
const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// Software-TLB size. Direct-mapped on the page number; 512 slots cover
/// a 2 MiB working set. The superblock fast path leans on TLB hits hard
/// enough that conflict evictions (a strided grid sweep repeatedly
/// knocking out the stack page's slot) showed up as whole percents of
/// run time at 64 slots; 512 makes them rare at a memcpy-able flush
/// cost.
const TLB_ENTRIES: usize = 512;

/// One software-TLB slot: a cached translation from a page base to the
/// raw backing page, with the mapping's permissions and the in-page
/// validity bound baked in so a hit is a mask + compare, not a
/// `HashMap` lookup + `AddressSpaceMap` walk + `Arc::make_mut`.
#[derive(Clone, Copy)]
struct TlbEntry {
    /// Page base this entry translates. Page bases are always
    /// `PAGE_SIZE`-aligned, so `u32::MAX` can never be a real base and
    /// doubles as the invalid marker.
    base: u32,
    /// Raw pointer to the backing [`Page`] allocation.
    ptr: *mut Page,
    /// Exclusive in-page bound: only offsets `[0, hi)` lie inside the
    /// mapping (region ends are not page-aligned, so the last page of a
    /// mapping is partial). Accesses reaching `hi` take the slow path,
    /// which reports the exact fault address at the mapping end.
    hi: u32,
    read: bool,
    /// Cached *write* permission: true only if the entry was filled
    /// from an exclusively-owned (COW-unshared) page.
    write: bool,
    exec: bool,
    /// [`Tlb::gen`] value at write-fill time; a write hit additionally
    /// requires this to match, so bumping the generation revokes every
    /// cached write permission at once (see [`Memory::snapshot`]).
    write_gen: u64,
    /// Region of the backing mapping (diagnostics / tests).
    region: Region,
}

impl TlbEntry {
    const INVALID: TlbEntry = TlbEntry {
        base: u32::MAX,
        ptr: std::ptr::null_mut(),
        hi: 0,
        read: false,
        write: false,
        exec: false,
        write_gen: 0,
        region: Region::Text,
    };
}

/// The software TLB: a small direct-mapped cache over [`Memory`]'s page
/// table. Entries are filled on slow-path accesses and invalidated on
/// anything that can move, re-protect or re-share the backing page:
/// `page_mut` (COW duplication and first-touch materialisation),
/// [`Memory::map_mut`] (brk growth), [`Memory::enable_tracing`], and
/// [`Memory::snapshot`] (pages become COW-shared: the write generation
/// is bumped, revoking all cached write permissions).
struct Tlb {
    entries: [TlbEntry; TLB_ENTRIES],
    /// Write-permission generation, bumped by [`Memory::snapshot`]
    /// (which takes `&self`, hence the atomic; relaxed ordering is
    /// enough because cross-thread handoff of a `Memory` already
    /// synchronises).
    generation: AtomicU64,
    enabled: bool,
}

// SAFETY: the raw pointers in `entries` target the heap allocations of
// `Arc<Page>`s owned by the same `Memory` that owns this `Tlb`; they are
// only dereferenced from `Memory`'s own `&self`/`&mut self` methods, so
// aliasing follows `Memory`'s borrow discipline, and the allocations
// they point to live (at a stable address) for as long as the owning
// page table holds them.
unsafe impl Send for Tlb {}
// SAFETY: `&Tlb` exposes no operation that dereferences the pointers or
// mutates entries; the only shared-access mutation is the atomic
// generation counter.
unsafe impl Sync for Tlb {}

impl Tlb {
    fn new(enabled: bool) -> Self {
        Tlb {
            entries: [TlbEntry::INVALID; TLB_ENTRIES],
            generation: AtomicU64::new(1),
            enabled,
        }
    }

    #[inline]
    fn slot(addr: u32) -> usize {
        ((addr / PAGE_SIZE) as usize) & (TLB_ENTRIES - 1)
    }

    fn flush(&mut self) {
        self.entries = [TlbEntry::INVALID; TLB_ENTRIES];
    }
}

/// One backing page. Pages are reference-counted so that snapshots and
/// the worlds forked from them share unmodified pages copy-on-write:
/// cloning the page table is O(pages) pointer copies, and a page is
/// duplicated only when one of the sharers writes to it.
pub type Page = [u8; PAGE_SIZE as usize];

/// A memory access fault (turned into SIGSEGV by the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: u32,
    /// What the access attempted.
    pub kind: AccessKind,
}

/// The kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    Exec,
}

/// Which accesses the tracer records for a granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Instruction fetch (text accesses in the paper's Valgrind runs).
    Fetch,
    /// Data load (memory loads in Data/BSS/Heap).
    Load,
}

/// Last-access timestamps for one traced extent, at 4-byte granularity.
#[derive(Debug, Clone)]
pub struct AccessTrace {
    start: u32,
    /// `last[i]` = 1 + block count of the most recent access to granule
    /// `i`, or 0 if never accessed.
    last: Vec<u64>,
}

impl AccessTrace {
    fn new(m: &Mapping) -> Self {
        AccessTrace {
            start: m.start,
            last: vec![0; (m.len() as usize).div_ceil(4)],
        }
    }

    fn record(&mut self, addr: u32, len: u32, now: u64) {
        let lo = (addr - self.start) / 4;
        let hi = (addr + len.max(1) - 1 - self.start) / 4;
        // Grow on demand (the heap mapping grows via brk), bounded so a
        // wild traced access cannot exhaust memory.
        const MAX_GRANULES: usize = 1 << 26;
        if (hi as usize) >= self.last.len() && (hi as usize) < MAX_GRANULES {
            self.last.resize(hi as usize + 1, 0);
        }
        for g in lo..=hi {
            if let Some(slot) = self.last.get_mut(g as usize) {
                *slot = now + 1;
            }
        }
    }

    /// Number of granules whose most recent access is at block count
    /// >= `t` — the paper's "working set size at time t".
    pub fn working_set_granules(&self, t: u64) -> usize {
        self.last.iter().filter(|&&l| l > t).count()
    }

    /// Bytes covered by [`Self::working_set_granules`].
    pub fn working_set_bytes(&self, t: u64) -> u64 {
        self.working_set_granules(t) as u64 * 4
    }

    /// Total traced granules.
    pub fn granules(&self) -> usize {
        self.last.len()
    }
}

/// The process memory: lazily allocated copy-on-write pages plus the
/// region map.
pub struct Memory {
    map: AddressSpaceMap,
    pages: HashMap<u32, Arc<Page>>,
    /// Traces keyed by region; present only while tracing is on.
    traces: Option<HashMap<Region, AccessTrace>>,
    /// Bytes currently backed by pages (for diagnostics).
    resident_pages: usize,
    /// Checked user-mode loads + stores retired (not fetches, not
    /// privileged peeks/pokes). Counted once per accessor call on both
    /// the TLB-hit and slow paths, so the count is execution-path
    /// independent — the mem-stall fault's surcharge clock.
    accesses: u64,
    /// Translation fast path (see [`Tlb`]).
    tlb: Tlb,
}

impl Memory {
    /// Create memory over an address-space map.
    pub fn new(map: AddressSpaceMap) -> Self {
        Memory {
            map,
            pages: HashMap::new(),
            traces: None,
            resident_pages: 0,
            accesses: 0,
            tlb: Tlb::new(true),
        }
    }

    /// The region map.
    pub fn map(&self) -> &AddressSpaceMap {
        &self.map
    }

    /// Mutable region map access (heap growth). Flushes the TLB: cached
    /// entries bake in mapping bounds that a layout change invalidates.
    pub fn map_mut(&mut self) -> &mut AddressSpaceMap {
        self.tlb.flush();
        &mut self.map
    }

    /// Enable access tracing for the given regions (working-set analysis).
    /// Flushes the TLB and suppresses future fills: a TLB hit skips the
    /// trace bookkeeping, so traced runs must stay on the slow path.
    pub fn enable_tracing(&mut self, regions: &[Region]) {
        let mut t = HashMap::new();
        for &r in regions {
            if let Some(m) = self.map.region(r) {
                t.insert(r, AccessTrace::new(m));
            }
        }
        self.traces = Some(t);
        self.tlb.flush();
    }

    /// Enable or disable the translation fast path. Disabling flushes,
    /// so every subsequent access takes the slow (fully-checked) path —
    /// the `--no-fastpath` baseline for equivalence tests and benches.
    pub fn set_fastpath(&mut self, enabled: bool) {
        self.tlb.enabled = enabled;
        self.tlb.flush();
    }

    /// Whether the translation fast path is enabled.
    pub fn fastpath(&self) -> bool {
        self.tlb.enabled
    }

    /// The trace for a region, if tracing was enabled.
    pub fn trace(&self, r: Region) -> Option<&AccessTrace> {
        self.traces.as_ref()?.get(&r)
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.resident_pages
    }

    /// Checked user-mode loads + stores retired so far (see the field
    /// doc: identical on the fast and slow execution paths).
    pub fn data_accesses(&self) -> u64 {
        self.accesses
    }

    /// Writable view of the page containing `addr`, materialising it if
    /// absent and un-sharing it (copy-on-write) if a snapshot holds it.
    ///
    /// Always invalidates the page's TLB slot first: `Arc::make_mut` may
    /// replace the backing allocation (COW duplication), and a page maps
    /// to exactly one direct-mapped slot, so clearing that slot removes
    /// any cached translation to the old allocation.
    fn page_mut(&mut self, addr: u32) -> &mut Page {
        self.tlb.entries[Tlb::slot(addr)] = TlbEntry::INVALID;
        let key = addr / PAGE_SIZE;
        let resident = &mut self.resident_pages;
        let arc = self.pages.entry(key).or_insert_with(|| {
            *resident += 1;
            Arc::new([0u8; PAGE_SIZE as usize])
        });
        Arc::make_mut(arc)
    }

    /// Whether access tracing is active (the machine consults this to
    /// decide if cached instruction fetches still need bookkeeping).
    pub fn tracing_enabled(&self) -> bool {
        self.traces.is_some()
    }

    fn check(&self, addr: u32, len: u32, kind: AccessKind) -> Result<Mapping, MemFault> {
        let m = self.map.lookup(addr).ok_or(MemFault { addr, kind })?;
        let ok = match kind {
            AccessKind::Read => m.perms.read,
            AccessKind::Write => m.perms.write,
            AccessKind::Exec => m.perms.exec,
        };
        if !ok {
            return Err(MemFault { addr, kind });
        }
        // An access spanning past the mapping's end faults at the first
        // byte outside it.
        let end = addr.checked_add(len).ok_or(MemFault { addr, kind })?;
        if end > m.end {
            return Err(MemFault { addr: m.end, kind });
        }
        Ok(*m)
    }

    // --- TLB fast path ---------------------------------------------------

    /// Fast-path read: a hit yields a borrow of `len` bytes entirely
    /// inside one cached, readable, in-bounds page. Misses (including
    /// any access reaching the in-page bound `hi`) return `None` and
    /// fall to the checked slow path.
    #[inline]
    fn tlb_read(&self, addr: u32, len: usize) -> Option<&[u8]> {
        let off = (addr & PAGE_MASK) as usize;
        let e = &self.tlb.entries[Tlb::slot(addr)];
        if e.base == addr & !PAGE_MASK && e.read && off + len <= e.hi as usize {
            // SAFETY: `ptr` targets the heap allocation of an
            // `Arc<Page>` still held by `self.pages` — every operation
            // that could replace or re-share that allocation
            // (`page_mut`, `map_mut`, `enable_tracing`) invalidates the
            // entry first — and we only read through it.
            let page: &Page = unsafe { &*e.ptr };
            Some(&page[off..off + len])
        } else {
            None
        }
    }

    /// Fast-path write: like [`Self::tlb_read`] but the entry must also
    /// carry write permission from a COW-exclusive fill whose write
    /// generation is still current (snapshots revoke it by bumping the
    /// generation).
    #[inline]
    fn tlb_write(&mut self, addr: u32, len: usize) -> Option<&mut [u8]> {
        let off = (addr & PAGE_MASK) as usize;
        let e = &self.tlb.entries[Tlb::slot(addr)];
        if e.base == addr & !PAGE_MASK
            && e.write
            && off + len <= e.hi as usize
            && e.write_gen == self.tlb.generation.load(Ordering::Relaxed)
        {
            // SAFETY: as in `tlb_read`, the pointer is live; writing is
            // sound because the entry was filled from an exclusively
            // owned page (`Arc::get_mut` succeeded) and the generation
            // check proves no snapshot has re-shared it since.
            let page: &mut Page = unsafe { &mut *e.ptr };
            Some(&mut page[off..off + len])
        } else {
            None
        }
    }

    /// Install a read-only entry for `addr`'s page after a slow-path
    /// load or fetch through mapping `m`. No-ops when the fast path is
    /// off, tracing is on (hits would skip trace bookkeeping), the
    /// mapping starts mid-page, or the page is not materialised.
    fn tlb_fill_read(&mut self, addr: u32, m: &Mapping) {
        if !self.tlb.enabled || self.traces.is_some() {
            return;
        }
        let base = addr & !PAGE_MASK;
        if base < m.start {
            return;
        }
        let Some(arc) = self.pages.get(&(addr / PAGE_SIZE)) else {
            return;
        };
        self.tlb.entries[Tlb::slot(addr)] = TlbEntry {
            base,
            ptr: Arc::as_ptr(arc) as *mut Page,
            hi: (m.end - base).min(PAGE_SIZE),
            read: m.perms.read,
            write: false,
            exec: m.perms.exec,
            write_gen: 0,
            region: m.region,
        };
    }

    /// Install a read+write entry for `addr`'s page after a slow-path
    /// store through mapping `m`. Fills only from an exclusively owned
    /// page (`Arc::get_mut`), recording the current write generation —
    /// the preceding `raw_write` un-shared the page via `page_mut`, so
    /// exclusivity normally holds.
    fn tlb_fill_write(&mut self, addr: u32, m: &Mapping) {
        if !self.tlb.enabled || self.traces.is_some() {
            return;
        }
        let base = addr & !PAGE_MASK;
        if base < m.start {
            return;
        }
        let Some(arc) = self.pages.get_mut(&(addr / PAGE_SIZE)) else {
            return;
        };
        let Some(page) = Arc::get_mut(arc) else {
            return;
        };
        self.tlb.entries[Tlb::slot(addr)] = TlbEntry {
            base,
            ptr: page,
            hi: (m.end - base).min(PAGE_SIZE),
            read: m.perms.read,
            write: m.perms.write,
            exec: m.perms.exec,
            write_gen: self.tlb.generation.load(Ordering::Relaxed),
            region: m.region,
        };
    }

    /// TLB diagnostics for tests: `(page base, region, writable-now)`
    /// cached for `addr`, if its slot holds a matching valid entry.
    #[doc(hidden)]
    pub fn tlb_probe(&self, addr: u32) -> Option<(u32, Region, bool)> {
        let e = &self.tlb.entries[Tlb::slot(addr)];
        if e.base != u32::MAX && e.base == addr & !PAGE_MASK {
            let writable = e.write && e.write_gen == self.tlb.generation.load(Ordering::Relaxed);
            Some((e.base, e.region, writable))
        } else {
            None
        }
    }

    fn note(&mut self, region: Region, addr: u32, len: u32, now: u64, kind: TraceKind) {
        if let Some(traces) = self.traces.as_mut() {
            let relevant = match kind {
                TraceKind::Fetch => region == Region::Text || region == Region::LibText,
                TraceKind::Load => matches!(region, Region::Data | Region::Bss | Region::Heap),
            };
            if relevant {
                if let Some(t) = traces.get_mut(&region) {
                    t.record(addr, len, now);
                }
            }
        }
    }

    // --- raw byte plumbing (no checks) ----------------------------------

    fn raw_read(&self, addr: u32, out: &mut [u8]) {
        // Reads never materialise (or un-share) a page: an absent page
        // reads as zeros, exactly as if it were backed.
        let off = (addr % PAGE_SIZE) as usize;
        if off + out.len() <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page.
            match self.pages.get(&(addr / PAGE_SIZE)) {
                Some(page) => out.copy_from_slice(&page[off..off + out.len()]),
                None => out.fill(0),
            }
            return;
        }
        let mut a = addr;
        for b in out.iter_mut() {
            let off = (a % PAGE_SIZE) as usize;
            *b = self.pages.get(&(a / PAGE_SIZE)).map_or(0, |p| p[off]);
            a = a.wrapping_add(1);
        }
    }

    fn raw_write(&mut self, addr: u32, data: &[u8]) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + data.len() <= PAGE_SIZE as usize {
            let page = self.page_mut(addr);
            page[off..off + data.len()].copy_from_slice(data);
            return;
        }
        let mut a = addr;
        for &b in data {
            let off = (a % PAGE_SIZE) as usize;
            self.page_mut(a)[off] = b;
            a = a.wrapping_add(1);
        }
    }

    // --- checked user-mode accesses --------------------------------------

    /// Copy `buf.len()` bytes from `addr` into the caller's buffer with
    /// protection checks and load tracing — the allocation-free
    /// replacement for the old `Vec`-returning `load`.
    pub fn load_into(&mut self, addr: u32, buf: &mut [u8], now: u64) -> Result<(), MemFault> {
        self.accesses += 1;
        let len = buf.len() as u32;
        let m = self.check(addr, len, AccessKind::Read)?;
        self.note(m.region, addr, len, now, TraceKind::Load);
        self.raw_read(addr, buf);
        Ok(())
    }

    /// Load exactly `N` bytes as a fixed-size array (no heap traffic).
    pub fn load_exact<const N: usize>(&mut self, addr: u32, now: u64) -> Result<[u8; N], MemFault> {
        let mut b = [0u8; N];
        self.load_into(addr, &mut b, now)?;
        Ok(b)
    }

    /// Check + trace a `len`-byte load and append the bytes to `out`.
    /// Grows `out` but reuses its capacity, so sinks that call this in a
    /// loop (console, output file) stop allocating once warm.
    pub fn load_append(
        &mut self,
        addr: u32,
        len: u32,
        now: u64,
        out: &mut Vec<u8>,
    ) -> Result<(), MemFault> {
        self.accesses += 1;
        let m = self.check(addr, len, AccessKind::Read)?;
        self.note(m.region, addr, len, now, TraceKind::Load);
        let start = out.len();
        out.resize(start + len as usize, 0);
        self.raw_read(addr, &mut out[start..]);
        Ok(())
    }

    /// Load a 32-bit little-endian word. The TLB hit is inlined into
    /// callers (the superblock loop in particular); the miss path is
    /// outlined and cold.
    #[inline]
    pub fn load_u32(&mut self, addr: u32, now: u64) -> Result<u32, MemFault> {
        self.accesses += 1;
        if let Some(src) = self.tlb_read(addr, 4) {
            return Ok(u32::from_le_bytes(src.try_into().unwrap()));
        }
        self.load_u32_slow(addr, now)
    }

    #[cold]
    fn load_u32_slow(&mut self, addr: u32, now: u64) -> Result<u32, MemFault> {
        let m = self.check(addr, 4, AccessKind::Read)?;
        self.note(m.region, addr, 4, now, TraceKind::Load);
        let mut b = [0u8; 4];
        self.raw_read(addr, &mut b);
        self.tlb_fill_read(addr, &m);
        Ok(u32::from_le_bytes(b))
    }

    /// Load a byte.
    #[inline]
    pub fn load_u8(&mut self, addr: u32, now: u64) -> Result<u8, MemFault> {
        self.accesses += 1;
        if let Some(src) = self.tlb_read(addr, 1) {
            return Ok(src[0]);
        }
        self.load_u8_slow(addr, now)
    }

    #[cold]
    fn load_u8_slow(&mut self, addr: u32, now: u64) -> Result<u8, MemFault> {
        let m = self.check(addr, 1, AccessKind::Read)?;
        self.note(m.region, addr, 1, now, TraceKind::Load);
        let mut b = [0u8; 1];
        self.raw_read(addr, &mut b);
        self.tlb_fill_read(addr, &m);
        Ok(b[0])
    }

    /// Load a 64-bit float.
    #[inline]
    pub fn load_f64(&mut self, addr: u32, now: u64) -> Result<f64, MemFault> {
        self.accesses += 1;
        if let Some(src) = self.tlb_read(addr, 8) {
            return Ok(f64::from_le_bytes(src.try_into().unwrap()));
        }
        self.load_f64_slow(addr, now)
    }

    #[cold]
    fn load_f64_slow(&mut self, addr: u32, now: u64) -> Result<f64, MemFault> {
        let m = self.check(addr, 8, AccessKind::Read)?;
        self.note(m.region, addr, 8, now, TraceKind::Load);
        let mut b = [0u8; 8];
        self.raw_read(addr, &mut b);
        self.tlb_fill_read(addr, &m);
        Ok(f64::from_le_bytes(b))
    }

    /// Store a 32-bit word.
    #[inline]
    pub fn store_u32(&mut self, addr: u32, v: u32, _now: u64) -> Result<(), MemFault> {
        self.accesses += 1;
        if let Some(dst) = self.tlb_write(addr, 4) {
            dst.copy_from_slice(&v.to_le_bytes());
            return Ok(());
        }
        self.store_u32_slow(addr, v)
    }

    #[cold]
    fn store_u32_slow(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        let m = self.check(addr, 4, AccessKind::Write)?;
        self.raw_write(addr, &v.to_le_bytes());
        self.tlb_fill_write(addr, &m);
        Ok(())
    }

    /// Store a byte.
    #[inline]
    pub fn store_u8(&mut self, addr: u32, v: u8, _now: u64) -> Result<(), MemFault> {
        self.accesses += 1;
        if let Some(dst) = self.tlb_write(addr, 1) {
            dst[0] = v;
            return Ok(());
        }
        self.store_u8_slow(addr, v)
    }

    #[cold]
    fn store_u8_slow(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        let m = self.check(addr, 1, AccessKind::Write)?;
        self.raw_write(addr, &[v]);
        self.tlb_fill_write(addr, &m);
        Ok(())
    }

    /// Store a 64-bit float.
    #[inline]
    pub fn store_f64(&mut self, addr: u32, v: f64, _now: u64) -> Result<(), MemFault> {
        self.accesses += 1;
        if let Some(dst) = self.tlb_write(addr, 8) {
            dst.copy_from_slice(&v.to_le_bytes());
            return Ok(());
        }
        self.store_f64_slow(addr, v)
    }

    #[cold]
    fn store_f64_slow(&mut self, addr: u32, v: f64) -> Result<(), MemFault> {
        let m = self.check(addr, 8, AccessKind::Write)?;
        self.raw_write(addr, &v.to_le_bytes());
        self.tlb_fill_write(addr, &m);
        Ok(())
    }

    /// Fetch two instruction words for the decoder (exec permission),
    /// recording a text access for the first word. The second word may lie
    /// outside the mapping (the instruction may be 1 word long); it reads
    /// as 0 in that case and the decoder's `Truncated` error surfaces only
    /// if the opcode wanted an immediate.
    pub fn fetch_words(&mut self, addr: u32, now: u64) -> Result<[u32; 2], MemFault> {
        // Fast path: both words inside one cached executable page. The
        // last instructions of a mapping (where word 1 may be outside
        // it) always miss `hi` and keep the read-as-0 slow semantics.
        {
            let off = (addr & PAGE_MASK) as usize;
            let e = &self.tlb.entries[Tlb::slot(addr)];
            if e.base == addr & !PAGE_MASK && e.exec && off + 8 <= e.hi as usize {
                // SAFETY: see `tlb_read` — the entry is live and only read.
                let p = unsafe { &*e.ptr };
                return Ok([
                    u32::from_le_bytes(p[off..off + 4].try_into().unwrap()),
                    u32::from_le_bytes(p[off + 4..off + 8].try_into().unwrap()),
                ]);
            }
        }
        let m = self.check(addr, 4, AccessKind::Exec)?;
        self.note(m.region, addr, 4, now, TraceKind::Fetch);
        let mut b = [0u8; 4];
        self.raw_read(addr, &mut b);
        let w0 = u32::from_le_bytes(b);
        let w1 = if self.check(addr + 4, 4, AccessKind::Exec).is_ok() {
            self.note(m.region, addr + 4, 4, now, TraceKind::Fetch);
            let mut b1 = [0u8; 4];
            self.raw_read(addr + 4, &mut b1);
            u32::from_le_bytes(b1)
        } else {
            0
        };
        self.tlb_fill_read(addr, &m);
        Ok([w0, w1])
    }

    /// Record that the second word of a 2-word instruction was consumed
    /// (so immediate words count toward the text working set precisely).
    pub fn note_imm_fetch(&mut self, _addr: u32, _now: u64) {}

    // --- privileged access (loader, fault injector, MPI library) --------

    /// Read bytes with no protection check and no tracing.
    pub fn peek(&self, addr: u32, out: &mut [u8]) {
        self.raw_read(addr, out);
    }

    /// Read one byte, privileged.
    pub fn peek_u8(&self, addr: u32) -> u8 {
        let mut b = [0u8; 1];
        self.raw_read(addr, &mut b);
        b[0]
    }

    /// Read a u32, privileged.
    pub fn peek_u32(&self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.raw_read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Write bytes with no protection check — the `ptrace`-style poke the
    /// fault injector uses to corrupt text, data and message buffers.
    pub fn poke(&mut self, addr: u32, data: &[u8]) {
        self.raw_write(addr, data);
    }

    /// Write a u32, privileged.
    pub fn poke_u32(&mut self, addr: u32, v: u32) {
        self.raw_write(addr, &v.to_le_bytes());
    }

    /// Flip one bit at `addr` (privileged) and return the new byte value.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> u8 {
        debug_assert!(bit < 8);
        let b = self.peek_u8(addr) ^ (1 << bit);
        self.poke(addr, &[b]);
        b
    }

    // --- snapshots --------------------------------------------------------

    /// Capture the full memory state. Pages are shared with the live
    /// memory copy-on-write, so this is O(resident pages) pointer
    /// clones, not a byte copy.
    ///
    /// Every page is COW-shared with the snapshot afterwards, so all
    /// cached TLB write permissions are revoked by bumping the write
    /// generation (read entries stay valid: the shared allocations do
    /// not move, and reading shared pages is fine).
    pub fn snapshot(&self) -> MemorySnapshot {
        self.tlb.generation.fetch_add(1, Ordering::Relaxed);
        MemorySnapshot {
            map: self.map.clone(),
            pages: self.pages.clone(),
            traces: self.traces.clone(),
            resident_pages: self.resident_pages,
            accesses: self.accesses,
            fastpath: self.tlb.enabled,
        }
    }
}

/// A captured [`Memory`] state: the region map plus a COW page table.
/// Cloning a snapshot, and materialising memories from it, shares pages
/// until someone writes to them.
#[derive(Clone)]
pub struct MemorySnapshot {
    map: AddressSpaceMap,
    pages: HashMap<u32, Arc<Page>>,
    traces: Option<HashMap<Region, AccessTrace>>,
    resident_pages: usize,
    /// Data-access counter at capture time; restored forks continue the
    /// count so the mem-stall surcharge clock survives snapshot/restore.
    /// Excluded from equality like `resident_pages`: it is a clock, not
    /// memory content.
    accesses: u64,
    /// Whether the source memory had the translation fast path on;
    /// forks inherit it. Excluded from equality (like
    /// `resident_pages`): it is an execution-strategy knob, not state —
    /// the fast-vs-slow bit-identity tests compare snapshots across it.
    fastpath: bool,
}

impl MemorySnapshot {
    /// Materialise a live [`Memory`] from this snapshot (a fork: pages
    /// stay shared until written). The fork starts with a cold TLB —
    /// restore/fork is one of the invalidation boundaries.
    pub fn to_memory(&self) -> Memory {
        Memory {
            map: self.map.clone(),
            pages: self.pages.clone(),
            traces: self.traces.clone(),
            resident_pages: self.resident_pages,
            accesses: self.accesses,
            tlb: Tlb::new(self.fastpath),
        }
    }

    /// Number of resident pages captured.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// How many pages of `self` are *physically* shared (same backing
    /// allocation) with `other` — the COW property tests use this to
    /// prove forks share storage rather than deep-copying.
    pub fn pages_shared_with(&self, other: &MemorySnapshot) -> usize {
        self.pages
            .iter()
            .filter(|(k, p)| other.pages.get(k).is_some_and(|q| Arc::ptr_eq(p, q)))
            .count()
    }

    /// Logical content equality: two snapshots are equal when every
    /// mapped byte reads the same, regardless of which pages happen to
    /// be materialised (an absent page reads as zeros).
    fn content_eq(&self, other: &MemorySnapshot) -> bool {
        const ZERO: Page = [0u8; PAGE_SIZE as usize];
        let keys = self.pages.keys().chain(other.pages.keys());
        for k in keys {
            let a = self.pages.get(k).map_or(&ZERO, |p| p.as_ref());
            let b = other.pages.get(k).map_or(&ZERO, |p| p.as_ref());
            if a != b {
                return false;
            }
        }
        true
    }
}

impl PartialEq for MemorySnapshot {
    fn eq(&self, other: &Self) -> bool {
        // The address-space maps must describe the same extents; the
        // resident-page count is an allocation detail and is ignored.
        let maps_eq = self.map.iter().count() == other.map.iter().count()
            && self.map.iter().zip(other.map.iter()).all(|(a, b)| a == b);
        maps_eq && self.content_eq(other)
    }
}

impl std::fmt::Debug for MemorySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySnapshot")
            .field("resident_pages", &self.pages.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Perms, TEXT_BASE};

    fn mem() -> Memory {
        let mut map = AddressSpaceMap::new();
        map.add(Mapping {
            start: TEXT_BASE,
            end: TEXT_BASE + 0x2000,
            region: Region::Text,
            perms: Perms::RX,
        });
        map.add(Mapping {
            start: TEXT_BASE + 0x2000,
            end: TEXT_BASE + 0x4000,
            region: Region::Data,
            perms: Perms::RW,
        });
        Memory::new(map)
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        m.store_u32(a, 0xdeadbeef, 0).unwrap();
        assert_eq!(m.load_u32(a, 0).unwrap(), 0xdeadbeef);
        m.store_f64(a + 8, -2.5, 0).unwrap();
        assert_eq!(m.load_f64(a + 8, 0).unwrap(), -2.5);
        m.store_u8(a + 16, 0xab, 0).unwrap();
        assert_eq!(m.load_u8(a + 16, 0).unwrap(), 0xab);
    }

    #[test]
    fn unaligned_and_page_spanning_access() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000 + 4094; // spans a page boundary
        m.store_u32(a, 0x11223344, 0).unwrap();
        assert_eq!(m.load_u32(a, 0).unwrap(), 0x11223344);
    }

    #[test]
    fn write_to_text_faults() {
        let mut m = mem();
        let err = m.store_u32(TEXT_BASE, 1, 0).unwrap_err();
        assert_eq!(err.kind, AccessKind::Write);
        assert_eq!(err.addr, TEXT_BASE);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = mem();
        assert!(m.load_u32(0x1000, 0).is_err());
        assert!(m.load_u32(0xC000_0000, 0).is_err()); // kernel space
        assert!(m.load_u32(0xffff_fffc, 0).is_err());
    }

    #[test]
    fn access_spanning_mapping_end_faults() {
        let mut m = mem();
        let last = TEXT_BASE + 0x4000 - 2;
        let err = m.load_u32(last, 0).unwrap_err();
        assert_eq!(err.addr, TEXT_BASE + 0x4000);
    }

    #[test]
    fn exec_from_data_faults() {
        let mut m = mem();
        let err = m.fetch_words(TEXT_BASE + 0x2000, 0).unwrap_err();
        assert_eq!(err.kind, AccessKind::Exec);
    }

    #[test]
    fn poke_bypasses_protection() {
        let mut m = mem();
        m.poke_u32(TEXT_BASE, 0xfeedface);
        assert_eq!(m.peek_u32(TEXT_BASE), 0xfeedface);
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let mut m = mem();
        m.poke(TEXT_BASE, &[0b1010_1010]);
        let nb = m.flip_bit(TEXT_BASE, 0);
        assert_eq!(nb, 0b1010_1011);
        let nb = m.flip_bit(TEXT_BASE, 7);
        assert_eq!(nb, 0b0010_1011);
    }

    #[test]
    fn tracing_records_loads_and_fetches() {
        let mut m = mem();
        m.enable_tracing(&[Region::Text, Region::Data]);
        // A load at block count 5.
        m.store_u32(TEXT_BASE + 0x2000, 7, 0).unwrap();
        m.load_u32(TEXT_BASE + 0x2000, 5).unwrap();
        let t = m.trace(Region::Data).unwrap();
        assert_eq!(t.working_set_granules(0), 1);
        assert_eq!(t.working_set_granules(5), 1);
        assert_eq!(t.working_set_granules(6), 0);
        // Stores are NOT loads: only the earlier load registered.
        m.store_u32(TEXT_BASE + 0x2100, 7, 9).unwrap();
        assert_eq!(m.trace(Region::Data).unwrap().working_set_granules(6), 0);
        // A fetch registers in the text trace.
        m.fetch_words(TEXT_BASE, 3).unwrap();
        let t = m.trace(Region::Text).unwrap();
        assert!(t.working_set_granules(0) >= 1);
    }

    #[test]
    fn working_set_is_nonincreasing_in_t() {
        let mut m = mem();
        m.enable_tracing(&[Region::Data]);
        for i in 0..16u32 {
            m.load_u32(TEXT_BASE + 0x2000 + i * 4, i as u64).unwrap();
        }
        let t = m.trace(Region::Data).unwrap();
        let mut prev = usize::MAX;
        for time in 0..20u64 {
            let ws = t.working_set_granules(time);
            assert!(ws <= prev);
            prev = ws;
        }
        assert_eq!(t.working_set_granules(0), 16);
        assert_eq!(t.working_set_granules(15), 1);
        assert_eq!(t.working_set_granules(16), 0);
    }

    #[test]
    fn load_into_and_exact_match_typed_loads() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        m.store_u32(a, 0x04030201, 0).unwrap();
        m.store_u32(a + 4, 0x08070605, 0).unwrap();
        let mut buf = [0u8; 6];
        m.load_into(a, &mut buf, 0).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        let b: [u8; 4] = m.load_exact(a + 2, 0).unwrap();
        assert_eq!(b, [3, 4, 5, 6]);
        let mut out = vec![0xff];
        m.load_append(a, 3, 0, &mut out).unwrap();
        assert_eq!(out, vec![0xff, 1, 2, 3]);
        // Faulting variants report the same addresses as the old load.
        let last = TEXT_BASE + 0x4000 - 2;
        let err = m.load_into(last, &mut buf, 0).unwrap_err();
        assert_eq!(err.addr, TEXT_BASE + 0x4000);
        let err = m.load_append(0x1000, 4, 0, &mut out).unwrap_err();
        assert_eq!(err.addr, 0x1000);
        assert_eq!(out.len(), 4, "failed append must not grow the buffer");
    }

    #[test]
    fn tlb_fills_on_store_and_load() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        assert_eq!(m.tlb_probe(a), None);
        m.store_u32(a, 7, 0).unwrap();
        assert_eq!(m.tlb_probe(a), Some((a, Region::Data, true)));
        // A warm TLB still reports spanning faults at the mapping end.
        let last = TEXT_BASE + 0x4000 - 2;
        m.store_u8(last, 1, 0).unwrap();
        let err = m.load_u32(last, 0).unwrap_err();
        assert_eq!(err.addr, TEXT_BASE + 0x4000);
        // Text fetches fill a read/exec entry without write permission.
        m.poke_u32(TEXT_BASE, 0);
        m.fetch_words(TEXT_BASE, 0).unwrap();
        assert_eq!(
            m.tlb_probe(TEXT_BASE),
            Some((TEXT_BASE, Region::Text, false))
        );
    }

    #[test]
    fn snapshot_revokes_cached_write_permission() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        m.store_u32(a, 1, 0).unwrap();
        assert_eq!(m.tlb_probe(a), Some((a, Region::Data, true)));
        let snap = m.snapshot();
        // The page is now COW-shared: the cached write entry must be dead.
        assert_eq!(m.tlb_probe(a), Some((a, Region::Data, false)));
        // Writing again takes the slow path, un-shares, and must not
        // leak into the snapshot.
        m.store_u32(a, 2, 0).unwrap();
        assert_eq!(m.load_u32(a, 0).unwrap(), 2);
        assert_eq!(snap.to_memory().load_u32(a, 0).unwrap(), 1);
    }

    #[test]
    fn forked_memory_starts_cold_and_stays_isolated() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        m.store_u32(a, 5, 0).unwrap();
        let snap = m.snapshot();
        let mut fork = snap.to_memory();
        assert_eq!(fork.tlb_probe(a), None, "forks start with a cold TLB");
        fork.store_u32(a, 9, 0).unwrap();
        assert_eq!(m.load_u32(a, 0).unwrap(), 5);
        assert_eq!(fork.load_u32(a, 0).unwrap(), 9);
    }

    #[test]
    fn poke_and_map_change_invalidate_entries() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        m.store_u32(a, 1, 0).unwrap();
        assert!(m.tlb_probe(a).is_some());
        // A privileged poke rewrites through page_mut, killing the slot.
        m.poke_u32(a, 0xffff_ffff);
        assert_eq!(m.tlb_probe(a), None);
        assert_eq!(m.load_u32(a, 0).unwrap(), 0xffff_ffff);
        // Any layout change flushes everything.
        m.store_u32(a, 3, 0).unwrap();
        assert!(m.tlb_probe(a).is_some());
        let _ = m.map_mut();
        assert_eq!(m.tlb_probe(a), None);
    }

    #[test]
    fn fastpath_off_and_tracing_suppress_fills() {
        let mut m = mem();
        let a = TEXT_BASE + 0x2000;
        m.set_fastpath(false);
        assert!(!m.fastpath());
        m.store_u32(a, 1, 0).unwrap();
        assert_eq!(m.tlb_probe(a), None);
        assert_eq!(m.load_u32(a, 0).unwrap(), 1);
        let mut m = mem();
        m.enable_tracing(&[Region::Data]);
        m.store_u32(a, 2, 0).unwrap();
        m.load_u32(a, 4).unwrap();
        assert_eq!(m.tlb_probe(a), None, "traced runs must stay slow-path");
        assert_eq!(m.trace(Region::Data).unwrap().working_set_granules(4), 1);
    }

    #[test]
    fn snapshot_equality_ignores_fastpath_flag() {
        let mut fast = mem();
        let mut slow = mem();
        slow.set_fastpath(false);
        let a = TEXT_BASE + 0x2000;
        fast.store_u32(a, 42, 0).unwrap();
        slow.store_u32(a, 42, 0).unwrap();
        assert_eq!(fast.snapshot(), slow.snapshot());
    }

    #[test]
    fn resident_pages_grow_lazily() {
        let mut m = mem();
        assert_eq!(m.resident_pages(), 0);
        m.store_u8(TEXT_BASE + 0x2000, 1, 0).unwrap();
        assert_eq!(m.resident_pages(), 1);
        m.store_u8(TEXT_BASE + 0x2001, 1, 0).unwrap();
        assert_eq!(m.resident_pages(), 1);
        m.store_u8(TEXT_BASE + 0x3000, 1, 0).unwrap();
        assert_eq!(m.resident_pages(), 2);
    }
}
