//! The Linux IA-32 process memory model (Figure 1 of the paper).
//!
//! ```text
//! 0x08048000  +--------------------+
//!             |  Text              |  application code (r-x)
//!             |  Data              |  initialised globals (rw-)
//!             |  BSS               |  zero-initialised globals (rw-)
//!             |  Heap (grows up)   |  malloc arena (rw-)
//! 0x40000000  +--------------------+
//!             |  Shared libraries  |  MPI library text + data
//!             +--------------------+
//!             |  Stack (grows down)|  (rw-) top at 0xBFFFF000
//! 0xC0000000  +--------------------+
//!             |  Kernel space      |  any access faults
//! 0xFFFFFFFF  +--------------------+
//! ```
//!
//! The paper confines injection to the text, data, BSS, heap and stack of
//! the *application*, excluding the MPI library's objects; the region map
//! here is what both the machine's protection checks and the injector's
//! region targeting are built on.

use std::fmt;

/// Application text base (standard Linux ELF load address).
pub const TEXT_BASE: u32 = 0x0804_8000;
/// Shared-library (MPI library) region base.
pub const LIB_BASE: u32 = 0x4000_0000;
/// Top of the user stack.
pub const STACK_TOP: u32 = 0xBFFF_F000;
/// Start of kernel space; all user access faults.
pub const KERNEL_BASE: u32 = 0xC000_0000;
/// Default stack reservation (1 MiB, typical RLIMIT_STACK granularity).
pub const DEFAULT_STACK_SIZE: u32 = 1 << 20;
/// Page size.
pub const PAGE_SIZE: u32 = 4096;

/// Memory region kinds — the paper's injection targets plus the regions it
/// deliberately excludes (library, kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Application machine code (read/execute).
    Text,
    /// Initialised application globals.
    Data,
    /// Zero-initialised application globals.
    Bss,
    /// The malloc arena (shared by application and MPI library
    /// allocations; chunks are told apart by their 8-byte headers, §3.2).
    Heap,
    /// The user stack.
    Stack,
    /// MPI library code (excluded from injection, §3).
    LibText,
    /// MPI library globals (excluded from injection).
    LibData,
}

impl Region {
    /// The five application regions the paper injects into, in the order
    /// its result tables list them.
    pub const INJECTABLE: [Region; 5] = [
        Region::Bss,
        Region::Data,
        Region::Stack,
        Region::Text,
        Region::Heap,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Text => "Text",
            Region::Data => "Data",
            Region::Bss => "BSS",
            Region::Heap => "Heap",
            Region::Stack => "Stack",
            Region::LibText => "LibText",
            Region::LibData => "LibData",
        };
        f.write_str(s)
    }
}

/// Access permissions for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    pub read: bool,
    pub write: bool,
    pub exec: bool,
}

impl Perms {
    /// Read + execute (text).
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// Read + write (data).
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
}

/// One mapped extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// First byte of the extent.
    pub start: u32,
    /// One past the last byte.
    pub end: u32,
    pub region: Region,
    pub perms: Perms,
}

impl Mapping {
    /// Number of bytes in the extent.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` falls inside the extent.
    pub fn contains(&self, addr: u32) -> bool {
        (self.start..self.end).contains(&addr)
    }
}

/// The full address-space map of one process.
#[derive(Debug, Clone, Default)]
pub struct AddressSpaceMap {
    maps: Vec<Mapping>,
}

impl AddressSpaceMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a mapping. Extents must not overlap and `end` must not reach
    /// kernel space.
    ///
    /// # Panics
    ///
    /// Panics on overlap or kernel-space intrusion — both are loader bugs,
    /// not runtime conditions.
    pub fn add(&mut self, m: Mapping) {
        assert!(m.start < m.end, "empty mapping for {:?}", m.region);
        assert!(
            m.end <= KERNEL_BASE,
            "{:?} mapping reaches kernel space",
            m.region
        );
        for e in &self.maps {
            assert!(
                m.end <= e.start || m.start >= e.end,
                "mapping {:?} overlaps {:?}",
                m.region,
                e.region
            );
        }
        self.maps.push(m);
        self.maps.sort_by_key(|e| e.start);
    }

    /// Find the mapping containing `addr`.
    pub fn lookup(&self, addr: u32) -> Option<&Mapping> {
        let idx = self.maps.partition_point(|m| m.end <= addr);
        self.maps.get(idx).filter(|m| m.contains(addr))
    }

    /// Find the mapping for a region kind.
    pub fn region(&self, r: Region) -> Option<&Mapping> {
        self.maps.iter().find(|m| m.region == r)
    }

    /// Grow a region's extent upward to `new_end` (used by the heap brk).
    /// Returns false if that would collide with the next mapping or the
    /// kernel boundary.
    pub fn grow(&mut self, r: Region, new_end: u32) -> bool {
        let idx = match self.maps.iter().position(|m| m.region == r) {
            Some(i) => i,
            None => return false,
        };
        if new_end <= self.maps[idx].end {
            return true;
        }
        let limit = self
            .maps
            .get(idx + 1)
            .map(|m| m.start)
            .unwrap_or(KERNEL_BASE);
        if new_end > limit {
            return false;
        }
        self.maps[idx].end = new_end;
        true
    }

    /// All mappings, ordered by address.
    pub fn iter(&self) -> impl Iterator<Item = &Mapping> {
        self.maps.iter()
    }
}

/// Round `v` up to the next multiple of `align` (a power of two).
pub fn align_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_map() -> AddressSpaceMap {
        let mut m = AddressSpaceMap::new();
        m.add(Mapping {
            start: TEXT_BASE,
            end: TEXT_BASE + 0x1000,
            region: Region::Text,
            perms: Perms::RX,
        });
        m.add(Mapping {
            start: TEXT_BASE + 0x1000,
            end: TEXT_BASE + 0x2000,
            region: Region::Data,
            perms: Perms::RW,
        });
        m.add(Mapping {
            start: STACK_TOP - DEFAULT_STACK_SIZE,
            end: STACK_TOP,
            region: Region::Stack,
            perms: Perms::RW,
        });
        m
    }

    #[test]
    fn lookup_finds_containing_mapping() {
        let m = demo_map();
        assert_eq!(m.lookup(TEXT_BASE).unwrap().region, Region::Text);
        assert_eq!(m.lookup(TEXT_BASE + 0xfff).unwrap().region, Region::Text);
        assert_eq!(m.lookup(TEXT_BASE + 0x1000).unwrap().region, Region::Data);
        assert_eq!(m.lookup(STACK_TOP - 4).unwrap().region, Region::Stack);
        assert!(m.lookup(0).is_none());
        assert!(m.lookup(STACK_TOP).is_none());
        assert!(m.lookup(KERNEL_BASE).is_none());
        assert!(m.lookup(0xffff_ffff).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_panics() {
        let mut m = demo_map();
        m.add(Mapping {
            start: TEXT_BASE + 0x800,
            end: TEXT_BASE + 0x1800,
            region: Region::Heap,
            perms: Perms::RW,
        });
    }

    #[test]
    #[should_panic(expected = "kernel space")]
    fn kernel_intrusion_panics() {
        let mut m = AddressSpaceMap::new();
        m.add(Mapping {
            start: KERNEL_BASE - 4,
            end: KERNEL_BASE + 4,
            region: Region::Heap,
            perms: Perms::RW,
        });
    }

    #[test]
    fn grow_respects_neighbours() {
        let mut m = demo_map();
        // Text cannot grow into data.
        assert!(!m.grow(Region::Text, TEXT_BASE + 0x1001));
        // Data can grow until the stack mapping.
        assert!(m.grow(Region::Data, TEXT_BASE + 0x9000));
        assert_eq!(m.region(Region::Data).unwrap().end, TEXT_BASE + 0x9000);
        // Shrinking is a no-op success.
        assert!(m.grow(Region::Data, TEXT_BASE + 0x100));
        assert_eq!(m.region(Region::Data).unwrap().end, TEXT_BASE + 0x9000);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_up(1, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_up(4097, 8), 4104);
    }

    #[test]
    fn injectable_regions_match_paper_tables() {
        // Tables 2-4 list BSS, Data, Stack, Text, Heap (after registers).
        assert_eq!(Region::INJECTABLE.len(), 5);
        assert!(Region::INJECTABLE.contains(&Region::Heap));
        assert!(!Region::INJECTABLE.contains(&Region::LibText));
    }
}
