//! EBP-chain stack walking (§3.2 of the paper).
//!
//! The paper identifies injectable stack bytes by walking frames from top
//! to bottom via EBP and checking each frame's return address: "If the
//! return address falls within user application's text region, then the
//! frame immediately below is in user application's context and is subject
//! to our fault injection."
//!
//! Our compiler emits `ENTER`/`LEAVE`, so every frame looks exactly like an
//! IA-32 frame: `[EBP] -> saved EBP`, `[EBP+4] -> return address`, locals
//! below EBP, arguments above the return address.

use crate::machine::Machine;
use fl_isa::Gpr;

/// One walked stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// The frame's EBP value (address of the saved EBP slot).
    pub ebp: u32,
    /// The return address stored at `ebp + 4`.
    pub ret_addr: u32,
    /// Whether `ret_addr` lies in the *application* text region — the
    /// paper's test for an injectable frame.
    pub app_context: bool,
}

/// Walk the frame chain. Returns frames from innermost to outermost; stops
/// at a null saved-EBP (the chain terminator the loader plants), a
/// non-monotonic link, or a depth limit (corrupt chains must not loop).
pub fn walk(m: &mut Machine) -> Vec<Frame> {
    let (text_lo, text_hi) = m.app_text_range();
    let mut frames = Vec::new();
    let mut ebp = m.cpu.get(Gpr::Ebp);
    let stack_map = m.mem.map().region(crate::layout::Region::Stack).copied();
    let in_stack = |a: u32| stack_map.map(|s| s.contains(a)).unwrap_or(false);
    for _ in 0..256 {
        if ebp == 0 || !in_stack(ebp) || !ebp.is_multiple_of(4) {
            break;
        }
        let saved = m.mem.peek_u32(ebp);
        let ret = m.mem.peek_u32(ebp.wrapping_add(4));
        frames.push(Frame {
            ebp,
            ret_addr: ret,
            app_context: (text_lo..text_hi).contains(&ret),
        });
        if saved <= ebp {
            break; // chain must ascend (stack grows down)
        }
        ebp = saved;
    }
    frames
}

/// Byte extents of the stack that belong to the *application's* context —
/// the injector's stack target set.
///
/// The innermost extent `[ESP, EBP)` (live locals and spills) is included
/// when execution is currently in application text. Each walked frame with
/// an application return address contributes its slots: saved EBP, the
/// return address, and the argument/local span up to the caller's EBP.
pub fn app_stack_extents(m: &mut Machine) -> Vec<(u32, u32)> {
    let (text_lo, text_hi) = m.app_text_range();
    let eip_in_app = (text_lo..text_hi).contains(&m.cpu.eip);
    let esp = m.cpu.get(Gpr::Esp);
    let frames = walk(m);
    let mut extents = Vec::new();
    if eip_in_app {
        if let Some(f0) = frames.first() {
            if esp < f0.ebp {
                extents.push((esp, f0.ebp));
            }
        }
    }
    for (i, f) in frames.iter().enumerate() {
        if !f.app_context {
            continue;
        }
        // The frame slots: saved EBP and return address, plus the span up
        // to the next (outer) frame's base if we know it.
        let upper = frames
            .get(i + 1)
            .map(|outer| outer.ebp)
            .unwrap_or(f.ebp + 8);
        extents.push((f.ebp, upper.max(f.ebp + 8)));
    }
    extents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ProgramImage;
    use crate::layout::TEXT_BASE;
    use crate::machine::{Exit, MachineConfig};
    use fl_isa::{encode, Insn, Syscall};

    /// Build: main calls f, f calls g, g issues an MPI syscall so we can
    /// inspect the stack mid-call-chain.
    fn nested_image() -> ProgramImage {
        let mut text = Vec::new();
        let mut addr = TEXT_BASE;
        let mut put = |insns: &[Insn], text: &mut Vec<u8>| {
            let start = addr;
            for i in insns {
                let b = encode(i).to_bytes();
                addr += b.len() as u32;
                text.extend(b);
            }
            start
        };
        // We need forward addresses; compute sizes first.
        // main: enter 16; call f; leave; halt     => 1w+... let's lay out
        // by assembling twice (small fixed program).
        let main_len = 4 * (2 + 2 + 1 + 1); // enter(2w) call(2w) leave(1) halt(1)
        let f_len = 4 * (2 + 2 + 1 + 1);
        let f_addr = TEXT_BASE + main_len;
        let g_addr = f_addr + f_len;
        put(
            &[
                Insn::Enter { frame: 16 },
                Insn::Call { target: f_addr },
                Insn::Leave,
                Insn::Halt,
            ],
            &mut text,
        );
        put(
            &[
                Insn::Enter { frame: 24 },
                Insn::Call { target: g_addr },
                Insn::Leave,
                Insn::Ret,
            ],
            &mut text,
        );
        put(
            &[
                Insn::Enter { frame: 8 },
                Insn::Sys {
                    num: Syscall::MpiBarrier as u16,
                },
                Insn::Leave,
                Insn::Ret,
            ],
            &mut text,
        );
        ProgramImage {
            text,
            data: vec![0; 16],
            bss_size: 16,
            lib_text: encode(&Insn::Ret).to_bytes(),
            lib_data: Vec::new(),
            entry: TEXT_BASE,
            symbols: Vec::new(),
            heap_reserve: 4096,
        }
    }

    #[test]
    fn walk_finds_nested_app_frames() {
        let img = nested_image();
        let mut m = crate::machine::Machine::load(&img, MachineConfig::default());
        assert_eq!(m.run(10_000), Exit::Mpi(Syscall::MpiBarrier));
        let frames = walk(&mut m);
        // g's frame and f's frame both return into app text; main's frame
        // has the null terminator.
        assert!(frames.len() >= 2, "got {frames:?}");
        assert!(frames[0].app_context);
        assert!(frames[1].app_context);
        // Frames ascend in address.
        assert!(frames[0].ebp < frames[1].ebp);
    }

    #[test]
    fn extents_cover_live_frames_and_are_in_stack() {
        let img = nested_image();
        let mut m = crate::machine::Machine::load(&img, MachineConfig::default());
        assert_eq!(m.run(10_000), Exit::Mpi(Syscall::MpiBarrier));
        let extents = app_stack_extents(&mut m);
        assert!(!extents.is_empty());
        let stack = *m.mem.map().region(crate::layout::Region::Stack).unwrap();
        let mut total = 0u32;
        for (lo, hi) in extents {
            assert!(lo < hi);
            assert!(stack.contains(lo));
            assert!(stack.contains(hi - 1));
            total += hi - lo;
        }
        // The paper reports 5-10 KB stacks; our test chain is tiny but
        // must at least cover the three frames' slots.
        assert!(total >= 24, "covered only {total} bytes");
    }

    #[test]
    fn corrupted_chain_terminates_walk() {
        let img = nested_image();
        let mut m = crate::machine::Machine::load(&img, MachineConfig::default());
        assert_eq!(m.run(10_000), Exit::Mpi(Syscall::MpiBarrier));
        // Make the innermost saved-EBP point back at itself (a loop).
        let ebp = m.cpu.get(Gpr::Ebp);
        m.poke_mem(ebp, &ebp.to_le_bytes());
        let frames = walk(&mut m);
        assert_eq!(frames.len(), 1, "self-link must stop the walk");
    }

    #[test]
    fn walk_outside_stack_is_empty() {
        let img = nested_image();
        let mut m = crate::machine::Machine::load(&img, MachineConfig::default());
        m.cpu.set(Gpr::Ebp, 0x1000);
        assert!(walk(&mut m).is_empty());
    }
}
