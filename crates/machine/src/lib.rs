//! # fl-machine — a deterministic 32-bit virtual machine with the Linux
//! process memory model
//!
//! This crate is the substrate substitution for the paper's Intel x86 /
//! Linux 2.4 execution environment (see DESIGN.md). One [`Machine`] models
//! one MPI process: eight general-purpose registers, EFLAGS, an x87-style
//! FPU with 80-bit stack registers and the CWD/SWD/TWD/FIP/FCS/FOO/FOS
//! special registers, and a paged address space laid out per Figure 1 of
//! the paper (text at 0x08048000, data, BSS, a growing heap, shared
//! libraries at 0x40000000, the stack below 0xBFFFF000, kernel space
//! above 0xC0000000).
//!
//! The machine exposes the two access planes a fault-injection study
//! needs:
//!
//! * **architectural execution** — protection-checked loads/stores/fetches
//!   whose failures raise SIGSEGV/SIGILL/SIGFPE, an instruction budget
//!   that converts non-termination into a detectable hang, and syscalls
//!   for I/O, malloc and MPI;
//! * **privileged access** — `ptrace`-style peeks and pokes that the
//!   fault injector uses to flip bits in memory and registers between
//!   instructions, plus malloc-chunk maps, symbol tables and an EBP
//!   stack walker for region targeting.

pub mod f80;
pub mod fpu;
pub mod image;
pub mod layout;
pub mod machine;
pub mod malloc;
pub mod mem;
pub mod stackwalk;

pub use f80::{F80Class, F80};
pub use fpu::Fpu;
pub use image::{ProgramImage, Symbol};
pub use layout::{
    align_up, AddressSpaceMap, Mapping, Perms, Region, DEFAULT_STACK_SIZE, KERNEL_BASE, LIB_BASE,
    PAGE_SIZE, STACK_TOP, TEXT_BASE,
};
pub use machine::{
    CodeHandle, Counters, Cpu, ExecStats, Exit, Machine, MachineConfig, MachineSnapshot, MemStall,
    SharedCode, Signal, SyscallFault, SyscallFaultKind,
};
pub use malloc::{
    AllocTag, ChunkInfo, HeapAllocator, HeapError, HEADER_SIZE, MAGIC_FREE, MAGIC_MPI, MAGIC_USER,
};
pub use mem::{AccessKind, AccessTrace, MemFault, Memory, MemorySnapshot, Page, TraceKind};
pub use stackwalk::{app_stack_extents, walk, Frame};
