//! The malloc runtime, reproducing the paper's wrapped allocator (§3.2).
//!
//! The paper interposed glibc's malloc via allocation hooks, making every
//! chunk 8 bytes larger; the extra bytes hold a 32-bit identifier marking
//! the chunk as a *user* or *MPI* allocation plus the chunk size. The fault
//! injector scans the heap for chunks whose identifier says "user" and
//! flips a bit inside one.
//!
//! We implement that scheme directly: chunk headers live **inside the
//! simulated heap memory** (so a fault can corrupt a header, and a
//! corrupted header genuinely confuses both `free` and the injector's
//! scan), while an authoritative Rust-side map keeps the allocator itself
//! deterministic.

use crate::layout::{align_up, Region};
use crate::mem::Memory;
use std::collections::BTreeMap;

/// Identifier stored in the first header word of a live user chunk.
pub const MAGIC_USER: u32 = 0x55AA_0001;
/// Identifier for a live MPI-library chunk.
pub const MAGIC_MPI: u32 = 0x55AA_0002;
/// Identifier for a freed chunk.
pub const MAGIC_FREE: u32 = 0x55AA_00FE;
/// Header size: identifier + size, as in the paper.
pub const HEADER_SIZE: u32 = 8;

/// Who requested an allocation — decides the header identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocTag {
    /// Application code.
    User,
    /// The MPI library (allocation made while inside an MPI routine).
    Mpi,
}

impl AllocTag {
    /// The identifier written into the chunk header.
    pub fn magic(self) -> u32 {
        match self {
            AllocTag::User => MAGIC_USER,
            AllocTag::Mpi => MAGIC_MPI,
        }
    }
}

/// Heap-integrity failures (corrupted or invalid chunk metadata). The
/// machine escalates these to abnormal termination, as glibc would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// `free` of a pointer that is not a live chunk.
    InvalidFree(u32),
    /// The in-memory header no longer matches the allocator's records —
    /// heap corruption detected.
    CorruptHeader { chunk: u32, found_magic: u32 },
    /// The arena cannot satisfy the request.
    OutOfMemory { requested: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    Free,
    Live(AllocTag),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chunk {
    /// Total bytes including the header.
    size: u32,
    state: ChunkState,
}

/// A live-chunk descriptor exposed to the fault injector and profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Address of the 8-byte header.
    pub header: u32,
    /// Address returned to the caller (header + 8).
    pub payload: u32,
    /// Payload bytes.
    pub payload_size: u32,
    /// User or MPI.
    pub tag: AllocTag,
}

/// First-fit allocator with coalescing over the simulated heap region.
/// `Clone` captures the authoritative chunk map for world snapshots (the
/// in-memory headers ride along with the memory pages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapAllocator {
    base: u32,
    /// Current break (end of the used arena).
    brk: u32,
    /// Hard limit (end of the heap mapping's maximum extent).
    limit: u32,
    /// Chunks keyed by header address (both free and live).
    chunks: BTreeMap<u32, Chunk>,
    /// High-water mark of the break, reported as the paper's "stable
    /// heap size" in Table 1 profiles.
    peak_brk: u32,
}

impl HeapAllocator {
    /// Create an allocator over `[base, limit)`.
    pub fn new(base: u32, limit: u32) -> Self {
        assert!(base < limit);
        HeapAllocator {
            base,
            brk: base,
            limit,
            chunks: BTreeMap::new(),
            peak_brk: base,
        }
    }

    /// The heap base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Current break (one past the last byte in use).
    pub fn brk(&self) -> u32 {
        self.brk
    }

    /// Peak break over the run — the "stable point" heap size of Table 1.
    pub fn peak_bytes(&self) -> u32 {
        self.peak_brk - self.base
    }

    /// Allocate `size` bytes tagged `tag`; returns the payload address.
    /// Grows the heap mapping (brk) as needed.
    pub fn alloc(&mut self, mem: &mut Memory, size: u32, tag: AllocTag) -> Result<u32, HeapError> {
        let need = align_up(size.max(1), 8) + HEADER_SIZE;
        // First fit over free chunks.
        let mut found = None;
        for (&addr, ch) in &self.chunks {
            if ch.state == ChunkState::Free && ch.size >= need {
                found = Some((addr, ch.size));
                break;
            }
        }
        let header = if let Some((addr, have)) = found {
            // Split if the remainder can hold another chunk.
            if have - need >= HEADER_SIZE + 8 {
                self.chunks.insert(
                    addr,
                    Chunk {
                        size: need,
                        state: ChunkState::Live(tag),
                    },
                );
                self.chunks.insert(
                    addr + need,
                    Chunk {
                        size: have - need,
                        state: ChunkState::Free,
                    },
                );
                self.write_header(mem, addr + need, MAGIC_FREE, have - need);
            } else {
                self.chunks.insert(
                    addr,
                    Chunk {
                        size: have,
                        state: ChunkState::Live(tag),
                    },
                );
            }
            addr
        } else {
            // Extend the break.
            let addr = self.brk;
            let new_brk = addr
                .checked_add(need)
                .filter(|&b| b <= self.limit)
                .ok_or(HeapError::OutOfMemory { requested: size })?;
            if !mem.map_mut().grow(Region::Heap, new_brk) {
                return Err(HeapError::OutOfMemory { requested: size });
            }
            self.brk = new_brk;
            self.peak_brk = self.peak_brk.max(new_brk);
            self.chunks.insert(
                addr,
                Chunk {
                    size: need,
                    state: ChunkState::Live(tag),
                },
            );
            addr
        };
        self.write_header(mem, header, tag.magic(), self.chunks[&header].size);
        Ok(header + HEADER_SIZE)
    }

    /// Free the chunk whose payload starts at `ptr`. Validates both the
    /// Rust-side record and the in-memory header; a mismatch means the
    /// header was corrupted (e.g. by an injected fault) and is reported as
    /// heap corruption, which the machine escalates like a glibc abort.
    pub fn free(&mut self, mem: &mut Memory, ptr: u32) -> Result<(), HeapError> {
        let header = ptr.wrapping_sub(HEADER_SIZE);
        let tag = match self.chunks.get(&header) {
            Some(Chunk {
                state: ChunkState::Live(tag),
                ..
            }) => *tag,
            _ => return Err(HeapError::InvalidFree(ptr)),
        };
        let found_magic = mem.peek_u32(header);
        if found_magic != tag.magic() {
            return Err(HeapError::CorruptHeader {
                chunk: header,
                found_magic,
            });
        }
        let size = self.chunks[&header].size;
        self.chunks.insert(
            header,
            Chunk {
                size,
                state: ChunkState::Free,
            },
        );
        self.write_header(mem, header, MAGIC_FREE, size);
        self.coalesce(mem, header);
        Ok(())
    }

    fn coalesce(&mut self, mem: &mut Memory, addr: u32) {
        // Merge with the next chunk if free.
        let size = self.chunks[&addr].size;
        if let Some(next) = self.chunks.get(&(addr + size)).copied() {
            if next.state == ChunkState::Free {
                self.chunks.remove(&(addr + size));
                self.chunks.insert(
                    addr,
                    Chunk {
                        size: size + next.size,
                        state: ChunkState::Free,
                    },
                );
                self.write_header(mem, addr, MAGIC_FREE, size + next.size);
            }
        }
        // Merge with the previous chunk if free.
        if let Some((&prev_addr, prev)) = self.chunks.range(..addr).next_back() {
            if prev.state == ChunkState::Free && prev_addr + prev.size == addr {
                let merged = prev.size + self.chunks[&addr].size;
                self.chunks.remove(&addr);
                self.chunks.insert(
                    prev_addr,
                    Chunk {
                        size: merged,
                        state: ChunkState::Free,
                    },
                );
                self.write_header(mem, prev_addr, MAGIC_FREE, merged);
            }
        }
    }

    fn write_header(&self, mem: &mut Memory, header: u32, magic: u32, size: u32) {
        mem.poke_u32(header, magic);
        mem.poke_u32(header + 4, size - HEADER_SIZE);
    }

    /// All live chunks, by ascending address. The `tag` field reflects the
    /// allocator's authoritative records; the injector reads the in-memory
    /// identifier instead when emulating the paper's scan.
    pub fn live_chunks(&self) -> Vec<ChunkInfo> {
        self.chunks
            .iter()
            .filter_map(|(&addr, ch)| match ch.state {
                ChunkState::Live(tag) => Some(ChunkInfo {
                    header: addr,
                    payload: addr + HEADER_SIZE,
                    payload_size: ch.size - HEADER_SIZE,
                    tag,
                }),
                ChunkState::Free => None,
            })
            .collect()
    }

    /// Total live payload bytes with the given tag.
    pub fn live_bytes(&self, tag: AllocTag) -> u64 {
        self.live_chunks()
            .iter()
            .filter(|c| c.tag == tag)
            .map(|c| c.payload_size as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpaceMap, Mapping, Perms};

    const HEAP_BASE: u32 = 0x0a00_0000;
    const HEAP_LIMIT: u32 = 0x0a10_0000;

    fn setup() -> (Memory, HeapAllocator) {
        let mut map = AddressSpaceMap::new();
        map.add(Mapping {
            start: HEAP_BASE,
            end: HEAP_BASE + 0x1000,
            region: Region::Heap,
            perms: Perms::RW,
        });
        (Memory::new(map), HeapAllocator::new(HEAP_BASE, HEAP_LIMIT))
    }

    #[test]
    fn alloc_writes_tagged_header() {
        let (mut mem, mut h) = setup();
        let p = h.alloc(&mut mem, 100, AllocTag::User).unwrap();
        assert_eq!(mem.peek_u32(p - 8), MAGIC_USER);
        assert_eq!(mem.peek_u32(p - 4), 104); // aligned payload size
        let q = h.alloc(&mut mem, 64, AllocTag::Mpi).unwrap();
        assert_eq!(mem.peek_u32(q - 8), MAGIC_MPI);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, mut h) = setup();
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for i in 1..40u32 {
            let p = h.alloc(&mut mem, i * 12 % 257 + 1, AllocTag::User).unwrap();
            let sz = mem.peek_u32(p - 4);
            for &(s, e) in &spans {
                assert!(p + sz <= s || p - 8 >= e, "overlap");
            }
            spans.push((p - 8, p + sz));
        }
    }

    #[test]
    fn free_and_reuse() {
        let (mut mem, mut h) = setup();
        let p = h.alloc(&mut mem, 256, AllocTag::User).unwrap();
        h.free(&mut mem, p).unwrap();
        assert_eq!(mem.peek_u32(p - 8), MAGIC_FREE);
        let q = h.alloc(&mut mem, 200, AllocTag::User).unwrap();
        assert_eq!(q, p, "freed chunk should be reused first-fit");
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let (mut mem, mut h) = setup();
        let a = h.alloc(&mut mem, 64, AllocTag::User).unwrap();
        let b = h.alloc(&mut mem, 64, AllocTag::User).unwrap();
        let c = h.alloc(&mut mem, 64, AllocTag::User).unwrap();
        h.free(&mut mem, a).unwrap();
        h.free(&mut mem, c).unwrap();
        h.free(&mut mem, b).unwrap(); // merges all three
                                      // One big allocation should now fit in the merged space.
        let big = h.alloc(&mut mem, 200, AllocTag::User).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn invalid_free_detected() {
        let (mut mem, mut h) = setup();
        assert_eq!(
            h.free(&mut mem, 0x0a00_0010),
            Err(HeapError::InvalidFree(0x0a00_0010))
        );
        let p = h.alloc(&mut mem, 16, AllocTag::User).unwrap();
        h.free(&mut mem, p).unwrap();
        // Double free.
        assert!(matches!(
            h.free(&mut mem, p),
            Err(HeapError::InvalidFree(_))
        ));
    }

    #[test]
    fn corrupted_header_detected_on_free() {
        // An injected bit flip in the chunk identifier makes free() abort,
        // the heap-corruption crash path.
        let (mut mem, mut h) = setup();
        let p = h.alloc(&mut mem, 32, AllocTag::User).unwrap();
        mem.flip_bit(p - 8, 3);
        let err = h.free(&mut mem, p).unwrap_err();
        assert!(matches!(err, HeapError::CorruptHeader { .. }));
    }

    #[test]
    fn heap_grows_and_respects_limit() {
        let (mut mem, mut h) = setup();
        // Grow well past the initial 4 KiB mapping.
        let mut ptrs = Vec::new();
        for _ in 0..64 {
            ptrs.push(h.alloc(&mut mem, 1024, AllocTag::User).unwrap());
        }
        assert!(h.brk() > HEAP_BASE + 0x1000);
        assert_eq!(h.peak_bytes(), h.brk() - HEAP_BASE);
        // Exhaust the arena.
        let err = h.alloc(&mut mem, 0x0100_0000, AllocTag::User).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        // Stores inside grown area work.
        mem.store_u32(*ptrs.last().unwrap(), 42, 0).unwrap();
    }

    #[test]
    fn live_chunks_and_byte_accounting() {
        let (mut mem, mut h) = setup();
        let a = h.alloc(&mut mem, 100, AllocTag::User).unwrap();
        let _b = h.alloc(&mut mem, 50, AllocTag::Mpi).unwrap();
        let chunks = h.live_chunks();
        assert_eq!(chunks.len(), 2);
        assert_eq!(h.live_bytes(AllocTag::User), 104);
        assert_eq!(h.live_bytes(AllocTag::Mpi), 56);
        h.free(&mut mem, a).unwrap();
        assert_eq!(h.live_bytes(AllocTag::User), 0);
    }

    #[test]
    fn zero_sized_alloc_gets_distinct_pointer() {
        let (mut mem, mut h) = setup();
        let a = h.alloc(&mut mem, 0, AllocTag::User).unwrap();
        let b = h.alloc(&mut mem, 0, AllocTag::User).unwrap();
        assert_ne!(a, b);
    }
}
