//! Program images and symbol tables.
//!
//! A [`ProgramImage`] is what the FL linker produces and what a machine
//! loads: application text/data/BSS, the MPI library's text/data (mapped in
//! the shared-library region, Figure 1), an entry point, and the symbol
//! table. The symbol table is the machine-readable equivalent of the
//! `{symbolic name, address}` lists the paper extracted with `objdump`/`nm`
//! to build its fault dictionary — and, exactly as in §3.2, symbols are
//! marked by origin so library objects can be excluded from injection.

use crate::layout::{align_up, Region, LIB_BASE, PAGE_SIZE, TEXT_BASE};

/// One entry of the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbolic name (function or global variable).
    pub name: String,
    /// Virtual address.
    pub addr: u32,
    /// Extent in bytes.
    pub size: u32,
    /// Which section the symbol lives in.
    pub region: Region,
    /// True for MPI-library symbols (removed from the fault dictionary).
    pub library: bool,
}

/// A fully linked program: the application plus the MPI library stub.
#[derive(Debug, Clone, Default)]
pub struct ProgramImage {
    /// Application machine code, loaded at [`TEXT_BASE`].
    pub text: Vec<u8>,
    /// Initialised application globals, loaded just above the text.
    pub data: Vec<u8>,
    /// Zero-initialised application globals.
    pub bss_size: u32,
    /// MPI library code, loaded at [`LIB_BASE`].
    pub lib_text: Vec<u8>,
    /// MPI library globals.
    pub lib_data: Vec<u8>,
    /// Entry point (address of `main`'s startup shim).
    pub entry: u32,
    /// Combined application + library symbol table.
    pub symbols: Vec<Symbol>,
    /// Initial heap mapping size in bytes (the brk can grow beyond this
    /// up to the library region).
    pub heap_reserve: u32,
}

impl ProgramImage {
    /// Base address of the application data section.
    pub fn data_base(&self) -> u32 {
        align_up(TEXT_BASE + self.text.len() as u32, PAGE_SIZE)
    }

    /// Base address of the BSS.
    pub fn bss_base(&self) -> u32 {
        align_up(self.data_base() + self.data.len() as u32, PAGE_SIZE)
    }

    /// Base address of the heap.
    pub fn heap_base(&self) -> u32 {
        align_up(self.bss_base() + self.bss_size, PAGE_SIZE)
    }

    /// Base address of the library data section.
    pub fn lib_data_base(&self) -> u32 {
        align_up(LIB_BASE + self.lib_text.len() as u32, PAGE_SIZE)
    }

    /// Application (non-library) symbols in a region — the raw material of
    /// the paper's fault dictionary.
    pub fn app_symbols(&self, region: Region) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(move |s| !s.library && s.region == region)
    }

    /// Look up the symbol covering an address (for diagnostics).
    pub fn symbol_at(&self, addr: u32) -> Option<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.size > 0 && addr >= s.addr && addr - s.addr < s.size)
            .min_by_key(|s| s.size)
    }

    /// Link-time pre-decode: eagerly decode both text sections into a
    /// campaign-shareable [`crate::SharedCode`] store. Build this once
    /// per image and pass it to [`crate::Machine::load_shared`] so every
    /// machine — across ranks, worlds and snapshot forks — starts with
    /// warm decoded caches instead of decoding lazily on first
    /// execution.
    pub fn pre_decode(&self) -> crate::SharedCode {
        crate::SharedCode::build(self)
    }

    /// Section sizes for the Table 1 profile: (text, data, bss) in bytes,
    /// application sections only.
    pub fn section_sizes(&self) -> (u32, u32, u32) {
        (
            self.text.len() as u32,
            self.data.len() as u32,
            self.bss_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ProgramImage {
        ProgramImage {
            text: vec![0u8; 0x1800],
            data: vec![1u8; 0x400],
            bss_size: 0x2000,
            lib_text: vec![0u8; 0x200],
            lib_data: vec![0u8; 0x100],
            entry: TEXT_BASE,
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    addr: TEXT_BASE,
                    size: 64,
                    region: Region::Text,
                    library: false,
                },
                Symbol {
                    name: "grid".into(),
                    addr: 0x0804_b000,
                    size: 0x2000,
                    region: Region::Bss,
                    library: false,
                },
                Symbol {
                    name: "MPI_Send".into(),
                    addr: LIB_BASE,
                    size: 32,
                    region: Region::LibText,
                    library: true,
                },
            ],
            heap_reserve: 0x1000,
        }
    }

    #[test]
    fn section_bases_are_page_aligned_and_ordered() {
        let img = demo();
        assert_eq!(img.data_base() % PAGE_SIZE, 0);
        assert!(img.data_base() >= TEXT_BASE + img.text.len() as u32);
        assert!(img.bss_base() >= img.data_base() + img.data.len() as u32);
        assert!(img.heap_base() >= img.bss_base() + img.bss_size);
        assert!(img.heap_base() < LIB_BASE);
    }

    #[test]
    fn app_symbols_exclude_library() {
        let img = demo();
        let names: Vec<_> = img
            .app_symbols(Region::Text)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["main"]);
        assert_eq!(img.app_symbols(Region::LibText).count(), 0);
    }

    #[test]
    fn symbol_at_finds_covering_symbol() {
        let img = demo();
        assert_eq!(img.symbol_at(TEXT_BASE + 10).unwrap().name, "main");
        assert_eq!(img.symbol_at(0x0804_b100).unwrap().name, "grid");
        assert!(img.symbol_at(0x0700_0000).is_none());
    }

    #[test]
    fn section_sizes_reported() {
        let img = demo();
        assert_eq!(img.section_sizes(), (0x1800, 0x400, 0x2000));
    }
}
