//! Software model of the x87 80-bit extended-precision floating point
//! register format.
//!
//! The paper (§6.1.1) attributes part of the FPU's low fault sensitivity to
//! the register format itself: "because the FPU data registers are 80 bits
//! long ... some bits are discarded when the value in FPU data register is
//! written to memory". To reproduce that masking effect we model the
//! *storage format* bit-exactly — sign, 15-bit exponent, and a 64-bit
//! significand with an **explicit** integer bit — so that a fault injected
//! into the low bits of a register's significand is genuinely rounded away
//! by the 80→64-bit store conversion.
//!
//! Arithmetic is routed through host `f64` (a documented substitution, see
//! DESIGN.md): the paper's effects come from the storage format and the
//! tag-word semantics, not from 80-bit arithmetic precision.

/// An 80-bit x87 extended-precision value: 1 sign bit, 15 exponent bits
/// (bias 16383), 64 significand bits with an explicit integer bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F80 {
    /// Sign (bit 79) and exponent (bits 64–78); bit 15 is the sign.
    pub se: u16,
    /// Significand, bit 63 being the explicit integer bit.
    pub mantissa: u64,
}

/// Classification of an 80-bit value, matching the x87 tag-word classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F80Class {
    /// A normal, finite, non-zero number.
    Valid,
    /// Positive or negative zero.
    Zero,
    /// NaN, infinity, denormal, or an *unnormal* (non-zero exponent with a
    /// clear integer bit — invalid on the 387 and later, reads as NaN).
    Special,
}

const EXP_MASK: u16 = 0x7fff;
const BIAS80: i32 = 16383;
const BIAS64: i32 = 1023;

impl F80 {
    /// Positive zero.
    pub const ZERO: F80 = F80 { se: 0, mantissa: 0 };
    /// One.
    pub const ONE: F80 = F80 {
        se: BIAS80 as u16,
        mantissa: 1 << 63,
    };

    /// Convert from IEEE-754 binary64. Exact: every f64 is representable.
    pub fn from_f64(v: f64) -> F80 {
        let bits = v.to_bits();
        let sign = ((bits >> 63) as u16) << 15;
        let exp64 = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        if exp64 == 0 {
            if frac == 0 {
                return F80 {
                    se: sign,
                    mantissa: 0,
                };
            }
            // Subnormal f64: value = frac * 2^-1074. Normalise so the
            // integer bit (63) is set; the unbiased exponent is then
            // (index of frac's highest set bit) - 1074.
            let lz = frac.leading_zeros() as i32;
            let mant = frac << lz;
            let exp80 = (63 - lz) - 1074 + BIAS80;
            return F80 {
                se: sign | (exp80 as u16 & EXP_MASK),
                mantissa: mant,
            };
        }
        if exp64 == 0x7ff {
            // Inf or NaN: integer bit set, fraction shifted up.
            return F80 {
                se: sign | EXP_MASK,
                mantissa: (1 << 63) | (frac << 11),
            };
        }
        let exp80 = (exp64 - BIAS64 + BIAS80) as u16;
        F80 {
            se: sign | exp80,
            mantissa: (1 << 63) | (frac << 11),
        }
    }

    /// Convert to IEEE-754 binary64, rounding to nearest-even. This is the
    /// 80→64-bit store conversion that discards low significand bits —
    /// the masking effect of §6.1.1.
    pub fn to_f64(self) -> f64 {
        let sign = ((self.se >> 15) as u64) << 63;
        let exp80 = (self.se & EXP_MASK) as i32;
        let mant = self.mantissa;
        if exp80 == 0 && mant == 0 {
            return f64::from_bits(sign);
        }
        if exp80 == EXP_MASK as i32 {
            // Inf if fraction (below integer bit) is zero, else NaN.
            let frac = (mant & ((1u64 << 63) - 1)) >> 11;
            if frac == 0 && mant >> 63 == 1 {
                return f64::from_bits(sign | (0x7ffu64 << 52));
            }
            return f64::from_bits(sign | (0x7ffu64 << 52) | frac.max(1));
        }
        if mant >> 63 == 0 {
            // Denormal-80 or unnormal: the 387 treats unnormals as invalid
            // operands. Normalise what we can; a zero significand is zero.
            if mant == 0 {
                return f64::from_bits(sign);
            }
            let lz = mant.leading_zeros() as i32;
            let nm = mant << lz;
            let ne = exp80 - lz;
            return Self {
                se: (self.se & 0x8000) | (ne.max(0) as u16),
                mantissa: nm,
            }
            .to_f64_normal(sign, ne);
        }
        self.to_f64_normal(sign, exp80)
    }

    fn to_f64_normal(self, sign: u64, exp80: i32) -> f64 {
        let unbiased = exp80 - BIAS80;
        let exp64 = unbiased + BIAS64;
        if exp64 >= 0x7ff {
            // Overflows binary64: infinity.
            return f64::from_bits(sign | (0x7ffu64 << 52));
        }
        if exp64 <= 0 {
            // Underflows to subnormal or zero.
            let shift = 12 - exp64; // total right shift of the significand
            if shift >= 64 {
                return f64::from_bits(sign);
            }
            let kept = self.mantissa >> shift;
            let rem = self.mantissa & ((1u64 << shift) - 1);
            let half = 1u64 << (shift - 1);
            let rounded = kept + u64::from(rem > half || (rem == half && kept & 1 == 1));
            return f64::from_bits(sign | rounded);
        }
        // Normal: keep 53 bits (integer bit implied), round the low 11.
        let kept = self.mantissa >> 11;
        let rem = self.mantissa & 0x7ff;
        let mut frac = kept & ((1u64 << 52) - 1);
        let mut e = exp64 as u64;
        let round_up = rem > 0x400 || (rem == 0x400 && kept & 1 == 1);
        if round_up {
            frac += 1;
            if frac == 1 << 52 {
                frac = 0;
                e += 1;
                if e >= 0x7ff {
                    return f64::from_bits(sign | (0x7ffu64 << 52));
                }
            }
        }
        f64::from_bits(sign | (e << 52) | frac)
    }

    /// Classify for the x87 tag word.
    pub fn classify(self) -> F80Class {
        let exp = self.se & EXP_MASK;
        if exp == 0 && self.mantissa == 0 {
            F80Class::Zero
        } else if exp == EXP_MASK || self.mantissa >> 63 == 0 {
            // NaN/Inf, or denormal/unnormal (clear integer bit).
            F80Class::Special
        } else {
            F80Class::Valid
        }
    }

    /// The full 80-bit image as (low 64 bits, high 16 bits).
    pub fn to_bits(self) -> (u64, u16) {
        (self.mantissa, self.se)
    }

    /// Rebuild from an 80-bit image.
    pub fn from_bits(mantissa: u64, se: u16) -> F80 {
        F80 { se, mantissa }
    }

    /// Flip bit `bit` (0–79) of the 80-bit register image — the fault
    /// injector's single-event-upset model for FPU data registers.
    pub fn flip_bit(self, bit: u32) -> F80 {
        assert!(
            bit < 80,
            "bit index {bit} out of range for an 80-bit register"
        );
        if bit < 64 {
            F80 {
                se: self.se,
                mantissa: self.mantissa ^ (1 << bit),
            }
        } else {
            F80 {
                se: self.se ^ (1 << (bit - 64)),
                mantissa: self.mantissa,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            0.5,
            1.5,
            std::f64::consts::PI,
            1e300,
            -1e-300,
            f64::MIN_POSITIVE,
            f64::MAX,
            2.2250738585072014e-308,
            5e-324, // smallest subnormal
        ] {
            let f = F80::from_f64(v);
            let back = f.to_f64();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn roundtrip_inf_nan() {
        assert_eq!(F80::from_f64(f64::INFINITY).to_f64(), f64::INFINITY);
        assert_eq!(F80::from_f64(f64::NEG_INFINITY).to_f64(), f64::NEG_INFINITY);
        assert!(F80::from_f64(f64::NAN).to_f64().is_nan());
    }

    #[test]
    fn classification() {
        assert_eq!(F80::ZERO.classify(), F80Class::Zero);
        assert_eq!(F80::ONE.classify(), F80Class::Valid);
        assert_eq!(F80::from_f64(3.25).classify(), F80Class::Valid);
        assert_eq!(F80::from_f64(f64::NAN).classify(), F80Class::Special);
        assert_eq!(F80::from_f64(f64::INFINITY).classify(), F80Class::Special);
        // An f64 subnormal *normalises* in the wider 80-bit format, so it
        // is a valid extended-precision number (as on real x87).
        assert_eq!(F80::from_f64(5e-324).classify(), F80Class::Valid);
    }

    #[test]
    fn low_mantissa_flips_are_rounded_away_on_store() {
        // §6.1.1: flips below the 53-bit f64 significand vanish on store.
        let f = F80::from_f64(std::f64::consts::E);
        for bit in 0..10 {
            let flipped = f.flip_bit(bit);
            assert_eq!(
                flipped.to_f64().to_bits(),
                f.to_f64().to_bits(),
                "bit {bit} should round away"
            );
        }
    }

    #[test]
    fn high_bit_flips_change_the_value() {
        let f = F80::from_f64(std::f64::consts::E);
        // Flip the top explicit fraction bit (62) and a mid exponent bit.
        assert_ne!(f.flip_bit(62).to_f64().to_bits(), f.to_f64().to_bits());
        assert_ne!(f.flip_bit(70).to_f64().to_bits(), f.to_f64().to_bits());
    }

    #[test]
    fn exponent_flip_can_make_special() {
        // Setting all exponent bits produces inf/NaN class.
        let mut f = F80::from_f64(1.0);
        f.se |= EXP_MASK;
        assert_eq!(f.classify(), F80Class::Special);
    }

    #[test]
    fn integer_bit_flip_makes_unnormal_special() {
        let f = F80::from_f64(1.0).flip_bit(63);
        assert_eq!(f.classify(), F80Class::Special);
    }

    #[test]
    fn sign_bit_flip_negates() {
        let f = F80::from_f64(2.5).flip_bit(79);
        assert_eq!(f.to_f64(), -2.5);
    }

    #[test]
    fn overflow_to_infinity_on_store() {
        // An 80-bit value with exponent beyond f64 range stores as inf.
        let f = F80 {
            se: (BIAS80 + 2000) as u16,
            mantissa: 1 << 63,
        };
        assert_eq!(f.to_f64(), f64::INFINITY);
    }

    #[test]
    fn bits_roundtrip() {
        let f = F80::from_f64(-123.456);
        let (m, se) = f.to_bits();
        assert_eq!(F80::from_bits(m, se), f);
    }
}
