//! x87 FPU state: eight 80-bit data registers organised as a stack, plus
//! the seven special-purpose registers the paper injected into (§6.1.1):
//! CWD, SWD, TWD, FIP, FCS, FOO and FOS.
//!
//! Semantics reproduced from the paper's findings:
//!
//! * The **TOP** field lives in bits 11–13 of SWD; a fault there rotates
//!   the whole register stack.
//! * **TWD** holds two tag bits per physical register (valid / zero /
//!   special / empty). Tags are *materialised state*, not derived: a fault
//!   that flips a tag can relabel a valid number as empty or special, and
//!   a subsequent read then yields NaN — "changing one bit can turn a
//!   valid number into NaN or zero" (§6.1.1).
//! * **FIP/FCS/FOO/FOS** are written by every FPU instruction but never
//!   read, so faults in them are harmless — exactly what the paper found.
//! * Stack overflow/underflow produce the x87 "indefinite" QNaN rather
//!   than trapping (masked exceptions, the Linux default).

use crate::f80::{F80Class, F80};

/// Tag values, as encoded in TWD (two bits per register).
pub const TAG_VALID: u16 = 0;
/// Tag value for zero.
pub const TAG_ZERO: u16 = 1;
/// Tag value for NaN/infinity/denormal.
pub const TAG_SPECIAL: u16 = 2;
/// Tag value for an empty slot.
pub const TAG_EMPTY: u16 = 3;

/// The x87 indefinite QNaN produced on masked invalid operations.
fn indefinite() -> F80 {
    F80::from_f64(f64::NAN)
}

/// x87 FPU register file.
#[derive(Debug, Clone, PartialEq)]
pub struct Fpu {
    /// Physical data registers R0–R7 (stack-addressed via TOP).
    pub regs: [F80; 8],
    /// Control word.
    pub cwd: u16,
    /// Status word; TOP in bits 11–13.
    pub swd: u16,
    /// Tag word; two bits per physical register.
    pub twd: u16,
    /// Last FPU instruction pointer (offset).
    pub fip: u32,
    /// Last FPU instruction pointer (segment selector).
    pub fcs: u16,
    /// Last FPU operand pointer (offset).
    pub foo: u32,
    /// Last FPU operand pointer (segment selector).
    pub fos: u16,
}

impl Default for Fpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Fpu {
    /// Power-on state: empty stack (all tags empty), default control word.
    pub fn new() -> Self {
        Fpu {
            regs: [F80::ZERO; 8],
            cwd: 0x037f, // masked exceptions, 64-bit precision, round-nearest
            swd: 0,
            twd: 0xffff, // all empty
            fip: 0,
            fcs: 0,
            foo: 0,
            fos: 0,
        }
    }

    /// Current top-of-stack index (bits 11–13 of SWD).
    pub fn top(&self) -> u8 {
        ((self.swd >> 11) & 7) as u8
    }

    fn set_top(&mut self, t: u8) {
        self.swd = (self.swd & !(7 << 11)) | (((t & 7) as u16) << 11);
    }

    /// Physical register index of st(i).
    pub fn phys(&self, i: u8) -> usize {
        ((self.top() + i) & 7) as usize
    }

    /// Tag of physical register `p`.
    pub fn tag(&self, p: usize) -> u16 {
        (self.twd >> (2 * p)) & 3
    }

    fn set_tag(&mut self, p: usize, tag: u16) {
        self.twd = (self.twd & !(3 << (2 * p))) | ((tag & 3) << (2 * p));
    }

    fn tag_for(v: F80) -> u16 {
        match v.classify() {
            F80Class::Valid => TAG_VALID,
            F80Class::Zero => TAG_ZERO,
            F80Class::Special => TAG_SPECIAL,
        }
    }

    /// Read st(i), honouring the tag word: an *empty* tag reads as the
    /// indefinite QNaN (masked stack fault); other tags read the stored
    /// bits. A tag flipped to `special` over a valid number still reads
    /// the number — the NaN appears when the *value bits* say so or the
    /// slot is empty, matching observed x87 behaviour.
    pub fn read_st(&self, i: u8) -> F80 {
        let p = self.phys(i);
        if self.tag(p) == TAG_EMPTY {
            indefinite()
        } else {
            self.regs[p]
        }
    }

    /// Read st(i) as f64 (for arithmetic routed through the host).
    pub fn read_st_f64(&self, i: u8) -> f64 {
        self.read_st(i).to_f64()
    }

    /// Overwrite st(i) with a value, updating its tag.
    pub fn write_st(&mut self, i: u8, v: F80) {
        let p = self.phys(i);
        self.regs[p] = v;
        self.set_tag(p, Self::tag_for(v));
    }

    /// Push a value. On stack overflow (target slot not empty) the x87
    /// masked response replaces the value with the indefinite QNaN.
    pub fn push(&mut self, v: F80) {
        let new_top = (self.top().wrapping_sub(1)) & 7;
        self.set_top(new_top);
        let p = new_top as usize;
        let val = if self.tag(p) != TAG_EMPTY {
            indefinite()
        } else {
            v
        };
        self.regs[p] = val;
        self.set_tag(p, Self::tag_for(val));
    }

    /// Pop st0, returning its value (indefinite if the slot was empty).
    pub fn pop(&mut self) -> F80 {
        let p = self.phys(0);
        let v = if self.tag(p) == TAG_EMPTY {
            indefinite()
        } else {
            self.regs[p]
        };
        self.set_tag(p, TAG_EMPTY);
        self.set_top((self.top() + 1) & 7);
        v
    }

    /// Exchange st0 and st(i) (values and tags).
    pub fn fxch(&mut self, i: u8) {
        let p0 = self.phys(0);
        let pi = self.phys(i);
        self.regs.swap(p0, pi);
        let t0 = self.tag(p0);
        let ti = self.tag(pi);
        self.set_tag(p0, ti);
        self.set_tag(pi, t0);
    }

    /// Number of non-empty stack slots (used by tests and the register
    /// analysis of §6.1.1).
    pub fn depth(&self) -> usize {
        (0..8).filter(|&p| self.tag(p) != TAG_EMPTY).count()
    }

    /// Record the instruction/operand pointers (written by every FPU
    /// instruction; never read back — faults here are inert).
    pub fn note_insn(&mut self, eip: u32, operand: Option<u32>) {
        self.fip = eip;
        self.fcs = 0x23; // user code segment selector on Linux IA-32
        if let Some(a) = operand {
            self.foo = a;
            self.fos = 0x2b; // user data segment selector
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut f = Fpu::new();
        f.push(F80::from_f64(1.0));
        f.push(F80::from_f64(2.0));
        f.push(F80::from_f64(3.0));
        assert_eq!(f.depth(), 3);
        assert_eq!(f.pop().to_f64(), 3.0);
        assert_eq!(f.pop().to_f64(), 2.0);
        assert_eq!(f.pop().to_f64(), 1.0);
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn top_wraps_around() {
        let mut f = Fpu::new();
        assert_eq!(f.top(), 0);
        f.push(F80::ONE);
        assert_eq!(f.top(), 7);
        f.pop();
        assert_eq!(f.top(), 0);
    }

    #[test]
    fn tags_follow_values() {
        let mut f = Fpu::new();
        f.push(F80::ZERO);
        assert_eq!(f.tag(f.phys(0)), TAG_ZERO);
        f.write_st(0, F80::from_f64(2.5));
        assert_eq!(f.tag(f.phys(0)), TAG_VALID);
        f.write_st(0, F80::from_f64(f64::INFINITY));
        assert_eq!(f.tag(f.phys(0)), TAG_SPECIAL);
    }

    #[test]
    fn empty_read_yields_nan() {
        let f = Fpu::new();
        assert!(f.read_st(0).to_f64().is_nan());
        assert!(f.read_st(5).to_f64().is_nan());
    }

    #[test]
    fn pop_from_empty_yields_nan() {
        let mut f = Fpu::new();
        assert!(f.pop().to_f64().is_nan());
    }

    #[test]
    fn overflow_pushes_indefinite() {
        let mut f = Fpu::new();
        for i in 0..8 {
            f.push(F80::from_f64(i as f64 + 1.0));
        }
        assert_eq!(f.depth(), 8);
        // Ninth push overwrites the slot with indefinite NaN.
        f.push(F80::from_f64(9.0));
        assert!(f.read_st(0).to_f64().is_nan());
    }

    #[test]
    fn twd_flip_makes_valid_register_read_as_nan() {
        // The §6.1.1 TWD scenario: a tag bit flip relabels a valid
        // register as empty; the next read returns NaN.
        let mut f = Fpu::new();
        f.push(F80::from_f64(42.0));
        let p = f.phys(0);
        assert_eq!(f.tag(p), TAG_VALID);
        // Flip both tag bits (valid 00 -> empty 11) as two single-bit SEUs
        // or one double flip; even one bit (00 -> 01 zero) changes class.
        f.twd ^= 3 << (2 * p);
        assert!(f.read_st(0).to_f64().is_nan());
    }

    #[test]
    fn swd_top_flip_rotates_stack() {
        let mut f = Fpu::new();
        f.push(F80::from_f64(10.0)); // physical slot 7
                                     // Flip the lowest TOP bit: st0 now addresses a different slot.
        f.swd ^= 1 << 11;
        assert_ne!(f.read_st(0).to_f64(), 10.0);
    }

    #[test]
    fn fxch_swaps_values_and_tags() {
        let mut f = Fpu::new();
        f.push(F80::ZERO);
        f.push(F80::from_f64(7.0));
        f.fxch(1);
        assert_eq!(f.read_st(0).to_f64(), 0.0);
        assert_eq!(f.read_st(1).to_f64(), 7.0);
        assert_eq!(f.tag(f.phys(0)), TAG_ZERO);
        assert_eq!(f.tag(f.phys(1)), TAG_VALID);
    }

    #[test]
    fn note_insn_only_touches_pointer_regs() {
        let mut f = Fpu::new();
        let before = (f.cwd, f.swd, f.twd);
        f.note_insn(0x08048010, Some(0x0a000000));
        assert_eq!((f.cwd, f.swd, f.twd), before);
        assert_eq!(f.fip, 0x08048010);
        assert_eq!(f.foo, 0x0a000000);
    }
}
