//! Property tests: the machine is *total* — no guest program and no
//! injected fault may ever panic the host. This is the core soundness
//! property a fault injector depends on: every corruption must land in
//! one of the defined exits (halt, signal, abort, trap, budget), never in
//! UB or a crash of the simulator itself.

use fl_isa::{Gpr, RegisterName};
use fl_machine::{Exit, Machine, MachineConfig, ProgramImage, F80, TEXT_BASE};
use proptest::prelude::*;

/// A hand-assembled program: a counted loop with frame, FPU use and
/// stores to data — enough live state for flips to matter.
fn loop_program() -> ProgramImage {
    use fl_isa::insn::{AluOp, FpuBinOp};
    use fl_isa::{Cond, Insn};
    let data_base = image_from_bytes(vec![0; 4]).data_base();
    let insns = [
        Insn::Enter { frame: 16 }, // 2w @ +0
        Insn::MovI {
            rd: Gpr::Ecx,
            imm: 0,
        }, // 2w @ +8
        // loop: @ +16
        Insn::St {
            rb: Gpr::Ecx,
            base: Gpr::Ebp,
            off: -4,
        }, // 1w
        Insn::Push { rs: Gpr::Ecx }, // 1w
        Insn::Pop { rd: Gpr::Edx },  // 1w
        Insn::Alu {
            op: AluOp::Add,
            rd: Gpr::Eax,
            ra: Gpr::Ecx,
            rb: Gpr::Edx,
        }, // 1w
        Insn::StG {
            rs: Gpr::Eax,
            addr: data_base,
        }, // 2w
        Insn::FildR { rs: Gpr::Eax }, // 1w
        Insn::Fld1,                  // 1w
        Insn::Fbinp { op: FpuBinOp::Add }, // 1w
        Insn::FistpR { rd: Gpr::Esi }, // 1w
        Insn::AddI {
            rd: Gpr::Ecx,
            ra: Gpr::Ecx,
            imm: 1,
        }, // 2w
        Insn::CmpI {
            ra: Gpr::Ecx,
            imm: 4000,
        }, // 2w
        Insn::J {
            cond: Cond::Lt,
            target: TEXT_BASE + 16,
        }, // 2w
        Insn::Leave,                 // 1w
        Insn::Halt,                  // 1w
    ];
    let mut text = Vec::new();
    for i in &insns {
        text.extend(fl_isa::encode(i).to_bytes());
    }
    image_from_bytes(text)
}

/// Build an image whose text is arbitrary bytes.
fn image_from_bytes(text: Vec<u8>) -> ProgramImage {
    ProgramImage {
        text,
        data: vec![0u8; 256],
        bss_size: 256,
        lib_text: fl_isa::encode(&fl_isa::Insn::Ret).to_bytes(),
        lib_data: vec![0u8; 64],
        entry: TEXT_BASE,
        symbols: Vec::new(),
        heap_reserve: 4096,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes as text: the machine must terminate with a defined
    /// exit, never panic.
    #[test]
    fn random_text_never_panics(bytes in proptest::collection::vec(any::<u8>(), 16..512)) {
        let img = image_from_bytes(bytes);
        let mut m = Machine::load(&img, MachineConfig { budget: 20_000, ..Default::default() });
        let exit = m.run(u64::MAX);
        prop_assert!(!matches!(exit, Exit::Quantum));
    }

    /// Random valid instructions (re-encoded from random words when they
    /// decode) still terminate within budget.
    #[test]
    fn random_decodable_text_never_panics(words in proptest::collection::vec(any::<u32>(), 8..128)) {
        let mut text = Vec::new();
        for w in &words {
            if let Ok((insn, _)) = fl_isa::decode(&[*w, 0]) {
                text.extend(fl_isa::encode(&insn).to_bytes());
            }
        }
        if text.is_empty() {
            return Ok(());
        }
        let img = image_from_bytes(text);
        let mut m = Machine::load(&img, MachineConfig { budget: 50_000, ..Default::default() });
        let _ = m.run(u64::MAX);
    }

    /// Any single register bit flip at any point of a real program leaves
    /// the machine runnable to a defined exit.
    #[test]
    fn register_flips_never_panic(
        warm in 0u64..500,
        reg_idx in 0usize..10,
        bit in 0u32..32,
    ) {
        let img = loop_program();
        let mut m = Machine::load(&img, MachineConfig { budget: 200_000, ..Default::default() });
        for _ in 0..warm {
            if m.step().is_some() {
                break;
            }
        }
        let regs: Vec<RegisterName> = Gpr::ALL
            .iter()
            .map(|&g| RegisterName::Gpr(g))
            .chain([RegisterName::Eip, RegisterName::Eflags])
            .collect();
        m.flip_register_bit(regs[reg_idx], bit);
        let _ = m.run(u64::MAX);
    }

    /// Any single memory bit flip anywhere in the mapped image likewise.
    #[test]
    fn memory_flips_never_panic(
        warm in 0u64..500,
        region_pick in 0u8..4,
        offset in 0u32..4096,
        bit in 0u8..8,
    ) {
        let img = loop_program();
        let mut m = Machine::load(&img, MachineConfig { budget: 200_000, ..Default::default() });
        for _ in 0..warm {
            if m.step().is_some() {
                break;
            }
        }
        let addr = match region_pick {
            0 => TEXT_BASE + offset % (img.text.len() as u32),
            1 => img.data_base() + offset % (img.data.len().max(4) as u32),
            2 => img.bss_base() + offset % img.bss_size.max(4),
            _ => 0xBFFF_0000 + offset % 0xF000, // stack area
        };
        m.flip_mem_bit(addr, bit);
        let _ = m.run(u64::MAX);
    }

    /// The execution-fast-path correctness bar: for a random injection
    /// plan — warm-up length, register flip, memory flip, text poke,
    /// quantum schedule, budget — running with the software TLB + block
    /// dispatch and with them disabled must be bit-identical: same exit
    /// sequence, same counters, same architectural snapshot. A mid-plan
    /// snapshot fork/restore boundary is included, because that is where
    /// stale TLB entries or checked-out blocks would show up (the
    /// restored machine shares pages COW with its origin).
    #[test]
    fn fastpath_is_bit_identical_to_slowpath(
        warm in 0u64..600,
        reg_idx in 0usize..10,
        rbit in 0u32..32,
        region_pick in 0u8..4,
        offset in 0u32..4096,
        mbit in 0u8..8,
        poke_off in 0u32..64,
        poke_byte in any::<u8>(),
        quantum in 3u64..900,
        budget in 20_000u64..150_000,
    ) {
        let img = loop_program();
        let text_len = img.text.len() as u32;
        let drive = |fastpath: bool| {
            let cfg = MachineConfig { budget, fastpath, ..Default::default() };
            let mut m = Machine::load(&img, cfg);
            let mut exits = Vec::new();
            // Warm up in fixed quanta so block boundaries land mid-plan.
            while m.counters.insns < warm {
                let e = m.run(quantum);
                if e != Exit::Quantum {
                    exits.push(e);
                    break;
                }
            }
            // The injection plan: one register flip, one memory flip,
            // one multi-byte text poke (exercises icache + block-cache
            // invalidation and the TLB's poke contract).
            let regs: Vec<RegisterName> = Gpr::ALL
                .iter()
                .map(|&g| RegisterName::Gpr(g))
                .chain([RegisterName::Eip, RegisterName::Eflags])
                .collect();
            m.flip_register_bit(regs[reg_idx], rbit);
            let addr = match region_pick {
                0 => TEXT_BASE + offset % text_len,
                1 => img.data_base() + offset % (img.data.len().max(4) as u32),
                2 => img.bss_base() + offset % img.bss_size.max(4),
                _ => 0xBFFF_0000 + offset % 0xF000,
            };
            m.flip_mem_bit(addr, mbit);
            m.poke_mem(TEXT_BASE + (poke_off * 4) % text_len, &[poke_byte; 4]);
            // Fork/restore boundary: continue the origin AND a machine
            // restored from its snapshot; both must finish identically.
            let snap = m.snapshot();
            let mut restored = snap.to_machine();
            for mach in [&mut m, &mut restored] {
                loop {
                    let e = mach.run(quantum);
                    if e != Exit::Quantum {
                        exits.push(e);
                        break;
                    }
                }
            }
            (exits, m.snapshot(), restored.snapshot())
        };
        let (fast_exits, fast_end, fast_restored) = drive(true);
        let (slow_exits, slow_end, slow_restored) = drive(false);
        prop_assert_eq!(fast_exits, slow_exits);
        prop_assert_eq!(&fast_end, &slow_end);
        prop_assert_eq!(&fast_restored, &slow_restored);
        // And the fork itself must be invisible: the restored run ends
        // exactly where its origin does.
        prop_assert_eq!(&fast_end, &fast_restored);
    }

    /// Poke text *inside* a promoted, actively-running superblock: the
    /// bank must demote to private caches (copy-on-poke) and keep
    /// retiring bit-identically with a slow twin, fork/restore included.
    #[test]
    fn poke_inside_hot_trace_matches_slow(
        warm_iters in 20u64..120,
        poke_word in 0u32..16,
        poke_byte in any::<u8>(),
        quantum in 7u64..900,
    ) {
        let img = loop_program();
        let body = TEXT_BASE + 16; // loop body: 16 words from here
        let drive = |fastpath: bool| {
            let cfg = MachineConfig { budget: 150_000, fastpath, ..Default::default() };
            let mut m = Machine::load(&img, cfg);
            let mut exits = Vec::new();
            // ~16 insns per iteration: past the promotion threshold the
            // loop runs as a superblock (on the fast side).
            let warm = warm_iters * 16;
            while m.counters.insns < warm {
                let e = m.run(quantum);
                if e != Exit::Quantum {
                    exits.push(e);
                    break;
                }
            }
            m.poke_mem(body + 4 * poke_word, &[poke_byte; 4]);
            let snap = m.snapshot();
            let mut restored = snap.to_machine();
            for mach in [&mut m, &mut restored] {
                loop {
                    let e = mach.run(quantum);
                    if e != Exit::Quantum {
                        exits.push(e);
                        break;
                    }
                }
            }
            (exits, m.snapshot(), restored.snapshot(), m.exec_stats)
        };
        let (fast_exits, fast_end, fast_restored, stats) = drive(true);
        let (slow_exits, slow_end, slow_restored, _) = drive(false);
        prop_assert_eq!(fast_exits, slow_exits);
        prop_assert_eq!(&fast_end, &slow_end);
        prop_assert_eq!(&fast_restored, &slow_restored);
        // The poke hit a pristine shared bank, so it must have demoted.
        prop_assert!(stats.demotions >= 1, "text poke must demote the shared bank");
    }

    /// A machine attached to a store another machine already warmed
    /// (superblocks promoted), a cold machine that pre-decodes its own
    /// fresh store, and the slow interpreter must agree exactly: same
    /// exits, same architectural snapshot, same counters.
    #[test]
    fn warm_shared_store_matches_cold_and_slow(
        quantum in 3u64..900,
        budget in 30_000u64..150_000,
    ) {
        let img = loop_program();
        let code = img.pre_decode();
        let cfg = |fastpath| MachineConfig { budget, fastpath, ..Default::default() };
        let run_to_end = |m: &mut Machine| {
            loop {
                let e = m.run(quantum);
                if e != Exit::Quantum {
                    return e;
                }
            }
        };
        // Warm the store: one full run promotes the hot loop.
        let mut warmer = Machine::load_shared(&img, cfg(true), Some(&code));
        let exit_warming = run_to_end(&mut warmer);
        let mut warm = Machine::load_shared(&img, cfg(true), Some(&code));
        let exit_warm = run_to_end(&mut warm);
        let mut cold = Machine::load(&img, cfg(true));
        let exit_cold = run_to_end(&mut cold);
        let mut slow = Machine::load(&img, cfg(false));
        let exit_slow = run_to_end(&mut slow);
        prop_assert_eq!(exit_warming, exit_warm);
        prop_assert_eq!(exit_warm, exit_cold);
        prop_assert_eq!(exit_cold, exit_slow);
        prop_assert_eq!(warm.snapshot(), cold.snapshot());
        prop_assert_eq!(cold.snapshot(), slow.snapshot());
        prop_assert_eq!(warm.counters.insns, slow.counters.insns);
        prop_assert_eq!(warm.counters.blocks, slow.counters.blocks);
        // The warm machine really did enter promoted superblocks — when
        // the quantum leaves room for a whole pass at all (a pass is only
        // admitted when it fits under the quantum headroom).
        if quantum >= 64 {
            prop_assert!(warm.exec_stats.trace_hits > 0, "warm store must serve traces");
        }
    }

    /// F80 conversion total and idempotent through f64.
    #[test]
    fn f80_total(bits in any::<u64>(), se in any::<u16>(), flip in 0u32..80) {
        let f = F80::from_bits(bits, se);
        let v1 = f.to_f64();
        let f2 = F80::from_f64(v1);
        let v2 = f2.to_f64();
        // Conversion through f64 must be stable after one normalisation.
        prop_assert!(v1.is_nan() && v2.is_nan() || v1.to_bits() == v2.to_bits());
        let _ = f.flip_bit(flip).to_f64();
        let _ = f.classify();
    }
}
