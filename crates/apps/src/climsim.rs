//! Climsim — the CAM analogue (§4.2.3).
//!
//! A column-physics atmosphere model: each rank owns a slab of columns,
//! steps moisture/temperature/wind fields through "dynamics" and
//! "physics" phases separated by barriers, and periodically gathers
//! column means to rank 0. Reproduced signatures:
//!
//! * **Control-message-dominated traffic** (paper: 63 % headers / 37 %
//!   user): several barriers per step (pure header-only dissemination
//!   tokens) plus small eager flux messages, against only a modest bcast
//!   payload.
//! * **Large initialised tables** (CAM's 32 MB data section): seeded
//!   radiation/aerosol/ozone coefficient tables in the data section, of
//!   which the physics touches only a slice per run — the small data
//!   working set of Table 7.
//! * **Large BSS** (CAM's 38 MB): field slabs and a mostly-idle work
//!   array in zero-initialised globals.
//! * **Internal moisture sanity check**: "any moisture value below a
//!   minimum threshold can trigger a warning and abort the application"
//!   (§6.2) — the App-Detected path.
//! * **Registers an MPI error handler** (Table 4's MPI-Detected column).
//! * **Full-precision binary output** from rank 0, so silent corruption
//!   is *visible* in the output diff (unlike wavetoy's text masking).

use crate::coldgen;
use crate::AppParams;

/// Generate the Climsim FL source.
pub fn source(p: &AppParams) -> String {
    let cols = p.scale.max(8);
    let levels = 16u32;
    let cells = cols * levels;
    let steps = p.steps;
    let cold = coldgen::functions("cs_cold", p.cold_fns, p.seed);
    let warm = coldgen::functions("cs_warm", p.warm_fns, p.seed ^ 0xC11A);
    let warmup = coldgen::init_routine("cs_startup", "cs_warm", p.warm_fns, "sink");
    format!(
        r#"// Climsim: column physics with barrier-separated phases, big
// coefficient tables, and a moisture minimum check.
global int ncols = {cols};
global int nlev = {levels};
global int nsteps = {steps};
global float qmin = 0.000000000001;
global float sink = 0.75;
// Initialised coefficient tables (data section; the CAM archetype).
global float rad_table[4096] = seeded(101);
global float aerosol[2048] = seeded(202);
global float ozone[2048] = seeded(303);
// Field slabs and workspace (BSS).
global float q[{cells}];
global float t[{cells}];
global float u[{cells}];
global float work[8192];
global float flux_out[24];
global float flux_in[24];
global float forcing[32];
global float colmean[{cols}];
global int me = 0;
global int np = 0;

{cold}
{warm}
{warmup}

fn at(int c, int l) -> int {{
    return c * nlev + l;
}}

fn init_fields() {{
    var int c;
    var int l;
    for (c = 0; c < ncols; c = c + 1) {{
        for (l = 0; l < nlev; l = l + 1) {{
            q[at(c, l)] = 0.001 + 0.0005 * rad_table[(c * 11 + l) % 4096];
            t[at(c, l)] = 250.0 + 40.0 * aerosol[(c * 3 + l * 5) % 2048];
            u[at(c, l)] = 2.0 * ozone[(c + l * 7) % 2048] - 1.0;
        }}
    }}
    // Touch a slice of the workspace during setup only.
    for (c = 0; c < 512; c = c + 1) {{
        work[c] = rad_table[c] * 0.5;
    }}
}}

// Dynamics: advect wind and temperature using a narrow slice of the
// radiation table (a small working set over a big data section).
fn dynamics() {{
    var int c;
    var int l;
    var float adv;
    for (c = 0; c < ncols; c = c + 1) {{
        for (l = 0; l < nlev; l = l + 1) {{
            adv = u[at(c, l)] * 0.05;
            t[at(c, l)] = t[at(c, l)] + adv * rad_table[(l * 31 + c) % 256];
            u[at(c, l)] = u[at(c, l)] * 0.995 + 0.001 * aerosol[l % 64];
        }}
    }}
}}

// Physics: moisture tendencies with the CAM-style minimum check.
fn physics() {{
    var int c;
    var int l;
    var float tend;
    var float qv;
    for (c = 0; c < ncols; c = c + 1) {{
        for (l = 0; l < nlev; l = l + 1) {{
            tend = 0.0001 * (t[at(c, l)] - 260.0) / 260.0;
            qv = q[at(c, l)] * 0.999 + tend * 0.001 + 0.0000001;
            if (qv < qmin) {{
                print_str("WARNING: moisture below minimum\n");
                abort_msg("climsim: qneg check failed");
            }}
            if (isnan(qv)) {{
                abort_msg("climsim: NaN moisture");
            }}
            q[at(c, l)] = qv;
        }}
    }}
}}

// Small flux exchange with the right neighbour (eager, mostly header).
fn exchange_fluxes() {{
    var int right;
    var int left;
    var int l;
    right = (me + 1) % np;
    left = (me + np - 1) % np;
    for (l = 0; l < 24; l = l + 1) {{
        flux_out[l] = u[at(ncols - 1, l % nlev)] * 0.25 + t[at(0, l % nlev)] * 0.001;
    }}
    if (me % 2 == 0) {{
        mpi_send(addr(flux_out), 192, right, 31);
        mpi_recv(addr(flux_in), 192, left, 31);
    }} else {{
        mpi_recv(addr(flux_in), 192, left, 31);
        mpi_send(addr(flux_out), 192, right, 31);
    }}
    for (l = 0; l < 24; l = l + 1) {{
        u[at(0, l % nlev)] = u[at(0, l % nlev)] + flux_in[l] * 0.01;
    }}
}}

// Rank 0 gathers per-column means and writes them in full-precision
// binary (the format that does NOT mask corruption, §6.2).
fn write_history(int step) {{
    var int c;
    var int l;
    var int src;
    var float s;
    for (c = 0; c < ncols; c = c + 1) {{
        s = 0.0;
        for (l = 0; l < nlev; l = l + 1) {{
            s = s + q[at(c, l)] * 1000.0 + t[at(c, l)] * 0.001;
        }}
        colmean[c] = s / float(nlev);
    }}
    if (me == 0) {{
        for (c = 0; c < ncols; c = c + 1) {{
            fwrite_bin(colmean[c]);
        }}
        for (src = 1; src < np; src = src + 1) {{
            mpi_recv(addr(colmean), ncols * 8, src, 41);
            for (c = 0; c < ncols; c = c + 1) {{
                fwrite_bin(colmean[c]);
            }}
        }}
    }} else {{
        mpi_send(addr(colmean), ncols * 8, 0, 41);
    }}
}}

fn main() {{
    var int s;
    mpi_init();
    mpi_errhandler_set(1);
    me = mpi_rank();
    np = mpi_size();
    cs_startup();
    init_fields();
    mpi_bcast(addr(forcing), 256, 0);
    for (s = 0; s < nsteps; s = s + 1) {{
        mpi_barrier();
        dynamics();
        mpi_barrier();
        exchange_fluxes();
        mpi_barrier();
        physics();
        mpi_barrier();
        if (s % 4 == 3) {{
            write_history(s);
        }}
    }}
    mpi_finalize();
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{App, AppKind};
    use fl_machine::Region;
    use fl_mpi::WorldExit;

    #[test]
    fn climsim_runs_clean_and_writes_binary_history() {
        let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
        let mut w = app.world(100_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let out = &w.machine(0).outfile;
        assert!(!out.is_empty());
        assert_eq!(out.len() % 8, 0, "binary f64 records");
        // Decode a value; must be a plausible column mean.
        let v = f64::from_le_bytes(out[..8].try_into().unwrap());
        assert!(v.is_finite() && v.abs() < 1e6, "{v}");
    }

    #[test]
    fn climsim_traffic_is_header_dominated() {
        let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
        let mut w = app.world(100_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let mut total = fl_mpi::TrafficProfile::default();
        for r in 0..app.params.nranks {
            total.merge(w.profile(r));
        }
        assert!(
            total.header_percent() > 50.0,
            "climsim must be control-dominated, got {:.1}% header",
            total.header_percent()
        );
        assert!(total.control_msgs > total.data_msgs);
    }

    #[test]
    fn climsim_has_large_data_section() {
        let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
        let (text, data, bss) = app.image.section_sizes();
        // Seeded tables: 4096*8 + 2048*8 + 2048*8 = 64 KiB minimum.
        assert!(data >= 64 * 1024, "data {data}");
        assert!(bss >= 64 * 1024, "bss {bss}"); // work[8192] alone is 64 KiB
        assert!(text > 0);
        let tbl = app
            .image
            .symbols
            .iter()
            .find(|s| s.name == "rad_table")
            .unwrap();
        assert_eq!(tbl.region, Region::Data);
    }

    #[test]
    fn climsim_output_deterministic() {
        let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
        let g1 = app.golden(100_000_000);
        let g2 = app.golden(100_000_000);
        assert_eq!(g1.output, g2.output);
        assert!(!g1.output.is_empty());
    }

    #[test]
    fn moisture_check_fires_on_corruption() {
        // Corrupt the moisture field directly before physics: the qneg
        // check must abort (App Detected).
        let app = App::build(AppKind::Climsim, AppParams::tiny(AppKind::Climsim));
        let img = &app.image;
        let qsym = img.symbols.iter().find(|s| s.name == "q").unwrap();
        let golden = app.golden(100_000_000);
        let mut w = app.world(100_000_000);
        // Poison q[0] with a large negative value on rank 1 about a third
        // of the way through its execution.
        let addr = qsym.addr;
        w.set_injection(fl_mpi::PendingInjection {
            rank: 1,
            at_insns: golden.insns[1] / 3,
            action: Box::new(move |m| {
                m.poke_mem(addr, &(-1.0f64).to_le_bytes());
            }),
            period: None,
        });
        let e = w.run();
        assert!(
            matches!(&e, WorldExit::AppAborted { msg, .. } if msg.contains("qneg")),
            "{e:?}"
        );
    }
}
