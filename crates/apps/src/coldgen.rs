//! Cold and init-only code generation.
//!
//! The paper's working-set measurements (Tables 5–7) hinge on a property
//! of real scientific codes: *most of the text section is never executed*.
//! At time 0 only 15–30 % of the text has been touched, dropping to
//! 8–13 % once the computation phase begins — large applications carry
//! startup code, error paths, and whole features that a given run never
//! enters. Text-section fault injection is correspondingly insensitive
//! (§6.1.2: "the small working set size is the cause of the low error
//! rates").
//!
//! To reproduce that, each generated application links a configurable
//! amount of *cold* code (never called) and *warm* code (called exactly
//! once, from initialisation — the paper's "startup code" whose pages
//! leave the working set at the phase shift).

/// Deterministically generate `count` FL functions named `{prefix}_N`.
/// Bodies vary by index so the instruction mix is not uniform.
pub fn functions(prefix: &str, count: u32, seed: u64) -> String {
    let mut out = String::new();
    for i in 0..count {
        let mut s = seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let c1 = 1.0 + (next() % 997) as f64 / 1000.0;
        let c2 = (next() % 497) as f64 / 100.0;
        let c3 = 1.0 + (next() % 89) as f64 / 10.0;
        let k = 2 + next() % 5;
        match i % 3 {
            0 => out.push_str(&format!(
                "fn {prefix}_{i}(float x, int n) -> float {{
                     var float t;
                     var int j;
                     t = x * {c1:.4} + {c2:.4};
                     for (j = 0; j < n; j = j + 1) {{ t = t + float(j) * {c3:.4}; }}
                     if (t > {c3:.4}) {{ t = t - {c3:.4}; }}
                     return t;
                 }}\n"
            )),
            1 => out.push_str(&format!(
                "fn {prefix}_{i}(float x, int n) -> float {{
                     var float a;
                     var float b;
                     a = sin(x * {c1:.4});
                     b = cos(x + {c2:.4});
                     if (n % {k} == 0) {{ a = a * b; }} else {{ a = a - b * {c3:.4}; }}
                     return a + b;
                 }}\n"
            )),
            _ => out.push_str(&format!(
                "fn {prefix}_{i}(float x, int n) -> float {{
                     var float t;
                     var int j;
                     t = x;
                     j = n;
                     while (j > 0) {{ t = t * {c1:.4} + 1.0 / ({c2:.4} + t * t); j = j - 1; }}
                     t = sqrt(fabs(t)) + float(n % {k});
                     return t;
                 }}\n"
            )),
        }
    }
    out
}

/// Generate a warm-up routine `{name}` that calls `{prefix}_0 ..
/// {prefix}_{count-1}` once each and folds the results into the sink
/// global `{sink}` — this is the run-once startup code of the phase-shift
/// analysis.
pub fn init_routine(name: &str, prefix: &str, count: u32, sink: &str) -> String {
    let mut out = format!("fn {name}() {{\n    var float acc;\n    acc = {sink};\n");
    for i in 0..count {
        out.push_str(&format!(
            "    acc = acc + {prefix}_{i}(acc * 0.125, {});\n",
            i % 7 + 1
        ));
    }
    out.push_str(&format!("    {sink} = acc;\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_code_compiles_and_runs() {
        let src = format!(
            "global float sink = 0.5;\n{}\n{}\nfn main() {{ warmup(); print_flt(sink, 2); }}",
            functions("cold", 12, 42),
            init_routine("warmup", "cold", 12, "sink"),
        );
        let img = fl_lang::compile(&src).expect("cold code compiles");
        let mut m = fl_machine::Machine::load(&img, fl_machine::MachineConfig::default());
        let e = m.run(10_000_000);
        assert!(matches!(e, fl_machine::Exit::Halted(0)), "{e:?}");
        let text: String = m.console_text();
        assert!(!text.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(functions("c", 5, 7), functions("c", 5, 7));
        assert_ne!(functions("c", 5, 7), functions("c", 5, 8));
    }

    #[test]
    fn body_shapes_vary() {
        let src = functions("c", 3, 1);
        assert!(src.contains("for (j"));
        assert!(src.contains("while (j > 0)"));
        assert!(src.contains("sin("));
    }

    #[test]
    fn uncalled_cold_functions_stay_cold() {
        // Compile with cold fns but never call them; they must still link
        // (occupying text) without affecting execution.
        let src = format!(
            "{}\nfn main() {{ print_int(7); }}",
            functions("cold", 30, 9),
        );
        let img = fl_lang::compile(&src).unwrap();
        let small = fl_lang::compile("fn main() { print_int(7); }").unwrap();
        assert!(
            img.text.len() > small.text.len() * 5,
            "cold code must bulk the text"
        );
        let mut m = fl_machine::Machine::load(&img, fl_machine::MachineConfig::default());
        assert!(matches!(m.run(100_000), fl_machine::Exit::Halted(0)));
        assert_eq!(m.console_text(), "7");
    }
}
