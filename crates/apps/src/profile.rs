//! Per-process application profiles — Table 1 of the paper.
//!
//! For each application the paper reports the per-process memory layout
//! (text/data/BSS sizes from `objdump`/`nm`, the stable heap size from
//! the malloc wrapper, a 5–10 KB stack) and the per-process incoming
//! message volume with its header/user-data split.

use crate::{App, Golden};
use std::fmt::Write as _;

/// One application's Table 1 row set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileRow {
    /// Text section bytes.
    pub text: u64,
    /// Data section bytes.
    pub data: u64,
    /// BSS bytes.
    pub bss: u64,
    /// Per-process stable (peak) heap bytes: (min, max) across ranks.
    pub heap: (u64, u64),
    /// Per-process peak stack bytes: (min, max).
    pub stack: (u64, u64),
    /// Per-process incoming message volume in bytes: (min, max).
    pub messages: (u64, u64),
    /// Header percentage of the byte volume.
    pub header_pct: f64,
    /// User-data percentage.
    pub user_pct: f64,
}

/// Compute the profile from a golden run.
pub fn profile(app: &App, golden: &Golden) -> ProfileRow {
    let (text, data, bss) = app.image.section_sizes();
    let minmax = |v: &[u64]| (*v.iter().min().unwrap_or(&0), *v.iter().max().unwrap_or(&0));
    let volumes: Vec<u64> = golden.profiles.iter().map(|p| p.total_bytes()).collect();
    let mut total = fl_mpi::TrafficProfile::default();
    for p in &golden.profiles {
        total.merge(p);
    }
    ProfileRow {
        text: text as u64,
        data: data as u64,
        bss: bss as u64,
        heap: minmax(&golden.heap_peak),
        stack: minmax(&golden.stack_peak),
        messages: minmax(&volumes),
        header_pct: total.header_percent(),
        user_pct: total.user_percent(),
    }
}

fn kb(v: u64) -> String {
    format!("{:.1}", v as f64 / 1024.0)
}

fn kb_range(r: (u64, u64)) -> String {
    if r.0 == r.1 {
        kb(r.0)
    } else {
        format!("{}-{}", kb(r.0), kb(r.1))
    }
}

/// Render Table 1 for a set of applications.
pub fn render_profile_table(rows: &[(&str, ProfileRow)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {}",
        "",
        rows.iter()
            .map(|(n, _)| format!("{n:>16}"))
            .collect::<String>()
    );
    let mut line = |label: &str, f: &dyn Fn(&ProfileRow) -> String| {
        let _ = write!(out, "{label:<22}");
        for (_, r) in rows {
            let _ = write!(out, "{:>16}", f(r));
        }
        out.push('\n');
    };
    line("Memory (KB)", &|_| String::new());
    line("  Text Size", &|r| kb(r.text));
    line("  Data Size", &|r| kb(r.data));
    line("  BSS Size", &|r| kb(r.bss));
    line("  Heap Size", &|r| kb_range(r.heap));
    line("  Stack Size", &|r| kb_range(r.stack));
    line("Message (KB)", &|r| kb_range(r.messages));
    line("  Header %", &|r| format!("{:.0}", r.header_pct));
    line("  User %", &|r| format!("{:.0}", r.user_pct));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppKind, AppParams};

    #[test]
    fn profiles_reflect_table1_shape() {
        let mut rows = Vec::new();
        for kind in AppKind::ALL {
            let app = App::build(kind, AppParams::tiny(kind));
            let g = app.golden(2_000_000_000);
            rows.push((kind, profile(&app, &g)));
        }
        let get = |k: AppKind| rows.iter().find(|(kk, _)| *kk == k).unwrap().1;
        let (w, m, c) = (
            get(AppKind::Wavetoy),
            get(AppKind::Moldyn),
            get(AppKind::Climsim),
        );
        // Distribution shape of Table 1: wavetoy/moldyn user-dominated,
        // climsim header-dominated.
        assert!(w.user_pct > 80.0, "wavetoy user {:.0}%", w.user_pct);
        assert!(m.user_pct > 60.0, "moldyn user {:.0}%", m.user_pct);
        assert!(c.header_pct > 50.0, "climsim header {:.0}%", c.header_pct);
        // Climsim carries the big data+bss sections; moldyn and wavetoy
        // carry their state on the heap.
        assert!(c.data > w.data && c.data > m.data);
        assert!(w.heap.0 > 0 && m.heap.0 > w.heap.0 / 8);
        // Paper: stacks are small (5-10 KB there; small here too).
        assert!(w.stack.1 < 64 * 1024);
    }

    #[test]
    fn render_contains_all_rows() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let g = app.golden(2_000_000_000);
        let row = profile(&app, &g);
        let table = render_profile_table(&[("wavetoy", row)]);
        for label in [
            "Text Size",
            "Data Size",
            "BSS Size",
            "Heap Size",
            "Stack Size",
            "Message",
            "Header %",
            "User %",
        ] {
            assert!(table.contains(label), "{label}");
        }
    }
}
