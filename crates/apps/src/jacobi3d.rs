//! Jacobi3D — a 3-D Jacobi relaxation kernel with *application-level*
//! fault tolerance, the fl-ulfm demonstration app.
//!
//! The numerical core is the classic 7-point stencil on a fixed global
//! `n³` grid, slab-decomposed along z with one halo-plane exchange per
//! neighbour per iteration and an allreduce residual — the jac_3d shape
//! of the MPI fault-tolerance literature. What makes it different from
//! the other three apps is the *recovery protocol* written into the FL
//! program itself, in the ULFM control-point idiom:
//!
//! * every `CONTROL_POINT` iterations the ranks allgather the global
//!   grid (one broadcast per slab owner), run `mpix_comm_agree` over
//!   their fault flags, and on success `fl_ckpt_save` the gathered grid;
//! * a peer death surfaces as `MPIX_ERR_PROC_FAILED` returns from the
//!   halo receives (checked as `r + 1 == 0`) and errored collectives;
//!   any rank that sees one raises its flag and heads for the agreement;
//! * a failed agreement triggers the textbook sequence —
//!   `mpix_comm_failure_ack`, `mpix_comm_failure_get_acked`,
//!   `mpix_comm_shrink` — then `fl_ckpt_restore`, slab bounds recomputed
//!   from the *new* rank/size, and the iteration clock rolled back to
//!   the control point (`it -= it % CONTROL_POINT` in the original).
//!
//! The global grid is fixed (strong-scaled), the initial condition is a
//! function of global coordinates, and the stencil is pointwise, so the
//! final field — and rank 0's text output — is identical at any rank
//! count. That is what makes app-side recovery *checkable*: a run that
//! loses a rank mid-flight and recovers over the survivors must still
//! reproduce the fault-free golden output bit-for-bit.

use crate::coldgen;
use crate::AppParams;

/// Iterations between control points (the snippet's `CONTROL_POINT`).
pub const CONTROL_POINT: u32 = 5;

/// Generate the Jacobi3D FL source.
pub fn source(p: &AppParams) -> String {
    let n = p.scale.max(6); // global grid edge: n³ cells, any rank count
    let steps = p.steps;
    let cp = CONTROL_POINT;
    let cold = coldgen::functions("j3_cold", p.cold_fns, p.seed);
    let warm = coldgen::functions("j3_warm", p.warm_fns, p.seed ^ 0x3D3D);
    let warmup = coldgen::init_routine("j3_startup", "j3_warm", p.warm_fns, "sink");
    format!(
        r#"// Jacobi3D: 7-point stencil on a fixed n^3 grid, z-slab decomposition,
// ULFM-style app-level fault tolerance with control-point rollback.
global int nx = {n};
global int ny = {n};
global int nz = {n};
global int nsteps = {steps};
global int cp = {cp};
global float sink = 0.25;
global int me = 0;
global int np = 0;
global int lo = 0;
global int hi = 0;
global int nloc = 0;
global int gc = 0;
global int gn = 0;
global int gbuf = 0;
global int it = 0;
global int saved_it = 0;
global int flag_fault = 0;
global float eps = 0.0;
global float red[2];

{cold}
{warm}
{warmup}

// Slab cell: plane k (0 and nloc+1 are ghosts), row y, column x.
fn pcell(int g, int k, int y, int x) -> int {{
    return g + ((k * ny + y) * nx + x) * 8;
}}

// Global-grid cell in the gather/checkpoint buffer.
fn gcell(int z, int y, int x) -> int {{
    return gbuf + ((z * ny + y) * nx + x) * 8;
}}

// Slab bounds from the *current* rank and size — re-run after a shrink,
// which is what lets the survivors redistribute the fixed global grid.
fn bounds() {{
    lo = nz * me / np;
    hi = nz * (me + 1) / np;
    nloc = hi - lo;
}}

// Initial condition as a function of global coordinates: a Gaussian
// bump at the grid centre, decomposition-independent by construction.
fn init_global() {{
    var int z;
    var int y;
    var int x;
    var float dz;
    var float dy;
    var float dx;
    var float d;
    for (z = 0; z < nz; z = z + 1) {{
        for (y = 0; y < ny; y = y + 1) {{
            for (x = 0; x < nx; x = x + 1) {{
                dz = float(z) - float(nz) / 2.0;
                dy = float(y) - float(ny) / 2.0;
                dx = float(x) - float(nx) / 2.0;
                d = (dz * dz + dy * dy + dx * dx) / 5.0;
                if (d < 10.0) {{
                    storef(gcell(z, y, x), exp(0.0 - d));
                }} else {{
                    storef(gcell(z, y, x), 0.0);
                }}
            }}
        }}
    }}
}}

// Scatter this rank's planes of the global buffer into the working slab
// (ghost planes are zeroed; the next exchange refreshes them).
fn load_slab() {{
    var int k;
    var int y;
    var int x;
    for (k = 0; k <= nloc + 1; k = k + 1) {{
        for (y = 0; y < ny; y = y + 1) {{
            for (x = 0; x < nx; x = x + 1) {{
                storef(pcell(gc, k, y, x), 0.0);
                storef(pcell(gn, k, y, x), 0.0);
            }}
        }}
    }}
    for (k = 1; k <= nloc; k = k + 1) {{
        for (y = 0; y < ny; y = y + 1) {{
            for (x = 0; x < nx; x = x + 1) {{
                storef(pcell(gc, k, y, x), loadf(gcell(lo + k - 1, y, x)));
            }}
        }}
    }}
}}

// Copy the working planes into this rank's section of the global buffer
// (its contribution to the control-point allgather).
fn store_slab() {{
    var int k;
    var int y;
    var int x;
    for (k = 1; k <= nloc; k = k + 1) {{
        for (y = 0; y < ny; y = y + 1) {{
            for (x = 0; x < nx; x = x + 1) {{
                storef(gcell(lo + k - 1, y, x), loadf(pcell(gc, k, y, x)));
            }}
        }}
    }}
}}

// Halo exchange with the z-neighbours. A peer death surfaces here as an
// MPIX_ERR_PROC_FAILED completion, tested as r + 1 == 0.
fn exchange() -> int {{
    var int fail;
    var int r;
    var int pb;
    fail = 0;
    pb = ny * nx * 8;
    if (me > 0) {{
        mpi_send(pcell(gc, 1, 0, 0), pb, me - 1, 1);
    }}
    if (me < np - 1) {{
        mpi_send(pcell(gc, nloc, 0, 0), pb, me + 1, 2);
    }}
    if (me > 0) {{
        r = mpi_recv(pcell(gc, 0, 0, 0), pb, me - 1, 2);
        if (r + 1 == 0) {{
            fail = 1;
        }}
    }}
    if (me < np - 1) {{
        r = mpi_recv(pcell(gc, nloc + 1, 0, 0), pb, me + 1, 1);
        if (r + 1 == 0) {{
            fail = 1;
        }}
    }}
    return fail;
}}

// One 7-point relaxation sweep; global boundary planes stay fixed.
fn relax() {{
    var int k;
    var int y;
    var int x;
    var int z;
    var float v;
    for (k = 1; k <= nloc; k = k + 1) {{
        z = lo + k - 1;
        for (y = 0; y < ny; y = y + 1) {{
            for (x = 0; x < nx; x = x + 1) {{
                v = loadf(pcell(gc, k, y, x));
                if (z > 0 && z < nz - 1 && y > 0 && y < ny - 1 && x > 0 && x < nx - 1) {{
                    v = (loadf(pcell(gc, k - 1, y, x)) + loadf(pcell(gc, k + 1, y, x))
                        + loadf(pcell(gc, k, y - 1, x)) + loadf(pcell(gc, k, y + 1, x))
                        + loadf(pcell(gc, k, y, x - 1)) + loadf(pcell(gc, k, y, x + 1))) / 6.0;
                }}
                storef(pcell(gn, k, y, x), v);
            }}
        }}
    }}
    k = gc;
    gc = gn;
    gn = k;
}}

// Global residual via allreduce. The value is only a sanity probe (the
// output must stay decomposition-independent, and allreduce summation
// order is not); a known failure leaves it stale, which is fine — the
// iterations since the control point are rolled back anyway.
fn residual() {{
    var int k;
    var int y;
    var int x;
    var float s;
    s = 0.0;
    for (k = 1; k <= nloc; k = k + 1) {{
        for (y = 0; y < ny; y = y + 1) {{
            for (x = 0; x < nx; x = x + 1) {{
                s = s + loadf(pcell(gc, k, y, x)) * loadf(pcell(gc, k, y, x));
            }}
        }}
    }}
    red[0] = s;
    mpi_allreduce(addr(red), 1, addr(red) + 8);
    eps = red[1];
    assert(isnan(eps) == 0, "jacobi3d: residual diverged to NaN");
}}

// Control point: allgather the global grid (one broadcast per slab
// owner), agree on the fault flags, and checkpoint on success.
fn control_point() -> int {{
    var int root;
    var int res;
    var int r;
    var int rlo;
    var int rhi;
    store_slab();
    for (root = 0; root < np; root = root + 1) {{
        rlo = nz * root / np;
        rhi = nz * (root + 1) / np;
        mpi_bcast(gcell(rlo, 0, 0), (rhi - rlo) * ny * nx * 8, root);
    }}
    res = mpix_comm_agree(flag_fault);
    if (res == 0) {{
        r = fl_ckpt_save(gbuf, nz * ny * nx * 8);
        saved_it = it;
    }}
    return res;
}}

// The ULFM recovery sequence: acknowledge the failures, rebuild the
// world over the survivors, redistribute from the last checkpoint, and
// roll the iteration clock back to the control point.
fn recover() {{
    var int r;
    r = mpix_comm_failure_ack();
    r = mpix_comm_failure_get_acked();
    assert(r != 0, "jacobi3d: agreement failed but no failure acked");
    me = mpix_comm_shrink();
    np = mpi_size();
    bounds();
    r = fl_ckpt_restore(gbuf, nz * ny * nx * 8);
    if (r == 0) {{
        init_global();
        it = 0;
        saved_it = 0;
    }} else {{
        it = saved_it;
    }}
    load_slab();
    flag_fault = 0;
}}

fn setup() {{
    var int sb;
    bounds();
    sb = (nz + 2) * ny * nx * 8;
    gc = malloc(sb);
    gn = malloc(sb);
    gbuf = malloc(nz * ny * nx * 8);
    init_global();
    load_slab();
}}

// Rank 0 writes the gathered final field: a sequential global checksum
// and the centreline, both decomposition-independent.
fn write_output() {{
    var int z;
    var int y;
    var int x;
    var float s;
    if (me == 0) {{
        s = 0.0;
        for (z = 0; z < nz; z = z + 1) {{
            for (y = 0; y < ny; y = y + 1) {{
                for (x = 0; x < nx; x = x + 1) {{
                    s = s + loadf(gcell(z, y, x));
                }}
            }}
        }}
        fwrite_str("SUM ");
        fwrite_flt(s, 4);
        fwrite_str("\n");
        for (z = 0; z < nz; z = z + 1) {{
            fwrite_flt(loadf(gcell(z, ny / 2, nx / 2)), 4);
            fwrite_str(" ");
        }}
        fwrite_str("\n");
    }}
}}

fn main() {{
    var int r;
    var int done;
    mpi_init();
    me = mpi_rank();
    np = mpi_size();
    j3_startup();
    setup();
    it = 0;
    done = 0;
    while (done == 0) {{
        if (flag_fault != 0 || it % cp == 0 || it >= nsteps) {{
            r = control_point();
            if (r != 0) {{
                recover();
            }} else {{
                if (it >= nsteps) {{
                    done = 1;
                }}
            }}
        }}
        if (done == 0) {{
            r = exchange();
            if (r != 0) {{
                flag_fault = 1;
            }}
            if (flag_fault == 0) {{
                relax();
                residual();
                it = it + 1;
            }}
        }}
    }}
    write_output();
    mpi_finalize();
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use crate::{App, AppKind, AppParams};
    use fl_mpi::WorldExit;

    #[test]
    fn jacobi3d_runs_clean_and_writes_output() {
        let app = App::build(AppKind::Jacobi3d, AppParams::tiny(AppKind::Jacobi3d));
        let mut w = app.world(200_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let out = String::from_utf8(w.machine(0).outfile.clone()).unwrap();
        assert!(out.starts_with("SUM "), "{out}");
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn jacobi3d_output_is_rank_count_independent() {
        // The whole premise of app-side recovery via shrink: the fixed
        // global grid yields the same answer at any decomposition.
        let p4 = AppParams::tiny(AppKind::Jacobi3d);
        let mut p3 = p4;
        p3.nranks = p4.nranks - 1;
        let a4 = App::build(AppKind::Jacobi3d, p4);
        let a3 = App::build(AppKind::Jacobi3d, p3);
        let g4 = a4.golden(200_000_000);
        let g3 = a3.golden(200_000_000);
        assert!(!g4.output.is_empty());
        assert_eq!(
            g4.output, g3.output,
            "jacobi3d output must not depend on the rank count"
        );
    }

    #[test]
    fn jacobi3d_survives_a_rank_kill_by_shrinking() {
        // The headline property: a rank dies mid-run, the application
        // notices via MPIX_ERR_PROC_FAILED, agrees, shrinks, restores
        // its control-point checkpoint over the survivors — and still
        // produces the fault-free golden output.
        let app = App::build(AppKind::Jacobi3d, AppParams::tiny(AppKind::Jacobi3d));
        let golden = app.golden(200_000_000);
        let mut w = app.world(2_000_000_000);
        w.set_rank_kill(fl_mpi::RankKill {
            rank: 1,
            at_blocks: golden.blocks[1] / 2,
            wedge: false,
        });
        assert_eq!(w.run(), WorldExit::Clean);
        assert_eq!(w.nranks(), app.params.nranks - 1);
        assert!(w.app_shrinks() > 0);
        assert_eq!(app.comparable_output(&w), golden.output);
    }

    #[test]
    fn jacobi3d_is_deterministic() {
        let app = App::build(AppKind::Jacobi3d, AppParams::tiny(AppKind::Jacobi3d));
        let g1 = app.golden(200_000_000);
        let g2 = app.golden(200_000_000);
        assert_eq!(g1.output, g2.output);
        assert_eq!(g1.insns, g2.insns);
    }
}
