//! # fl-apps — the FaultLab application suite
//!
//! Four MPI applications written in FL. Three stand in for the paper's
//! test suite (§4.2) with each code's behavioural archetype preserved;
//! the fourth, [`AppKind::Jacobi3d`], is the fl-ulfm demonstrator — the
//! only app that *survives* rank death by itself, using the MPIX-style
//! fault-tolerance builtins:
//!
//! | App | Paper counterpart | Archetype |
//! |---|---|---|
//! | [`AppKind::Wavetoy`] | Cactus Wavetoy | data-dominated traffic, near-zero payloads, low-precision text output, **no** internal checks |
//! | [`AppKind::Moldyn`] | NAMD 2.5b2 | nondeterministic arrival order, message checksums, NaN/bound checks, MPI error handler, heap-dominant |
//! | [`AppKind::Climsim`] | CAM 2.0.2 | control-dominated traffic, big initialised tables, moisture minimum check, MPI error handler, binary output |
//! | [`AppKind::Jacobi3d`] | jac_3d (ULFM literature) | app-level fault tolerance: control-point checkpoints, `mpix_comm_agree`/`mpix_comm_shrink` recovery |
//!
//! Each app is generated from parameters (problem size, step count, and
//! cold/warm code volume for realistic text working sets), compiled with
//! `fl-lang`, and returned with its [`ProgramImage`] ready to load into an
//! [`MpiWorld`].

pub mod climsim;
pub mod coldgen;
pub mod jacobi3d;
pub mod moldyn;
pub mod profile;
pub mod wavetoy;

pub use profile::{profile, render_profile_table, ProfileRow};

use fl_machine::{MachineConfig, ProgramImage};
use fl_mpi::{MpiWorld, TrafficProfile, WorldConfig, WorldExit};

/// Which application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Cactus Wavetoy analogue.
    Wavetoy,
    /// NAMD analogue.
    Moldyn,
    /// CAM analogue.
    Climsim,
    /// Jacobi 3-D relaxation with ULFM-style app-level fault tolerance.
    Jacobi3d,
}

impl AppKind {
    /// All four applications: the paper's three, then the fl-ulfm
    /// demonstrator.
    pub const ALL: [AppKind; 4] = [
        AppKind::Wavetoy,
        AppKind::Moldyn,
        AppKind::Climsim,
        AppKind::Jacobi3d,
    ];

    /// The paper's test suite (§4.2), in table order. The
    /// paper-reproduction artifacts (Tables 1–7, message analysis) are
    /// generated over exactly this set so their committed outputs stay
    /// pinned to the source tables; jacobi3d joins the fault-tolerance
    /// campaigns through [`AppKind::ALL`].
    pub const PAPER: [AppKind; 3] = [AppKind::Wavetoy, AppKind::Moldyn, AppKind::Climsim];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Wavetoy => "wavetoy",
            AppKind::Moldyn => "moldyn",
            AppKind::Climsim => "climsim",
            AppKind::Jacobi3d => "jacobi3d",
        }
    }

    /// The paper application this stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            AppKind::Wavetoy => "Cactus Wavetoy",
            AppKind::Moldyn => "NAMD",
            AppKind::Climsim => "CAM",
            AppKind::Jacobi3d => "jac_3d",
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AppKind {
    type Err = String;

    /// Parses the canonical [`AppKind::name`] strings — the single
    /// source of truth for CLI arguments and config files.
    fn from_str(s: &str) -> Result<AppKind, String> {
        Ok(match s {
            "wavetoy" => AppKind::Wavetoy,
            "moldyn" => AppKind::Moldyn,
            "climsim" => AppKind::Climsim,
            "jacobi3d" => AppKind::Jacobi3d,
            other => return Err(format!("unknown app `{other}`")),
        })
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppParams {
    /// Number of MPI ranks.
    pub nranks: u16,
    /// Time steps.
    pub steps: u32,
    /// App-specific base size (rows for wavetoy, atoms/rank for moldyn,
    /// columns/rank for climsim).
    pub scale: u32,
    /// Cold (never-called) generated functions.
    pub cold_fns: u32,
    /// Warm (called once at startup) generated functions.
    pub warm_fns: u32,
    /// Generation seed.
    pub seed: u64,
}

impl AppParams {
    /// Default experiment-scale parameters for an app (used by the
    /// campaign harness; minutes-scale runs in the paper map to ~10⁶
    /// instructions per rank here).
    pub fn default_for(kind: AppKind) -> AppParams {
        match kind {
            AppKind::Wavetoy => AppParams {
                nranks: 4,
                steps: 12,
                scale: 12, // 12 rows x 48 cols per rank
                cold_fns: 180,
                warm_fns: 30,
                seed: 0x57A7,
            },
            AppKind::Moldyn => AppParams {
                nranks: 4,
                steps: 5,
                scale: 40, // atoms per rank (648-byte exchanges: rendezvous
                // under moldyn's 512-byte eager threshold)
                cold_fns: 260,
                warm_fns: 24,
                seed: 0x0A70,
            },
            AppKind::Climsim => AppParams {
                nranks: 4,
                steps: 10,
                scale: 24, // columns per rank
                cold_fns: 220,
                warm_fns: 40,
                seed: 0xC114,
            },
            AppKind::Jacobi3d => AppParams {
                nranks: 4,
                steps: 12,
                scale: 10, // global grid edge (10^3 cells, strong-scaled)
                cold_fns: 160,
                warm_fns: 24,
                seed: 0x3D3D,
            },
        }
    }

    /// Small parameters for fast unit tests.
    pub fn tiny(kind: AppKind) -> AppParams {
        match kind {
            AppKind::Wavetoy => AppParams {
                nranks: 3,
                steps: 6,
                scale: 8,
                cold_fns: 20,
                warm_fns: 6,
                seed: 0x57A7,
            },
            AppKind::Moldyn => AppParams {
                nranks: 3,
                steps: 3,
                scale: 36,
                cold_fns: 20,
                warm_fns: 6,
                seed: 0x0A70,
            },
            AppKind::Climsim => AppParams {
                nranks: 3,
                steps: 8,
                scale: 8,
                cold_fns: 20,
                warm_fns: 6,
                seed: 0xC114,
            },
            AppKind::Jacobi3d => AppParams {
                nranks: 3,
                steps: 7,
                scale: 8,
                cold_fns: 20,
                warm_fns: 6,
                seed: 0x3D3D,
            },
        }
    }
}

/// Application build variants for the design-choice ablations of
/// §6.2/§7 (see DESIGN.md experiments E11 and E12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppVariant {
    /// The configuration the paper's tables were measured on.
    Standard,
    /// Moldyn without its message checksums (identical traffic; neither
    /// side computes sums) — isolates the checksum's cost and coverage.
    NoChecksums,
    /// Wavetoy writing raw IEEE-754 output instead of 4-digit text —
    /// removes the output-format masking of silent corruption.
    BinaryOutput,
    /// Any app compiled with control-flow signature checking (§8.2's
    /// software-signature defence against text/EIP faults).
    ControlFlowChecks,
}

/// A built application: generated source, compiled image, parameters.
pub struct App {
    /// Which app this is.
    pub kind: AppKind,
    /// The generated FL source (kept for inspection/debugging).
    pub source: String,
    /// The linked program image.
    pub image: ProgramImage,
    /// The parameters it was generated with.
    pub params: AppParams,
}

/// A fault-free reference run: the comparison baseline for the
/// Incorrect-Output classification (§5.1) and the sampling frame for
/// injection times and message offsets (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Golden {
    /// The app's comparable output (see [`App::comparable_output`]).
    pub output: Vec<u8>,
    /// Per-rank retired instruction counts.
    pub insns: Vec<u64>,
    /// Per-rank channel-level received bytes (the message-volume profile
    /// used to draw injection offsets, §3.3).
    pub recv_bytes: Vec<u64>,
    /// Per-rank traffic profiles.
    pub profiles: Vec<TrafficProfile>,
    /// Per-rank basic-block counts.
    pub blocks: Vec<u64>,
    /// Per-rank peak heap size in bytes (Table 1's stable heap size).
    pub heap_peak: Vec<u64>,
    /// Per-rank peak stack usage in bytes (the paper measured 5–10 KB).
    pub stack_peak: Vec<u64>,
}

impl App {
    /// Generate and compile an application.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to compile — that is a bug in
    /// the generator, not a runtime condition.
    pub fn build(kind: AppKind, params: AppParams) -> App {
        Self::build_variant(kind, params, AppVariant::Standard)
    }

    /// Generate and compile an ablation variant (see [`AppVariant`]).
    ///
    /// # Panics
    ///
    /// Panics on a generator bug (compile failure) or on a variant that
    /// does not apply to the requested application.
    pub fn build_variant(kind: AppKind, params: AppParams, variant: AppVariant) -> App {
        let source = match (kind, variant) {
            (_, AppVariant::Standard | AppVariant::ControlFlowChecks) => match kind {
                AppKind::Wavetoy => wavetoy::source(&params),
                AppKind::Moldyn => moldyn::source(&params),
                AppKind::Climsim => climsim::source(&params),
                AppKind::Jacobi3d => jacobi3d::source(&params),
            },
            (AppKind::Wavetoy, AppVariant::BinaryOutput) => wavetoy::source_with(&params, true),
            (AppKind::Moldyn, AppVariant::NoChecksums) => moldyn::source_with(&params, false),
            (k, v) => panic!("variant {v:?} does not apply to {}", k.name()),
        };
        let opts = fl_lang::CompileOptions {
            control_flow_checks: variant == AppVariant::ControlFlowChecks,
        };
        let image = fl_lang::compile_with(&source, &opts)
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", kind.name()));
        App {
            kind,
            source,
            image,
            params,
        }
    }

    /// World configuration for this app. Moldyn runs with nondeterministic
    /// scheduling (§4.2.2) and a lower eager threshold (its Charm++-style
    /// runtime favours rendezvous for position blocks); the others run
    /// deterministically with the default threshold. Jacobi3d runs in
    /// ulfm mode with the failure detector on — its fault tolerance lives
    /// in the application, so the world must report failures to it rather
    /// than terminate (harmless on a fault-free run: the detector only
    /// matures suspicion for ranks that actually stop heartbeating).
    pub fn world_config(&self, budget: u64) -> WorldConfig {
        let ulfm = self.kind == AppKind::Jacobi3d;
        let mut ft = fl_mpi::FailureDetector::default();
        if ulfm {
            ft.enabled = true;
        }
        WorldConfig {
            nranks: self.params.nranks,
            nondet: self.kind == AppKind::Moldyn,
            seed: self.params.seed,
            machine: MachineConfig {
                budget,
                ..Default::default()
            },
            eager_threshold: if self.kind == AppKind::Moldyn {
                512
            } else {
                1024
            },
            ulfm,
            ft,
            ..Default::default()
        }
    }

    /// Create a world running this app.
    pub fn world(&self, budget: u64) -> MpiWorld {
        MpiWorld::new(&self.image, self.world_config(budget))
    }

    /// Create a world with an explicit scheduling seed (nondeterminism
    /// studies).
    pub fn world_with_seed(&self, budget: u64, seed: u64) -> MpiWorld {
        let mut cfg = self.world_config(budget);
        cfg.seed = seed;
        MpiWorld::new(&self.image, cfg)
    }

    /// Create a world with memory-access tracing enabled (working-set
    /// analysis, Tables 5–7).
    pub fn traced_world(&self, budget: u64) -> MpiWorld {
        let mut cfg = self.world_config(budget);
        cfg.machine.trace = true;
        MpiWorld::new(&self.image, cfg)
    }

    /// The output stream this app's correctness is judged on (§4.2):
    /// wavetoy's text output file, moldyn's console energy log, climsim's
    /// binary history file — always from rank 0.
    pub fn comparable_output(&self, world: &MpiWorld) -> Vec<u8> {
        match self.kind {
            AppKind::Wavetoy | AppKind::Climsim | AppKind::Jacobi3d => {
                world.machine(0).outfile.clone()
            }
            AppKind::Moldyn => world.machine(0).console.clone(),
        }
    }

    /// Perform a fault-free reference run.
    ///
    /// # Panics
    ///
    /// Panics if the clean run does not complete cleanly — the golden run
    /// is the experiment's precondition.
    pub fn golden(&self, budget: u64) -> Golden {
        let mut w = self.world(budget);
        let exit = w.run();
        assert_eq!(
            exit,
            WorldExit::Clean,
            "{}: golden run must be clean",
            self.kind.name()
        );
        let n = self.params.nranks;
        Golden {
            output: self.comparable_output(&w),
            insns: (0..n).map(|r| w.machine(r).counters.insns).collect(),
            recv_bytes: (0..n).map(|r| w.received_bytes(r)).collect(),
            profiles: (0..n).map(|r| *w.profile(r)).collect(),
            blocks: (0..n).map(|r| w.machine(r).counters.blocks).collect(),
            heap_peak: (0..n)
                .map(|r| w.machine(r).heap.peak_bytes() as u64)
                .collect(),
            stack_peak: (0..n)
                .map(|r| w.machine(r).peak_stack_bytes() as u64)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build() {
        for kind in AppKind::ALL {
            let app = App::build(kind, AppParams::tiny(kind));
            assert!(!app.image.text.is_empty());
            assert!(app.image.symbols.iter().any(|s| s.name == "main"));
        }
    }

    #[test]
    fn golden_runs_are_clean_and_self_consistent() {
        for kind in AppKind::ALL {
            let app = App::build(kind, AppParams::tiny(kind));
            let g = app.golden(200_000_000);
            assert!(!g.output.is_empty(), "{}", kind.name());
            assert_eq!(g.insns.len(), app.params.nranks as usize);
            assert!(
                g.insns.iter().all(|&i| i > 10_000),
                "{}: {:?}",
                kind.name(),
                g.insns
            );
            assert!(g.recv_bytes.iter().all(|&b| b > 0));
        }
    }

    #[test]
    fn cold_code_bulks_text() {
        let small = App::build(
            AppKind::Wavetoy,
            AppParams {
                cold_fns: 0,
                warm_fns: 1,
                ..AppParams::tiny(AppKind::Wavetoy)
            },
        );
        let big = App::build(
            AppKind::Wavetoy,
            AppParams {
                cold_fns: 100,
                warm_fns: 1,
                ..AppParams::tiny(AppKind::Wavetoy)
            },
        );
        assert!(big.image.text.len() > small.image.text.len() * 3);
    }

    #[test]
    fn apps_have_distinct_traffic_archetypes() {
        // The three apps must reproduce Table 1's distribution shape:
        // wavetoy and moldyn data-dominated, climsim header-dominated.
        let mut user_pcts = Vec::new();
        for kind in AppKind::ALL {
            let app = App::build(kind, AppParams::tiny(kind));
            let g = app.golden(200_000_000);
            let mut total = TrafficProfile::default();
            for p in &g.profiles {
                total.merge(p);
            }
            user_pcts.push((kind, total.user_percent()));
        }
        let get = |k: AppKind| user_pcts.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert!(get(AppKind::Wavetoy) > 60.0);
        assert!(get(AppKind::Moldyn) > 60.0);
        assert!(get(AppKind::Climsim) < 50.0);
    }
}
