//! Moldyn — the NAMD analogue (§4.2.2).
//!
//! Parallel molecular dynamics: each rank owns a block of atoms, computes
//! local Lennard-Jones pair forces, exchanges its positions with both ring
//! neighbours every step, and reports per-step energies to rank 0.
//! Reproduced signatures:
//!
//! * **Nondeterministic execution.** Rank 0 accumulates the per-rank
//!   energy contributions in *arrival order* via `MPI_ANY_SOURCE`, so the
//!   floating-point sum differs in the low bits across schedules. The only
//!   reproducible output is the console energy log (the paper: stable to
//!   printed precision when the step count stays under 20).
//! * **Built-in message checksums.** Every position payload carries a
//!   trailing checksum of its floats; the receiver recomputes and aborts
//!   on mismatch. This is why NAMD detected 46 % of manifest message
//!   faults (§6.2) while CAM caught almost none.
//! * **NaN consistency checks** on energies and **sanity/bound checks**
//!   on positions, which catch a slice of memory faults as App-Detected.
//! * **Registers an MPI error handler**, so argument corruption (stack
//!   faults) manifests as MPI-Detected (Table 3).
//! * **Heap-dominant memory**: atom arrays and a large workspace are
//!   `malloc`ed; much of the workspace is touched only during setup,
//!   mirroring NAMD's heap working set (~22 % in the compute phase).

use crate::coldgen;
use crate::AppParams;

/// Generate the Moldyn FL source (with message checksums, the standard
/// configuration).
pub fn source(p: &AppParams) -> String {
    source_with(p, true)
}

/// Generate Moldyn with or without its message checksums — the §6.2/§7
/// ablation ("NAMD's message checksum is effective at low cost — only
/// three percent overhead"). Without checksums the exchange buffers and
/// traffic are unchanged; only the receiver-side verification disappears.
pub fn source_with(p: &AppParams, checksums: bool) -> String {
    let atoms = p.scale.max(8);
    let steps = p.steps;
    // With checksums off the wire format is unchanged (same buffer
    // layout, same traffic) but neither side computes the sums — the
    // configuration whose cost difference is the paper's "three percent
    // overhead" figure.
    let verify_fn = if checksums {
        r#"fn verify_checksum() {
    var int i;
    var float sum;
    sum = 0.0;
    for (i = 0; i < natoms; i = i + 1) {
        sum = sum + loadf(recvbuf + i * 16) + loadf(recvbuf + i * 16 + 8);
    }
    if (isnan(sum)) {
        abort_msg("moldyn: NaN in received positions");
    }
    if (sum != loadf(recvbuf + natoms * 16)) {
        abort_msg("moldyn: message checksum mismatch");
    }
}"#
    } else {
        "fn verify_checksum() { }"
    };
    let pack_sum = if checksums {
        r#"    sum = 0.0;
    for (i = 0; i < natoms; i = i + 1) {
        sum = sum + loadf(fslot(px, i)) + loadf(fslot(py, i));
    }
    storef(sendbuf + natoms * 16, sum);"#
    } else {
        "    sum = 0.0;\n    storef(sendbuf + natoms * 16, sum);"
    };
    let cold = coldgen::functions("md_cold", p.cold_fns, p.seed);
    let warm = coldgen::functions("md_warm", p.warm_fns, p.seed ^ 0x77);
    let warmup = coldgen::init_routine("md_startup", "md_warm", p.warm_fns, "sink");
    format!(
        r#"// Moldyn: ring-decomposed molecular dynamics with checksummed
// position exchanges and NaN/bound consistency checks.
global int natoms = {atoms};
global int nsteps = {steps};
global float dt = 0.002;
global float box = 24.0;
global float sink = 0.5;
global float jitter[256] = seeded(1311);
global int px = 0;
global int py = 0;
global int vx = 0;
global int vy = 0;
global int fx = 0;
global int fy = 0;
global int sendbuf = 0;
global int recvbuf = 0;
global int spare = 0;
global int me = 0;
global int np = 0;
global float pe = 0.0;
// Zero-initialised statistics buffers (BSS).
global float step_energy[64];
global float patch_load[32];

{cold}
{warm}
{warmup}

fn fslot(int base, int i) -> int {{
    return base + i * 8;
}}

fn init_atoms() {{
    var int i;
    var int side;
    var float x;
    var float y;
    side = int(sqrt(float(natoms))) + 1;
    px = malloc(natoms * 8);
    py = malloc(natoms * 8);
    vx = malloc(natoms * 8);
    vy = malloc(natoms * 8);
    fx = malloc(natoms * 8);
    fy = malloc(natoms * 8);
    // Exchange buffers carry x, y arrays plus a trailing checksum slot.
    sendbuf = malloc(natoms * 16 + 8);
    recvbuf = malloc(natoms * 16 + 8);
    // Cell-list workspace: sized generously, touched only here (NAMD's
    // heap working set shrinks sharply after setup).
    spare = malloc(49152);
    for (i = 0; i < 1536; i = i + 1) {{
        storef(spare + i * 8, 0.0);
    }}
    for (i = 0; i < natoms; i = i + 1) {{
        x = float(i % side) * 1.3 + jitter[(me * 31 + i) % 256] * 0.3;
        y = float(i / side) * 1.3 + jitter[(me * 17 + i * 3) % 256] * 0.3;
        storef(fslot(px, i), x);
        storef(fslot(py, i), y);
        storef(fslot(vx, i), (jitter[(i * 7 + me) % 256] - 0.5) * 0.4);
        storef(fslot(vy, i), (jitter[(i * 13 + me) % 256] - 0.5) * 0.4);
        storef(fslot(fx, i), 0.0);
        storef(fslot(fy, i), 0.0);
    }}
}}

// Pack positions (and the message checksum) into sendbuf.
fn pack_positions() {{
    var int i;
    var float sum;
    for (i = 0; i < natoms; i = i + 1) {{
        storef(sendbuf + i * 16, loadf(fslot(px, i)));
        storef(sendbuf + i * 16 + 8, loadf(fslot(py, i)));
    }}
{pack_sum}
}}

// Verify the checksum of recvbuf; abort on mismatch (NAMD's internal
// message consistency check).
{verify_fn}

// Accumulate LJ forces from the atoms in recvbuf onto our atoms.
fn forces_from(int buf) {{
    var int i;
    var int j;
    var float dx;
    var float dy;
    var float r2;
    var float inv2;
    var float inv6;
    var float f;
    for (i = 0; i < natoms; i = i + 1) {{
        for (j = 0; j < natoms; j = j + 1) {{
            dx = loadf(fslot(px, i)) - loadf(buf + j * 16);
            dy = loadf(fslot(py, i)) - loadf(buf + j * 16 + 8);
            r2 = dx * dx + dy * dy;
            if (r2 < 6.25 && r2 > 0.0001) {{
                if (r2 < 0.64) {{ r2 = 0.64; }}
                inv2 = 1.0 / r2;
                inv6 = inv2 * inv2 * inv2;
                f = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                storef(fslot(fx, i), loadf(fslot(fx, i)) + f * dx);
                storef(fslot(fy, i), loadf(fslot(fy, i)) + f * dy);
                pe = pe + 4.0 * inv6 * (inv6 - 1.0) * 0.5;
            }}
        }}
    }}
}}

fn local_forces() {{
    var int i;
    var int j;
    var float dx;
    var float dy;
    var float r2;
    var float inv2;
    var float inv6;
    var float f;
    for (i = 0; i < natoms; i = i + 1) {{
        storef(fslot(fx, i), 0.0);
        storef(fslot(fy, i), 0.0);
    }}
    pe = 0.0;
    for (i = 0; i < natoms; i = i + 1) {{
        for (j = i + 1; j < natoms; j = j + 1) {{
            dx = loadf(fslot(px, i)) - loadf(fslot(px, j));
            dy = loadf(fslot(py, i)) - loadf(fslot(py, j));
            r2 = dx * dx + dy * dy;
            if (r2 < 6.25) {{
                if (r2 < 0.64) {{ r2 = 0.64; }}
                inv2 = 1.0 / r2;
                inv6 = inv2 * inv2 * inv2;
                f = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                storef(fslot(fx, i), loadf(fslot(fx, i)) + f * dx);
                storef(fslot(fy, i), loadf(fslot(fy, i)) + f * dy);
                storef(fslot(fx, j), loadf(fslot(fx, j)) - f * dx);
                storef(fslot(fy, j), loadf(fslot(fy, j)) - f * dy);
                pe = pe + 4.0 * inv6 * (inv6 - 1.0);
            }}
        }}
    }}
}}

// Exchange positions with ring neighbours; right-going uses tag 11,
// left-going tag 12. Receives use ANY_SOURCE (NAMD-style arrival
// nondeterminism); content is disambiguated by tag. Even/odd phasing
// keeps the ring safe under the synchronous rendezvous protocol.
fn exchange_positions() {{
    var int right;
    var int left;
    var int bytes;
    right = (me + 1) % np;
    left = (me + np - 1) % np;
    bytes = natoms * 16 + 8;
    pack_positions();
    if (me % 2 == 0) {{
        mpi_send(sendbuf, bytes, right, 11);
        mpi_recv(recvbuf, bytes, -1, 11);
        verify_checksum();
        forces_from(recvbuf);
        mpi_send(sendbuf, bytes, left, 12);
        mpi_recv(recvbuf, bytes, -1, 12);
        verify_checksum();
        forces_from(recvbuf);
    }} else {{
        mpi_recv(recvbuf, bytes, -1, 11);
        verify_checksum();
        forces_from(recvbuf);
        mpi_send(sendbuf, bytes, right, 11);
        mpi_recv(recvbuf, bytes, -1, 12);
        verify_checksum();
        forces_from(recvbuf);
        mpi_send(sendbuf, bytes, left, 12);
    }}
}}

fn integrate() {{
    var int i;
    var float x;
    var float y;
    for (i = 0; i < natoms; i = i + 1) {{
        storef(fslot(vx, i), loadf(fslot(vx, i)) + loadf(fslot(fx, i)) * dt);
        storef(fslot(vy, i), loadf(fslot(vy, i)) + loadf(fslot(fy, i)) * dt);
        x = loadf(fslot(px, i)) + loadf(fslot(vx, i)) * dt;
        y = loadf(fslot(py, i)) + loadf(fslot(vy, i)) * dt;
        // Sanity/bound check (assertions NAMD keeps even in production).
        assert(fabs(x) < 1000.0 && fabs(y) < 1000.0, "moldyn: atom escaped the box");
        storef(fslot(px, i), x);
        storef(fslot(py, i), y);
    }}
}}

fn kinetic() -> float {{
    var int i;
    var float ke;
    ke = 0.0;
    for (i = 0; i < natoms; i = i + 1) {{
        ke = ke + loadf(fslot(vx, i)) * loadf(fslot(vx, i))
                + loadf(fslot(vy, i)) * loadf(fslot(vy, i));
    }}
    return ke * 0.5;
}}

// Per-step energy report: everyone sends (ke, pe) to rank 0; rank 0 sums
// in ARRIVAL order (nondeterministic) and prints the console log.
fn report_energies(int step) {{
    var int i;
    var float etot;
    var float ketot;
    var int ebuf;
    ebuf = malloc(16);
    if (me == 0) {{
        ketot = kinetic();
        etot = ketot + pe;
        for (i = 1; i < np; i = i + 1) {{
            mpi_recv(ebuf, 16, -1, 128 + step);
            ketot = ketot + loadf(ebuf);
            etot = etot + loadf(ebuf) + loadf(ebuf + 8);
        }}
        step_energy[step % 64] = etot;
        if (isnan(etot)) {{
            abort_msg("moldyn: NaN total energy");
        }}
        print_str("STEP ");
        print_int(step);
        print_str(" KE ");
        print_flt(ketot, 6);
        print_str(" E ");
        print_flt(etot, 6);
        print_str("\n");
    }} else {{
        storef(ebuf, kinetic());
        storef(ebuf + 8, pe);
        mpi_send(ebuf, 16, 0, 128 + step);
    }}
    free(ebuf);
}}

fn main() {{
    var int s;
    mpi_init();
    mpi_errhandler_set(1);
    me = mpi_rank();
    np = mpi_size();
    md_startup();
    init_atoms();
    for (s = 0; s < nsteps; s = s + 1) {{
        local_forces();
        exchange_positions();
        integrate();
        report_energies(s);
    }}
    mpi_finalize();
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{App, AppKind};
    use fl_mpi::WorldExit;

    #[test]
    fn moldyn_runs_clean_and_logs_energies() {
        let app = App::build(AppKind::Moldyn, AppParams::tiny(AppKind::Moldyn));
        let mut w = app.world(100_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let log = w.machine(0).console_text();
        assert!(log.contains("STEP 0 KE"));
        assert!(log.lines().count() >= app.params.steps as usize);
        for line in log.lines() {
            assert!(line.contains(" E "), "{line}");
        }
    }

    #[test]
    fn moldyn_console_stable_across_schedules() {
        // §4.2.2: the console output has no noticeable deviation when the
        // step count is small, despite nondeterministic arrival order.
        let app = App::build(AppKind::Moldyn, AppParams::tiny(AppKind::Moldyn));
        let base = app.golden(100_000_000);
        for seed in 1..4u64 {
            let mut w = app.world_with_seed(100_000_000, seed);
            assert_eq!(w.run(), WorldExit::Clean);
            assert_eq!(
                w.machine(0).console_text().as_bytes(),
                &base.output[..],
                "seed {seed}"
            );
        }
    }

    #[test]
    fn moldyn_traffic_is_data_dominated_with_rendezvous_control() {
        let app = App::build(AppKind::Moldyn, AppParams::tiny(AppKind::Moldyn));
        let mut w = app.world(100_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let mut total = fl_mpi::TrafficProfile::default();
        for r in 0..app.params.nranks {
            total.merge(w.profile(r));
        }
        assert!(
            total.user_percent() > 70.0,
            "{:.1}% user",
            total.user_percent()
        );
        assert!(total.control_msgs > 0, "rendezvous must generate RTS/CTS");
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        // Flip a payload bit in a position message: moldyn's checksum
        // must catch it (the NAMD 46 %-detection path).
        let app = App::build(AppKind::Moldyn, AppParams::tiny(AppKind::Moldyn));
        // Find a byte offset inside a big position payload on rank 1:
        // skip the early small traffic; take half the golden volume.
        let golden = app.golden(100_000_000);
        let mid = golden.recv_bytes[1] / 2;
        let mut w = app.world(100_000_000);
        w.set_message_fault(fl_mpi::MessageFault {
            rank: 1,
            at_recv_byte: mid,
            bit: 3,
        });
        let e = w.run();
        // Depending on where mid lands this is a checksum abort, an MPI
        // crash/hang (header), or (rarely) clean; the common case for a
        // data-dominated app is the checksum catching it.
        if let WorldExit::AppAborted { msg, .. } = &e {
            assert!(msg.contains("checksum") || msg.contains("NaN"), "{msg}");
        }
    }
}
