//! Wavetoy — the Cactus Wavetoy analogue (§4.2.1).
//!
//! A hyperbolic PDE solver: the 2-D wave equation on a grid decomposed by
//! rows across ranks, leap-frog time stepping, and one halo-row exchange
//! per neighbour per step. Reproduced signatures:
//!
//! * **Traffic is almost all user data.** Halo rows and the final gather
//!   are bulk f64 arrays; headers are a small fraction of incoming bytes
//!   (paper: 6 % headers / 94 % user).
//! * **Field values are close to zero** away from the Gaussian pulse, so
//!   payload bit flips usually perturb tiny numbers (§6.2: "most
//!   transferred data are very close to zero").
//! * **Plain-text output at limited precision.** Rank 0 writes the final
//!   field as text with 4 fractional digits, which *hides* small
//!   perturbations — the output-format masking effect of §6.2/§7.
//! * **No internal checks, no error handler.** Table 2 records no
//!   App-Detected or MPI-Detected manifestations for Wavetoy.
//!
//! The grid lives on the **heap** (three `malloc`ed planes), matching the
//! paper's profile where Wavetoy's heap is its largest data region.

use crate::coldgen;
use crate::AppParams;

/// Generate the Wavetoy FL source (standard plain-text output).
pub fn source(p: &AppParams) -> String {
    source_with(p, false)
}

/// Generate Wavetoy with text or binary output — the §6.2 ablation:
/// "A binary output format would detect more cases of incorrect output."
pub fn source_with(p: &AppParams, binary_output: bool) -> String {
    let rows = p.scale.max(4);
    let cols = (p.scale * 4).max(16);
    let steps = p.steps;
    let dump_stmt = if binary_output {
        "fwrite_bin(rowbuf[c]);"
    } else {
        "fwrite_flt(rowbuf[c], 4);\n            fwrite_str(\" \");"
    };
    let dump_eol = if binary_output {
        ""
    } else {
        "fwrite_str(\"\\n\");"
    };
    let cold = coldgen::functions("wt_cold", p.cold_fns, p.seed);
    let warm = coldgen::functions("wt_warm", p.warm_fns, p.seed ^ 0xABCD);
    let warmup = coldgen::init_routine("wt_startup", "wt_warm", p.warm_fns, "sink");
    format!(
        r#"// Wavetoy: 2-D wave equation, row decomposition, leap-frog.
global int rows = {rows};
global int cols = {cols};
global int nsteps = {steps};
global float kappa = 0.2;
global float sink = 0.25;
global int gp = 0;
global int gc = 0;
global int gn = 0;
global int reserve = 0;
global int me = 0;
global int np = 0;
// Zero-initialised staging buffers (BSS).
global float rowbuf[{cols}];
global float edge_trace[64];

{cold}
{warm}
{warmup}

fn cell(int g, int r, int c) -> int {{
    return g + (r * cols + c) * 8;
}}

fn init_field() {{
    var int r;
    var int c;
    var int nbytes;
    var float gr;
    var float gcc;
    var float d;
    nbytes = (rows + 2) * cols * 8;
    gp = malloc(nbytes);
    gc = malloc(nbytes);
    gn = malloc(nbytes);
    // Grid-hierarchy reserve (Cactus keeps refinement-level storage that
    // a unigrid run never touches): cold heap, zeroed once at startup.
    reserve = malloc(nbytes * 8);
    for (r = 0; r < rows * cols; r = r + 2) {{
        storef(reserve + r * 8, 0.0);
    }}
    for (r = 0; r < rows + 2; r = r + 1) {{
        for (c = 0; c < cols; c = c + 1) {{
            storef(cell(gp, r, c), 0.0);
            storef(cell(gc, r, c), 0.0);
            storef(cell(gn, r, c), 0.0);
        }}
    }}
    // Gaussian pulse at the centre of the global grid.
    for (r = 1; r <= rows; r = r + 1) {{
        for (c = 0; c < cols; c = c + 1) {{
            gr = float(me * rows + r - 1) - float(np * rows) / 2.0;
            gcc = float(c) - float(cols) / 2.0;
            d = (gr * gr + gcc * gcc) / 6.0;
            if (d < 12.0) {{
                storef(cell(gc, r, c), exp(0.0 - d));
                storef(cell(gp, r, c), exp(0.0 - d));
            }}
        }}
    }}
}}

fn exchange() {{
    if (me > 0) {{
        mpi_send(cell(gc, 1, 0), cols * 8, me - 1, 1);
    }}
    if (me < np - 1) {{
        mpi_send(cell(gc, rows, 0), cols * 8, me + 1, 2);
    }}
    if (me > 0) {{
        mpi_recv(cell(gc, 0, 0), cols * 8, me - 1, 2);
    }}
    if (me < np - 1) {{
        mpi_recv(cell(gc, rows + 1, 0), cols * 8, me + 1, 1);
    }}
}}

fn step_field() {{
    var int r;
    var int c;
    var int t;
    var float u;
    var float west;
    var float east;
    var float lap;
    for (r = 1; r <= rows; r = r + 1) {{
        for (c = 0; c < cols; c = c + 1) {{
            u = loadf(cell(gc, r, c));
            if (c > 0) {{ west = loadf(cell(gc, r, c - 1)); }} else {{ west = u; }}
            if (c < cols - 1) {{ east = loadf(cell(gc, r, c + 1)); }} else {{ east = u; }}
            lap = loadf(cell(gc, r - 1, c)) + loadf(cell(gc, r + 1, c)) + west + east - 4.0 * u;
            storef(cell(gn, r, c), 2.0 * u - loadf(cell(gp, r, c)) + kappa * lap);
        }}
    }}
    t = gp;
    gp = gc;
    gc = gn;
    gn = t;
}}

fn dump_block(int g) {{
    var int r;
    var int c;
    for (r = 1; r <= rows; r = r + 1) {{
        // Stage the row through a BSS buffer, as the real code stages
        // output through Fortran common blocks.
        for (c = 0; c < cols; c = c + 1) {{
            rowbuf[c] = loadf(cell(g, r, c));
        }}
        for (c = 0; c < cols; c = c + 4) {{
            {dump_stmt}
        }}
        {dump_eol}
    }}
}}

fn write_output() {{
    var int src;
    var int bytes;
    bytes = rows * cols * 8;
    if (me == 0) {{
        dump_block(gc);
        for (src = 1; src < np; src = src + 1) {{
            mpi_recv(cell(gp, 1, 0), bytes, src, 9);
            dump_block(gp);
        }}
    }} else {{
        mpi_send(cell(gc, 1, 0), bytes, 0, 9);
    }}
}}

fn main() {{
    var int s;
    mpi_init();
    me = mpi_rank();
    np = mpi_size();
    wt_startup();
    init_field();
    for (s = 0; s < nsteps; s = s + 1) {{
        exchange();
        step_field();
    }}
    write_output();
    mpi_finalize();
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{App, AppKind};
    use fl_mpi::WorldExit;

    #[test]
    fn wavetoy_runs_clean_and_writes_text_output() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let mut w = app.world(50_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let out = String::from_utf8(w.machine(0).outfile.clone()).unwrap();
        assert!(!out.is_empty());
        // Text format with 4 fractional digits.
        let first = out.split_whitespace().next().unwrap();
        assert!(first.contains('.'), "{first}");
        assert_eq!(first.split('.').nth(1).unwrap().len(), 4);
        // Most field values are near zero (§6.2).
        let vals: Vec<f64> = out.split_whitespace().map(|s| s.parse().unwrap()).collect();
        let near_zero = vals.iter().filter(|v| v.abs() < 0.05).count();
        assert!(
            near_zero * 2 > vals.len(),
            "{near_zero}/{} near zero",
            vals.len()
        );
    }

    #[test]
    fn wavetoy_traffic_is_mostly_user_data() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let mut w = app.world(50_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let mut total = fl_mpi::TrafficProfile::default();
        for r in 0..app.params.nranks {
            total.merge(w.profile(r));
        }
        assert!(
            total.user_percent() > 80.0,
            "wavetoy must be data-dominated, got {:.1}% user",
            total.user_percent()
        );
    }

    #[test]
    fn wavetoy_output_is_deterministic() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let g1 = app.golden(50_000_000);
        let g2 = app.golden(50_000_000);
        assert_eq!(g1.output, g2.output);
        assert!(!g1.output.is_empty());
    }

    #[test]
    fn wavetoy_grid_lives_on_user_heap() {
        let app = App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy));
        let mut w = app.world(50_000_000);
        assert_eq!(w.run(), WorldExit::Clean);
        let m = w.machine(1);
        let user = m.heap.live_bytes(fl_machine::AllocTag::User);
        let mpi = m.heap.live_bytes(fl_machine::AllocTag::Mpi);
        assert!(user > 0 && mpi > 0);
        assert!(user > mpi, "grid planes dominate the heap");
    }
}
