//! Scenario-diversity campaigns: system-level, network-level and
//! correlated fault models against a defense matrix.
//!
//! The paper's campaigns flip single bits; [`crate::guarded`] and
//! [`crate::ft`] measure one defense against one fault family each. This
//! module asks the cross product: every *chaos* fault class — in-flight
//! network faults (drop / duplicate / reorder / corrupt), rank-set
//! partitions, syscall failures (malloc / write denial), correlated
//! burst kills and whole-node kills — run under every defense the
//! harness has (none, channel CRC, watchdog restart, replication,
//! shrink recovery, fl-ulfm application recovery), producing the
//! defense-coverage matrix.
//!
//! The slot space is `models × defenses × injections`, flattened onto
//! the shared engine pool. Trial `(mi, di, k)` draws its fault from
//! `trial_seed(seed, mi, k)` — the *model* index only — so all six
//! defense columns of a row face the byte-identical draw, and the matrix
//! compares defenses, not luck. Records stream through the ordinary
//! sink/record machinery, so chaos campaigns resume and sort exactly
//! like plain ones.

use crate::campaign::{trial_budget, trial_seed, trial_world_config, CampaignConfig, TrialRecord};
use crate::engine::{run_pool, CompletedSlots, EngineControl, EngineSink, TrialOutput};
use crate::faultmodel::FaultModel;
use crate::ft::{classify_app, classify_replicated, classify_shrink};
use crate::guarded::slug;
use crate::outcome::{classify, Manifestation, Tally};
use crate::progress::EngineProgress;
use crate::target::TargetClass;
use fl_apps::{App, AppKind, Golden};
use fl_ft::{run_app, run_replicated, run_shrink, FtPolicy, RankKill};
use fl_guard::{run_guarded, GuardPolicy};
use fl_machine::{SyscallFault, SyscallFaultKind};
use fl_mpi::{MpiWorld, NetFault, NetFaultKind, NodeKill, Partition, WorldExit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One column of the coverage matrix: which mechanism stands between the
/// drawn fault and the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// Nothing — the fault's bare manifestation (the row's denominator).
    Baseline,
    /// Channel CRC + NACK retransmission only (no watchdog, no
    /// checkpointing).
    Crc,
    /// The full fl-guard harness: watchdog, checkpoints,
    /// rollback-and-re-execute (which includes the CRC channel).
    Watchdog,
    /// N-replica lockstep voting (fl-ft).
    Replica,
    /// Heartbeat detector + shrink-to-survivors recovery (fl-ft).
    Shrink,
    /// App-visible ULFM mode: the application owns recovery (fl-ulfm).
    App,
}

impl Defense {
    /// Every column, matrix order. Baseline is always first — coverage
    /// is measured against its errors.
    pub const ALL: [Defense; 6] = [
        Defense::Baseline,
        Defense::Crc,
        Defense::Watchdog,
        Defense::Replica,
        Defense::Shrink,
        Defense::App,
    ];

    /// Canonical machine-readable name; round-trips through
    /// [`std::str::FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Defense::Baseline => "baseline",
            Defense::Crc => "crc",
            Defense::Watchdog => "watchdog",
            Defense::Replica => "replica",
            Defense::Shrink => "shrink",
            Defense::App => "app",
        }
    }

    /// Every parseable defense name, for did-you-mean suggestions.
    pub const NAMES: [&'static str; 6] =
        ["baseline", "crc", "watchdog", "replica", "shrink", "app"];
}

impl std::fmt::Display for Defense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Defense {
    type Err = String;

    fn from_str(s: &str) -> Result<Defense, String> {
        Ok(match s {
            "baseline" => Defense::Baseline,
            "crc" => Defense::Crc,
            "watchdog" => Defense::Watchdog,
            "replica" => Defense::Replica,
            "shrink" => Defense::Shrink,
            "app" => Defense::App,
            other => return Err(crate::suggest::unknown("defense", other, &Defense::NAMES)),
        })
    }
}

/// Knobs of a chaos campaign: the defense configurations plus the draw
/// ranges of the new fault classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Guard configuration for the `crc` (channel part only) and
    /// `watchdog` (full harness) columns.
    pub guard: GuardPolicy,
    /// Ft configuration for the `replica`, `shrink` and `app` columns.
    pub ft: FtPolicy,
    /// Partition window draw range, in scheduler rounds (inclusive).
    pub partition_rounds: (u64, u64),
    /// Largest reorder delay, in scheduler rounds.
    pub reorder_max_delay: u64,
    /// Most ranks one burst may kill (clamped to leave a survivor).
    pub burst_max: u16,
    /// Ranks per "node" for the node-kill model.
    pub node_ranks: u16,
}

impl Default for ChaosPolicy {
    fn default() -> ChaosPolicy {
        ChaosPolicy {
            guard: GuardPolicy::default(),
            ft: FtPolicy::default(),
            partition_rounds: (64, 512),
            reorder_max_delay: 64,
            burst_max: 3,
            node_ranks: 2,
        }
    }
}

/// Fault-free per-rank syscall activity — the draw denominators for the
/// syscall failure models, read off one extra golden-configuration run
/// (the [`Golden`] profile predates these counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallCounts {
    /// `malloc` calls served per rank.
    pub mallocs: Vec<u64>,
    /// Output syscalls issued per rank.
    pub io_writes: Vec<u64>,
}

/// Run one fault-free world and collect [`SyscallCounts`]. Deterministic
/// in the app and configuration, so every worker recomputes the same
/// denominators.
pub fn syscall_counts(app: &App, budget: u64, fastpath: bool) -> SyscallCounts {
    let mut w = MpiWorld::new(&app.image, trial_world_config(app, budget, 0, fastpath));
    let exit = w.run();
    assert_eq!(exit, WorldExit::Clean, "golden counter run must be clean");
    let n = app.params.nranks;
    SyscallCounts {
        mallocs: (0..n).map(|r| w.machine(r).counters.mallocs).collect(),
        io_writes: (0..n).map(|r| w.machine(r).counters.io_writes).collect(),
    }
}

/// One drawn chaos fault, armable on any world (each defense column arms
/// the identical draw).
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosFault {
    /// An in-flight message fault.
    Net(NetFault),
    /// A rank-set partition window.
    Partition(Partition),
    /// A syscall failure on one rank.
    Syscall {
        /// Which rank's kernel says no.
        rank: u16,
        /// The armed failure.
        fault: SyscallFault,
    },
    /// A correlated burst of rank kills, each on its own block clock.
    Burst(Vec<RankKill>),
    /// A whole-node kill.
    Node(NodeKill),
}

impl ChaosFault {
    /// Plant the fault in a freshly built world.
    pub fn arm(&self, w: &mut MpiWorld) {
        match self {
            ChaosFault::Net(f) => w.set_net_fault(*f),
            ChaosFault::Partition(p) => w.set_partition(*p),
            ChaosFault::Syscall { rank, fault } => w.machine_mut(*rank).set_syscall_fault(*fault),
            ChaosFault::Burst(kills) => {
                for k in kills {
                    w.add_rank_kill(*k);
                }
            }
            ChaosFault::Node(nk) => w.set_node_kill(*nk),
        }
    }
}

/// Draw the chaos fault for one trial seed. Fully determined by
/// `(golden, sys, model, seed, nranks, policy)` — recomputable from the
/// campaign coordinates like every other fault draw, and shared by all
/// defense columns of the trial's row.
pub fn draw_chaos(
    golden: &Golden,
    sys: &SyscallCounts,
    model: FaultModel,
    seed: u64,
    nranks: u16,
    policy: &ChaosPolicy,
) -> (ChaosFault, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    match model {
        FaultModel::NetDrop
        | FaultModel::NetDuplicate
        | FaultModel::NetReorder
        | FaultModel::NetCorrupt => {
            // Target a rank that actually receives traffic.
            let eligible: Vec<u16> = (0..nranks)
                .filter(|&r| golden.recv_bytes[r as usize] > 0)
                .collect();
            let rank = eligible[rng.gen_range(0..eligible.len())];
            let at_recv_byte = rng.gen_range(0..golden.recv_bytes[rank as usize]);
            let (kind, what) = match model {
                FaultModel::NetDrop => (NetFaultKind::Drop, "drop".to_string()),
                FaultModel::NetDuplicate => (NetFaultKind::Duplicate, "duplicate".to_string()),
                FaultModel::NetReorder => {
                    let delay = rng.gen_range(1..policy.reorder_max_delay.max(1) + 1);
                    (
                        NetFaultKind::Reorder {
                            delay_rounds: delay,
                        },
                        format!("reorder +{delay} rounds"),
                    )
                }
                _ => (NetFaultKind::Corrupt, "corrupt".to_string()),
            };
            (
                ChaosFault::Net(NetFault {
                    rank,
                    at_recv_byte,
                    kind,
                }),
                format!("{what} into rank {rank} @ recv byte {at_recv_byte}"),
            )
        }
        FaultModel::Partition => {
            // Any mask in (0, 2^n - 1) splits the ranks into two
            // non-empty groups.
            let mask = rng.gen_range(1..(1u32 << nranks) - 1);
            let trigger_rank = rng.gen_range(0..nranks);
            let at_blocks = rng.gen_range(1..golden.blocks[trigger_rank as usize].max(2));
            let (lo, hi) = policy.partition_rounds;
            let lo = lo.max(1);
            let rounds = rng.gen_range(lo..hi.max(lo) + 1);
            (
                ChaosFault::Partition(Partition {
                    mask,
                    trigger_rank,
                    at_blocks,
                    rounds,
                }),
                format!(
                    "partition mask {mask:#06b} for {rounds} rounds @ rank {trigger_rank} \
                     block {at_blocks}"
                ),
            )
        }
        FaultModel::SyscallMalloc | FaultModel::SyscallWrite => {
            let rank = rng.gen_range(0..nranks);
            let (kind, counts, what) = if model == FaultModel::SyscallMalloc {
                (SyscallFaultKind::Malloc, &sys.mallocs, "malloc")
            } else {
                (SyscallFaultKind::Write, &sys.io_writes, "write")
            };
            let at_call = rng.gen_range(1..counts[rank as usize].max(1) + 1);
            let persist = rng.gen_range(0..2u32) == 1;
            (
                ChaosFault::Syscall {
                    rank,
                    fault: SyscallFault {
                        kind,
                        at_call,
                        persist,
                    },
                },
                format!(
                    "{what} denied on rank {rank} @ call {at_call}{}",
                    if persist { " (persistent)" } else { "" }
                ),
            )
        }
        FaultModel::Burst => {
            // One arrival process emits K kills across distinct ranks.
            // Integer pseudo-MTBF: successive gaps of mtbf/2 + U[0,mtbf)
            // block clocks, no survivor-free bursts.
            let hi = policy.burst_max.min(nranks.saturating_sub(1)).max(1);
            let lo = 2u16.min(hi);
            let k = rng.gen_range(lo as u32..hi as u32 + 1) as u16;
            let mut pool: Vec<u16> = (0..nranks).collect();
            let mut kills = Vec::with_capacity(k as usize);
            let mut detail = String::from("burst:");
            let first = pool.remove(rng.gen_range(0..pool.len()));
            let mtbf = (golden.blocks[first as usize] / 8).max(4);
            let mut t = rng.gen_range(1..golden.blocks[first as usize].max(2));
            for i in 0..k {
                let victim = if i == 0 {
                    first
                } else {
                    pool.remove(rng.gen_range(0..pool.len()))
                };
                let wedge = rng.gen_range(0..2u32) == 1;
                let at_blocks = t.clamp(1, golden.blocks[victim as usize].max(2) - 1);
                kills.push(RankKill {
                    rank: victim,
                    at_blocks,
                    wedge,
                });
                let _ = write!(
                    detail,
                    " {} r{victim}@{at_blocks}",
                    if wedge { "wedge" } else { "kill" }
                );
                t += mtbf / 2 + rng.gen_range(0..mtbf);
            }
            (ChaosFault::Burst(kills), detail)
        }
        FaultModel::NodeKill => {
            // Contiguous groups of `node_ranks` form the nodes; one dies
            // whole. Never take the last survivor.
            let per = policy.node_ranks.clamp(1, nranks);
            let nodes = nranks.div_ceil(per);
            let node = rng.gen_range(0..nodes);
            let lo = node * per;
            let hi = ((node + 1) * per).min(nranks);
            let mut mask = 0u32;
            for r in lo..hi {
                mask |= 1 << r;
            }
            if hi - lo == nranks {
                mask &= !(1 << (nranks - 1)); // leave one rank alive
            }
            let trigger_rank = mask.trailing_zeros() as u16;
            let at_blocks = rng.gen_range(1..golden.blocks[trigger_rank as usize].max(2));
            let wedge = rng.gen_range(0..2u32) == 1;
            (
                ChaosFault::Node(NodeKill {
                    mask,
                    trigger_rank,
                    at_blocks,
                    wedge,
                }),
                format!(
                    "node {} down (mask {mask:#06b}) @ block {at_blocks}{}",
                    node,
                    if wedge { ", wedged" } else { "" }
                ),
            )
        }
        FaultModel::Transient
        | FaultModel::Held
        | FaultModel::StuckAt0
        | FaultModel::StuckAt1
        | FaultModel::KillRank
        | FaultModel::WedgeRank
        | FaultModel::QuantumTax
        | FaultModel::HogRank
        | FaultModel::MemStall => {
            unreachable!("draw_chaos only draws chaos models, got {model}")
        }
    }
}

/// One cell of the matrix: every trial of one model under one defense.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Row.
    pub model: FaultModel,
    /// Column.
    pub defense: Defense,
    /// Outcome tally of the cell.
    pub tally: Tally,
    /// Per-trial records, slot order.
    pub trials: Vec<TrialRecord>,
}

/// A finished chaos campaign: the full `models × defenses` matrix.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// Which application.
    pub app: AppKind,
    /// The knobs every run used.
    pub policy: ChaosPolicy,
    /// Cells in row-major order: `cells[mi * 6 + di]`.
    pub cells: Vec<ChaosCell>,
    /// The fault-free reference.
    pub golden: Golden,
    /// Guest instructions retired across every trial.
    pub insns_total: u64,
}

/// Did this defense-column outcome neutralize the fault — masked,
/// recovered, or at least *detected*? (Measured against baseline-error
/// draws, so a plain `Correct` means the defense's environment kept the
/// identical draw from manifesting.)
pub fn is_covered(m: Manifestation) -> bool {
    matches!(
        m,
        Manifestation::Correct
            | Manifestation::Recovered
            | Manifestation::RecoveredByApp
            | Manifestation::MaskedByReplica
            | Manifestation::MaskedByChannel
            | Manifestation::DetectedByGuard
    )
}

impl ChaosResult {
    /// The matrix rows, in slot order — [`FaultModel::chaos_models`].
    pub fn models() -> [FaultModel; 9] {
        FaultModel::chaos_models()
    }

    /// The cell at row `mi`, column `di`.
    pub fn cell(&self, mi: usize, di: usize) -> &ChaosCell {
        &self.cells[mi * Defense::ALL.len() + di]
    }

    /// Trials of row `mi` whose baseline manifested an error (the
    /// coverage denominator of the row).
    pub fn baseline_errors(&self, mi: usize) -> u32 {
        self.cell(mi, 0).tally.errors()
    }

    /// Baseline-error trials of row `mi` the defense in column `di`
    /// covered.
    pub fn covered(&self, mi: usize, di: usize) -> u32 {
        let base = &self.cell(mi, 0).trials;
        let under = &self.cell(mi, di).trials;
        base.iter()
            .zip(under)
            .filter(|(b, u)| b.outcome.is_error() && is_covered(u.outcome))
            .count() as u32
    }

    /// Coverage of column `di` over row `mi`, in percent of the row's
    /// baseline errors.
    pub fn coverage_percent(&self, mi: usize, di: usize) -> f64 {
        let den = self.baseline_errors(mi);
        if den == 0 {
            return 0.0;
        }
        100.0 * self.covered(mi, di) as f64 / den as f64
    }

    /// The provable-coverage floors this campaign is contracted to hold.
    pub fn contracts(&self) -> Vec<ContractCheck> {
        let models = Self::models();
        let mi_of = |m: FaultModel| models.iter().position(|&x| x == m).unwrap();
        let di_of = |d: Defense| Defense::ALL.iter().position(|&x| x == d).unwrap();

        // 1. The channel CRC catches every in-flight corruption: masked
        //    by retransmit, or detected when the budget runs out. Over
        //    ALL net-corrupt trials — the fault always fires.
        let mi = mi_of(FaultModel::NetCorrupt);
        let crc = &self.cell(mi, di_of(Defense::Crc)).trials;
        let crc_check = ContractCheck {
            name: "crc-catches-net-corrupt",
            what: "net-corrupt trials the CRC channel masked or detected",
            covered: crc
                .iter()
                .filter(|t| {
                    matches!(
                        t.outcome,
                        Manifestation::MaskedByChannel | Manifestation::DetectedByGuard
                    )
                })
                .count() as u32,
            denom: crc.len() as u32,
            floor_percent: 90.0,
        };

        // 2. The watchdog catches partition-induced hangs: a restart
        //    replays the identical partition, so the budget exhausts
        //    into a detection — or the re-run recovers. Over partition
        //    trials whose baseline hung.
        let mi = mi_of(FaultModel::Partition);
        let base = &self.cell(mi, 0).trials;
        let dog = &self.cell(mi, di_of(Defense::Watchdog)).trials;
        let hung: Vec<usize> = base
            .iter()
            .enumerate()
            .filter(|(_, t)| t.outcome == Manifestation::Hang)
            .map(|(k, _)| k)
            .collect();
        let dog_check = ContractCheck {
            name: "watchdog-catches-partition-hangs",
            what: "baseline-hang partition trials the watchdog detected or recovered",
            covered: hung
                .iter()
                .filter(|&&k| {
                    matches!(
                        dog[k].outcome,
                        Manifestation::DetectedByGuard | Manifestation::Recovered
                    )
                })
                .count() as u32,
            denom: hung.len() as u32,
            floor_percent: 90.0,
        };

        // 3. Shrink recovery covers node kills: the heartbeat detector
        //    raises the first dead member and the world is rebuilt over
        //    survivors. Over node-kill trials whose baseline errored.
        let mi = mi_of(FaultModel::NodeKill);
        let base = &self.cell(mi, 0).trials;
        let shr = &self.cell(mi, di_of(Defense::Shrink)).trials;
        let errs: Vec<usize> = base
            .iter()
            .enumerate()
            .filter(|(_, t)| t.outcome.is_error())
            .map(|(k, _)| k)
            .collect();
        let shrink_check = ContractCheck {
            name: "shrink-recovers-node-kill",
            what: "baseline-error node-kill trials shrink recovery converted",
            covered: errs
                .iter()
                .filter(|&&k| shr[k].outcome == Manifestation::Recovered)
                .count() as u32,
            denom: errs.len() as u32,
            floor_percent: 90.0,
        };

        vec![crc_check, dog_check, shrink_check]
    }
}

/// One provable-coverage floor and the evidence for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractCheck {
    /// Stable contract identifier.
    pub name: &'static str,
    /// What the numerator counts.
    pub what: &'static str,
    /// Trials covered.
    pub covered: u32,
    /// Trials in the denominator.
    pub denom: u32,
    /// The floor, in percent.
    pub floor_percent: f64,
}

impl ContractCheck {
    /// Coverage in percent (0 with an empty denominator).
    pub fn percent(&self) -> f64 {
        if self.denom == 0 {
            return 0.0;
        }
        100.0 * self.covered as f64 / self.denom as f64
    }

    /// A floor holds only on evidence: an empty denominator fails.
    pub fn passed(&self) -> bool {
        self.denom > 0 && self.percent() + 1e-9 >= self.floor_percent
    }
}

/// The per-slot record class vector of a chaos campaign, len
/// `9 × 6` — what [`CompletedSlots::from_jsonl`] validates resumes
/// against.
pub fn chaos_classes() -> Vec<TargetClass> {
    FaultModel::chaos_models()
        .iter()
        .flat_map(|m| {
            let c = m.chaos_class().expect("chaos models carry a chaos class");
            std::iter::repeat_n(c, Defense::ALL.len())
        })
        .collect()
}

/// Sum of retired guest instructions across a world's ranks.
fn world_insns(w: &MpiWorld) -> u64 {
    (0..w.nranks()).map(|r| w.machine(r).counters.insns).sum()
}

/// Chaos-campaign execution, no control/sink/resume (the
/// [`crate::CampaignBuilder::run_chaos`] backend).
pub(crate) fn run_chaos_impl(app: &App, cfg: &CampaignConfig, policy: &ChaosPolicy) -> ChaosResult {
    run_chaos_engine(
        app,
        cfg,
        policy,
        &crate::engine::NullSink,
        &EngineControl::new(),
        None,
    )
    .expect("uncontrolled chaos runs always complete")
}

/// Run a chaos campaign on the shared engine pool. `cfg.injections`
/// trials per `model × defense` cell; pause/stop via `control`, records
/// and progress through `sink`, optional record-level resume. Returns
/// `None` when stopped before every slot completed.
pub fn run_chaos_engine(
    app: &App,
    cfg: &CampaignConfig,
    policy: &ChaosPolicy,
    sink: &dyn EngineSink,
    control: &EngineControl,
    resume: Option<CompletedSlots>,
) -> Option<ChaosResult> {
    let golden = app.golden(2_000_000_000);
    let budget = trial_budget(&golden, cfg);
    let sys = syscall_counts(app, budget, cfg.fastpath);
    let models = FaultModel::chaos_models();
    let ndef = Defense::ALL.len();
    let nranks = app.params.nranks;

    // The survivor-count reference for the shrink column (fl-ft's
    // pattern: a rebuilt world is pristine, so it solves the
    // one-fewer-rank weak-scaled problem).
    let shrunken_output = {
        let mut scfg = trial_world_config(app, budget, 0, cfg.fastpath);
        scfg.nranks -= 1;
        let mut w = MpiWorld::new(&app.image, scfg);
        let exit = w.run();
        assert_eq!(exit, WorldExit::Clean, "shrunken golden run must be clean");
        app.comparable_output(&w)
    };

    let resume = resume.unwrap_or_default();
    let resumed_total = resume.len() as u64;
    let total = (models.len() * ndef) as u64 * cfg.injections as u64;
    let done = AtomicU64::new(0);
    let started = std::time::Instant::now();

    let run_cell = |mi: usize, di: usize, k: u32| -> (Manifestation, String, u64) {
        let seed = trial_seed(cfg.seed, mi, k);
        let model = models[mi];
        let (fault, detail) = draw_chaos(&golden, &sys, model, seed, nranks, policy);
        let mut wcfg = trial_world_config(app, budget, 0, cfg.fastpath);
        wcfg.seed = seed;
        // Each column isolates exactly one defense: app-visible ULFM and
        // the heartbeat detector are off unless they ARE the defense.
        let mut bare = wcfg;
        bare.ulfm = false;
        bare.ft.enabled = false;

        let (outcome, insns) = match Defense::ALL[di] {
            Defense::Baseline => {
                let mut w = MpiWorld::new(&app.image, bare);
                fault.arm(&mut w);
                let exit = w.run();
                let out = app.comparable_output(&w);
                (classify(&exit, &out, &golden.output), world_insns(&w))
            }
            Defense::Crc => {
                let mut c = bare;
                c.guard = policy.guard.channel_guard();
                let mut w = MpiWorld::new(&app.image, c);
                fault.arm(&mut w);
                let exit = w.run();
                let out = app.comparable_output(&w);
                let m = match &exit {
                    WorldExit::Clean if out == golden.output && w.retransmits() > 0 => {
                        Manifestation::MaskedByChannel
                    }
                    e => classify(e, &out, &golden.output),
                };
                (m, world_insns(&w))
            }
            Defense::Watchdog => {
                let (w, rep) = run_guarded(&app.image, bare, &policy.guard, |w| fault.arm(w));
                let out = app.comparable_output(&w);
                let m = match &rep.exit {
                    WorldExit::Clean => {
                        if out == golden.output {
                            if rep.intervened() {
                                Manifestation::Recovered
                            } else {
                                Manifestation::Correct
                            }
                        } else {
                            Manifestation::Incorrect
                        }
                    }
                    _ => Manifestation::DetectedByGuard,
                };
                (m, world_insns(&w))
            }
            Defense::Replica => {
                let (w, rep) = run_replicated(
                    &app.image,
                    bare,
                    &policy.ft,
                    |replica, w| {
                        if replica == 0 {
                            fault.arm(w);
                        }
                    },
                    |w| app.comparable_output(w),
                );
                let out = app.comparable_output(&w);
                (
                    classify_replicated(&rep.exit, &out, rep.votes, &golden),
                    world_insns(&w),
                )
            }
            Defense::Shrink => {
                let mut c = wcfg;
                c.ulfm = false;
                let (w, rep) = run_shrink(&app.image, c, &policy.ft, |w| fault.arm(w));
                let out = app.comparable_output(&w);
                (
                    classify_shrink(&rep.exit, &out, rep.intervened(), &golden, &shrunken_output),
                    world_insns(&w),
                )
            }
            Defense::App => {
                let (w, rep) = run_app(&app.image, wcfg, &policy.ft, |w| fault.arm(w));
                let out = app.comparable_output(&w);
                (
                    classify_app(&rep.exit, &out, rep.shrinks, &golden),
                    world_insns(&w),
                )
            }
        };
        (
            outcome,
            format!("{}/{}: {detail}", Defense::ALL[di].name(), model),
            insns,
        )
    };

    let counts = vec![cfg.injections; models.len() * ndef];
    let (slots, complete) = run_pool(&counts, cfg.threads, control, |ci, k| {
        let out = match resume.take(ci, k) {
            Some(t) => t,
            None => {
                let (mi, di) = (ci / ndef, ci % ndef);
                let (outcome, detail, insns) = run_cell(mi, di, k);
                let t = TrialOutput {
                    ci,
                    k,
                    record: TrialRecord {
                        class: models[mi].chaos_class().expect("chaos model"),
                        detail,
                        outcome,
                    },
                    insns,
                    metrics: None,
                };
                sink.trial(&t);
                t
            }
        };
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        sink.progress(EngineProgress {
            total,
            done: d,
            resumed: resumed_total,
            wall_nanos: started.elapsed().as_nanos() as u64,
        });
        out
    });
    if !complete {
        return None;
    }

    let mut insns_total = 0u64;
    let mut cells = Vec::with_capacity(models.len() * ndef);
    for (ci, cell_slots) in slots.into_iter().enumerate() {
        let (mi, di) = (ci / ndef, ci % ndef);
        let mut tally = Tally::default();
        let trials: Vec<TrialRecord> = cell_slots
            .into_iter()
            .map(|s| {
                let t = s.expect("complete run fills every slot");
                insns_total += t.insns;
                tally.record(t.record.outcome);
                t.record
            })
            .collect();
        cells.push(ChaosCell {
            model: models[mi],
            defense: Defense::ALL[di],
            tally,
            trials,
        });
    }
    Some(ChaosResult {
        app: app.kind,
        policy: *policy,
        cells,
        golden,
        insns_total,
    })
}

/// Render the defense-coverage matrix as a text table: per model, the
/// baseline error count and each defense's coverage percent.
pub fn render_chaos(r: &ChaosResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "coverage = % of baseline-error trials the defense masked, recovered or detected"
    );
    let _ = write!(out, "{:<16} {:>9} |", "model", "base-err");
    for d in &Defense::ALL[1..] {
        let _ = write!(out, " {:>9}", d.name());
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(27 + 10 * (Defense::ALL.len() - 1)));
    for (mi, model) in ChaosResult::models().iter().enumerate() {
        let trials = r.cell(mi, 0).tally.executions;
        let _ = write!(
            out,
            "{:<16} {:>5}/{:<3} |",
            model.label(),
            r.baseline_errors(mi),
            trials
        );
        for di in 1..Defense::ALL.len() {
            let _ = write!(out, " {:>8.1}%", r.coverage_percent(mi, di));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}", "-".repeat(27 + 10 * (Defense::ALL.len() - 1)));
    for c in r.contracts() {
        let _ = writeln!(
            out,
            "contract {:<34} {:>3}/{:<3} = {:>5.1}% (floor {:.0}%) {}",
            c.name,
            c.covered,
            c.denom,
            c.percent(),
            c.floor_percent,
            if c.passed() { "PASS" } else { "FAIL" }
        );
    }
    out
}

/// Render the single-row focus view (the CLI's `chaos --model M`): one
/// model's outcome tallies under every defense.
pub fn render_chaos_focus(r: &ChaosResult, model: FaultModel) -> String {
    let mi = ChaosResult::models()
        .iter()
        .position(|&m| m == model)
        .expect("focus model is a chaos model");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} / model {model}: {} trials per defense",
        r.app.name(),
        r.cell(mi, 0).tally.executions
    );
    for (di, d) in Defense::ALL.iter().enumerate() {
        let tally = &r.cell(mi, di).tally;
        let _ = write!(out, "  {:<9}", d.name());
        let mut first = true;
        for m in Manifestation::ALL {
            let n = tally.count(m);
            if n > 0 {
                let _ = write!(out, "{}{m} {n}", if first { " " } else { ", " });
                first = false;
            }
        }
        if di > 0 {
            let _ = write!(out, "  [{:.1}% coverage]", r.coverage_percent(mi, di));
        }
        out.push('\n');
    }
    out
}

/// Render the matrix as TSV: one row per `model × defense` cell with
/// full outcome counts.
pub fn render_chaos_tsv(r: &ChaosResult) -> String {
    let mut out = String::from("model\tdefense\ttrials\tbase_errors\tcovered\tcoverage_pct");
    for m in Manifestation::ALL {
        let _ = write!(out, "\t{}", slug(m));
    }
    out.push('\n');
    for (mi, model) in ChaosResult::models().iter().enumerate() {
        for (di, d) in Defense::ALL.iter().enumerate() {
            let tally = &r.cell(mi, di).tally;
            let _ = write!(
                out,
                "{model}\t{d}\t{}\t{}\t{}\t{:.2}",
                tally.executions,
                r.baseline_errors(mi),
                r.covered(mi, di),
                r.coverage_percent(mi, di),
            );
            for m in Manifestation::ALL {
                let _ = write!(out, "\t{}", tally.count(m));
            }
            out.push('\n');
        }
    }
    out
}

/// Serialize the matrix as JSONL: one object per `model × defense` cell.
pub fn chaos_jsonl(r: &ChaosResult) -> String {
    let mut out = String::new();
    for (mi, model) in ChaosResult::models().iter().enumerate() {
        for (di, d) in Defense::ALL.iter().enumerate() {
            let tally = &r.cell(mi, di).tally;
            let _ = write!(
                out,
                "{{\"app\":\"{}\",\"model\":\"{model}\",\"defense\":\"{d}\",\"trials\":{},\"base_errors\":{},\"covered\":{},\"coverage_pct\":{:.2},\"outcomes\":{{",
                r.app.name(),
                tally.executions,
                r.baseline_errors(mi),
                r.covered(mi, di),
                r.coverage_percent(mi, di),
            );
            let mut first = true;
            for m in Manifestation::ALL {
                let n = tally.count(m);
                if n > 0 {
                    let _ = write!(out, "{}\"{}\":{n}", if first { "" } else { "," }, slug(m));
                    first = false;
                }
            }
            out.push_str("}}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{parse_record_line, VecSink};
    use fl_apps::AppParams;

    fn tiny() -> App {
        App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy))
    }

    #[test]
    fn chaos_draws_are_reproducible_and_model_shaped() {
        let app = tiny();
        let golden = app.golden(2_000_000_000);
        let cfg = CampaignConfig::default();
        let budget = trial_budget(&golden, &cfg);
        let sys = syscall_counts(&app, budget, cfg.fastpath);
        let policy = ChaosPolicy::default();
        for (mi, model) in FaultModel::chaos_models().iter().enumerate() {
            for k in 0..4u32 {
                let seed = trial_seed(7, mi, k);
                let a = draw_chaos(&golden, &sys, *model, seed, app.params.nranks, &policy);
                let b = draw_chaos(&golden, &sys, *model, seed, app.params.nranks, &policy);
                assert_eq!(a, b, "{model} draw must be pure in the seed");
                match (model, &a.0) {
                    (FaultModel::NetDrop, ChaosFault::Net(f)) => {
                        assert_eq!(f.kind, NetFaultKind::Drop)
                    }
                    (FaultModel::NetDuplicate, ChaosFault::Net(f)) => {
                        assert_eq!(f.kind, NetFaultKind::Duplicate)
                    }
                    (FaultModel::NetReorder, ChaosFault::Net(f)) => {
                        assert!(matches!(f.kind, NetFaultKind::Reorder { .. }))
                    }
                    (FaultModel::NetCorrupt, ChaosFault::Net(f)) => {
                        assert_eq!(f.kind, NetFaultKind::Corrupt)
                    }
                    (FaultModel::Partition, ChaosFault::Partition(p)) => {
                        assert!(p.mask > 0 && p.mask < (1 << app.params.nranks));
                        assert!(p.rounds >= 64);
                    }
                    (FaultModel::SyscallMalloc, ChaosFault::Syscall { fault, .. }) => {
                        assert_eq!(fault.kind, SyscallFaultKind::Malloc);
                        assert!(fault.at_call >= 1);
                    }
                    (FaultModel::SyscallWrite, ChaosFault::Syscall { fault, .. }) => {
                        assert_eq!(fault.kind, SyscallFaultKind::Write)
                    }
                    (FaultModel::Burst, ChaosFault::Burst(kills)) => {
                        assert!(kills.len() >= 2, "{kills:?}");
                        assert!(kills.len() < app.params.nranks as usize);
                        let mut ranks: Vec<u16> = kills.iter().map(|k| k.rank).collect();
                        ranks.sort_unstable();
                        ranks.dedup();
                        assert_eq!(ranks.len(), kills.len(), "distinct victims");
                    }
                    (FaultModel::NodeKill, ChaosFault::Node(nk)) => {
                        assert!(nk.mask > 0 && nk.mask < (1 << app.params.nranks));
                        assert_eq!(nk.mask >> nk.trigger_rank & 1, 1);
                    }
                    (m, f) => panic!("{m} drew {f:?}"),
                }
            }
        }
    }

    #[test]
    fn chaos_engine_fills_the_matrix_and_streams_records() {
        let app = tiny();
        let cfg = CampaignConfig {
            injections: 2,
            seed: 0xC0FFEE,
            ..Default::default()
        };
        let sink = VecSink::new(app.kind);
        let r = run_chaos_engine(
            &app,
            &cfg,
            &ChaosPolicy::default(),
            &sink,
            &EngineControl::new(),
            None,
        )
        .unwrap();
        assert_eq!(r.cells.len(), 9 * 6);
        for c in &r.cells {
            assert_eq!(c.tally.executions, 2);
            assert_eq!(c.trials.len(), 2);
        }
        let lines = sink.into_lines();
        assert_eq!(lines.len(), 9 * 6 * 2);
        let classes = chaos_classes();
        for l in &lines {
            let t = parse_record_line(l).expect("chaos records parse back");
            assert_eq!(t.record.class, classes[t.ci]);
        }
        // Render paths cover the full matrix.
        let table = render_chaos(&r, "chaos demo");
        assert!(table.contains("net-corrupt"), "{table}");
        assert!(
            table.contains("contract crc-catches-net-corrupt"),
            "{table}"
        );
        let tsv = render_chaos_tsv(&r);
        assert_eq!(tsv.lines().count(), 1 + 9 * 6, "{tsv}");
        let jsonl = chaos_jsonl(&r);
        assert_eq!(jsonl.lines().count(), 9 * 6);
        let focus = render_chaos_focus(&r, FaultModel::NetDrop);
        assert!(focus.contains("model net-drop"), "{focus}");
    }

    #[test]
    fn contract_floors_need_evidence() {
        let c = ContractCheck {
            name: "x",
            what: "y",
            covered: 0,
            denom: 0,
            floor_percent: 90.0,
        };
        assert!(!c.passed(), "an empty denominator proves nothing");
        let c = ContractCheck {
            covered: 9,
            denom: 10,
            ..c
        };
        assert!(c.passed());
        let c = ContractCheck {
            covered: 8,
            denom: 10,
            ..c
        };
        assert!(!c.passed());
    }
}
