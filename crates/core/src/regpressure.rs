//! Static register-usage analysis (§6.1.1 of the paper).
//!
//! "These effects are strongly dependent, however, on the quality of live
//! register allocation and management (a function of the compiler) and
//! the size of the register file." The paper cites Springer's study of
//! register usage on a PowerPC 750 (4–5 of 64 registers live without
//! optimisation, 14–15 with `-O`) and observes that x87 code "generally
//! uses only four of the registers in the stack."
//!
//! This module scans a compiled image and reports, per general-purpose
//! register, how many text-section instructions *reference* it — the
//! static pressure that predicts the per-register fault sensitivity the
//! campaigns measure dynamically.

use fl_isa::insn::{FpuBinOp, FpuUnOp};
use fl_isa::{decode_at, Gpr, Insn};
use fl_machine::ProgramImage;
use std::fmt::Write as _;

/// Static usage counts per register over the application text.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterPressure {
    /// Per-GPR reference counts, indexed by [`Gpr`] encoding.
    pub gpr_refs: [u32; 8],
    /// Instructions that touch the FPU stack.
    pub fpu_insns: u32,
    /// Total decodable instructions scanned.
    pub total_insns: u32,
    /// Instructions with at least one GPR operand (excluding the
    /// implicit ESP/EBP of push/pop/call/frame instructions).
    pub gpr_insns: u32,
}

fn regs_of(insn: &Insn) -> (Vec<Gpr>, bool) {
    use Insn::*;
    let mut gprs = Vec::new();
    let mut fpu = false;
    match *insn {
        Nop | Ret | Leave | Halt | J { .. } | Call { .. } | Enter { .. } | Sys { .. } => {}
        MovI { rd, .. } => gprs.push(rd),
        Mov { rd, rs } => gprs.extend([rd, rs]),
        Alu { rd, ra, rb, .. } => gprs.extend([rd, ra, rb]),
        AddI { rd, ra, .. } | MulI { rd, ra, .. } => gprs.extend([rd, ra]),
        Cmp { ra, rb } => gprs.extend([ra, rb]),
        CmpI { ra, .. } => gprs.push(ra),
        JmpR { rs } | CallR { rs } | Push { rs } => gprs.push(rs),
        Pop { rd } => gprs.push(rd),
        Ld { rd, base, .. } | LdB { rd, base, .. } => gprs.extend([rd, base]),
        St { rb, base, .. } | StB { rb, base, .. } => gprs.extend([rb, base]),
        LdG { rd, .. } => gprs.push(rd),
        StG { rs, .. } => gprs.push(rs),
        Fld { base, .. }
        | Fst { base, .. }
        | Fstp { base, .. }
        | Fild { base, .. }
        | Fistp { base, .. } => {
            gprs.push(base);
            fpu = true;
        }
        FldG { .. } | FstpG { .. } | Fldz | Fld1 | Fcomip | Fpop | Fxch { .. } | FldSt { .. } => {
            fpu = true
        }
        FildR { rs } => {
            gprs.push(rs);
            fpu = true;
        }
        FistpR { rd } => {
            gprs.push(rd);
            fpu = true;
        }
        Fbinp { op: FpuBinOp::Add }
        | Fbinp { op: FpuBinOp::Sub }
        | Fbinp { op: FpuBinOp::SubR }
        | Fbinp { op: FpuBinOp::Mul }
        | Fbinp { op: FpuBinOp::Div }
        | Fbinp { op: FpuBinOp::DivR } => fpu = true,
        Funop { op: FpuUnOp::Chs }
        | Funop { op: FpuUnOp::Abs }
        | Funop { op: FpuUnOp::Sqrt }
        | Funop { op: FpuUnOp::Sin }
        | Funop { op: FpuUnOp::Cos }
        | Funop { op: FpuUnOp::Exp }
        | Funop { op: FpuUnOp::Ln } => fpu = true,
    }
    (gprs, fpu)
}

/// Scan an image's application text.
pub fn analyze_image(image: &ProgramImage) -> RegisterPressure {
    let words: Vec<u32> = image
        .text
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut p = RegisterPressure::default();
    let mut idx = 0;
    while idx < words.len() {
        match decode_at(&words, idx) {
            Ok((insn, len)) => {
                p.total_insns += 1;
                let (gprs, fpu) = regs_of(&insn);
                if !gprs.is_empty() {
                    p.gpr_insns += 1;
                }
                for g in gprs {
                    p.gpr_refs[g.index() as usize] += 1;
                }
                if fpu {
                    p.fpu_insns += 1;
                }
                idx += len;
            }
            Err(_) => idx += 1,
        }
    }
    p
}

/// Render the analysis as text.
pub fn render_register_pressure(image: &ProgramImage) -> String {
    let p = analyze_image(image);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Static register pressure over {} decoded instructions",
        p.total_insns
    );
    let _ = writeln!(out, "{:<6} {:>8} {:>9}", "reg", "refs", "refs/insn");
    for g in Gpr::ALL {
        let refs = p.gpr_refs[g.index() as usize];
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>9.3}",
            g.to_string(),
            refs,
            refs as f64 / p.total_insns.max(1) as f64
        );
    }
    let _ = writeln!(
        out,
        "FPU-stack instructions: {} ({:.1}% of text)",
        p.fpu_insns,
        100.0 * p.fpu_insns as f64 / p.total_insns.max(1) as f64
    );
    let _ = writeln!(
        out,
        "\nNote: ESP and EBP are additionally live in EVERY instruction\n\
         (stack discipline + frame chain), beyond these explicit counts —\n\
         the §6.1.1 explanation for the integer register file's 38-63%\n\
         fault manifestation rate."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_registers_dominate_compiled_code() {
        let img = fl_lang::compile(
            "global float t[32];
             fn work(int n) -> float {
                 var float acc;
                 var int i;
                 acc = 0.0;
                 for (i = 0; i < n; i = i + 1) { acc = acc + t[i % 32] * 1.5; }
                 return acc;
             }
             fn main() { print_flt(work(10), 3); }",
        )
        .unwrap();
        let p = analyze_image(&img);
        assert!(p.total_insns > 40);
        let eax = p.gpr_refs[Gpr::Eax.index() as usize];
        let edi = p.gpr_refs[Gpr::Edi.index() as usize];
        // The stack-machine codegen leans on EAX; EDI is essentially
        // unused — the static shape behind differential sensitivity.
        assert!(eax > 10 * (edi + 1), "eax {eax} vs edi {edi}");
        assert!(p.fpu_insns > 0);
    }

    #[test]
    fn renders() {
        let img = fl_lang::compile("fn main() { print_int(1); }").unwrap();
        let text = render_register_pressure(&img);
        assert!(text.contains("eax"));
        assert!(text.contains("FPU-stack"));
    }
}
