//! The campaign engine: spec → scheduler → worker pool → record sink.
//!
//! Before this module existed every campaign flavour (plain, coverage,
//! ft) owned a private driver loop: an atomic cursor, a crossbeam
//! scope, a slot-addressed record vector. The engine extracts that loop
//! into one place and adds the three capabilities the campaign service
//! needs:
//!
//! * **Work stealing** — the flattened `(class, trial)` slot space is
//!   split into one contiguous shard per worker; a worker that drains
//!   its shard steals the upper half of the richest remaining shard.
//!   Records stay slot-addressed, so the output is bit-identical no
//!   matter which worker ran which trial.
//! * **Pause / stop** — workers consult an [`EngineControl`] between
//!   trials. Pause parks them on a condvar mid-campaign; stop makes
//!   them drain and exit, leaving a partial slot vector.
//! * **Resume** — a [`CompletedSlots`] map (typically parsed back from
//!   a streamed JSONL record file) pre-fills slots so a restarted
//!   engine re-runs only the missing trials. Because every trial is
//!   deterministic in its campaign coordinates, the resumed campaign's
//!   canonical record stream and metrics are bit-identical to an
//!   uninterrupted run's.
//!
//! [`run_campaign_impl`](crate::campaign) and the coverage/ft backends
//! are thin clients of the internal `run_pool` scheduler; `faultlab
//! serve` and the one-shot
//! CLI verbs are thin clients of [`run_campaign_engine`]. There is
//! exactly one way trials get scheduled, executed and recorded.

use crate::campaign::{
    build_epochs, run_trial_inner, trial_budget, trial_seed, CampaignConfig, CampaignResult,
    ClassResult, Dictionaries, TrialRecord,
};
use crate::json::{escape, parse, Json};
use crate::obs::{trial_metrics, CampaignMetrics, ClassMetrics, TrialMetrics, KIND_COUNT};
use crate::outcome::{Manifestation, Tally};
use crate::progress::EngineProgress;
use crate::spec::{CampaignSpec, SpecMode};
use crate::target::TargetClass;
use fl_apps::{App, AppKind};
use fl_machine::ExecStats;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Engine run state, transitioned by controllers and observed by
/// workers between trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Workers claim and execute trials.
    Running,
    /// Workers park on the control's condvar; the campaign thread stays
    /// inside the pool, resumable instantly.
    Paused,
    /// Workers finish their current trial and exit; the pool returns a
    /// partial slot vector.
    Stopping,
}

/// Shared pause/stop switch for one engine run.
///
/// Cheap to share (`&EngineControl` is all the workers hold); a server
/// keeps one per campaign so `POST /campaigns/<id>/pause` can park the
/// pool mid-run.
#[derive(Debug, Default)]
pub struct EngineControl {
    state: Mutex<Option<RunState>>,
    cv: Condvar,
}

impl EngineControl {
    /// A control in the `Running` state.
    pub fn new() -> EngineControl {
        EngineControl {
            state: Mutex::new(Some(RunState::Running)),
            cv: Condvar::new(),
        }
    }

    fn set(&self, s: RunState) {
        *self.state.lock().unwrap() = Some(s);
        self.cv.notify_all();
    }

    /// Park workers after their current trial.
    pub fn pause(&self) {
        self.set(RunState::Paused);
    }

    /// Unpark paused workers.
    pub fn resume(&self) {
        self.set(RunState::Running);
    }

    /// Drain workers; the engine returns a partial run.
    pub fn stop(&self) {
        self.set(RunState::Stopping);
    }

    /// The current state.
    pub fn state(&self) -> RunState {
        self.state.lock().unwrap().unwrap_or(RunState::Running)
    }

    /// Worker-side gate: blocks while paused, returns `false` once the
    /// run is stopping.
    pub fn proceed(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        while *st == Some(RunState::Paused) {
            st = self.cv.wait(st).unwrap();
        }
        *st != Some(RunState::Stopping)
    }
}

/// Work-stealing scheduler over a flattened slot space `[0, total)`.
///
/// Each worker owns one contiguous shard packed into an `AtomicU64`
/// (`next` in the high half, `end` in the low half). Claiming pops the
/// front of the own shard; an empty worker steals the upper half of the
/// richest shard with a single CAS. Slot *indices* are deterministic
/// regardless of the steal schedule — only completion order varies.
pub(crate) struct Scheduler {
    shards: Vec<AtomicU64>,
}

fn pack(next: u32, end: u32) -> u64 {
    ((next as u64) << 32) | end as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl Scheduler {
    /// Split `[0, total)` into `shards` contiguous ranges.
    pub(crate) fn new(total: u32, shards: usize) -> Scheduler {
        let shards = shards.max(1);
        let per = total / shards as u32;
        let extra = total % shards as u32;
        let mut v = Vec::with_capacity(shards);
        let mut start = 0;
        for i in 0..shards as u32 {
            let len = per + u32::from(i < extra);
            v.push(AtomicU64::new(pack(start, start + len)));
            start += len;
        }
        Scheduler { shards: v }
    }

    fn pop(shard: &AtomicU64) -> Option<u32> {
        let mut cur = shard.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            match shard.compare_exchange_weak(
                cur,
                pack(next + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(next),
                Err(now) => cur = now,
            }
        }
    }

    /// Claim the next slot for worker `me`: own shard first, then steal.
    pub(crate) fn claim(&self, me: usize) -> Option<u32> {
        loop {
            if let Some(k) = Self::pop(&self.shards[me]) {
                return Some(k);
            }
            // Steal from the richest shard. `me` is empty right now, so
            // a plain store below cannot race with other thieves (they
            // only CAS non-empty shards).
            let mut best: Option<(usize, u32, u32)> = None;
            for (i, s) in self.shards.iter().enumerate() {
                if i == me {
                    continue;
                }
                let (n, e) = unpack(s.load(Ordering::Acquire));
                if e > n && best.is_none_or(|(_, bn, be)| e - n > be - bn) {
                    best = Some((i, n, e));
                }
            }
            let (victim, n, e) = best?;
            let mid = n + (e - n) / 2; // upper half [mid, e); all of it when 1 remains
            if self.shards[victim]
                .compare_exchange(
                    pack(n, e),
                    pack(n, mid),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.shards[me].store(pack(mid + 1, e), Ordering::Release);
                return Some(mid);
            }
            // Lost the race; re-scan.
        }
    }

    /// Slots not yet claimed (approximate under concurrency; exact when
    /// quiescent).
    #[cfg(test)]
    pub(crate) fn remaining(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| {
                let (n, e) = unpack(s.load(Ordering::Acquire));
                e.saturating_sub(n)
            })
            .sum()
    }
}

/// Resolve a thread-count knob (0 = one per available core).
pub(crate) fn resolve_threads(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        n
    }
}

/// The one scheduling loop every campaign flavour runs on: `counts[g]`
/// trials per group, flattened, sharded across `threads` workers with
/// stealing, slot-addressed results. Returns the slot vectors and
/// whether every slot was filled (`false` after a stop).
pub(crate) fn run_pool<T: Send>(
    counts: &[u32],
    threads: usize,
    control: &EngineControl,
    exec: impl Fn(usize, u32) -> T + Sync,
) -> (Vec<Vec<Option<T>>>, bool) {
    let total: u32 = counts.iter().sum();
    let threads = resolve_threads(threads).max(1);
    let slots: Mutex<Vec<Vec<Option<T>>>> = Mutex::new(
        counts
            .iter()
            .map(|&n| (0..n).map(|_| None).collect())
            .collect(),
    );
    // Group offsets for flat-index → (group, k) translation.
    let mut offsets = Vec::with_capacity(counts.len());
    let mut acc = 0u32;
    for &n in counts {
        offsets.push(acc);
        acc += n;
    }
    let sched = Scheduler::new(total, threads);
    crossbeam::thread::scope(|s| {
        for me in 0..threads {
            let sched = &sched;
            let slots = &slots;
            let exec = &exec;
            let offsets = &offsets;
            s.spawn(move |_| {
                while control.proceed() {
                    let Some(flat) = sched.claim(me) else {
                        break;
                    };
                    let g = match offsets.binary_search(&flat) {
                        Ok(i) => {
                            // Equal offsets mark empty groups; the slot
                            // belongs to the last group starting here.
                            let mut i = i;
                            while i + 1 < offsets.len() && offsets[i + 1] == flat {
                                i += 1;
                            }
                            i
                        }
                        Err(i) => i - 1,
                    };
                    let k = flat - offsets[g];
                    let t = exec(g, k);
                    slots.lock().unwrap()[g][k as usize] = Some(t);
                }
            });
        }
    })
    .expect("campaign worker panicked");
    let slots = slots.into_inner().unwrap();
    let complete = slots.iter().flatten().all(|s| s.is_some());
    (slots, complete)
}

/// One finished trial, addressed by its campaign coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutput {
    /// Class position in the campaign's class list.
    pub ci: usize,
    /// Trial index within the class.
    pub k: u32,
    /// What was injected and what happened.
    pub record: TrialRecord,
    /// Guest instructions retired across all ranks.
    pub insns: u64,
    /// Per-trial event metrics, present iff the campaign records events.
    pub metrics: Option<TrialMetrics>,
}

/// Subscriber to engine output: per-trial records in completion order,
/// plus progress counter updates. One-shot CLI progress lines, the
/// server's status responses and the watch stream all render from this
/// one event source.
pub trait EngineSink: Sync {
    /// One trial finished (called from worker threads, completion
    /// order). Not called for slots adopted from [`CompletedSlots`] —
    /// those were already streamed by the run that produced them.
    fn trial(&self, _t: &TrialOutput) {}

    /// Progress counters advanced.
    fn progress(&self, _p: EngineProgress) {}
}

/// A sink that ignores everything (the plain `CampaignBuilder` path).
pub struct NullSink;

impl EngineSink for NullSink {}

/// A sink that collects canonical record lines in memory.
pub struct VecSink {
    lines: Mutex<Vec<String>>,
    app: AppKind,
}

impl VecSink {
    /// An empty sink for `app`'s records.
    pub fn new(app: AppKind) -> VecSink {
        VecSink {
            lines: Mutex::new(Vec::new()),
            app,
        }
    }

    /// The collected lines, in completion order.
    pub fn into_lines(self) -> Vec<String> {
        self.lines.into_inner().unwrap()
    }
}

impl EngineSink for VecSink {
    fn trial(&self, t: &TrialOutput) {
        self.lines.lock().unwrap().push(record_line(self.app, t));
    }
}

/// Slots completed by a previous run of the same campaign, keyed by
/// `(ci, k)`. The engine adopts them instead of re-executing.
#[derive(Debug, Default)]
pub struct CompletedSlots {
    map: Mutex<HashMap<(usize, u32), TrialOutput>>,
}

impl CompletedSlots {
    /// An empty map.
    pub fn new() -> CompletedSlots {
        CompletedSlots::default()
    }

    /// Adopt one finished trial.
    pub fn insert(&self, t: TrialOutput) {
        self.map.lock().unwrap().insert((t.ci, t.k), t);
    }

    /// Completed slots held.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no slots are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn take(&self, ci: usize, k: u32) -> Option<TrialOutput> {
        self.map.lock().unwrap().remove(&(ci, k))
    }

    /// Parse a streamed JSONL record file back into completed slots.
    /// Lines that fail to parse (e.g. a torn final line after a kill)
    /// or fall outside the campaign's slot space are skipped and
    /// counted — the engine simply re-runs those trials.
    pub fn from_jsonl(
        text: &str,
        classes: &[TargetClass],
        injections: u32,
    ) -> (CompletedSlots, usize) {
        let slots = CompletedSlots::new();
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_record_line(line) {
                Ok(t)
                    if t.ci < classes.len()
                        && t.k < injections
                        && classes[t.ci] == t.record.class =>
                {
                    slots.insert(t)
                }
                _ => skipped += 1,
            }
        }
        (slots, skipped)
    }
}

/// What an engine run produced.
#[derive(Debug)]
pub struct EngineRun {
    /// The assembled campaign result — `Some` iff every slot completed
    /// (the run was not stopped early).
    pub result: Option<CampaignResult>,
    /// Final progress counters.
    pub progress: EngineProgress,
}

/// Run a campaign on the engine: scheduler, worker pool with stealing,
/// record sink, pause/stop control, optional resume.
///
/// This is the single backend behind `CampaignBuilder::run`, `faultlab
/// campaign --jobs N` and `faultlab serve`. Records, metrics and
/// instruction totals are bit-identical for any worker count, steal
/// schedule, or resume point, because every trial is deterministic in
/// `(spec, ci, k)` and all aggregation happens in slot order.
pub fn run_campaign_engine(
    app: &App,
    classes: &[TargetClass],
    cfg: &CampaignConfig,
    sink: &dyn EngineSink,
    control: &EngineControl,
    resume: Option<CompletedSlots>,
) -> EngineRun {
    let golden = app.golden(2_000_000_000);
    let budget = trial_budget(&golden, cfg);
    let dicts = Dictionaries::build(app);
    // One campaign-wide pre-decoded store: the golden/epoch run and every
    // trial fork share it, so decode work is paid once per campaign.
    let code = cfg.fastpath.then(|| app.image.pre_decode());
    let epochs = build_epochs(app, cfg, budget, code.as_ref());
    let observe = cfg.obs_capacity > 0;
    // Exec-cache telemetry. Sums are commutative, so the totals are
    // independent of worker count; resume-adopted slots contribute zero
    // (their worlds ran in a previous process).
    let exec_stats = Mutex::new(ExecStats::default());
    let resume = resume.unwrap_or_default();
    let resumed_total = resume.len() as u64;
    let total = classes.len() as u64 * cfg.injections as u64;
    let done = AtomicU64::new(0);
    let started = std::time::Instant::now();

    let counts = vec![cfg.injections; classes.len()];
    let (slots, complete) = run_pool(&counts, cfg.threads, control, |ci, k| {
        let out = match resume.take(ci, k) {
            Some(t) => t,
            None => {
                let run = run_trial_inner(
                    app,
                    &golden,
                    &dicts,
                    classes[ci],
                    trial_seed(cfg.seed, ci, k),
                    budget,
                    epochs.as_ref(),
                    cfg.obs_capacity,
                    cfg.fastpath,
                    code.as_ref(),
                );
                exec_stats.lock().unwrap().add(&run.world.exec_stats());
                let metrics = observe.then(|| {
                    trial_metrics(&run.record, run.rank, &run.world.event_streams(), run.insns)
                });
                let t = TrialOutput {
                    ci,
                    k,
                    record: run.record,
                    insns: run.insns,
                    metrics,
                };
                sink.trial(&t);
                t
            }
        };
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        sink.progress(EngineProgress {
            total,
            done: d,
            resumed: resumed_total,
            wall_nanos: started.elapsed().as_nanos() as u64,
        });
        out
    });

    let progress = EngineProgress {
        total,
        done: done.load(Ordering::Relaxed),
        resumed: resumed_total,
        wall_nanos: started.elapsed().as_nanos() as u64,
    };
    if !complete {
        return EngineRun {
            result: None,
            progress,
        };
    }

    // Assemble the result in slot order — the same folds in the same
    // order regardless of worker count or resume point.
    let mut insns_total = 0u64;
    let mut results = Vec::new();
    let mut metrics: Vec<ClassMetrics> = Vec::new();
    for (ci, class_slots) in slots.into_iter().enumerate() {
        let class = classes[ci];
        let mut class_metrics = ClassMetrics::new(class);
        let mut tally = Tally::default();
        let trials: Vec<TrialRecord> = class_slots
            .into_iter()
            .map(|s| {
                let t = s.expect("complete run fills every slot");
                insns_total += t.insns;
                if let Some(tm) = &t.metrics {
                    class_metrics.fold(tm);
                }
                tally.record(t.record.outcome);
                t.record
            })
            .collect();
        if observe {
            metrics.push(class_metrics);
        }
        results.push(ClassResult {
            class,
            tally,
            trials,
        });
    }
    EngineRun {
        result: Some(CampaignResult {
            app: app.kind,
            classes: results,
            golden,
            metrics: observe.then_some(CampaignMetrics { classes: metrics }),
            insns_total,
            wall_nanos: progress.wall_nanos,
            exec_stats: exec_stats.into_inner().unwrap(),
        }),
        progress,
    }
}

/// What running a [`CampaignSpec`] produced, by mode.
#[derive(Debug)]
pub enum SpecOutcome {
    /// A plain campaign's result.
    Campaign(CampaignResult),
    /// A guard-coverage campaign's result.
    Coverage(crate::guarded::CoverageResult),
    /// A fault-tolerance campaign's result.
    Ft(crate::ft::FtResult),
    /// A chaos defense-coverage campaign's result.
    Chaos(crate::chaos::ChaosResult),
    /// A performance-interference campaign's result.
    Perturb(crate::perturb::PerturbResult),
}

/// Run a [`CampaignSpec`] end to end on the engine — the single entry
/// point behind the one-shot CLI verbs and the campaign service.
/// Returns `None` when `control` stopped the run before completion.
///
/// `resume` pre-fills completed slots and applies to plain campaign,
/// chaos and perturb modes (their per-trial records are what the
/// service streams and re-parses); guard and ft campaigns always run
/// their remaining trials from scratch.
pub fn run_spec(
    spec: &CampaignSpec,
    sink: &dyn EngineSink,
    control: &EngineControl,
    resume: Option<CompletedSlots>,
) -> Option<SpecOutcome> {
    let params = if spec.tiny {
        fl_apps::AppParams::tiny(spec.app)
    } else {
        fl_apps::AppParams::default_for(spec.app)
    };
    let app = App::build(spec.app, params);
    match &spec.mode {
        SpecMode::Campaign => {
            run_campaign_engine(&app, &spec.classes, &spec.campaign, sink, control, resume)
                .result
                .map(SpecOutcome::Campaign)
        }
        SpecMode::Guard(policy) => crate::guarded::run_coverage_engine(
            &app,
            &spec.classes,
            &spec.campaign,
            policy,
            sink,
            control,
        )
        .map(SpecOutcome::Coverage),
        SpecMode::Ft(policy) => crate::ft::run_ft_engine(
            &app,
            &spec.campaign,
            policy,
            spec.campaign.injections,
            spec.campaign.injections,
            sink,
            control,
        )
        .map(SpecOutcome::Ft),
        SpecMode::Chaos(policy) => {
            crate::chaos::run_chaos_engine(&app, &spec.campaign, policy, sink, control, resume)
                .map(SpecOutcome::Chaos)
        }
        SpecMode::Perturb(policy) => {
            crate::perturb::run_perturb_engine(&app, &spec.campaign, policy, sink, control, resume)
                .map(SpecOutcome::Perturb)
        }
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}

/// Serialize one trial as its canonical JSONL record line (no trailing
/// newline). This is the wire format of the record stream: stable field
/// order, integers only, so identical trials always produce identical
/// bytes.
pub fn record_line(app: AppKind, t: &TrialOutput) -> String {
    let mut out = format!(
        "{{\"app\":\"{}\",\"class\":\"{}\",\"ci\":{},\"k\":{},\"detail\":\"{}\",\"outcome\":\"{}\",\"insns\":{}",
        app.name(),
        t.record.class.name(),
        t.ci,
        t.k,
        escape(&t.record.detail),
        t.record.outcome.slug(),
        t.insns,
    );
    match &t.metrics {
        None => out.push_str(",\"metrics\":null}"),
        Some(m) => {
            let _ = write!(
                out,
                ",\"metrics\":{{\"injection_clock\":{},\"first_symptom_clock\":{},\"blocks_to_manifestation\":{},\"events_to_symptom\":{},\"events_total\":{},\"kind_counts\":[",
                opt_u64(m.injection_clock),
                opt_u64(m.first_symptom_clock),
                opt_u64(m.blocks_to_manifestation),
                opt_u64(m.events_to_symptom),
                m.events_total,
            );
            for (i, n) in m.kind_counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push_str("]}}");
        }
    }
    out
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid `{key}`"))
}

fn field_opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("invalid `{key}`")),
    }
}

/// Parse a canonical record line back into a [`TrialOutput`] — the
/// resume path's inverse of [`record_line`].
pub fn parse_record_line(line: &str) -> Result<TrialOutput, String> {
    let v = parse(line)?;
    let class: TargetClass = v
        .get("class")
        .and_then(Json::as_str)
        .ok_or("missing `class`")?
        .parse()?;
    let outcome = v
        .get("outcome")
        .and_then(Json::as_str)
        .and_then(Manifestation::from_slug)
        .ok_or("missing/unknown `outcome`")?;
    let detail = v
        .get("detail")
        .and_then(Json::as_str)
        .ok_or("missing `detail`")?
        .to_string();
    let insns = field_u64(&v, "insns")?;
    let metrics = match v.get("metrics") {
        None | Some(Json::Null) => None,
        Some(m) => {
            let counts = m
                .get("kind_counts")
                .and_then(Json::as_arr)
                .ok_or("missing `kind_counts`")?;
            if counts.len() != KIND_COUNT {
                return Err(format!(
                    "kind_counts has {} entries, expected {KIND_COUNT}",
                    counts.len()
                ));
            }
            let mut kind_counts = [0u64; KIND_COUNT];
            for (dst, src) in kind_counts.iter_mut().zip(counts) {
                *dst = src.as_u64().ok_or("invalid kind count")?;
            }
            Some(TrialMetrics {
                outcome,
                injection_clock: field_opt_u64(m, "injection_clock")?,
                first_symptom_clock: field_opt_u64(m, "first_symptom_clock")?,
                blocks_to_manifestation: field_opt_u64(m, "blocks_to_manifestation")?,
                events_to_symptom: field_opt_u64(m, "events_to_symptom")?,
                events_total: field_u64(m, "events_total")?,
                insns,
                kind_counts,
            })
        }
    };
    Ok(TrialOutput {
        ci: field_u64(&v, "ci")? as usize,
        k: field_u64(&v, "k")? as u32,
        record: TrialRecord {
            class,
            detail,
            outcome,
        },
        insns,
        metrics,
    })
}

/// Sort a streamed JSONL record file into the canonical slot order
/// `(ci, k)`, preserving each line byte-for-byte. Unparsable lines are
/// dropped (a torn tail after a kill). This is "the slot-addressed
/// record sort": any two runs of the same spec produce the same
/// canonical stream, regardless of worker count or interruptions.
pub fn sort_records_jsonl(text: &str) -> String {
    let mut keyed: Vec<((usize, u32), &str)> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| {
            let t = parse_record_line(l).ok()?;
            Some(((t.ci, t.k), l))
        })
        .collect();
    keyed.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (_, l) in keyed {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_apps::AppParams;

    fn tiny() -> App {
        App::build(AppKind::Wavetoy, AppParams::tiny(AppKind::Wavetoy))
    }

    fn cfg(injections: u32, seed: u64, threads: usize) -> CampaignConfig {
        CampaignConfig {
            injections,
            seed,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn scheduler_hands_out_every_slot_exactly_once() {
        let sched = Scheduler::new(100, 4);
        let seen = Mutex::new(vec![0u32; 100]);
        crossbeam::thread::scope(|s| {
            for me in 0..4 {
                let sched = &sched;
                let seen = &seen;
                s.spawn(move |_| {
                    while let Some(k) = sched.claim(me) {
                        seen.lock().unwrap()[k as usize] += 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sched.remaining(), 0);
        assert!(seen.lock().unwrap().iter().all(|&n| n == 1));
    }

    #[test]
    fn scheduler_steals_across_shards() {
        // Worker 1 never claims; worker 0 must steal everything.
        let sched = Scheduler::new(10, 2);
        let mut got = Vec::new();
        while let Some(k) = sched.claim(0) {
            got.push(k);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_slots_are_complete_and_ordered() {
        let control = EngineControl::new();
        let (slots, complete) = run_pool(&[5, 3], 3, &control, |g, k| (g, k));
        assert!(complete);
        assert_eq!(slots.len(), 2);
        for (g, group) in slots.iter().enumerate() {
            for (k, s) in group.iter().enumerate() {
                assert_eq!(*s, Some((g, k as u32)));
            }
        }
    }

    #[test]
    fn pool_handles_empty_groups() {
        let control = EngineControl::new();
        let (slots, complete) = run_pool(&[0, 4, 0, 2], 2, &control, |g, k| (g, k));
        assert!(complete);
        assert!(slots[0].is_empty() && slots[2].is_empty());
        assert_eq!(slots[1][3], Some((1, 3)));
        assert_eq!(slots[3][1], Some((3, 1)));
    }

    #[test]
    fn stopped_pool_returns_partial() {
        let control = EngineControl::new();
        let ran = AtomicU64::new(0);
        let (slots, complete) = run_pool(&[64], 1, &control, |_, k| {
            if ran.fetch_add(1, Ordering::Relaxed) + 1 == 10 {
                control.stop();
            }
            k
        });
        assert!(!complete);
        let filled = slots[0].iter().filter(|s| s.is_some()).count();
        assert!((10..64).contains(&filled), "filled {filled}");
    }

    #[test]
    fn engine_matches_legacy_backend() {
        let app = tiny();
        let classes = [TargetClass::RegularReg, TargetClass::Message];
        let c = cfg(6, 0xE9, 2);
        let run = run_campaign_engine(&app, &classes, &c, &NullSink, &EngineControl::new(), None);
        let legacy = crate::campaign::run_campaign_impl(&app, &classes, &c);
        let r = run.result.expect("uninterrupted run completes");
        for (a, b) in r.classes.iter().zip(&legacy.classes) {
            assert_eq!(a.trials, b.trials);
            assert_eq!(a.tally, b.tally);
        }
        assert_eq!(r.insns_total, legacy.insns_total);
    }

    #[test]
    fn jobs_count_does_not_change_records() {
        let app = tiny();
        let classes = [TargetClass::RegularReg, TargetClass::Stack];
        let lines = |threads: usize| {
            let sink = VecSink::new(app.kind);
            let c = cfg(8, 0x10B5, threads);
            let run = run_campaign_engine(&app, &classes, &c, &sink, &EngineControl::new(), None);
            assert!(run.result.is_some());
            sort_records_jsonl(&sink.into_lines().join("\n"))
        };
        assert_eq!(lines(1), lines(4), "records must be byte-identical");
    }

    #[test]
    fn record_lines_round_trip() {
        let app = tiny();
        let classes = [TargetClass::RegularReg];
        let sink = VecSink::new(app.kind);
        let mut c = cfg(4, 7, 1);
        c.obs_capacity = 256;
        let run = run_campaign_engine(&app, &classes, &c, &sink, &EngineControl::new(), None);
        let result = run.result.unwrap();
        for line in sink.into_lines() {
            let t = parse_record_line(&line).expect("line parses");
            assert_eq!(t.record, result.classes[t.ci].trials[t.k as usize]);
            assert_eq!(record_line(app.kind, &t), line, "re-emit is byte-identical");
            assert!(t.metrics.is_some(), "observed runs carry metrics");
        }
    }

    #[test]
    fn resume_from_records_is_bit_identical() {
        let app = tiny();
        let classes = [TargetClass::RegularReg, TargetClass::Message];
        let mut c = cfg(6, 0x5EED, 2);
        c.obs_capacity = 128;

        // Uninterrupted reference.
        let ref_sink = VecSink::new(app.kind);
        let reference =
            run_campaign_engine(&app, &classes, &c, &ref_sink, &EngineControl::new(), None)
                .result
                .unwrap();
        let ref_lines = sort_records_jsonl(&ref_sink.into_lines().join("\n"));

        // Interrupted run: stop after 5 trials.
        let control = EngineControl::new();
        let sink = VecSink::new(app.kind);
        let seen = AtomicU64::new(0);
        struct StopAfter<'a> {
            inner: &'a VecSink,
            control: &'a EngineControl,
            seen: &'a AtomicU64,
            at: u64,
        }
        impl EngineSink for StopAfter<'_> {
            fn trial(&self, t: &TrialOutput) {
                self.inner.trial(t);
                if self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.at {
                    self.control.stop();
                }
            }
        }
        let stopper = StopAfter {
            inner: &sink,
            control: &control,
            seen: &seen,
            at: 5,
        };
        let first = run_campaign_engine(&app, &classes, &c, &stopper, &control, None);
        assert!(first.result.is_none(), "stopped run must not complete");
        let first_lines = sink.into_lines();
        assert!(!first_lines.is_empty());

        // Resume from the streamed records.
        let (slots, skipped) =
            CompletedSlots::from_jsonl(&first_lines.join("\n"), &classes, c.injections);
        assert_eq!(skipped, 0);
        let resumed_before = slots.len();
        let sink2 = VecSink::new(app.kind);
        let second = run_campaign_engine(
            &app,
            &classes,
            &c,
            &sink2,
            &EngineControl::new(),
            Some(slots),
        );
        let resumed = second.result.expect("resumed run completes");
        let second_lines = sink2.into_lines();
        assert_eq!(
            first_lines.len() + second_lines.len(),
            classes.len() * c.injections as usize,
            "no trial runs twice"
        );
        assert_eq!(second.progress.resumed, resumed_before as u64);

        // Canonical stream and all aggregates are bit-identical.
        let mut all = first_lines;
        all.extend(second_lines);
        assert_eq!(sort_records_jsonl(&all.join("\n")), ref_lines);
        for (a, b) in resumed.classes.iter().zip(&reference.classes) {
            assert_eq!(a.trials, b.trials);
            assert_eq!(a.tally, b.tally);
        }
        assert_eq!(resumed.metrics, reference.metrics);
        assert_eq!(resumed.insns_total, reference.insns_total);
    }

    #[test]
    fn torn_lines_are_skipped_on_resume() {
        let text = "{\"app\":\"wavetoy\",\"class\":\"regular-reg\",\"ci\":0,\"k\":0,\"detail\":\"d\",\"outcome\":\"crash\",\"insns\":5,\"metrics\":null}\n{\"app\":\"wavetoy\",\"cla";
        let (slots, skipped) = CompletedSlots::from_jsonl(text, &[TargetClass::RegularReg], 4);
        assert_eq!(slots.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn pause_parks_and_resume_releases_workers() {
        let control = EngineControl::new();
        control.pause();
        assert_eq!(control.state(), RunState::Paused);
        let done = AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                let (_, complete) = run_pool(&[8], 2, &control, |_, k| {
                    done.fetch_add(1, Ordering::Relaxed);
                    k
                });
                assert!(complete);
            });
            // Workers are parked: nothing completes while paused.
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert_eq!(done.load(Ordering::Relaxed), 0);
            control.resume();
        })
        .unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }
}
